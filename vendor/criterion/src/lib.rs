//! Offline shim of the criterion 0.5 API surface used by this
//! workspace's benches (see `vendor/README.md`).
//!
//! Each benchmark auto-calibrates its iteration count to roughly 25 ms
//! of wall-clock, runs `sample_size` samples and prints a one-line
//! median. CI only compiles benches (`cargo bench --no-run`), so
//! statistical rigor matters less than API compatibility: the real
//! crate drops in unchanged once the environment has network access.

use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from deleting the
/// benchmarked computation. Same contract as `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: a function name plus a parameter rendering,
/// displayed as `name/param` like upstream.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Anything the shim accepts where upstream takes `impl IntoBenchmarkId`.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` `self.iters` times, recording total elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Shim of `criterion::Criterion`: a factory for benchmark groups.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            sample_target: DEFAULT_SAMPLE_TARGET,
            _criterion: self,
        }
    }

    /// Ungrouped benchmark (upstream parity; unused by this workspace's
    /// benches but cheap to provide).
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        run_benchmark(&id, 10, DEFAULT_SAMPLE_TARGET, f);
        self
    }
}

/// Shim of `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    sample_target: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Upstream parity: the total measurement window per benchmark. The
    /// shim divides it across the group's samples (floored at the
    /// default per-sample target), so a wider window buys longer — more
    /// jitter-resistant — samples rather than more of them.
    pub fn measurement_time(&mut self, window: Duration) -> &mut Self {
        self.sample_target = (window / self.sample_size.max(1) as u32).max(DEFAULT_SAMPLE_TARGET);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&full, self.sample_size, self.sample_target, f);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(&full, self.sample_size, self.sample_target, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// The per-sample wall-clock the calibration loop aims for.
const DEFAULT_SAMPLE_TARGET: Duration = Duration::from_millis(25);

/// Calibrate the iteration count to ~`target` of wall-clock per sample,
/// take `samples` samples and print the median per-iteration time.
fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, samples: usize, target: Duration, mut f: F) {
    // Calibration: grow the iteration count until one sample costs at
    // least `target` (or a single iteration already exceeds it).
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= target || iters >= 1 << 30 {
            break;
        }
        // Scale toward the target with headroom, at least doubling.
        let scale = if b.elapsed.is_zero() {
            8.0
        } else {
            (target.as_secs_f64() / b.elapsed.as_secs_f64()).clamp(2.0, 8.0)
        };
        iters = ((iters as f64) * scale).ceil() as u64;
    }
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    println!(
        "{id}: median {} ({samples} samples x {iters} iters)",
        fmt_time(median)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Shim of `criterion_group!`: bundles benchmark functions into one
/// runner function named `$group`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Shim of `criterion_main!`: a `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_renders_name_slash_param() {
        let id = BenchmarkId::new("algo", 42);
        assert_eq!(id.into_benchmark_id(), "algo/42");
    }

    #[test]
    fn bencher_times_the_routine() {
        let mut b = Bencher {
            iters: 100,
            elapsed: Duration::ZERO,
        };
        let mut n = 0u64;
        b.iter(|| n += 1);
        assert_eq!(n, 100);
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        let mut ran = false;
        group.bench_function("noop", |b| {
            ran = true;
            b.iter(|| black_box(1 + 1));
        });
        group.finish();
        assert!(ran);
    }
}
