//! Offline shim of the `rand` 0.8 API surface used by this workspace.
//!
//! Provides [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64`), [`rngs::StdRng`] and [`seq::SliceRandom`]
//! (`shuffle`). The generator is xoshiro256++ seeded via SplitMix64 —
//! deterministic per seed, but the streams do *not* match upstream
//! rand's ChaCha-based `StdRng`.

#![warn(missing_docs)]

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (shim: only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their "natural" domain by [`Rng::gen`]
/// (floats over `[0, 1)`, integers over the full range, bools fair).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics if empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0,1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++, state filled
    /// by SplitMix64. Deterministic per seed; not cryptographic.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per Blackman & Vigna's seeding advice.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::RngCore;

    /// Random operations on slices (shim: `shuffle` only).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_hit_bounds_and_stay_inside() {
        let mut rng = StdRng::seed_from_u64(42);
        let (mut saw_lo, mut saw_hi) = (false, false);
        for _ in 0..2000 {
            let v = rng.gen_range(3..=5u32);
            assert!((3..=5).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 5;
        }
        assert!(saw_lo && saw_hi);
        for _ in 0..2000 {
            let v = rng.gen_range(-1.5..=1.5f64);
            assert!((-1.5..=1.5).contains(&v));
        }
        for _ in 0..2000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left slice in order (astronomically unlikely)"
        );
    }
}
