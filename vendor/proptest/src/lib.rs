//! Offline shim of the `proptest` 1.x API surface used by this
//! workspace's property tests.
//!
//! Provides the [`proptest!`], [`prop_assert!`] and [`prop_assert_eq!`]
//! macros, the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_flat_map`, integer-range and char-class-regex strategies,
//! [`collection::vec`] / [`collection::btree_set`], [`bool::weighted`]
//! and [`test_runner::ProptestConfig`].
//!
//! **Generation only — no shrinking.** Runs are deterministic: the base
//! seed is fixed (override with the `PROPTEST_SHIM_SEED` env var) and
//! mixed with the test name, so a reported failing case index can be
//! replayed by re-running the same test binary.

#![warn(missing_docs)]

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generate one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform every generated value with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, f }
        }

        /// Generate a value, then generate from the strategy `f` builds
        /// out of it (dependent generation).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn gen_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.gen_value(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.gen_value(rng)).gen_value(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    rng.int_in(self.start as i128, self.end as i128 - 1) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    rng.int_in(*self.start() as i128, *self.end() as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// `&str` as a regex-shaped string strategy. The shim supports the
    /// subset the workspace uses — one character class with optional
    /// `{min,max}` repetition (e.g. `"[-a-z0-9,]{0,12}"`) — and treats
    /// anything else as a literal.
    impl Strategy for &'static str {
        type Value = String;
        fn gen_value(&self, rng: &mut TestRng) -> String {
            match parse_class_repeat(self) {
                Some((alphabet, min, max)) => {
                    let len = rng.int_in(min as i128, max as i128) as usize;
                    (0..len)
                        .map(|_| alphabet[rng.int_in(0, alphabet.len() as i128 - 1) as usize])
                        .collect()
                }
                None => (*self).to_string(),
            }
        }
    }

    /// Parse `[class]{min,max}` / `[class]` into (alphabet, min, max).
    fn parse_class_repeat(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < class.len() {
            // `a-z` range (a leading or trailing `-` is a literal).
            if i + 2 < class.len() && class[i + 1] == '-' {
                for c in class[i]..=class[i + 2] {
                    alphabet.push(c);
                }
                i += 3;
            } else {
                alphabet.push(class[i]);
                i += 1;
            }
        }
        if alphabet.is_empty() {
            return None;
        }
        let tail = &rest[close + 1..];
        if tail.is_empty() {
            return Some((alphabet, 1, 1));
        }
        let body = tail.strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = body.split_once(',')?;
        Some((alphabet, lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }
}

pub mod collection {
    //! Collection strategies: [`vec()`] and [`btree_set()`].

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// Size specification for collection strategies: an exact `usize`
    /// or a half-open `Range<usize>`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            rng.int_in(self.min as i128, self.max_inclusive as i128) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with target size drawn from
    /// `size`; duplicate draws are retried a bounded number of times, so
    /// the produced set may be smaller than the target (never below 1
    /// when the target is ≥ 1).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set()`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0;
            while set.len() < target && attempts < 16 + 10 * target {
                set.insert(self.element.gen_value(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        assert!((0.0..=1.0).contains(&p), "weighted: p not in [0,1]");
        Weighted { p }
    }

    /// See [`weighted`].
    #[derive(Clone, Copy, Debug)]
    pub struct Weighted {
        p: f64,
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn gen_value(&self, rng: &mut TestRng) -> bool {
            rng.f64_unit() < self.p
        }
    }
}

pub mod test_runner {
    //! Test configuration, RNG and failure type.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Per-`proptest!`-block configuration (shim: only `cases`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A default config overriding just the case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single generated case failed.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Build a failure with the given explanation.
        pub fn fail<S: Into<String>>(message: S) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic RNG driving generation: fixed base seed (override
    /// with `PROPTEST_SHIM_SEED`) mixed with the test's name.
    pub struct TestRng {
        inner: StdRng,
        /// The base seed this RNG was derived from (for failure reports).
        pub base_seed: u64,
    }

    impl TestRng {
        /// RNG for the named test.
        pub fn for_test(test_name: &str) -> Self {
            let base = std::env::var("PROPTEST_SHIM_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0x9E37_79B9_7F4A_7C15);
            // FNV-1a over the test name decorrelates tests sharing a seed.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in test_name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(base ^ h),
                base_seed: base,
            }
        }

        /// Uniform integer in `[lo, hi]` (inclusive; requires `lo <= hi`).
        pub fn int_in(&mut self, lo: i128, hi: i128) -> i128 {
            assert!(lo <= hi, "empty range [{lo}, {hi}]");
            let span = (hi - lo) as u128 + 1;
            lo + (self.inner.next_u64() as u128 % span) as i128
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn f64_unit(&mut self) -> f64 {
            (self.inner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Define property tests: each `#[test] fn name(pat in strategy, ...)`
/// item becomes a normal `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $(#[test] fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let base_seed = rng.base_seed;
                for case in 0..config.cases {
                    $(
                        let $pat = $crate::strategy::Strategy::gen_value(&($strat), &mut rng);
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest shim: {} failed at case {}/{} (base seed {:#x}): {}",
                            stringify!($name), case, config.cases, base_seed, e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}", l, r, format!($($fmt)+)
        );
    }};
}
