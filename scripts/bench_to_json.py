#!/usr/bin/env python3
"""Distill `cargo bench` output (the vendored criterion shim) into a
committed BENCH_*.json so a perf trajectory exists across PRs.

The shim prints one line per benchmark:

    store_snapshot_rebuild/one_dirty_shard_n50000: median 15.706 us (10 samples x 1712 iters)

This script runs a bench target (or reads the lines from stdin), parses
those lines, normalizes every median to seconds, and — for the
`store_snapshot_rebuild` group — derives the headline ratios the sharded
store claims: how many times faster a single-dirty-shard rebuild is than
a full rebuild at each graph size, and how the all-dirty worst case
compares to the full rebuild.

For `bench_batch` runs it additionally derives the locality/planning
ratios (renumbered vs identity layout per-query FPA, planned vs
unplanned batch, session memo on vs off) under
`derived.locality_and_planning`, and the mirror-serving ratios
(mirror-served vs canonical sessions per layout, pooled-bitset vs
fresh-bytemask validation BFS, skew-aware vs count-only planning)
under `derived.mirror_and_skew`.

Usage:
    python3 scripts/bench_to_json.py --out BENCH_7.json
    cargo bench -q -p dmcs-engine --bench bench_store | \
        python3 scripts/bench_to_json.py --stdin --out BENCH_7.json
    cargo bench -q -p dmcs-engine --bench bench_batch | \
        python3 scripts/bench_to_json.py --stdin --out BENCH_9.json

No dependencies beyond the standard library.
"""

import argparse
import json
import re
import subprocess
import sys

LINE = re.compile(
    r"^(?P<group>[^/\s]+)/(?P<name>\S+): median (?P<val>[0-9.]+) (?P<unit>ns|us|ms|s) "
    r"\((?P<samples>\d+) samples x (?P<iters>\d+) iters\)$"
)

TO_SECONDS = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}


def parse(lines):
    results = []
    for line in lines:
        m = LINE.match(line.strip())
        if not m:
            continue
        results.append(
            {
                "group": m["group"],
                "name": m["name"],
                "median_seconds": float(m["val"]) * TO_SECONDS[m["unit"]],
                "samples": int(m["samples"]),
                "iters_per_sample": int(m["iters"]),
            }
        )
    return results


def derive_rebuild_ratios(results):
    """full_rebuild / one_dirty_shard and all_dirty / full_rebuild per n."""
    rebuild = {
        r["name"]: r["median_seconds"]
        for r in results
        if r["group"] == "store_snapshot_rebuild"
    }
    sizes = sorted(
        {
            int(m["n"])
            for name in rebuild
            for m in [re.search(r"_n(?P<n>\d+)$", name)]
            if m
        }
    )
    derived = []
    for n in sizes:
        full = rebuild.get(f"full_rebuild_n{n}")
        one = rebuild.get(f"one_dirty_shard_n{n}")
        all_dirty = rebuild.get(f"all_dirty_n{n}")
        # The all-dirty comparison baseline is the same 16-edge batch on
        # a single-shard store (falling back to the single-toggle full
        # rebuild if the batch baseline is absent).
        full_batch = rebuild.get(f"full_rebuild_batch_n{n}", full)
        if not (full and one and all_dirty):
            continue
        derived.append(
            {
                "n": n,
                "full_over_one_dirty_shard": round(full / one, 2),
                "all_dirty_over_full_batch": round(all_dirty / full_batch, 3),
            }
        )
    return derived


def _ratio(times, baseline, contender):
    """baseline/contender rounded, or None if either is missing."""
    base, cont = times.get(baseline), times.get(contender)
    if not (base and cont):
        return None
    return round(base / cont, 3)


def derive_locality_ratios(results):
    """Headline ratios of the locality/planning benches (`bench_batch`).

    - ``layout_fpa``: identity-layout per-query FPA time over each
      renumbered compute mirror (>1 means the renumbering is faster) on
      the scrambled fragmented-50k graph.
    - ``batch_sched``: ungrouped/unmemoized batch wall-clock over the
      planned variants — ``plan_auto`` isolates component-grouped
      scheduling + the component memo on the same scrambled store;
      ``plan_auto_rcm`` is the full stack (the same planned batch served
      from a physically RCM-renumbered store), the end-to-end
      `--layout rcm --plan auto` configuration.
    - ``session_memo``: the session's consecutive-same-component stream
      without over with the workspace component memo.
    """
    by_group = {}
    for r in results:
        by_group.setdefault(r["group"], {})[r["name"]] = r["median_seconds"]
    derived = {}
    layout = by_group.get("layout_fpa_fragmented50k", {})
    for policy in ("degree", "bfs", "rcm"):
        ratio = _ratio(layout, "identity", policy)
        if ratio is not None:
            derived[f"layout_identity_over_{policy}"] = ratio
    sched = by_group.get("batch_sched_fragmented100k", {})
    for name, key in (
        ("plan_auto", "sched_off_over_auto"),
        ("plan_auto_rcm", "sched_off_over_auto_rcm"),
    ):
        ratio = _ratio(sched, "plan_off", name)
        if ratio is not None:
            derived[key] = ratio
    memo = by_group.get("session_memo_fragmented50k", {})
    ratio = _ratio(memo, "memo_off", "memo_on")
    if ratio is not None:
        derived["session_memo_off_over_on"] = ratio
    return derived


def derive_mirror_ratios(results):
    """Headline ratios of the mirror-serving benches (`bench_batch`).

    - ``mirror_canonical_over_*``: canonical-substrate session time over
      the mirror-serving session per layout policy (>1 means serving
      from the renumbered mirror is faster end to end, tie-break shim
      and id translation included).
    - ``validate_bytemask_over_bitset``: the old fresh-bytemask
      validation BFS over the pooled u64-bitset frontier.
    - ``skew_off_over_auto`` / ``skew_count_only_over_auto``: planner-off
      and forced-grouping (count-only planner) batch wall-clock over the
      skew-aware auto plan on the giant-plus-dust graph — auto must not
      lose to off, and the count-only comparison prices the grouping
      overhead skew-awareness avoids.
    """
    by_group = {}
    for r in results:
        by_group.setdefault(r["group"], {})[r["name"]] = r["median_seconds"]
    derived = {}
    mirror = by_group.get("mirror_fpa_fragmented50k", {})
    for policy in ("identity", "bfs", "rcm"):
        ratio = _ratio(mirror, "canonical", f"mirror_{policy}")
        if ratio is not None:
            derived[f"mirror_canonical_over_{policy}"] = ratio
    validate = by_group.get("validate_bfs_fragmented50k", {})
    ratio = _ratio(validate, "bytemask_fresh", "bitset_pooled")
    if ratio is not None:
        derived["validate_bytemask_over_bitset"] = ratio
    skew = by_group.get("plan_skew_giant50k", {})
    for baseline, key in (
        ("plan_off", "skew_off_over_auto"),
        ("count_only", "skew_count_only_over_auto"),
    ):
        ratio = _ratio(skew, baseline, "plan_auto")
        if ratio is not None:
            derived[key] = ratio
    return derived


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default="-", help="output path (default stdout)")
    ap.add_argument("--stdin", action="store_true", help="parse stdin instead of running cargo")
    ap.add_argument("--package", default="dmcs-engine")
    ap.add_argument("--bench", default="bench_store")
    args = ap.parse_args()

    if args.stdin:
        lines = sys.stdin.read().splitlines()
    else:
        proc = subprocess.run(
            ["cargo", "bench", "-q", "-p", args.package, "--bench", args.bench],
            capture_output=True,
            text=True,
            check=True,
        )
        lines = proc.stdout.splitlines() + proc.stderr.splitlines()

    results = parse(lines)
    if not results:
        sys.exit("no benchmark lines recognized — is the vendored criterion shim in use?")

    doc = {
        "bench": args.bench,
        "package": args.package,
        "generated_by": "scripts/bench_to_json.py",
        "unit": "median_seconds are wall-clock seconds per iteration",
        "results": results,
        "derived": {},
    }
    rebuild = derive_rebuild_ratios(results)
    if rebuild:
        doc["derived"]["store_snapshot_rebuild"] = rebuild
    locality = derive_locality_ratios(results)
    if locality:
        doc["derived"]["locality_and_planning"] = locality
    mirror = derive_mirror_ratios(results)
    if mirror:
        doc["derived"]["mirror_and_skew"] = mirror
    rendered = json.dumps(doc, indent=2) + "\n"
    if args.out == "-":
        sys.stdout.write(rendered)
    else:
        with open(args.out, "w") as fh:
            fh.write(rendered)


if __name__ == "__main__":
    main()
