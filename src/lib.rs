//! # DMCS — Density-Modularity based Community Search
//!
//! Umbrella crate re-exporting the full public API of the DMCS
//! reproduction workspace (SIGMOD 2022, Kim, Luo, Cong, Yu).
//!
//! - [`graph`] — CSR graph substrate, traversals, decompositions.
//! - [`core`] — density modularity and the NCA / FPA search algorithms.
//! - [`baselines`] — the eleven baseline community-search algorithms.
//! - [`engine`] — the typed serving API: algorithm registry, the
//!   [`EngineError`](dmcs_engine::EngineError) taxonomy, query
//!   sessions, concurrent batches, JSON-lines output.
//! - [`gen`] — LFR / SBM / toy-graph generators and embedded datasets.
//! - [`metrics`] — NMI, ARI, F-score and friends.
//!
//! ```
//! use dmcs::prelude::*;
//!
//! let g = dmcs::gen::toy::figure1();
//! let result = Fpa::default().search(&g, &[0]).unwrap();
//! assert!(result.community.contains(&0));
//! ```
#![warn(missing_docs)]

pub mod cli;

pub use dmcs_baselines as baselines;
pub use dmcs_core as core;
pub use dmcs_engine as engine;
pub use dmcs_gen as gen;
pub use dmcs_graph as graph;
pub use dmcs_metrics as metrics;

/// Commonly used items: the graph type, the two main algorithms, the
/// [`CommunitySearch`](dmcs_core::CommunitySearch) trait, the serving
/// API's entry points and the measures.
pub mod prelude {
    pub use dmcs_core::{
        measure::{classic_modularity, density_modularity},
        CommunitySearch, Fpa, Nca, SearchResult,
    };
    pub use dmcs_engine::{AlgoSpec, Engine, EngineError, QueryRequest, Session};
    pub use dmcs_graph::{Graph, GraphBuilder, GraphStore, NodeId, Snapshot};
    pub use dmcs_metrics::{ari, f_score, nmi};
}
