//! `dmcs` — command-line community search. See [`dmcs::cli`] for the
//! argument grammar; all logic lives in the library so it stays testable.
//!
//! Exit codes follow the [`dmcs::engine::EngineError`] taxonomy: 0 on
//! success, 2 for bad flags/parameters (flag-level mistakes also print
//! the usage text on stderr), 3 unknown algorithm, 4 I/O failure, 5
//! unknown query node, 6 search failure, 7 bad `--updates` script line.
//! Codes 8 (server overloaded) and 9 (bad wire request) are the wire
//! analogs used by the `dmcs serve` protocol's `error` lines.
//!
//! `dmcs serve` (see [`dmcs::cli::run_serve`]) starts the socket daemon
//! instead of a one-shot run.

use dmcs::engine::EngineError;

fn fail(e: EngineError, usage: Option<String>) -> ! {
    eprintln!("error: {e}");
    if let Some(text) = usage {
        eprintln!("\n{text}");
    }
    std::process::exit(e.exit_code());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // `dmcs serve ...` — the long-lived socket daemon.
    if args.first().map(String::as_str) == Some("serve") {
        match dmcs::cli::parse_serve(&args[1..]) {
            Ok(None) => print!("{}", dmcs::cli::serve_usage()),
            Ok(Some(serve)) => {
                let mut out = std::io::stdout();
                if let Err(e) = dmcs::cli::run_serve(&serve, &mut out) {
                    fail(e, None);
                }
            }
            Err(e) => fail(e, Some(dmcs::cli::serve_usage())),
        }
        return;
    }

    match dmcs::cli::parse(&args) {
        Ok(None) => print!("{}", dmcs::cli::usage()),
        Ok(Some(cfg)) => {
            let mut out = std::io::stdout();
            if let Err(e) = dmcs::cli::run(&cfg, &mut out) {
                // Runtime failures (a bad query file, an I/O error, a
                // refused search) keep stderr to the message itself.
                fail(e, None);
            }
        }
        // Flag-level mistakes get the full usage text, like --help.
        Err(e) => fail(e, Some(dmcs::cli::usage())),
    }
}
