//! `dmcs` — command-line community search. See [`dmcs::cli`] for the
//! argument grammar; all logic lives in the library so it stays testable.
//!
//! Exit codes follow the [`dmcs::engine::EngineError`] taxonomy: 0 on
//! success, 2 for bad flags/parameters (flag-level mistakes also print
//! the usage text on stderr), 3 unknown algorithm, 4 I/O failure, 5
//! unknown query node, 6 search failure, 7 bad `--updates` script line.

use dmcs::engine::EngineError;

fn fail(e: EngineError, show_usage: bool) -> ! {
    eprintln!("error: {e}");
    if show_usage {
        eprintln!("\n{}", dmcs::cli::usage());
    }
    std::process::exit(e.exit_code());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dmcs::cli::parse(&args) {
        Ok(None) => print!("{}", dmcs::cli::usage()),
        Ok(Some(cfg)) => {
            let mut out = std::io::stdout();
            if let Err(e) = dmcs::cli::run(&cfg, &mut out) {
                // Runtime failures (a bad query file, an I/O error, a
                // refused search) keep stderr to the message itself.
                fail(e, false);
            }
        }
        // Flag-level mistakes get the full usage text, like --help.
        Err(e) => fail(e, true),
    }
}
