//! `dmcs` — command-line community search. See [`dmcs::cli`] for the
//! argument grammar; all logic lives in the library so it stays testable.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dmcs::cli::parse(&args) {
        Ok(None) => print!("{}", dmcs::cli::usage()),
        Ok(Some(cfg)) => {
            let mut out = std::io::stdout();
            if let Err(e) = dmcs::cli::run(&cfg, &mut out) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
