//! Command-line interface of the `dmcs` binary: load a SNAP-format edge
//! list, run a community-search algorithm (or a whole batch of queries),
//! print the community / throughput report as text or JSON-lines.
//!
//! ```text
//! dmcs --graph karate.txt --query 0 --algo fpa --stats
//! dmcs --demo --query 0,3 --algo nca --format json
//! dmcs --graph big.txt --queries q.txt --threads 8 --algo fpa
//! dmcs --graph w.txt --weighted --queries q.txt --threads 8 --format json
//! dmcs --demo --updates script.txt --format json
//! ```
//!
//! Argument parsing is hand-rolled (the workspace's dependency policy
//! admits no CLI crate) and lives in the library so it is unit-testable;
//! `src/main.rs` is a thin wrapper. Algorithm labels resolve through the
//! [`dmcs_engine::registry`], and the `--algo` section of the usage text
//! is generated from it, so help cannot drift from the code.
//!
//! Every failure is a typed [`EngineError`]; `main` maps each variant to
//! its documented exit code (2 = bad flags/params, 3 = unknown
//! algorithm, 4 = I/O, 5 = unknown query node, 6 = search failure,
//! 7 = bad update-script line).
//!
//! Every mode serves through the versioned
//! [`GraphStore`](dmcs_graph::GraphStore) behind an [`Engine`]: queries
//! pin epoch snapshots, and the
//! `--updates` mode interleaves `add` / `del` / `setw` mutations with
//! `query` lines, exercising the full mutate → snapshot → query →
//! cache-invalidate cycle in a single run.
//!
//! **Weighted serving** is the same stack, not a side door: `--weighted`
//! loads a `u v w` edge list into a weighted
//! [`GraphStore`](dmcs_graph::GraphStore) (the demo graph gets unit
//! weights) and resolves `fpa`/`nca` to their
//! weight-aware registry implementations (`fpa-w`/`nca-w`), so
//! `--queries`, `--threads`, `--format json`, `--updates` (whose grammar
//! grows `add u v w` and `setw u v w`) and the shard-scoped result
//! cache all compose with weights.

use crate::core::SearchResult;
use crate::engine::output::{report_jsonl, response_json, result_json, summary_json, Json};
use crate::engine::registry::{self, AlgoParams, AlgoSpec};
use crate::engine::{
    BatchReport, Engine, EngineError, PlanMode, QueryPlan, QueryRequest, QueryResponse, Server,
    ServerConfig, Session,
};
use crate::graph::io::{load_edge_list, read_weighted_edge_list};
use crate::graph::{Graph, LayoutPolicy, NodeId};
use crate::metrics::Goodness;
use std::collections::HashMap;
use std::time::Instant;

/// Output rendering of the binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Human-readable text (the default).
    #[default]
    Text,
    /// JSON-lines: one `response` object per query, one `summary` object
    /// per batch — the schema of [`dmcs_engine::output`].
    Json,
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct CliConfig {
    /// Path to the edge-list file; `None` means `--demo` (Karate club).
    pub graph_path: Option<String>,
    /// Query nodes in *original* (file) id space.
    pub query: Vec<u64>,
    /// Algorithm label.
    pub algo: String,
    /// `k` for the parameterised baselines (kc/kt/kecc).
    pub k: u32,
    /// Disable FPA's layer-based pruning.
    pub no_pruning: bool,
    /// Print structural goodness statistics of the result.
    pub stats: bool,
    /// Cap on how many member ids to print (0 = all; text format only).
    pub max_print: usize,
    /// Serve the weighted density modularity: load the input as a
    /// strict `u v w` edge list (the demo graph gets unit weights) and
    /// resolve the algorithm to its weight-aware registry entry
    /// (`fpa` -> `fpa-w`, `nca` -> `nca-w`). Composes with every mode:
    /// `--query`, `--queries`/`--threads`, `--updates`, `--format json`.
    pub weighted: bool,
    /// Return up to this many diverse communities (0 = single community).
    pub top_k: usize,
    /// Write a Graphviz DOT rendering of the result here.
    pub dot_path: Option<String>,
    /// Batch mode: path to a file with one query per line.
    pub queries_path: Option<String>,
    /// Live-update mode: path to a script of interleaved `add u v` /
    /// `del u v` / `query id[,id...]` lines.
    pub updates_path: Option<String>,
    /// Batch mode worker threads.
    pub threads: usize,
    /// Output rendering (`--format {text,json}`).
    pub format: OutputFormat,
    /// Shard count for the versioned store (`--shards`): node-id ranges
    /// per shard, giving incremental dirty-shard-only snapshot rebuilds
    /// and shard-scoped cache invalidation under updates.
    pub shards: usize,
    /// Query planner mode (`--plan {auto,off}`): whether batches pick
    /// component-grouped scheduling and the per-worker component memo
    /// from snapshot statistics. Strategy only — output bytes are
    /// identical across modes.
    pub plan: PlanMode,
    /// Compute-mirror layout policy (`--layout
    /// {identity,degree,bfs,rcm}`): the store additionally builds a
    /// cache-friendly renumbered CSR mirror per snapshot. Public ids
    /// (and all output) stay in the external id space.
    pub layout: LayoutPolicy,
}

impl Default for CliConfig {
    fn default() -> Self {
        CliConfig {
            graph_path: None,
            query: Vec::new(),
            algo: "fpa".into(),
            k: 3,
            no_pruning: false,
            stats: false,
            max_print: 50,
            weighted: false,
            top_k: 0,
            dot_path: None,
            queries_path: None,
            updates_path: None,
            threads: 1,
            format: OutputFormat::Text,
            shards: crate::graph::DEFAULT_SHARD_COUNT,
            plan: PlanMode::default(),
            layout: LayoutPolicy::default(),
        }
    }
}

/// Usage text for `--help` and parse errors. The `--algo` section is
/// generated from the algorithm registry, so it lists exactly the
/// algorithms that actually resolve.
pub fn usage() -> String {
    format!(
        "\
dmcs — Density-Modularity based Community Search (SIGMOD 2022)

USAGE:
    dmcs [--graph <edge-list> | --demo] --query <id[,id...]> [options]
    dmcs [--graph <edge-list> | --demo] --queries <file> [--threads <n>] [options]
    dmcs [--graph <edge-list> | --demo] --updates <file> [options]
    dmcs serve [--graph <edge-list> | --demo] (--unix <path> | --tcp <addr>) [options]
                      (socket daemon; see `dmcs serve --help`)

OPTIONS:
    --graph <path>    SNAP-format edge list (`u v` per line, # comments)
    --demo            use the embedded Zachary Karate Club instead
    --query <ids>     comma-separated query node ids (file id space)
    --queries <path>  batch mode: one query per line (comma-separated ids;
                      blank lines and # comments are skipped)
    --updates <path>  live-update mode: interleaved script of `add u v`,
                      `del u v` and `query id[,id...]` lines (file id
                      space; `add` may introduce new ids; blank lines and
                      # comments are skipped); queries answer against the
                      graph as mutated so far — consecutive mutations
                      coalesce into one dirty-shard rebuild at the next
                      query — with shard-scoped result caching. With
                      --weighted the grammar grows
                      `add u v w` and `setw u v w` (weight ops on an
                      unweighted graph are exit-7 errors)
    --threads <n>     batch mode worker threads (default: 1)
    --format <fmt>    output format: text (default) or json (JSON-lines,
                      one response object per query; schema in README)
    --algo <name>     algorithm label (default: fpa), one of:
{algos}    --k <int>         k for the algorithms marked [uses --k] (default: 3)
    --no-pruning      disable FPA's layer-based pruning
    --stats           print conductance/expansion/... of the result and
                      the graph's resident memory footprint (text format)
    --max-print <n>   print at most n member ids, 0 = all (default: 50)
    --weighted        input has strict `u v w` lines (--demo gets unit
                      weights); serve the weighted density modularity
                      with an algorithm marked [weights]; composes with
                      --queries, --threads, --updates and --format json
    --top-k <n>       return up to n diverse communities per query;
                      composes with --algo and --weighted (rounds run
                      the resolved searcher and score its objective)
    --dot <path>      write a Graphviz DOT rendering of the result
    --shards <n>      partition the store's node-id space into n shards
                      (default: 16): updates dirty only the shards they
                      touch, so snapshot rebuilds recompile dirty shards
                      and cached answers scoped to clean shards survive
    --plan <mode>     query planner: auto (default; batches schedule
                      component-grouped with a per-worker component memo
                      when snapshot stats warrant it — grouping is
                      skew-aware, skipped when one giant component holds
                      most of the mass — and mirror-safe searches run on
                      the compute mirror when one exists) or off
                      (ungrouped canonical baseline). Execution strategy
                      only — results are bit-identical across modes
    --layout <policy> snapshot compute-mirror layout: identity (default;
                      no mirror), degree, bfs or rcm — builds a
                      renumbered cache-friendly CSR mirror per snapshot
                      that mirror-safe searches execute on under --plan
                      auto; ids in all output stay in the input id space
    --help            show this text

EXIT CODES:
    0 success, 2 bad flags or parameters, 3 unknown algorithm,
    4 I/O failure, 5 unknown query node, 6 search failure,
    7 bad update-script line, 8 server overloaded (wire code),
    9 bad wire request (wire code)
",
        algos = registry::algo_help()
    )
}

/// Parse one comma-separated query-id list with strict hygiene: empty
/// tokens (trailing or doubled commas), non-numeric ids and duplicate
/// ids are all rejected with a message naming the offender.
pub fn parse_query_ids(s: &str) -> Result<Vec<u64>, EngineError> {
    let mut ids = Vec::new();
    for tok in s.split(',') {
        let tok = tok.trim();
        if tok.is_empty() {
            return Err(EngineError::bad_param(format!(
                "empty query id in {s:?} (trailing or doubled comma?)"
            )));
        }
        let id: u64 = tok
            .parse()
            .map_err(|_| EngineError::bad_param(format!("bad query id {tok:?}")))?;
        if ids.contains(&id) {
            return Err(EngineError::bad_param(format!("duplicate query id {id}")));
        }
        ids.push(id);
    }
    Ok(ids)
}

/// Parse `args` (without the program name). `Ok(None)` means `--help`.
pub fn parse(args: &[String]) -> Result<Option<CliConfig>, EngineError> {
    let mut cfg = CliConfig::default();
    let mut demo = false;
    let mut threads_set = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<&String, EngineError> {
            it.next()
                .ok_or_else(|| EngineError::bad_param(format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--graph" => cfg.graph_path = Some(value("--graph")?.clone()),
            "--demo" => demo = true,
            "--query" => cfg.query = parse_query_ids(value("--query")?)?,
            "--queries" => cfg.queries_path = Some(value("--queries")?.clone()),
            "--updates" => cfg.updates_path = Some(value("--updates")?.clone()),
            "--threads" => {
                cfg.threads = value("--threads")?
                    .parse()
                    .map_err(|_| EngineError::bad_param("bad --threads value"))?;
                threads_set = true;
            }
            "--format" => {
                cfg.format = match value("--format")?.as_str() {
                    "text" => OutputFormat::Text,
                    "json" => OutputFormat::Json,
                    other => {
                        return Err(EngineError::bad_param(format!(
                            "bad --format {other:?} (expected text or json)"
                        )))
                    }
                };
            }
            "--algo" => cfg.algo = value("--algo")?.to_lowercase(),
            "--k" => {
                cfg.k = value("--k")?
                    .parse()
                    .map_err(|_| EngineError::bad_param("bad --k value"))?;
            }
            "--no-pruning" => cfg.no_pruning = true,
            "--stats" => cfg.stats = true,
            "--max-print" => {
                cfg.max_print = value("--max-print")?
                    .parse()
                    .map_err(|_| EngineError::bad_param("bad --max-print value"))?;
            }
            "--weighted" => cfg.weighted = true,
            "--top-k" => {
                cfg.top_k = value("--top-k")?
                    .parse()
                    .map_err(|_| EngineError::bad_param("bad --top-k value"))?;
            }
            "--dot" => cfg.dot_path = Some(value("--dot")?.clone()),
            "--shards" => {
                cfg.shards = value("--shards")?
                    .parse()
                    .map_err(|_| EngineError::bad_param("bad --shards value"))?;
                if cfg.shards == 0 {
                    return Err(EngineError::bad_param("--shards must be at least 1"));
                }
            }
            "--plan" => {
                cfg.plan = value("--plan")?.parse().map_err(|e: String| {
                    EngineError::bad_param(format!("bad --plan value: {e}"))
                })?;
            }
            "--layout" => {
                cfg.layout = value("--layout")?.parse().map_err(|e: String| {
                    EngineError::bad_param(format!("bad --layout value: {e}"))
                })?;
            }
            other => {
                return Err(EngineError::bad_param(format!(
                    "unknown argument {other:?}"
                )))
            }
        }
    }
    if demo && cfg.graph_path.is_some() {
        return Err(EngineError::bad_param(
            "--demo and --graph are mutually exclusive",
        ));
    }
    if !demo && cfg.graph_path.is_none() {
        return Err(EngineError::bad_param(
            "either --graph or --demo is required",
        ));
    }
    if cfg.query.is_empty() && cfg.queries_path.is_none() && cfg.updates_path.is_none() {
        return Err(EngineError::bad_param(
            "--query, --queries or --updates is required",
        ));
    }
    let sources = [
        !cfg.query.is_empty(),
        cfg.queries_path.is_some(),
        cfg.updates_path.is_some(),
    ];
    if sources.iter().filter(|&&s| s).count() > 1 {
        return Err(EngineError::bad_param(
            "--query, --queries and --updates are mutually exclusive",
        ));
    }
    if threads_set && cfg.queries_path.is_none() {
        return Err(EngineError::bad_param(
            "--threads requires --queries (batch mode)",
        ));
    }
    if cfg.queries_path.is_some() {
        if cfg.top_k > 0 {
            return Err(EngineError::bad_param("--queries does not support --top-k"));
        }
        if cfg.dot_path.is_some() {
            return Err(EngineError::bad_param("--queries does not support --dot"));
        }
    }
    if cfg.updates_path.is_some() {
        if cfg.top_k > 0 {
            return Err(EngineError::bad_param("--updates does not support --top-k"));
        }
        if cfg.dot_path.is_some() {
            return Err(EngineError::bad_param("--updates does not support --dot"));
        }
        if cfg.stats {
            return Err(EngineError::bad_param(
                "--updates does not support --stats (the graph changes mid-run)",
            ));
        }
    }
    validate_weighted_algo(&cfg)?;
    Ok(Some(cfg))
}

/// `--weighted` needs a weight-aware algorithm. A label the registry
/// does not know at all is left for run() to reject with the richer
/// UnknownAlgo error (exit 3, nearest-name suggestion).
fn validate_weighted_algo(cfg: &CliConfig) -> Result<(), EngineError> {
    if cfg.weighted {
        if let Some(entry) = registry::find(&cfg.algo) {
            if !entry.weight_aware {
                return Err(EngineError::bad_param(format!(
                    "--weighted does not support --algo {} (weight-aware: {})",
                    cfg.algo,
                    registry::REGISTRY
                        .iter()
                        .filter(|e| e.weight_aware)
                        .map(|e| e.name)
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
    }
    Ok(())
}

/// Open a session honouring `--plan`: `off` disarms the component memo
/// and mirror serving (the canonical baseline the planner is measured
/// against), `auto` keeps the session defaults. Single-query, top-k and
/// update-script paths all come through here so the planner switch
/// covers every serving mode, not just batches.
fn plan_session(engine: &Engine, cfg: &CliConfig, spec: &AlgoSpec) -> Result<Session, EngineError> {
    let session = engine.session(spec)?;
    Ok(match cfg.plan {
        PlanMode::Off => session.without_memo().without_mirror(),
        PlanMode::Auto => session,
    })
}

/// The registry spec a config's `--algo` / `--k` / `--no-pruning` /
/// `--weighted` flags describe.
pub fn algo_spec(cfg: &CliConfig) -> AlgoSpec {
    AlgoSpec {
        name: cfg.algo.clone(),
        params: AlgoParams {
            k: cfg.k,
            layer_pruning: !cfg.no_pruning,
            weighted: cfg.weighted,
        },
    }
}

/// Load the graph named by the config. Returns the graph and the
/// dense-id -> original-id mapping. Under `--weighted` the file is
/// parsed as a strict `u v w` edge list and the returned graph carries
/// its weights lane (the demo graph gets unit weights), so the same
/// engine/store/session stack serves both worlds.
pub fn load_graph(cfg: &CliConfig) -> Result<(Graph, Vec<u64>), EngineError> {
    match &cfg.graph_path {
        Some(path) if cfg.weighted => {
            let file = std::fs::File::open(path).map_err(|e| EngineError::io(path, e))?;
            let (wg, original) =
                read_weighted_edge_list(file).map_err(|e| EngineError::io(path, e))?;
            Ok((wg.into_graph(), original))
        }
        Some(path) => load_edge_list(path).map_err(|e| EngineError::io(path, e)),
        None => {
            let g = crate::gen::karate::karate();
            let ids = (0..g.n() as u64).collect();
            let g = if cfg.weighted {
                g.with_unit_weights()
            } else {
                g
            };
            Ok((g, ids))
        }
    }
}

/// Map original query ids to dense ids. An id missing from the graph is
/// an [`EngineError::UnknownNode`] (exit code 5).
pub fn map_queries(query: &[u64], original: &[u64]) -> Result<Vec<NodeId>, EngineError> {
    query
        .iter()
        .map(|&raw| {
            original
                .iter()
                .position(|&o| o == raw)
                .map(|i| i as NodeId)
                .ok_or_else(|| EngineError::unknown_node(raw))
        })
        .collect()
}

/// Wrap a write failure on the output stream.
fn werr(e: std::io::Error) -> EngineError {
    EngineError::io("<output>", e)
}

/// Print one search result (community in original ids, optional stats).
fn print_result<W: std::io::Write>(
    cfg: &CliConfig,
    out: &mut W,
    g: &Graph,
    original: &[u64],
    label: &str,
    result: &SearchResult,
    secs: f64,
) -> Result<(), EngineError> {
    writeln!(
        out,
        "algorithm: {label}   time: {secs:.3}s   |C| = {}   DM = {:.6}",
        result.community.len(),
        result.density_modularity
    )
    .map_err(werr)?;

    let mut members: Vec<u64> = result
        .community
        .iter()
        .map(|&v| original[v as usize])
        .collect();
    members.sort_unstable();
    let shown = if cfg.max_print == 0 {
        members.len()
    } else {
        cfg.max_print.min(members.len())
    };
    writeln!(
        out,
        "community ({} shown{}): {:?}",
        shown,
        if shown < members.len() {
            format!(" of {}", members.len())
        } else {
            String::new()
        },
        &members[..shown]
    )
    .map_err(werr)?;

    if cfg.stats {
        let l = g.internal_edges(&result.community);
        let vol = g.degree_sum(&result.community);
        let good = Goodness::from_counts(g.n(), result.community.len(), l, vol, g.m() as u64);
        writeln!(
            out,
            "stats: conductance {:.4}  expansion {:.3}  cut-ratio {:.5}  int-density {:.4}  separability {:.3}",
            good.conductance(),
            good.expansion(),
            good.cut_ratio(),
            good.internal_density(),
            good.separability()
        )
        .map_err(werr)?;
    }
    Ok(())
}

/// Write the DOT rendering of `communities` (dense ids, labelled with
/// original ids).
fn write_dot_file(
    path: &str,
    g: &Graph,
    original: &[u64],
    communities: &[&[NodeId]],
) -> Result<(), EngineError> {
    let file = std::fs::File::create(path).map_err(|e| EngineError::io(path, e))?;
    let labels = |v: NodeId| original[v as usize].to_string();
    crate::graph::dot::write_dot(g, communities, Some(&labels), file)
        .map_err(|e| EngineError::io(path, e))
}

/// Full CLI run; writes text or JSON-lines output to `out`.
pub fn run<W: std::io::Write>(cfg: &CliConfig, out: &mut W) -> Result<(), EngineError> {
    // Fail fast on an unregistered --algo, before loading any graph, so
    // the error (exit code 3, with suggestion) is the only output.
    algo_spec(cfg).build()?;

    // Every mode — weighted or not — serves through the versioned
    // store: the engine owns a sharded GraphStore (seeded from the
    // loaded edge list, with its weights lane under --weighted) plus
    // the shard-scoped result cache, and queries pin snapshots.
    let (g, original) = load_graph(cfg)?;
    let engine = Engine::from_graph_sharded(g, cfg.shards);
    engine.store().set_layout_policy(cfg.layout);
    if cfg.format == OutputFormat::Text {
        let snap = engine.snapshot();
        if snap.is_weighted() {
            writeln!(
                out,
                "graph: {} nodes, {} edges, total weight {:.3}",
                snap.n(),
                snap.m(),
                snap.total_weight()
            )
            .map_err(werr)?;
        } else {
            writeln!(out, "graph: {} nodes, {} edges", snap.n(), snap.m()).map_err(werr)?;
        }
        if cfg.stats {
            let bytes = snap.memory_bytes();
            writeln!(
                out,
                "graph memory: {bytes} bytes ({:.2} MiB)",
                bytes as f64 / (1024.0 * 1024.0)
            )
            .map_err(werr)?;
            let rb = engine.rebuild_stats();
            writeln!(
                out,
                "store: {} shards, {} dirty  rebuilds: {} ({} shards rebuilt, {} reused)  last: {} dirty in {:.6}s",
                rb.shards,
                engine.dirty_shards(),
                rb.rebuilds,
                rb.shards_rebuilt,
                rb.shards_reused,
                rb.last_dirty_shards,
                rb.last_rebuild_seconds
            )
            .map_err(werr)?;
        }
    }

    // Live-update path: interleaved mutations and queries.
    if let Some(upath) = &cfg.updates_path {
        return run_updates(cfg, upath, &engine, original, out);
    }

    // Batch path: fan a query file out across worker threads.
    if let Some(qpath) = &cfg.queries_path {
        return run_batch(cfg, qpath, &engine, &original, out);
    }
    let snap = engine.snapshot();
    let query = map_queries(&cfg.query, &original)?;

    // Top-k path: several diverse communities, served through the
    // session like every other query — the registry resolves the
    // searcher (so --algo and --weighted compose) and the shared result
    // cache replays repeat enumerations.
    if cfg.top_k > 0 {
        let mut session = plan_session(&engine, cfg, &algo_spec(cfg))?;
        let outcome = session.top_k(&query, cfg.top_k);
        let algo = outcome.algo;
        let rounds = outcome.rounds.map_err(|e| EngineError::Search {
            algo: format!("top-k {algo}"),
            source: e,
        })?;
        let secs = outcome.seconds;
        if cfg.format == OutputFormat::Text {
            writeln!(
                out,
                "top-{} search found {} communities:",
                cfg.top_k,
                rounds.len()
            )
            .map_err(werr)?;
        }
        for (i, r) in rounds.iter().enumerate() {
            match cfg.format {
                OutputFormat::Text => print_result(
                    cfg,
                    out,
                    &snap,
                    &original,
                    &format!("{algo} round {}", i + 1),
                    r,
                    secs,
                )?,
                OutputFormat::Json => {
                    let tag = format!("round-{}", i + 1);
                    let line = result_json(
                        algo,
                        Some(&tag),
                        &query,
                        &Ok(r.clone()),
                        secs,
                        Some(&original),
                    );
                    writeln!(out, "{}", line.render()).map_err(werr)?;
                }
            }
        }
        if let Some(dot) = &cfg.dot_path {
            let comms: Vec<&[NodeId]> = rounds.iter().map(|r| r.community.as_slice()).collect();
            write_dot_file(dot, &snap, &original, &comms)?;
            if cfg.format == OutputFormat::Text {
                writeln!(out, "DOT written to {dot}").map_err(werr)?;
            }
        }
        return Ok(());
    }

    // Single-community path: a one-query session (the typed serving API;
    // a long-running caller would keep the session and loop).
    let mut session = plan_session(&engine, cfg, &algo_spec(cfg))?;
    let response = session.query(&QueryRequest::new(query))?;
    let result = match &response.result {
        Ok(r) => r,
        Err(e) => {
            return Err(EngineError::Search {
                algo: response.algo.into(),
                source: e.clone(),
            })
        }
    };
    match cfg.format {
        OutputFormat::Text => print_result(
            cfg,
            out,
            &snap,
            &original,
            response.algo,
            result,
            response.seconds,
        )?,
        OutputFormat::Json => {
            writeln!(
                out,
                "{}",
                response_json(&response, Some(&original)).render()
            )
            .map_err(werr)?;
        }
    }
    if let Some(dot) = &cfg.dot_path {
        write_dot_file(dot, &snap, &original, &[&result.community])?;
        if cfg.format == OutputFormat::Text {
            writeln!(out, "DOT written to {dot}").map_err(werr)?;
        }
    }
    Ok(())
}

/// Parse a batch query file: one comma-separated query per line, blank
/// lines and `#` comments skipped. Errors carry `file:line` context.
pub fn parse_query_file(path: &str, text: &str) -> Result<Vec<Vec<u64>>, EngineError> {
    let mut queries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        queries.push(
            parse_query_ids(line)
                .map_err(|e| EngineError::bad_param(format!("{path}:{}: {e}", i + 1)))?,
        );
    }
    if queries.is_empty() {
        return Err(EngineError::bad_param(format!(
            "{path}: contains no queries"
        )));
    }
    Ok(queries)
}

/// Sorted community members in original ids, elided to `--max-print`.
fn members_string(cfg: &CliConfig, original: &[u64], community: &[NodeId]) -> String {
    let mut members: Vec<u64> = community.iter().map(|&v| original[v as usize]).collect();
    members.sort_unstable();
    let shown = if cfg.max_print == 0 {
        members.len()
    } else {
        cfg.max_print.min(members.len())
    };
    let elided = if shown < members.len() {
        format!(" (+{} more)", members.len() - shown)
    } else {
        String::new()
    };
    format!("{:?}{elided}", &members[..shown])
}

/// One per-query text line (shared by the batch and update modes).
fn write_query_line<W: std::io::Write>(
    cfg: &CliConfig,
    out: &mut W,
    original: &[u64],
    i: usize,
    raw: &[u64],
    resp: &QueryResponse,
) -> std::io::Result<()> {
    match &resp.result {
        Ok(r) => writeln!(
            out,
            "query {i} {raw:?}: |C| = {}  DM = {:.6}  time = {:.4}s  members: {}{}",
            r.community.len(),
            r.density_modularity,
            resp.seconds,
            members_string(cfg, original, &r.community),
            if resp.cached { "  [cached]" } else { "" },
        ),
        Err(e) => writeln!(out, "query {i} {raw:?}: error: {e}"),
    }
}

/// The text-format throughput/cache footer (batch and update modes).
fn write_summary_lines<W: std::io::Write>(
    out: &mut W,
    report: &BatchReport,
) -> std::io::Result<()> {
    writeln!(
        out,
        "throughput: {:.1} queries/sec  wall {:.3}s  p50 {:.2}ms  p95 {:.2}ms  ok {}/{}",
        report.queries_per_sec,
        report.wall_seconds,
        report.p50_seconds * 1e3,
        report.p95_seconds * 1e3,
        report.succeeded(),
        report.responses.len()
    )?;
    writeln!(
        out,
        "cache: {} hits, {} misses  unique: {}/{}",
        report.cache_hits,
        report.cache_misses,
        report.unique_queries,
        report.responses.len()
    )?;
    writeln!(
        out,
        "plan: {}  groups: {} ({} queries)  shared-bfs reuses: {}  mirror-served: {}  skew: {:.2}",
        report.plan,
        report.groups,
        report.grouped_queries,
        report.shared_bfs_reuses,
        report.mirror_served,
        report.skew
    )
}

/// Batch execution through the engine: map every query, run them on
/// `cfg.threads` workers with deterministic output ordering, and print
/// per-query lines plus the throughput summary (text) or JSON-lines.
fn run_batch<W: std::io::Write>(
    cfg: &CliConfig,
    qpath: &str,
    engine: &Engine,
    original: &[u64],
    out: &mut W,
) -> Result<(), EngineError> {
    let text = std::fs::read_to_string(qpath).map_err(|e| EngineError::io(qpath, e))?;
    let raw_queries = parse_query_file(qpath, &text)?;
    let mut requests = Vec::with_capacity(raw_queries.len());
    for q in &raw_queries {
        requests.push(QueryRequest::new(map_queries(q, original).map_err(
            // 0-based "query N", matching the per-query output lines.
            |e| e.with_node_context(format!("{qpath}: query {}", requests.len())),
        )?));
    }
    let spec = algo_spec(cfg);
    let algo_name = spec.build()?.name();
    let report = engine.run_batch_planned(&spec, &requests, cfg.threads, cfg.plan)?;

    if cfg.format == OutputFormat::Json {
        // `serves_weighted`, not the bare flag: `--algo fpa-w` runs the
        // weighted objective even without `--weighted`.
        write!(
            out,
            "{}",
            report_jsonl(algo_name, spec.serves_weighted(), &report, Some(original))
        )
        .map_err(werr)?;
        return Ok(());
    }

    writeln!(
        out,
        "batch: {} queries, algo {}, {} thread{}",
        report.responses.len(),
        algo_name,
        cfg.threads,
        if cfg.threads == 1 { "" } else { "s" }
    )
    .map_err(werr)?;
    let snap = engine.snapshot();
    let g: &Graph = &snap;
    for ((i, raw), resp) in raw_queries.iter().enumerate().zip(&report.responses) {
        write_query_line(cfg, out, original, i, raw, resp).map_err(werr)?;
        if cfg.stats {
            if let Ok(r) = &resp.result {
                let l = g.internal_edges(&r.community);
                let vol = g.degree_sum(&r.community);
                let good = Goodness::from_counts(g.n(), r.community.len(), l, vol, g.m() as u64);
                writeln!(
                    out,
                    "  stats: conductance {:.4}  expansion {:.3}  cut-ratio {:.5}  int-density {:.4}  separability {:.3}",
                    good.conductance(),
                    good.expansion(),
                    good.cut_ratio(),
                    good.internal_density(),
                    good.separability()
                )
                .map_err(werr)?;
            }
        }
    }
    write_summary_lines(out, &report).map_err(werr)
}

/// One operation of a `--updates` script (original/file id space).
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateOp {
    /// `add u v [w]` — insert the edge; unseen ids create fresh nodes.
    /// The optional weight requires a weighted graph (`--weighted`);
    /// without one a plain `add` inserts at weight 1.
    Add(u64, u64, Option<f64>),
    /// `del u v` — remove an existing edge between known nodes.
    Del(u64, u64),
    /// `setw u v w` — update the weight of an existing edge (weighted
    /// graphs only).
    SetW(u64, u64, f64),
    /// `query id[,id...]` — answer against the graph as mutated so far.
    Query(Vec<u64>),
}

/// Parse a `--updates` script with the same strict-grammar discipline as
/// the JSON parser: blank lines and `#` comments are skipped, everything
/// else must be exactly `add u v [w]`, `del u v`, `setw u v w` or
/// `query id[,id...]`. Violations are [`EngineError::BadUpdate`]s
/// carrying the 1-based line number (exit code 7). Whether weight ops
/// are *admissible* (they need a weighted graph) is checked at execution
/// time, where the store is known.
pub fn parse_update_script(text: &str) -> Result<Vec<(usize, UpdateOp)>, EngineError> {
    let mut ops = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let op = tokens.next().expect("non-empty line has a first token");
        match op {
            "add" | "del" | "setw" => {
                let mut endpoint = |which: &str| -> Result<u64, EngineError> {
                    let tok = tokens.next().ok_or_else(|| {
                        EngineError::bad_update(
                            line_no,
                            format!("{op} needs two node ids (missing {which})"),
                        )
                    })?;
                    tok.parse().map_err(|_| {
                        EngineError::bad_update(line_no, format!("bad node id {tok:?}"))
                    })
                };
                let u = endpoint("u")?;
                let v = endpoint("v")?;
                // `add` takes an optional weight, `setw` a mandatory
                // one, `del` none.
                let mut weight = |mandatory: bool| -> Result<Option<f64>, EngineError> {
                    let Some(tok) = tokens.next() else {
                        if mandatory {
                            return Err(EngineError::bad_update(
                                line_no,
                                format!("{op} {u} {v} needs a weight"),
                            ));
                        }
                        return Ok(None);
                    };
                    let w: f64 = tok.parse().map_err(|_| {
                        EngineError::bad_update(line_no, format!("bad weight {tok:?}"))
                    })?;
                    if !crate::graph::weighted::valid_weight(w) {
                        return Err(EngineError::bad_update(
                            line_no,
                            format!("weight {w} {}", crate::graph::weighted::WEIGHT_CONSTRAINT),
                        ));
                    }
                    Ok(Some(w))
                };
                let w = match op {
                    "add" => weight(false)?,
                    "setw" => weight(true)?,
                    _ => None,
                };
                if let Some(extra) = tokens.next() {
                    return Err(EngineError::bad_update(
                        line_no,
                        format!("trailing token {extra:?} after {op} {u} {v}"),
                    ));
                }
                if u == v {
                    return Err(EngineError::bad_update(
                        line_no,
                        format!("self-loop {op} {u} {u} (simple graph)"),
                    ));
                }
                ops.push((
                    line_no,
                    match op {
                        "add" => UpdateOp::Add(u, v, w),
                        "del" => UpdateOp::Del(u, v),
                        _ => UpdateOp::SetW(u, v, w.expect("setw weight mandatory")),
                    },
                ));
            }
            "query" => {
                let ids = line[op.len()..].trim();
                if ids.is_empty() {
                    return Err(EngineError::bad_update(
                        line_no,
                        "query needs at least one node id",
                    ));
                }
                let ids = parse_query_ids(ids)
                    .map_err(|e| EngineError::bad_update(line_no, e.to_string()))?;
                ops.push((line_no, UpdateOp::Query(ids)));
            }
            other => {
                return Err(EngineError::bad_update(
                    line_no,
                    format!("unknown op {other:?} (expected add, del, setw or query)"),
                ))
            }
        }
    }
    Ok(ops)
}

/// Dense id for original id `id`, creating a fresh store node on first
/// sight (the `add` path may grow the graph).
fn resolve_or_create(
    engine: &Engine,
    index: &mut HashMap<u64, NodeId>,
    original: &mut Vec<u64>,
    id: u64,
) -> NodeId {
    *index.entry(id).or_insert_with(|| {
        let dense = engine.add_node();
        debug_assert_eq!(dense as usize, original.len(), "id spaces in lockstep");
        original.push(id);
        dense
    })
}

/// Live-update execution: apply the script in order against the
/// engine's store. Mutations land in the [`GraphStore`] **without
/// snapshotting** — a run of consecutive `add`/`del`/`setw` lines
/// coalesces into dirty shard versions, and the CSR is recompiled (dirty
/// shards only) exactly when the next `query` line forces a read; a
/// script ending in mutations never pays a final rebuild. Each `query`
/// pins the then-current snapshot (re-opening its session only when the
/// version moved) and consults the shard-scoped cache, so a repeated
/// query with no intervening update is a byte-identical cache hit while
/// updates invalidate exactly the cached answers whose shards they
/// touched. Ends with the batch-style summary carrying the cache
/// hit/miss counters (and, in JSON, the store's rebuild counters).
///
/// [`GraphStore`]: dmcs_graph::GraphStore
fn run_updates<W: std::io::Write>(
    cfg: &CliConfig,
    upath: &str,
    engine: &Engine,
    mut original: Vec<u64>,
    out: &mut W,
) -> Result<(), EngineError> {
    let text = std::fs::read_to_string(upath).map_err(|e| EngineError::io(upath, e))?;
    let ops = parse_update_script(&text)?;
    if ops.is_empty() {
        return Err(EngineError::bad_param(format!(
            "{upath}: contains no operations"
        )));
    }
    let spec = algo_spec(cfg);
    let algo_name = spec.build()?.name();
    let mut index: HashMap<u64, NodeId> = original
        .iter()
        .enumerate()
        .map(|(i, &o)| (o, i as NodeId))
        .collect();

    let mut session: Option<Session> = None;
    // Mirror-served count survives re-pins: each fresh session starts
    // its counter at zero, so fold the old one in before replacing it.
    let mut mirrored: u64 = 0;
    let mut responses: Vec<QueryResponse> = Vec::new();
    let start = Instant::now();
    for (line_no, op) in &ops {
        match op {
            UpdateOp::Add(a, b, w) => {
                if w.is_some() && !engine.store().is_weighted() {
                    return Err(EngineError::bad_update(
                        *line_no,
                        format!("weighted add {a} {b} requires --weighted (graph has no weights)"),
                    ));
                }
                let u = resolve_or_create(engine, &mut index, &mut original, *a);
                let v = resolve_or_create(engine, &mut index, &mut original, *b);
                let inserted = if engine.store().is_weighted() {
                    engine.insert_edge_w(u, v, w.unwrap_or(1.0))
                } else {
                    engine.insert_edge(u, v)
                };
                if !inserted {
                    return Err(EngineError::bad_update(
                        *line_no,
                        format!("edge {a} {b} already exists"),
                    ));
                }
                if cfg.format == OutputFormat::Text {
                    let weight_note = w.map_or(String::new(), |w| format!(" (weight {w})"));
                    writeln!(
                        out,
                        "update add {a} {b}{weight_note}: {} nodes, {} edges (version {})",
                        engine.store().n(),
                        engine.store().m(),
                        engine.version()
                    )
                    .map_err(werr)?;
                }
            }
            UpdateOp::SetW(a, b, w) => {
                if !engine.store().is_weighted() {
                    return Err(EngineError::bad_update(
                        *line_no,
                        format!("setw {a} {b} requires --weighted (graph has no weights)"),
                    ));
                }
                let known = |id: u64| -> Result<NodeId, EngineError> {
                    index.get(&id).copied().ok_or_else(|| {
                        EngineError::bad_update(*line_no, format!("unknown node {id}"))
                    })
                };
                let (u, v) = (known(*a)?, known(*b)?);
                let Some(old) = engine.set_weight(u, v, *w) else {
                    return Err(EngineError::bad_update(
                        *line_no,
                        format!("edge {a} {b} does not exist"),
                    ));
                };
                if cfg.format == OutputFormat::Text {
                    writeln!(
                        out,
                        "update setw {a} {b} {w} (was {old}): version {}",
                        engine.version()
                    )
                    .map_err(werr)?;
                }
            }
            UpdateOp::Del(a, b) => {
                let known = |id: u64| -> Result<NodeId, EngineError> {
                    index.get(&id).copied().ok_or_else(|| {
                        EngineError::bad_update(*line_no, format!("unknown node {id}"))
                    })
                };
                let (u, v) = (known(*a)?, known(*b)?);
                if !engine.remove_edge(u, v) {
                    return Err(EngineError::bad_update(
                        *line_no,
                        format!("edge {a} {b} does not exist"),
                    ));
                }
                if cfg.format == OutputFormat::Text {
                    writeln!(
                        out,
                        "update del {a} {b}: {} nodes, {} edges (version {})",
                        engine.store().n(),
                        engine.store().m(),
                        engine.version()
                    )
                    .map_err(werr)?;
                }
            }
            UpdateOp::Query(ids) => {
                let nodes: Vec<NodeId> = ids
                    .iter()
                    .map(|&raw| {
                        index.get(&raw).copied().ok_or_else(|| {
                            EngineError::unknown_node(raw)
                                .with_node_context(format!("{upath}:{line_no}"))
                        })
                    })
                    .collect::<Result<_, _>>()?;
                // Re-pin only when an update moved the store version;
                // between updates the session (and its workspace) is
                // reused just like a batch worker's.
                let fresh = session
                    .as_ref()
                    .is_none_or(|s| s.snapshot().version() != engine.version());
                if fresh {
                    if let Some(s) = session.take() {
                        mirrored += s.mirror_served();
                    }
                    session = Some(plan_session(engine, cfg, &spec)?);
                }
                let resp = session
                    .as_mut()
                    .expect("session opened above")
                    .query(&QueryRequest::new(nodes))?;
                match cfg.format {
                    OutputFormat::Text => {
                        write_query_line(cfg, out, &original, responses.len(), ids, &resp)
                            .map_err(werr)?
                    }
                    OutputFormat::Json => {
                        writeln!(out, "{}", response_json(&resp, Some(&original)).render())
                            .map_err(werr)?
                    }
                }
                responses.push(resp);
            }
        }
    }
    let wall_seconds = start.elapsed().as_secs_f64();
    let hits = responses.iter().filter(|r| r.cached).count();
    let misses = responses.len() - hits;
    let unique = responses.len();
    mirrored += session.as_ref().map_or(0, |s| s.mirror_served());
    // Skew of the snapshot the queries actually saw: read it off the
    // last pinned session. Falling through to `engine.snapshot()` would
    // force a rebuild the script's queries never paid for when the
    // script ends on a mutation run (and the summary would report stats
    // no query observed).
    let skew = match &session {
        Some(s) => QueryPlan::choose(cfg.plan, s.snapshot()).skew,
        None => QueryPlan::choose(cfg.plan, &engine.snapshot()).skew,
    };
    let mut report = BatchReport::from_responses(responses, wall_seconds, unique, hits, misses);
    report.mirror_served = mirrored;
    report.skew = skew;
    match cfg.format {
        OutputFormat::Json => {
            // The updates-mode summary additionally carries the store's
            // rebuild counters: how many snapshot recompilations the
            // script's query lines forced (coalesced mutation runs pay
            // one), and how many shard segments they actually touched.
            let mut line = summary_json(algo_name, spec.serves_weighted(), &report);
            if let Json::Obj(members) = &mut line {
                let rb = engine.rebuild_stats();
                members.push(("shards".to_string(), Json::UInt(rb.shards as u64)));
                members.push(("rebuilds".to_string(), Json::UInt(rb.rebuilds)));
                members.push(("shards_rebuilt".to_string(), Json::UInt(rb.shards_rebuilt)));
                members.push(("shards_reused".to_string(), Json::UInt(rb.shards_reused)));
            }
            writeln!(out, "{}", line.render()).map_err(werr)
        }
        OutputFormat::Text => write_summary_lines(out, &report).map_err(werr),
    }
}

/// Parsed `dmcs serve` command line: the shared graph/algorithm flags
/// plus the daemon's listener configuration.
#[derive(Debug, Clone)]
pub struct ServeCli {
    /// Graph and algorithm options (the query/batch members are unused
    /// — clients send queries over the socket).
    pub cfg: CliConfig,
    /// Listeners, admission cap and framing limit.
    pub server: ServerConfig,
}

/// Usage text for `dmcs serve --help` and serve parse errors.
pub fn serve_usage() -> String {
    format!(
        "\
dmcs serve — long-lived socket daemon for community-search queries

USAGE:
    dmcs serve [--graph <edge-list> | --demo] (--unix <path> | --tcp <addr>) [options]

LISTENERS (at least one):
    --unix <path>     bind a unix stream socket at <path> (a stale
                      socket file is replaced; unlinked on shutdown)
    --tcp <addr>      bind a TCP listener, e.g. 127.0.0.1:7171
                      (port 0 picks an ephemeral port, printed on start)

OPTIONS:
    --graph <path>    SNAP-format edge list (`u v` per line, # comments)
    --demo            use the embedded Zachary Karate Club instead
    --weighted        input has strict `u v w` lines; serve the weighted
                      density modularity (--demo gets unit weights)
    --algo <name>     algorithm label (default: fpa), one of:
{algos}    --k <int>         k for the algorithms marked [uses --k] (default: 3)
    --no-pruning      disable FPA's layer-based pruning
    --shards <n>      partition the store's node-id space into n shards
                      (default: 16; see `dmcs --help`)
    --layout <policy> snapshot compute-mirror layout: identity (default),
                      degree, bfs or rcm (see `dmcs --help`)
    --queue-cap <n>   bounded admission: at most n queries/updates in
                      flight across all connections; requests past the
                      cap get a typed overload error line, wire code 8
                      (default: 64)
    --max-line-bytes <n>  longest accepted request line; longer lines
                      get a typed error line, wire code 9
                      (default: 65536)
    --help            show this text

WIRE PROTOCOL (one JSON object per line; see README \"Serving\"):
    {{\"op\":\"query\",\"nodes\":[1,2],\"tag\":\"t\",\"k\":0}}   -> response / topk line
    {{\"op\":\"update\",\"action\":\"add\",\"u\":1,\"v\":2}}    -> update line
    {{\"op\":\"repin\"}}                                 -> pin the current epoch
    {{\"op\":\"stats\"}}                                 -> server counters
    {{\"op\":\"shutdown\"}}                              -> drain and exit

Every connection is pinned to the graph epoch current at accept time
until it sends repin. Replies carry protocol_version/server fields;
errors carry the exit-code analog (5 unknown node, 7 bad update,
8 overloaded, 9 bad request). SIGTERM drains gracefully.

EXIT CODES:
    0 clean shutdown, 2 bad flags or parameters, 3 unknown algorithm,
    4 I/O failure (bind or socket error)
",
        algos = registry::algo_help()
    )
}

/// Parse `dmcs serve` arguments (without the program name and the
/// leading `serve`). `Ok(None)` means `--help`.
pub fn parse_serve(args: &[String]) -> Result<Option<ServeCli>, EngineError> {
    let mut cfg = CliConfig::default();
    let mut server = ServerConfig::default();
    let mut demo = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<&String, EngineError> {
            it.next()
                .ok_or_else(|| EngineError::bad_param(format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--graph" => cfg.graph_path = Some(value("--graph")?.clone()),
            "--demo" => demo = true,
            "--weighted" => cfg.weighted = true,
            "--algo" => cfg.algo = value("--algo")?.to_lowercase(),
            "--k" => {
                cfg.k = value("--k")?
                    .parse()
                    .map_err(|_| EngineError::bad_param("bad --k value"))?;
            }
            "--no-pruning" => cfg.no_pruning = true,
            "--shards" => {
                cfg.shards = value("--shards")?
                    .parse()
                    .map_err(|_| EngineError::bad_param("bad --shards value"))?;
                if cfg.shards == 0 {
                    return Err(EngineError::bad_param("--shards must be at least 1"));
                }
            }
            "--layout" => {
                cfg.layout = value("--layout")?.parse().map_err(|e: String| {
                    EngineError::bad_param(format!("bad --layout value: {e}"))
                })?;
            }
            "--unix" => server.unix_path = Some(value("--unix")?.clone()),
            "--tcp" => server.tcp_addr = Some(value("--tcp")?.clone()),
            "--queue-cap" => {
                server.queue_cap = value("--queue-cap")?
                    .parse()
                    .map_err(|_| EngineError::bad_param("bad --queue-cap value"))?;
            }
            "--max-line-bytes" => {
                server.max_line_bytes = value("--max-line-bytes")?
                    .parse()
                    .map_err(|_| EngineError::bad_param("bad --max-line-bytes value"))?;
            }
            other => {
                return Err(EngineError::bad_param(format!(
                    "unknown serve argument {other:?}"
                )))
            }
        }
    }
    if demo && cfg.graph_path.is_some() {
        return Err(EngineError::bad_param(
            "--demo and --graph are mutually exclusive",
        ));
    }
    if !demo && cfg.graph_path.is_none() {
        return Err(EngineError::bad_param(
            "either --graph or --demo is required",
        ));
    }
    if server.unix_path.is_none() && server.tcp_addr.is_none() {
        return Err(EngineError::bad_param(
            "serve needs at least one listener (--unix <path> and/or --tcp <addr>)",
        ));
    }
    validate_weighted_algo(&cfg)?;
    Ok(Some(ServeCli { cfg, server }))
}

/// Load the graph, bind the listeners and serve until drained (a
/// `shutdown` op or SIGTERM). Startup and shutdown banners go to `out`.
pub fn run_serve<W: std::io::Write>(serve: &ServeCli, out: &mut W) -> Result<(), EngineError> {
    let cfg = &serve.cfg;
    // Fail fast on an unregistered --algo before touching the graph.
    let algo_name = algo_spec(cfg).build()?.name();
    let (g, original) = load_graph(cfg)?;
    let engine = Engine::from_graph_sharded(g, cfg.shards);
    engine.store().set_layout_policy(cfg.layout);
    let snap = engine.snapshot();
    writeln!(
        out,
        "serving {} ({} nodes, {} edges{}) with {algo_name}",
        if cfg.graph_path.is_some() {
            cfg.graph_path.as_deref().unwrap()
        } else {
            "demo graph"
        },
        snap.n(),
        snap.m(),
        if cfg.weighted { ", weighted" } else { "" },
    )
    .map_err(werr)?;
    let server = Server::bind(engine, algo_spec(cfg), original, &serve.server)?;
    if let Some(path) = server.unix_path() {
        writeln!(out, "listening on unix socket {}", path.display()).map_err(werr)?;
    }
    if let Some(addr) = server.tcp_addr() {
        writeln!(out, "listening on tcp {addr}").map_err(werr)?;
    }
    out.flush().map_err(werr)?;
    #[cfg(unix)]
    crate::engine::install_sigterm_drain();
    let stats = server.run();
    writeln!(
        out,
        "drained: {} connections, {} requests served (cache: {} hits, {} misses)",
        stats.connections, stats.served, stats.cache_hits, stats.cache_misses
    )
    .map_err(werr)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::output::Json;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_a_full_command_line() {
        let cfg = parse(&args(
            "--graph g.txt --query 1,2,3 --algo nca --k 4 --stats --max-print 0 --format json",
        ))
        .unwrap()
        .unwrap();
        assert_eq!(cfg.graph_path.as_deref(), Some("g.txt"));
        assert_eq!(cfg.query, vec![1, 2, 3]);
        assert_eq!(cfg.algo, "nca");
        assert_eq!(cfg.k, 4);
        assert!(cfg.stats);
        assert_eq!(cfg.max_print, 0);
        assert_eq!(cfg.format, OutputFormat::Json);
        assert_eq!(cfg.shards, crate::graph::DEFAULT_SHARD_COUNT);
    }

    #[test]
    fn shards_flag_parses_and_rejects_zero() {
        let cfg = parse(&args("--demo --query 0 --shards 4"))
            .unwrap()
            .unwrap();
        assert_eq!(cfg.shards, 4);
        assert!(parse(&args("--demo --query 0 --shards 0")).is_err());
        assert!(parse(&args("--demo --query 0 --shards nope")).is_err());
        let serve = parse_serve(&args("--demo --tcp 127.0.0.1:0 --shards 8"))
            .unwrap()
            .unwrap();
        assert_eq!(serve.cfg.shards, 8);
        assert!(parse_serve(&args("--demo --tcp 127.0.0.1:0 --shards 0")).is_err());
    }

    #[test]
    fn help_short_circuits() {
        assert_eq!(parse(&args("--help")).unwrap(), None);
        assert_eq!(parse(&args("--graph g --query 1 -h")).unwrap(), None);
    }

    #[test]
    fn rejects_bad_input_with_exit_code_2() {
        for bad in [
            "--query 1",
            "--demo",
            "--demo --graph g --query 1",
            "--demo --query x",
            "--demo --query 1 --k nope",
            "--wat",
            "--graph",
            "--demo --query 1 --format yaml",
        ] {
            let err = parse(&args(bad)).unwrap_err();
            assert!(matches!(err, EngineError::BadParam { .. }), "{bad}: {err}");
            assert_eq!(err.exit_code(), 2, "{bad}");
        }
    }

    #[test]
    fn query_id_hygiene() {
        // Duplicates are named in the error.
        let err = parse(&args("--demo --query 1,2,1"))
            .unwrap_err()
            .to_string();
        assert!(err.contains("duplicate query id 1"), "{err}");
        // Trailing comma.
        let err = parse(&[String::from("--demo"), "--query".into(), "1,2,".into()])
            .unwrap_err()
            .to_string();
        assert!(err.contains("empty query id"), "{err}");
        // Doubled comma.
        let err = parse(&[String::from("--demo"), "--query".into(), "1,,2".into()])
            .unwrap_err()
            .to_string();
        assert!(err.contains("empty query id"), "{err}");
        // Non-numeric token is still named.
        let err = parse(&args("--demo --query 1,x")).unwrap_err().to_string();
        assert!(err.contains("bad query id \"x\""), "{err}");
        // Plain lists still parse (with whitespace tolerance).
        let ids = parse_query_ids("3, 1 ,2").unwrap();
        assert_eq!(ids, vec![3, 1, 2]);
    }

    #[test]
    fn out_of_range_query_id_is_a_typed_unknown_node() {
        let cfg = parse(&args("--demo --query 999")).unwrap().unwrap();
        let mut out = Vec::new();
        let err = run(&cfg, &mut out).unwrap_err();
        assert!(
            matches!(err, EngineError::UnknownNode { id: 999, .. }),
            "{err}"
        );
        assert_eq!(err.exit_code(), 5);
        assert!(
            err.to_string()
                .contains("query node 999 does not appear in the graph"),
            "{err}"
        );
    }

    #[test]
    fn unknown_algo_is_typed_with_a_suggestion() {
        let cfg = parse(&args("--demo --query 0 --algo fpa-dgm"))
            .unwrap()
            .unwrap();
        let mut out = Vec::new();
        let err = run(&cfg, &mut out).unwrap_err();
        assert_eq!(err.exit_code(), 3);
        let text = err.to_string();
        assert!(text.contains("did you mean \"fpa-dmg\"?"), "{text}");
        assert!(text.contains("valid: fpa"), "{text}");
    }

    #[test]
    fn batch_flag_rules() {
        assert!(parse(&args("--demo --queries q.txt")).is_ok());
        assert!(parse(&args("--demo --queries q.txt --threads 4")).is_ok());
        assert!(
            parse(&args("--demo --query 1 --queries q.txt")).is_err(),
            "mutually exclusive"
        );
        assert!(
            parse(&args("--demo --query 1 --threads 2")).is_err(),
            "--threads needs --queries"
        );
        assert!(parse(&args("--demo --queries q.txt --threads x")).is_err());
        assert!(parse(&args("--demo --queries q.txt --top-k 2")).is_err());
        assert!(parse(&args("--demo --queries q.txt --dot o.dot")).is_err());
        // Weighted batches are first-class: --weighted composes with
        // --queries and --threads.
        assert!(parse(&args("--graph g --queries q.txt --weighted")).is_ok());
        assert!(parse(&args(
            "--graph g --queries q.txt --weighted --threads 4 --format json"
        ))
        .is_ok());
    }

    #[test]
    fn zero_threads_is_rejected_by_the_engine() {
        // Parse accepts --threads 0; the engine's BatchRunner validates
        // it (EngineError::BadParam, exit code 2).
        let dir = std::env::temp_dir().join("dmcs_cli_threads0");
        std::fs::create_dir_all(&dir).unwrap();
        let qfile = dir.join("q.txt");
        std::fs::write(&qfile, "0\n").unwrap();
        let cfg = parse(&args(&format!(
            "--demo --queries {} --threads 0",
            qfile.display()
        )))
        .unwrap()
        .unwrap();
        let mut out = Vec::new();
        let err = run(&cfg, &mut out).unwrap_err();
        assert!(matches!(err, EngineError::BadParam { .. }), "{err}");
        assert!(err.to_string().contains("thread count"), "{err}");
    }

    #[test]
    fn query_file_parsing() {
        let qs = parse_query_file("q", "# header\n0\n\n1,2\n 3 \n").unwrap();
        assert_eq!(qs, vec![vec![0], vec![1, 2], vec![3]]);
        let err = parse_query_file("q", "0\n1,1\n").unwrap_err().to_string();
        assert!(err.contains("q:2"), "line number in {err}");
        assert!(parse_query_file("q", "# only comments\n").is_err());
    }

    #[test]
    fn batch_end_to_end_on_demo() {
        let dir = std::env::temp_dir().join("dmcs_cli_batch");
        std::fs::create_dir_all(&dir).unwrap();
        let qfile = dir.join("queries.txt");
        std::fs::write(&qfile, "# three queries\n0\n33\n0,33\n").unwrap();
        let cfg = parse(&args(&format!(
            "--demo --queries {} --threads 2 --stats",
            qfile.display()
        )))
        .unwrap()
        .unwrap();
        let mut out = Vec::new();
        run(&cfg, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("graph memory:"), "{text}");
        assert!(
            text.contains("batch: 3 queries, algo FPA, 2 threads"),
            "{text}"
        );
        // --stats adds a per-query goodness line in batch mode too.
        assert_eq!(text.matches("stats: conductance").count(), 3, "{text}");
        assert!(text.contains("query 0 [0]:"), "{text}");
        assert!(text.contains("query 2 [0, 33]:"), "{text}");
        assert!(text.contains("queries/sec"), "{text}");
        assert!(text.contains("ok 3/3"), "{text}");

        // Batch output is identical at any thread count.
        let strip_timings = |s: &str| -> String {
            s.lines()
                .filter(|l| l.starts_with("query"))
                .map(|l| l.split("  time =").next().unwrap().to_string())
                .collect::<Vec<_>>()
                .join("\n")
        };
        let cfg1 = CliConfig {
            threads: 1,
            ..cfg.clone()
        };
        let mut out1 = Vec::new();
        run(&cfg1, &mut out1).unwrap();
        assert_eq!(
            strip_timings(&text),
            strip_timings(&String::from_utf8(out1).unwrap())
        );
    }

    #[test]
    fn batch_json_output_is_valid_and_complete() {
        let dir = std::env::temp_dir().join("dmcs_cli_batch_json");
        std::fs::create_dir_all(&dir).unwrap();
        let qfile = dir.join("queries.txt");
        std::fs::write(&qfile, "0\n33\n0,33\n").unwrap();
        let cfg = parse(&args(&format!(
            "--demo --queries {} --threads 2 --format json",
            qfile.display()
        )))
        .unwrap()
        .unwrap();
        let mut out = Vec::new();
        run(&cfg, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "3 responses + summary: {text}");
        for (i, line) in lines.iter().enumerate() {
            let v = Json::parse(line).unwrap_or_else(|e| panic!("line {i}: {e}\n{line}"));
            if i < 3 {
                assert_eq!(v.get("type").unwrap().as_str(), Some("response"));
                assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
                assert_eq!(v.get("algo").unwrap().as_str(), Some("FPA"));
            } else {
                assert_eq!(v.get("type").unwrap().as_str(), Some("summary"));
                assert_eq!(v.get("queries").unwrap().as_f64(), Some(3.0));
                assert_eq!(v.get("ok").unwrap().as_f64(), Some(3.0));
            }
        }
        // The multi-node query echoes both ids.
        let q3 = Json::parse(lines[2]).unwrap();
        let ids: Vec<f64> = q3
            .get("query")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|x| x.as_f64().unwrap())
            .collect();
        assert_eq!(ids, vec![0.0, 33.0]);
    }

    #[test]
    fn single_query_json_output() {
        let cfg = parse(&args("--demo --query 0 --format json"))
            .unwrap()
            .unwrap();
        let mut out = Vec::new();
        run(&cfg, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), 1, "exactly one JSON line: {text}");
        let v = Json::parse(text.trim()).unwrap();
        assert_eq!(v.get("algo").unwrap().as_str(), Some("FPA"));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert!(v.get("dm").unwrap().as_f64().unwrap().is_finite());
    }

    #[test]
    fn top_k_json_output_tags_rounds() {
        let cfg = parse(&args("--demo --query 0 --top-k 2 --format json"))
            .unwrap()
            .unwrap();
        let mut out = Vec::new();
        run(&cfg, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let first = Json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(first.get("tag").unwrap().as_str(), Some("round-1"));
    }

    #[test]
    fn batch_reports_per_query_errors_without_aborting() {
        let dir = std::env::temp_dir().join("dmcs_cli_batch_err");
        std::fs::create_dir_all(&dir).unwrap();
        // Two components: queries spanning them fail per-query.
        let gfile = dir.join("g.txt");
        std::fs::write(&gfile, "0 1\n1 2\n0 2\n5 6\n6 7\n5 7\n").unwrap();
        let qfile = dir.join("q.txt");
        std::fs::write(&qfile, "0\n0,5\n5\n").unwrap();
        let cfg = parse(&args(&format!(
            "--graph {} --queries {}",
            gfile.display(),
            qfile.display()
        )))
        .unwrap()
        .unwrap();
        let mut out = Vec::new();
        run(&cfg, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("query 1 [0, 5]: error:"), "{text}");
        assert!(text.contains("ok 2/3"), "{text}");
    }

    #[test]
    fn batch_unknown_id_is_a_typed_unknown_node() {
        let dir = std::env::temp_dir().join("dmcs_cli_batch_badid");
        std::fs::create_dir_all(&dir).unwrap();
        let qfile = dir.join("q.txt");
        std::fs::write(&qfile, "0\n999\n").unwrap();
        let cfg = parse(&args(&format!("--demo --queries {}", qfile.display())))
            .unwrap()
            .unwrap();
        let mut out = Vec::new();
        let err = run(&cfg, &mut out).unwrap_err();
        assert!(
            matches!(err, EngineError::UnknownNode { id: 999, .. }),
            "{err}"
        );
        assert_eq!(err.exit_code(), 5);
        // The error names the file and the (0-based) query index, matching
        // the per-query output lines of a successful batch.
        let text = err.to_string();
        assert!(text.contains("q.txt: query 1:"), "{text}");
        assert!(text.contains("999"), "{text}");
    }

    #[test]
    fn usage_lists_every_registered_algorithm_and_the_exit_codes() {
        let text = usage();
        for name in registry::names() {
            assert!(text.contains(name), "{name} missing from usage");
        }
        assert!(text.contains("EXIT CODES:"), "{text}");
        assert!(text.contains("--format"), "{text}");
    }

    #[test]
    fn all_algo_labels_resolve() {
        for name in [
            "fpa",
            "nca",
            "fpa-dmg",
            "nca-dr",
            "exact",
            "bnb",
            "kc",
            "kt",
            "kecc",
            "highcore",
            "hightruss",
            "ls",
            "lpa",
            "ppr",
        ] {
            let cfg = CliConfig {
                algo: name.into(),
                ..Default::default()
            };
            assert!(algo_spec(&cfg).build().is_ok(), "{name} should resolve");
        }
        let bad = CliConfig {
            algo: "zeus".into(),
            ..Default::default()
        };
        assert!(matches!(
            algo_spec(&bad).build(),
            Err(EngineError::UnknownAlgo { .. })
        ));
    }

    #[test]
    fn demo_end_to_end() {
        let cfg = parse(&args("--demo --query 0 --algo fpa --stats"))
            .unwrap()
            .unwrap();
        let mut out = Vec::new();
        run(&cfg, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("34 nodes, 78 edges"), "{text}");
        assert!(text.contains("FPA"));
        assert!(text.contains("conductance"));
    }

    #[test]
    fn file_end_to_end_with_sparse_ids() {
        // Two triangles with sparse original ids joined by a bridge.
        let dir = std::env::temp_dir().join("dmcs_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.txt");
        std::fs::write(
            &path,
            "# toy\n100 200\n200 300\n100 300\n300 4000\n4000 5000\n5000 6000\n4000 6000\n",
        )
        .unwrap();
        let cfg = parse(&args(&format!(
            "--graph {} --query 100 --algo nca",
            path.display()
        )))
        .unwrap()
        .unwrap();
        let mut out = Vec::new();
        run(&cfg, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.contains("[100, 200, 300]"),
            "community reported in original ids: {text}"
        );
    }

    #[test]
    fn flag_combination_rules() {
        assert!(parse(&args("--demo --query 0 --weighted --algo kc")).is_err());
        // --top-k routes through the registry now: it composes with
        // --weighted and any registered algorithm.
        assert!(parse(&args("--demo --query 0 --weighted --top-k 2")).is_ok());
        assert!(parse(&args("--demo --query 0 --top-k 2 --algo nca")).is_ok());
        assert!(parse(&args("--demo --query 0 --top-k 2")).is_ok());
        assert!(parse(&args("--graph g --query 0 --weighted --algo nca")).is_ok());
        // The canonical weighted labels and the demo graph are fine too.
        assert!(parse(&args("--graph g --query 0 --weighted --algo fpa-w")).is_ok());
        assert!(parse(&args("--demo --query 0 --weighted")).is_ok());
        // The weight-aware rejection names the supported labels.
        let err = parse(&args("--demo --query 0 --weighted --algo louvain"))
            .unwrap_err()
            .to_string();
        assert!(
            err.contains("weight-aware: fpa, nca, fpa-w, nca-w"),
            "{err}"
        );
        // An unknown label is deferred to run() for the exit-3 error.
        assert!(parse(&args("--demo --query 0 --weighted --algo zeus")).is_ok());
    }

    #[test]
    fn weighted_end_to_end() {
        let dir = std::env::temp_dir().join("dmcs_cli_weighted");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("w.txt");
        // Heavy triangle 1-2-3, light triangle 4-5-6, light bridge.
        std::fs::write(
            &path,
            "1 2 5.0\n2 3 5.0\n1 3 5.0\n4 5 1.0\n5 6 1.0\n4 6 1.0\n3 4 0.5\n",
        )
        .unwrap();
        let cfg = parse(&args(&format!(
            "--graph {} --query 1 --weighted --algo fpa",
            path.display()
        )))
        .unwrap()
        .unwrap();
        let mut out = Vec::new();
        run(&cfg, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("W-FPA"), "{text}");
        assert!(text.contains("total weight 18"), "{text}");
        assert!(text.contains("[1, 2, 3]"), "heavy triangle found: {text}");

        // The weighted path renders JSON too.
        let cfg_json = CliConfig {
            format: OutputFormat::Json,
            ..cfg
        };
        let mut out = Vec::new();
        run(&cfg_json, &mut out).unwrap();
        let v = Json::parse(String::from_utf8(out).unwrap().trim()).unwrap();
        assert_eq!(v.get("algo").unwrap().as_str(), Some("W-FPA"));
        let ids: Vec<f64> = v
            .get("community")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|x| x.as_f64().unwrap())
            .collect();
        assert_eq!(ids, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn weighted_batch_end_to_end() {
        // --weighted + --queries + --threads + --format json: the full
        // serving stack (registry fpa-w, sessions, dedup, cache) on a
        // weighted graph.
        let dir = std::env::temp_dir().join("dmcs_cli_weighted_batch");
        std::fs::create_dir_all(&dir).unwrap();
        let gfile = dir.join("w.txt");
        std::fs::write(
            &gfile,
            "1 2 5.0\n2 3 5.0\n1 3 5.0\n4 5 1.0\n5 6 1.0\n4 6 1.0\n3 4 0.5\n",
        )
        .unwrap();
        let qfile = dir.join("q.txt");
        // Four queries, one duplicate — dedup must fire.
        std::fs::write(&qfile, "1\n4\n1\n2,3\n").unwrap();
        let cfg = parse(&args(&format!(
            "--graph {} --weighted --queries {} --threads 2 --format json",
            gfile.display(),
            qfile.display()
        )))
        .unwrap()
        .unwrap();
        let mut out = Vec::new();
        run(&cfg, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5, "4 responses + summary: {text}");
        assert_eq!(lines[0], lines[2], "deduped repeat answers identically");
        for line in &lines[..4] {
            let v = Json::parse(line).unwrap();
            assert_eq!(v.get("algo").unwrap().as_str(), Some("W-FPA"), "{line}");
            assert_eq!(v.get("ok").unwrap().as_bool(), Some(true), "{line}");
        }
        // Query 1 lives in the heavy triangle.
        let first = Json::parse(lines[0]).unwrap();
        let comm: Vec<u64> = first
            .get("community")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|x| x.as_u64().unwrap())
            .collect();
        assert_eq!(comm, vec![1, 2, 3]);
        let summary = Json::parse(lines[4]).unwrap();
        assert_eq!(summary.get("type").unwrap().as_str(), Some("summary"));
        assert_eq!(summary.get("algo").unwrap().as_str(), Some("W-FPA"));
        assert_eq!(summary.get("weighted").unwrap().as_bool(), Some(true));
        assert_eq!(summary.get("unique").unwrap().as_u64(), Some(3), "{text}");

        // Text mode works too, with the weighted header.
        let cfg_text = CliConfig {
            format: OutputFormat::Text,
            ..cfg
        };
        let mut out = Vec::new();
        run(&cfg_text, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("total weight 18"), "{text}");
        assert!(
            text.contains("batch: 4 queries, algo W-FPA, 2 threads"),
            "{text}"
        );
        assert!(text.contains("ok 4/4"), "{text}");
    }

    #[test]
    fn weighted_updates_end_to_end_with_setw() {
        let dir = std::env::temp_dir().join("dmcs_cli_weighted_updates");
        std::fs::create_dir_all(&dir).unwrap();
        let gfile = dir.join("w.txt");
        // Heavy triangle 1-2-3, light triangle 4-5-6, light bridge 3-4.
        std::fs::write(
            &gfile,
            "1 2 5.0\n2 3 5.0\n1 3 5.0\n4 5 1.0\n5 6 1.0\n4 6 1.0\n3 4 0.5\n",
        )
        .unwrap();
        let ufile = dir.join("script.txt");
        // query; repeat (hit); weight-only update; re-query (recompute —
        // the massive bridge now pulls 3 into 4's community); weighted
        // add of a brand-new node.
        std::fs::write(
            &ufile,
            "query 4\nquery 4\nsetw 3 4 50.0\nquery 4\nadd 7 4 9.0\nquery 7\n",
        )
        .unwrap();
        let cfg = parse(&args(&format!(
            "--graph {} --weighted --updates {} --format json",
            gfile.display(),
            ufile.display()
        )))
        .unwrap()
        .unwrap();
        let mut out = Vec::new();
        run(&cfg, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5, "4 responses + summary: {text}");
        assert_eq!(lines[0], lines[1], "repeat before setw: cache hit");
        assert_ne!(lines[1], lines[2], "weight change moved the epoch");
        let community = |line: &str| -> Vec<u64> {
            Json::parse(line)
                .unwrap()
                .get("community")
                .unwrap()
                .as_arr()
                .unwrap()
                .iter()
                .map(|x| x.as_u64().unwrap())
                .collect()
        };
        assert!(
            community(lines[2]).contains(&3),
            "heavy bridge pulls 3 in: {text}"
        );
        assert!(
            community(lines[3]).contains(&7),
            "new weighted node: {text}"
        );
        let summary = Json::parse(lines[4]).unwrap();
        assert_eq!(summary.get("weighted").unwrap().as_bool(), Some(true));
        assert_eq!(summary.get("cache_hits").unwrap().as_u64(), Some(1));
        assert_eq!(summary.get("cache_misses").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn weight_ops_on_unweighted_graphs_are_typed_errors() {
        let dir = std::env::temp_dir().join("dmcs_cli_weight_ops_err");
        std::fs::create_dir_all(&dir).unwrap();
        let run_script = |script: &str| -> EngineError {
            let ufile = dir.join("s.txt");
            std::fs::write(&ufile, script).unwrap();
            let cfg = parse(&args(&format!("--demo --updates {}", ufile.display())))
                .unwrap()
                .unwrap();
            run(&cfg, &mut Vec::new()).unwrap_err()
        };
        // setw without --weighted: BadUpdate (exit 7) naming the line.
        let err = run_script("query 0\nsetw 0 1 2.0\n");
        assert!(
            matches!(err, EngineError::BadUpdate { line: 2, .. }),
            "{err}"
        );
        assert!(err.to_string().contains("requires --weighted"), "{err}");
        assert_eq!(err.exit_code(), 7);
        // A weighted add without --weighted too.
        let err = run_script("add 0 9 2.5\n");
        assert!(
            matches!(err, EngineError::BadUpdate { line: 1, .. }),
            "{err}"
        );
        assert!(err.to_string().contains("requires --weighted"), "{err}");
        // setw on a missing edge of a weighted graph is the usual
        // does-not-exist BadUpdate (karate has no 0-9 edge; --demo
        // --weighted serves unit weights).
        let ufile = dir.join("s2.txt");
        std::fs::write(&ufile, "setw 0 9 2.0\n").unwrap();
        let cfg = parse(&args(&format!(
            "--demo --weighted --updates {}",
            ufile.display()
        )))
        .unwrap()
        .unwrap();
        let err = run(&cfg, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("does not exist"), "{err}");
    }

    #[test]
    fn fpa_w_without_weighted_flag_reports_a_weighted_summary() {
        // --algo fpa-w serves the weighted objective even without
        // --weighted (unit fallback); the summary must say so.
        let dir = std::env::temp_dir().join("dmcs_cli_fpa_w_summary");
        std::fs::create_dir_all(&dir).unwrap();
        let qfile = dir.join("q.txt");
        std::fs::write(&qfile, "0\n").unwrap();
        let cfg = parse(&args(&format!(
            "--demo --algo fpa-w --queries {} --format json",
            qfile.display()
        )))
        .unwrap()
        .unwrap();
        let mut out = Vec::new();
        run(&cfg, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let summary = Json::parse(text.lines().last().unwrap()).unwrap();
        assert_eq!(summary.get("algo").unwrap().as_str(), Some("W-FPA"));
        assert_eq!(summary.get("weighted").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn demo_weighted_serves_unit_weights() {
        // --demo --weighted: unit lane, W-FPA, same community as FPA on
        // the topology.
        let cfg = parse(&args("--demo --query 0 --weighted --format json"))
            .unwrap()
            .unwrap();
        let mut out = Vec::new();
        run(&cfg, &mut out).unwrap();
        let v = Json::parse(String::from_utf8(out).unwrap().trim()).unwrap();
        assert_eq!(v.get("algo").unwrap().as_str(), Some("W-FPA"));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn top_k_end_to_end_on_demo() {
        let cfg = parse(&args("--demo --query 0 --top-k 3")).unwrap().unwrap();
        let mut out = Vec::new();
        run(&cfg, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("FPA round 1"), "{text}");
        assert!(text.contains("search found"), "{text}");
    }

    #[test]
    fn updates_flag_rules() {
        assert!(parse(&args("--demo --updates u.txt")).is_ok());
        assert!(
            parse(&args("--graph g --updates u.txt --weighted")).is_ok(),
            "weighted live updates are first-class"
        );
        for bad in [
            "--demo --updates u.txt --query 1",
            "--demo --updates u.txt --queries q.txt",
            "--demo --updates u.txt --threads 2",
            "--demo --updates u.txt --stats",
            "--demo --updates u.txt --top-k 2",
            "--demo --updates u.txt --dot o.dot",
        ] {
            let err = parse(&args(bad)).unwrap_err();
            assert!(matches!(err, EngineError::BadParam { .. }), "{bad}: {err}");
        }
    }

    #[test]
    fn update_script_parses_the_strict_grammar() {
        let ops = parse_update_script(
            "# warmup\nadd 7 9\n\ndel 7 9\nquery 0\n  query 1, 2  \nadd 100 0\n",
        )
        .unwrap();
        assert_eq!(
            ops,
            vec![
                (2, UpdateOp::Add(7, 9, None)),
                (4, UpdateOp::Del(7, 9)),
                (5, UpdateOp::Query(vec![0])),
                (6, UpdateOp::Query(vec![1, 2])),
                (7, UpdateOp::Add(100, 0, None)),
            ]
        );
        assert!(parse_update_script("# only comments\n").unwrap().is_empty());
    }

    #[test]
    fn update_script_parses_the_weighted_grammar() {
        let ops = parse_update_script("add 7 9 2.5\nsetw 7 9 0.25\nadd 1 2\nquery 7\n").unwrap();
        assert_eq!(
            ops,
            vec![
                (1, UpdateOp::Add(7, 9, Some(2.5))),
                (2, UpdateOp::SetW(7, 9, 0.25)),
                (3, UpdateOp::Add(1, 2, None)),
                (4, UpdateOp::Query(vec![7])),
            ]
        );
    }

    #[test]
    fn update_script_rejects_malformed_lines_with_line_numbers() {
        for (script, line, needle) in [
            ("add 1", 1, "missing v"),
            ("query 0\nadd 1 2 3 4", 2, "trailing token"),
            ("del 1 2 3", 1, "trailing token"),
            ("setw 1 2 3 4", 1, "trailing token"),
            ("add 1 x", 1, "bad node id \"x\""),
            ("add 4 4", 1, "self-loop"),
            ("del 4 4", 1, "self-loop"),
            ("add 1 2 x", 1, "bad weight \"x\""),
            ("add 1 2 0", 1, "finite and strictly positive"),
            ("add 1 2 -3", 1, "finite and strictly positive"),
            ("add 1 2 inf", 1, "finite and strictly positive"),
            ("setw 1 2", 1, "needs a weight"),
            ("setw 1 2 nan", 1, "finite and strictly positive"),
            ("query", 1, "at least one node id"),
            ("query 1,,2", 1, "empty query id"),
            ("query 1,1", 1, "duplicate query id"),
            ("swap 1 2", 1, "unknown op \"swap\""),
            ("# fine\n\nadd 0 1\nqueryx 2", 4, "unknown op \"queryx\""),
        ] {
            let err = parse_update_script(script).unwrap_err();
            match &err {
                EngineError::BadUpdate { line: l, reason } => {
                    assert_eq!(*l, line, "{script:?}: {err}");
                    assert!(reason.contains(needle), "{script:?}: {err}");
                }
                other => panic!("{script:?}: expected BadUpdate, got {other:?}"),
            }
            assert_eq!(err.exit_code(), 7, "{script:?}");
        }
    }

    #[test]
    fn updates_end_to_end_text_mode() {
        let dir = std::env::temp_dir().join("dmcs_cli_updates");
        std::fs::create_dir_all(&dir).unwrap();
        let ufile = dir.join("script.txt");
        // Karate has no 0-9 edge; 40/41 are brand-new nodes.
        std::fs::write(
            &ufile,
            "query 0\nquery 0\nadd 0 9\nquery 0\nquery 0\nadd 40 41\ndel 40 41\nquery 0\n",
        )
        .unwrap();
        let cfg = parse(&args(&format!("--demo --updates {}", ufile.display())))
            .unwrap()
            .unwrap();
        let mut out = Vec::new();
        run(&cfg, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("34 nodes, 78 edges"), "{text}");
        assert!(
            text.contains("update add 0 9: 34 nodes, 79 edges (version 1)"),
            "{text}"
        );
        assert!(
            text.contains("update add 40 41: 36 nodes, 80 edges (version 4)"),
            "{text}"
        );
        assert!(
            text.contains("update del 40 41: 36 nodes, 79 edges (version 5)"),
            "{text}"
        );
        // Query 1 repeats query 0 unchanged (hit); query 3 repeats after
        // an update (recomputed); query 4 repeats again (hit); query 5
        // runs after add+del restored nothing relevant — new version, so
        // recomputed.
        assert_eq!(text.matches("[cached]").count(), 2, "{text}");
        assert!(text.contains("cache: 2 hits, 3 misses"), "{text}");
        assert!(text.contains("ok 5/5"), "{text}");
    }

    #[test]
    fn updates_coalesce_mutations_into_one_rebuild_per_query() {
        let dir = std::env::temp_dir().join("dmcs_cli_updates_coalesce");
        std::fs::create_dir_all(&dir).unwrap();
        let ufile = dir.join("script.txt");
        // The run of three mutations between the queries must coalesce
        // into one dirty-shard rebuild (paid by the second query); the
        // trailing add never pays one. The first query reads the seed
        // snapshot adopted at load, which counts no rebuild at all.
        std::fs::write(
            &ufile,
            "query 0\nadd 0 9\nadd 9 10\ndel 0 9\nquery 0\nadd 26 27\n",
        )
        .unwrap();
        let cfg = parse(&args(&format!(
            "--demo --updates {} --format json",
            ufile.display()
        )))
        .unwrap()
        .unwrap();
        let mut out = Vec::new();
        run(&cfg, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let summary = Json::parse(text.lines().last().unwrap()).unwrap();
        assert_eq!(summary.get("type").and_then(Json::as_str), Some("summary"));
        assert_eq!(summary.get("shards").and_then(Json::as_u64), Some(16));
        assert_eq!(summary.get("rebuilds").and_then(Json::as_u64), Some(1));
        let rebuilt = summary
            .get("shards_rebuilt")
            .and_then(Json::as_u64)
            .unwrap();
        let reused = summary.get("shards_reused").and_then(Json::as_u64).unwrap();
        assert!((1..16).contains(&rebuilt), "incremental: {rebuilt}");
        assert_eq!(rebuilt + reused, 16, "one rebuild covers all shards");
    }

    #[test]
    fn stats_prints_the_store_shard_line() {
        let cfg = parse(&args("--demo --query 0 --stats --shards 4"))
            .unwrap()
            .unwrap();
        let mut out = Vec::new();
        run(&cfg, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("store: 4 shards, 0 dirty"), "{text}");
        assert!(
            text.contains("rebuilds: 0 (0 shards rebuilt, 0 reused)"),
            "{text}"
        );
    }

    #[test]
    fn updates_json_repeats_are_byte_identical_until_an_update() {
        let dir = std::env::temp_dir().join("dmcs_cli_updates_json");
        std::fs::create_dir_all(&dir).unwrap();
        let ufile = dir.join("script.txt");
        std::fs::write(&ufile, "query 0\nquery 0\nadd 0 9\nquery 0\n").unwrap();
        let cfg = parse(&args(&format!(
            "--demo --updates {} --format json",
            ufile.display()
        )))
        .unwrap()
        .unwrap();
        let mut out = Vec::new();
        run(&cfg, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "3 responses + summary: {text}");
        assert_eq!(
            lines[0], lines[1],
            "repeat with no update: byte-identical cache hit"
        );
        let summary = Json::parse(lines[3]).unwrap();
        assert_eq!(summary.get("type").unwrap().as_str(), Some("summary"));
        assert_eq!(summary.get("cache_hits").unwrap().as_u64(), Some(1));
        assert_eq!(summary.get("cache_misses").unwrap().as_u64(), Some(2));
        for line in &lines[..3] {
            let v = Json::parse(line).unwrap();
            assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
            assert!(
                v.get("cached").is_none(),
                "no per-response cache marker in JSON"
            );
        }
    }

    #[test]
    fn updates_runtime_errors_are_bad_updates() {
        let dir = std::env::temp_dir().join("dmcs_cli_updates_err");
        std::fs::create_dir_all(&dir).unwrap();
        let run_script = |script: &str| -> EngineError {
            let ufile = dir.join("s.txt");
            std::fs::write(&ufile, script).unwrap();
            let cfg = parse(&args(&format!("--demo --updates {}", ufile.display())))
                .unwrap()
                .unwrap();
            run(&cfg, &mut Vec::new()).unwrap_err()
        };
        // Duplicate add: karate has the 0-1 edge.
        let err = run_script("add 0 1\n");
        assert!(
            matches!(err, EngineError::BadUpdate { line: 1, .. }),
            "{err}"
        );
        assert!(err.to_string().contains("already exists"), "{err}");
        // Deleting an absent edge.
        let err = run_script("query 0\ndel 0 9\n");
        assert!(
            matches!(err, EngineError::BadUpdate { line: 2, .. }),
            "{err}"
        );
        assert!(err.to_string().contains("does not exist"), "{err}");
        // Deleting around an unknown node.
        let err = run_script("del 999 0\n");
        assert!(err.to_string().contains("unknown node 999"), "{err}");
        // Querying an unknown node is the usual exit-5 UnknownNode with
        // file:line context.
        let err = run_script("add 0 9\nquery 777\n");
        assert!(
            matches!(err, EngineError::UnknownNode { id: 777, .. }),
            "{err}"
        );
        assert_eq!(err.exit_code(), 5);
        assert!(err.to_string().contains(":2:"), "{err}");
        // An empty script is a BadParam naming the file.
        let err = run_script("# nothing\n");
        assert!(matches!(err, EngineError::BadParam { .. }), "{err}");
        assert!(err.to_string().contains("no operations"), "{err}");
    }

    #[test]
    fn updates_can_grow_a_community() {
        // Wire three new members into Mr. Hi's neighbourhood and watch
        // the answer change between pinned epochs.
        let dir = std::env::temp_dir().join("dmcs_cli_updates_grow");
        std::fs::create_dir_all(&dir).unwrap();
        let ufile = dir.join("grow.txt");
        std::fs::write(
            &ufile,
            "query 0\nadd 50 0\nadd 50 1\nadd 50 2\nadd 50 3\nquery 50\n",
        )
        .unwrap();
        let cfg = parse(&args(&format!(
            "--demo --updates {} --format json",
            ufile.display()
        )))
        .unwrap()
        .unwrap();
        let mut out = Vec::new();
        run(&cfg, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let second = Json::parse(text.lines().nth(1).unwrap()).unwrap();
        assert_eq!(second.get("ok").unwrap().as_bool(), Some(true));
        let comm: Vec<u64> = second
            .get("community")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|x| x.as_u64().unwrap())
            .collect();
        assert!(comm.contains(&50), "new node joins its community: {text}");
    }

    #[test]
    fn dot_output_written() {
        let dir = std::env::temp_dir().join("dmcs_cli_dot");
        std::fs::create_dir_all(&dir).unwrap();
        let dot = dir.join("out.dot");
        let cfg = parse(&args(&format!("--demo --query 0 --dot {}", dot.display())))
            .unwrap()
            .unwrap();
        let mut out = Vec::new();
        run(&cfg, &mut out).unwrap();
        let text = std::fs::read_to_string(&dot).unwrap();
        assert!(text.starts_with("graph dmcs {"));
        assert!(text.contains("fillcolor=lightskyblue"));
    }
}
