//! Karate-club showdown: every algorithm in the workspace searches for
//! the faction of a club member, scored against Zachary's observed split
//! (the Fig 15 experiment in miniature).
//!
//! ```text
//! cargo run --release --example karate_showdown
//! ```

use dmcs::engine::registry::{self, AlgoSpec};
use dmcs::engine::Session;
use dmcs::gen::datasets::karate_dataset;
use dmcs::graph::Snapshot;
use dmcs::metrics;

fn main() {
    let ds = karate_dataset();
    let query = [0u32]; // Mr. Hi himself
    let truth = &ds.communities[0];
    let snap = Snapshot::freeze(ds.graph.clone());
    let n = ds.graph.n();

    let mut specs = registry::small_graph_baseline_specs();
    specs.push(AlgoSpec::with_k("ls", 3));
    specs.push(AlgoSpec::new("louvain"));
    specs.push(AlgoSpec::new("nca"));
    specs.push(AlgoSpec::new("fpa"));

    println!(
        "query: node 0 (Mr. Hi); ground truth: his faction ({} members)\n",
        truth.len()
    );
    println!(
        "{:<12} {:>5} {:>8} {:>8} {:>8}",
        "algo", "|C|", "NMI", "ARI", "F"
    );
    for spec in &specs {
        let mut session = Session::new(snap.clone(), spec).expect("registered algorithm");
        match session.search(&query) {
            Ok(r) => {
                println!(
                    "{:<12} {:>5} {:>8.3} {:>8.3} {:>8.3}",
                    session.algo_name(),
                    r.community.len(),
                    metrics::nmi(n, &r.community, truth),
                    metrics::ari(n, &r.community, truth),
                    metrics::f_score(n, &r.community, truth),
                );
            }
            Err(e) => println!("{:<12} failed: {e}", session.algo_name()),
        }
    }
    println!(
        "\nThe paper's Fig 15 finding: NCA and FPA sit at the top; \
         parameterised models (kc/kt/kecc) depend on a lucky k."
    );
}
