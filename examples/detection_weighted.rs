//! The two extensions in one tour: DM-based community *detection* (the
//! paper's §7 future work) and *weighted* DMCS (the general form of
//! Definition 2).
//!
//! ```text
//! cargo run --release --example detection_weighted
//! ```

use dmcs::core::detect::{detect_communities, partition_density_modularity, DetectConfig};
use dmcs::core::{CommunitySearch, WeightedFpa};
use dmcs::gen::ring;
use dmcs::graph::weighted::WeightedGraphBuilder;

fn main() {
    // --- Part 1: detection on the resolution-limit showcase.
    // Classic-modularity detectors famously merge adjacent cliques on this
    // ring (Fortunato & Barthélemy 2007); DM-based detection must not.
    let g = ring::ring_of_cliques(12, 5);
    let (labels, comms) = detect_communities(&g, DetectConfig::default());
    println!(
        "ring of 12 five-cliques: DM detection found {} communities (want 12)",
        comms.len()
    );
    let sizes: Vec<usize> = comms.iter().map(|c| c.len()).collect();
    println!("community sizes: {sizes:?}");
    println!(
        "partition density modularity: {:.3}",
        partition_density_modularity(&g, &comms)
    );
    assert_eq!(labels.len(), g.n());

    // --- Part 2: weighted DMCS.
    // A collaboration graph where edge weight = number of joint papers.
    // Two triangles share a bridge; the right one collaborates 10x more.
    let mut b = WeightedGraphBuilder::new(6);
    b.add_edge(0, 1, 1.0);
    b.add_edge(1, 2, 1.0);
    b.add_edge(0, 2, 1.0);
    b.add_edge(3, 4, 10.0);
    b.add_edge(4, 5, 10.0);
    b.add_edge(3, 5, 10.0);
    b.add_edge(2, 3, 0.5);
    let wg = b.build();
    println!("\nweighted barbell (right side 10x heavier):");
    for q in [0u32, 4] {
        let r = WeightedFpa.search(&wg, &[q]).expect("valid query");
        println!(
            "  query {q} -> community {:?} (weighted DM = {:.3})",
            r.community, r.density_modularity
        );
    }
    // Note the normalisation at work: the heavy triangle's larger w_C is
    // offset by its larger strength penalty d_C²/(4 w_G) — both triangles
    // are equally "good" communities relative to their own scale, and the
    // bridge node is excluded from both.
    println!(
        "\nwith the bridge absorbed: DM({{2..5}}) = {:.3} < DM({{3,4,5}}) = {:.3}",
        wg.density_modularity(&[2, 3, 4, 5]),
        wg.density_modularity(&[3, 4, 5])
    );
}
