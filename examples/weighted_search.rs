//! Weighted DMCS: community search when the signal lives in the edge
//! weights — e.g. co-authorship counts, interaction frequencies, call
//! volumes — rather than in the raw topology.
//!
//! ```text
//! cargo run --release --example weighted_search
//! ```

use dmcs::core::{Fpa, WeightedFpa, WeightedNca};
use dmcs::gen::sbm;
use dmcs::graph::weighted::WeightedGraphBuilder;
use dmcs::metrics::nmi;
use dmcs::prelude::CommunitySearch;

fn main() {
    // Two planted blocks of 30 with nearly indistinguishable topology:
    // p_in = 0.30 vs p_out = 0.22. Unweighted search has almost nothing
    // to work with.
    let block = 30usize;
    let (topo, comms) = sbm::planted_partition(&[block, block], 0.30, 0.22, 42);
    let truth = &comms[0];

    // But interactions *inside* a block are five times heavier.
    let mut b = WeightedGraphBuilder::new(topo.n());
    for (u, v) in topo.edges() {
        let same_block = ((u as usize) < block) == ((v as usize) < block);
        b.add_edge(u, v, if same_block { 5.0 } else { 1.0 });
    }
    let wg = b.build();

    let q = truth[0];
    println!("planted 2x{block} blocks, p_in=0.30 / p_out=0.22, intra weight 5x, query {q}\n");

    let unweighted = Fpa::default().search(&topo, &[q]).expect("valid query");
    let wfpa = WeightedFpa.search(&wg, &[q]).expect("valid query");
    let wnca = WeightedNca::default()
        .search(&wg, &[q])
        .expect("valid query");

    let n = topo.n();
    let report = |label: &str, community: &[u32], dm: f64| {
        println!(
            "  {label:<18} |C| = {:>3}   NMI vs block = {:.3}   objective = {:.3}",
            community.len(),
            nmi(n, community, truth),
            dm
        );
    };
    report(
        "FPA (unweighted)",
        &unweighted.community,
        unweighted.density_modularity,
    );
    report("WeightedFpa", &wfpa.community, wfpa.density_modularity);
    report("WeightedNca", &wnca.community, wnca.density_modularity);

    // Weighted DM of the planted block vs the whole graph, for reference.
    println!(
        "\n  weighted DM(block) = {:.3}   weighted DM(V) = {:.3}",
        wg.density_modularity(truth),
        wg.density_modularity(&(0..n as u32).collect::<Vec<_>>())
    );
    println!(
        "\nThe weighted searches should recover most of the planted block;\n\
         the unweighted FPA sees a near-uniform topology and cannot."
    );
}
