//! Streaming community search: maintain a query's community while the
//! network grows, with cached exact refresh, localized re-search, and a
//! serving engine sharing the same versioned store.
//!
//! ```text
//! cargo run --release --example streaming
//! ```

use dmcs::core::dynamic::IncrementalSearch;
use dmcs::core::topk::{top_k_communities, TopKConfig};
use dmcs::core::Fpa;
use dmcs::engine::{AlgoSpec, Engine, QueryRequest};
use dmcs::graph::dynamic::DynamicGraph;
use dmcs::graph::GraphStore;
use std::sync::Arc;

fn main() {
    // A collaboration network starts as two 4-cliques sharing author 0.
    let mut g = DynamicGraph::new(7);
    for c in [[0u32, 1, 2, 3], [0, 4, 5, 6]] {
        for i in 0..4 {
            for j in (i + 1)..4 {
                g.insert_edge(c[i], c[j]);
            }
        }
    }
    println!("day 0: {} authors, {} collaborations", g.n(), g.m());

    // One versioned store of record; the tracker and the serving engine
    // below share it.
    let store = Arc::new(GraphStore::from_dynamic(g));

    // Author 0 sits in two communities — top-k sees both.
    let rounds = top_k_communities(&store.snapshot(), &[0], TopKConfig::default()).unwrap();
    println!("top-k communities of author 0:");
    for (i, r) in rounds.iter().enumerate() {
        println!(
            "  #{}: {:?} (DM {:.3})",
            i + 1,
            r.community,
            r.density_modularity
        );
    }

    // Pin the query and stream updates.
    let mut inc = IncrementalSearch::new(Arc::clone(&store), vec![0], Fpa::default());
    let day0 = inc.community().unwrap();
    println!("\ntracked community: {:?}", day0.community);

    // Day 1: five new authors join and densify the left group.
    for _ in 0..5 {
        let v = inc.add_node();
        for anchor in [1, 2, 3] {
            inc.insert_edge(v, anchor);
        }
    }
    let day1 = inc.community().unwrap();
    println!(
        "day 1 (+5 authors around the left group): community {:?}",
        day1.community
    );

    // Day 2: repeated queries are free until the next mutation.
    let _ = inc.community().unwrap();
    let _ = inc.community().unwrap();
    println!(
        "day 2: {} recomputations after 4 queries (caching works)",
        inc.recomputations
    );

    // Day 3: the collaborations bridging to the right group dissolve.
    inc.remove_edge(0, 4);
    inc.remove_edge(0, 5);
    inc.remove_edge(0, 6);
    let day3 = inc.community().unwrap();
    println!(
        "day 3 (right group detached): community {:?}, {} recomputations",
        day3.community, inc.recomputations
    );

    // Localized refresh: only look 2 hops around the query.
    let local = inc.search_local(2).unwrap();
    println!(
        "local refresh (radius 2): {:?} (DM {:.3})",
        local.community, local.density_modularity
    );

    // Day 4: a serving engine over the SAME store — its snapshots track
    // the tracker's mutations, and its version-keyed cache turns repeat
    // traffic into hits until the next update.
    let engine = Engine::new(Arc::clone(&store));
    let spec = AlgoSpec::new("fpa");
    let requests: Vec<QueryRequest> = [0u32, 4, 0, 4, 0]
        .iter()
        .map(|&v| QueryRequest::new(vec![v]))
        .collect();
    let report = engine.run_batch(&spec, &requests, 2).unwrap();
    println!(
        "\nday 4, engine batch on the shared store (version {}): {} queries, {} unique, {} cache hits",
        engine.version(),
        report.responses.len(),
        report.unique_queries,
        report.cache_hits,
    );
    let report = engine.run_batch(&spec, &requests, 2).unwrap();
    println!(
        "        repeat batch: {} cache hits, {} misses (all served from the version-keyed cache)",
        report.cache_hits, report.cache_misses
    );
    engine.insert_edge(0, 4);
    let report = engine.run_batch(&spec, &requests, 2).unwrap();
    println!(
        "        after one more update (version {}): {} hits, {} misses (cache invalidated by version)",
        engine.version(),
        report.cache_hits,
        report.cache_misses
    );
}
