//! Exact DMCS on small graphs: the bitmask enumerator vs branch-and-bound
//! vs the heuristics — what NP-hardness costs in practice.
//!
//! ```text
//! cargo run --release --example exact_optimum
//! ```

use dmcs::core::{BranchAndBound, CommunitySearch, Exact, Fpa, Nca};
use dmcs::gen::{random, ring, sbm};

fn main() {
    // 1. Ring of cliques (paper Example 3): 4 cliques of 5 = 20 nodes.
    //    Both exact solvers agree; the optimum is the query's own clique.
    let g = ring::ring_of_cliques(4, 5);
    let bitmask = Exact
        .search(&g, &[0])
        .expect("20 nodes fit the bitmask cap");
    let bnb = BranchAndBound::default().search(&g, &[0]).expect("fits");
    println!("ring_of_cliques(4,5), query 0:");
    println!(
        "  bitmask: DM = {:.4} over {} subsets   community {:?}",
        bitmask.density_modularity, bitmask.iterations, bitmask.community
    );
    println!(
        "  bnb:     DM = {:.4} over {} tree nodes ({}x fewer states)",
        bnb.density_modularity,
        bnb.iterations,
        bitmask.iterations / bnb.iterations.max(1)
    );

    // 2. Beyond the bitmask cap: 30 nodes. Only branch-and-bound can
    //    certify the optimum; the heuristics are then measured against it.
    let g30 = ring::ring_of_cliques(5, 6);
    assert!(Exact.search(&g30, &[0]).is_err(), "2^30 is out of reach");
    let opt = BranchAndBound::default()
        .search(&g30, &[0])
        .expect("bnb handles 30 nodes");
    println!("\nring_of_cliques(5,6) — 30 nodes, bitmask refuses:");
    println!(
        "  bnb optimum: DM = {:.4}, |C| = {} (the query's 6-clique)",
        opt.density_modularity,
        opt.community.len()
    );
    for algo in [&Fpa::default() as &dyn CommunitySearch, &Nca::default()] {
        let h = algo.search(&g30, &[0]).expect("heuristics always answer");
        println!(
            "  {:4}: DM = {:.4}  -> {:.1}% of optimal",
            algo.name(),
            h.density_modularity,
            100.0 * h.density_modularity / opt.density_modularity
        );
    }

    // 3. Average optimality gap over random two-block graphs.
    let trials = 15;
    let mut fpa_ratio = 0.0;
    let mut nca_ratio = 0.0;
    let mut counted = 0;
    for seed in 0..trials {
        let (g, _) = sbm::planted_partition(&[12, 12], 0.6, 0.08, seed);
        let Ok(opt) = BranchAndBound::default().search(&g, &[0]) else {
            continue;
        };
        if opt.density_modularity <= 0.0 {
            continue;
        }
        counted += 1;
        fpa_ratio +=
            Fpa::default().search(&g, &[0]).unwrap().density_modularity / opt.density_modularity;
        nca_ratio +=
            Nca::default().search(&g, &[0]).unwrap().density_modularity / opt.density_modularity;
    }
    println!("\nmean DM ratio vs optimum over {counted} planted 2x12 blocks:");
    println!(
        "  FPA: {:.3}   NCA: {:.3}",
        fpa_ratio / counted as f64,
        nca_ratio / counted as f64
    );

    // 4. A denser ER graph for contrast (heuristics struggle more when
    //    there is no community structure to find).
    let ger = random::erdos_renyi(24, 0.3, 7);
    let opt = BranchAndBound::default()
        .search(&ger, &[0])
        .expect("24 nodes");
    let fpa = Fpa::default().search(&ger, &[0]).unwrap();
    println!(
        "\nER(24, 0.3): optimum {:.4}, FPA {:.4} ({:.1}%)",
        opt.density_modularity,
        fpa.density_modularity,
        100.0 * fpa.density_modularity / opt.density_modularity
    );
}
