//! Case study (the paper's Fig 20): a prolific hub in a co-authorship-
//! style network. FPA returns a compact community centred on the hub;
//! 3-truss and 3-core return ever larger, ever less hub-relevant sets.
//!
//! ```text
//! cargo run --release --example case_study
//! ```

use dmcs::engine::registry::AlgoSpec;
use dmcs::engine::Session;
use dmcs::graph::betweenness::node_betweenness;
use dmcs::graph::eigen::{eigenvector_centrality_within, rank_of};
use dmcs::graph::{GraphBuilder, NodeId, Snapshot};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const HUB: NodeId = 0;

fn main() {
    // Synthetic co-authorship graph: dense ego community around the hub,
    // triangle-rich middle layer, big sparse periphery (see DESIGN.md §3
    // for why this substitutes for the paper's DBLP snapshot).
    let mut rng = StdRng::seed_from_u64(0xCA5E);
    let mut b = GraphBuilder::new(1201);
    for v in 1..=40u32 {
        b.add_edge(HUB, v);
        b.add_edge(v, if v == 40 { 1 } else { v + 1 });
        for _ in 0..5 {
            b.add_edge(v, rng.gen_range(1..=40));
        }
    }
    for v in (41..=197u32).step_by(4) {
        let a = rng.gen_range(1..40);
        b.add_edge(v, a);
        b.add_edge(v, a + 1);
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                b.add_edge(v + i, v + j);
            }
        }
    }
    for v in 201..=1200u32 {
        for _ in 0..3 {
            b.add_edge(v, rng.gen_range(41..=1200));
        }
    }
    let g = b.build();
    println!(
        "co-authorship graph: {} authors, {} collaborations; query = hub (degree {})\n",
        g.n(),
        g.m(),
        g.degree(HUB)
    );

    let snap = Snapshot::freeze(g.clone());
    let bc = node_betweenness(&g);
    let lineup: Vec<(&str, AlgoSpec)> = vec![
        ("FPA", AlgoSpec::new("fpa")),
        ("3-truss", AlgoSpec::with_k("kt", 3)),
        ("3-core", AlgoSpec::with_k("kc", 3)),
    ];
    println!(
        "{:<8} {:>6} {:>14} {:>12} {:>10}",
        "algo", "|C|", "% adj to hub", "betw. rank", "eigen rank"
    );
    for (label, spec) in &lineup {
        let mut session = Session::new(snap.clone(), spec).expect("registered algorithm");
        let r = session.search(&[HUB]).expect("hub query is valid");
        let c = &r.community;
        let adjacent = c
            .iter()
            .filter(|&&v| v != HUB && g.has_edge(HUB, v))
            .count();
        let bc_scores: Vec<f64> = c.iter().map(|&v| bc[v as usize]).collect();
        let ev = eigenvector_centrality_within(&g, c, 300, 1e-10);
        println!(
            "{:<8} {:>6} {:>13.0}% {:>12} {:>10}",
            label,
            c.len(),
            100.0 * adjacent as f64 / (c.len().max(2) - 1) as f64,
            format!("#{}", rank_of(c, &bc_scores, HUB).unwrap_or(0)),
            format!("#{}", rank_of(c, &ev, HUB).unwrap_or(0)),
        );
    }
    println!(
        "\nPaper's DBLP numbers for comparison: FPA community all-adjacent \
         with the query ranked #1 on both centralities; 3-truss 157 authors \
         (17% adjacent, rank #2); 3-core 1040 authors (1% adjacent, ranks \
         #45 / #175)."
    );
}
