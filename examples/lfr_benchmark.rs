//! LFR benchmark mini-sweep (the paper's Fig 8 in miniature): generate a
//! synthetic network with planted communities, sample paper-protocol query
//! sets, and compare FPA against the k-core and k-truss baselines across
//! mixing parameters.
//!
//! ```text
//! cargo run --release --example lfr_benchmark
//! ```

use dmcs::engine::registry::AlgoSpec;
use dmcs::engine::Session;
use dmcs::gen::{lfr, queries, Dataset};
use dmcs::graph::Snapshot;
use dmcs::metrics;

fn main() {
    for mu in [0.2f64, 0.3, 0.4] {
        let cfg = lfr::LfrConfig {
            n: 1000,
            avg_degree: 15.0,
            max_degree: 100,
            mu,
            min_community: 20,
            max_community: 150,
            seed: (mu * 100.0) as u64,
            ..lfr::LfrConfig::default()
        };
        let g = lfr::generate(&cfg);
        let measured = lfr::measured_mu(&g);
        let ds = Dataset {
            name: format!("LFR mu={mu}"),
            graph: g.graph,
            communities: g.communities,
            overlapping: false,
        };
        println!(
            "\n== {} ({} nodes, {} edges, {} communities, measured mu {:.2}) ==",
            ds.name,
            ds.graph.n(),
            ds.graph.m(),
            ds.communities.len(),
            measured
        );

        let specs = [
            AlgoSpec::with_k("kc", 3),
            AlgoSpec::with_k("kt", 4),
            AlgoSpec::new("fpa"),
        ];
        let snap = Snapshot::freeze(ds.graph.clone());
        let sets = queries::sample_query_sets(&ds, 6, 1, 4, 99);
        println!("{:<6} {:>10} {:>10}", "algo", "med NMI", "med |C|");
        for spec in &specs {
            // One session per (graph, algorithm): the query loop reuses
            // the session's workspace buffers.
            let mut session = Session::new(snap.clone(), spec).expect("registered algorithm");
            let mut nmis = Vec::new();
            let mut sizes = Vec::new();
            for (q, gt_idx) in &sets {
                if let Ok(r) = session.search(q) {
                    nmis.push(metrics::nmi(
                        ds.graph.n(),
                        &r.community,
                        &ds.communities[*gt_idx],
                    ));
                    sizes.push(r.community.len() as f64);
                }
            }
            nmis.sort_by(|a, b| a.partial_cmp(b).unwrap());
            sizes.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let med = |v: &Vec<f64>| if v.is_empty() { 0.0 } else { v[v.len() / 2] };
            println!(
                "{:<6} {:>10.3} {:>10.0}",
                session.algo_name(),
                med(&nmis),
                med(&sizes)
            );
        }
    }
    println!(
        "\nShape to look for (paper Fig 8): FPA's NMI well above kc/kt at \
         every mu; all accuracies decline as mu grows; kc returns huge \
         communities regardless."
    );
}
