//! Quickstart: build a graph, run the two DMCS algorithms, inspect the
//! measures — the five-minute tour of the public API.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dmcs::prelude::*;

fn main() {
    // The paper's Figure 1 toy network: community A (nodes 0..8, the
    // query u1 = node 0), community B (8..16), background 12-cycle.
    let g = dmcs::gen::toy::figure1();
    println!("Figure 1 toy network: {} nodes, {} edges", g.n(), g.m());

    // Example 1/2 of the paper: classic vs density modularity of A and A∪B.
    let a: Vec<NodeId> = (0..8).collect();
    let ab: Vec<NodeId> = (0..16).collect();
    println!("\nmeasures (paper Examples 1-2):");
    println!(
        "  CM(A)    = {:.6}   CM(A∪B) = {:.6}  -> classic modularity merges (free rider!)",
        classic_modularity(&g, &a),
        classic_modularity(&g, &ab)
    );
    println!(
        "  DM(A)    = {:.6}   DM(A∪B) = {:.6}  -> density modularity keeps A",
        density_modularity(&g, &a),
        density_modularity(&g, &ab)
    );

    // Search for the community of node 0 with both algorithms.
    let fpa = Fpa::default().search(&g, &[0]).expect("query is valid");
    let nca = Nca::default().search(&g, &[0]).expect("query is valid");
    println!("\nsearch from query node 0:");
    println!(
        "  FPA -> {:?}  (DM = {:.4}, {} peeling iterations)",
        fpa.community, fpa.density_modularity, fpa.iterations
    );
    println!(
        "  NCA -> {:?}  (DM = {:.4}, {} peeling iterations)",
        nca.community, nca.density_modularity, nca.iterations
    );

    // Score against the ground truth (community A).
    let n = g.n();
    println!("\naccuracy vs ground truth A:");
    println!(
        "  FPA: NMI = {:.3}, ARI = {:.3}, F = {:.3}",
        nmi(n, &fpa.community, &a),
        ari(n, &fpa.community, &a),
        f_score(n, &fpa.community, &a)
    );

    // Multiple query nodes: FPA protects a Steiner seed connecting them.
    let multi = Fpa::default()
        .search(&g, &[0, 3])
        .expect("connected queries");
    println!("\nmulti-query {{0, 3}} -> {:?}", multi.community);
}
