//! Versioned-store benchmarks backing the performance claims of the
//! live-update path (results committed as `BENCH_7.json`; regenerate
//! with `scripts/bench_to_json.py`):
//!
//! 1. **Incremental rebuild beats full rebuild** — `store_snapshot_rebuild`
//!    measures a mutate→snapshot cycle at 10k and 50k nodes three ways:
//!    `full_rebuild` (a single-shard store — the pre-sharding code path,
//!    every row re-serialized), `one_dirty_shard` (16 shards, the update
//!    touches one — the steady loop recycles the retired snapshot and
//!    patches just that shard's segments in place), and `all_dirty`
//!    (16 shards, every shard touched — the worst case, which must not
//!    regress against `full_rebuild_batch`, the *same* 16-edge write
//!    batch on a single-shard store). `cached_read` is the no-mutation
//!    baseline: snapshot() between versions is an Arc clone.
//! 2. **Repeated queries are dominated by the result cache** —
//!    `cached_repeats` compares a repeated single query on the
//!    fragmented-50k serving graph with the shard-scoped cache against
//!    the same query recomputed every time (cache capacity 0), plus the
//!    mutate→snapshot→query worst case.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dmcs_engine::{AlgoSpec, Engine, QueryRequest};
use dmcs_gen::sbm;
use dmcs_graph::{Graph, GraphStore, NodeId};

/// Shard count of the incremental-rebuild benches (the store default).
const SHARDS: usize = 16;

/// The fragmented serving graph of the engine's other benches: 250
/// disconnected ~200-node blocks.
fn fragmented(blocks: usize) -> Graph {
    let sizes = vec![200usize; blocks];
    let (g, _) = sbm::planted_partition(&sizes, 0.06, 0.0, 7);
    g
}

/// One intra-block node pair per shard (for `n` nodes over [`SHARDS`]
/// shards): toggling these edges dirties every shard at once.
fn per_shard_pairs(n: usize) -> Vec<(NodeId, NodeId)> {
    let shard_size = n.div_ceil(SHARDS);
    (0..SHARDS)
        .map(|s| {
            let v = (s * shard_size) as NodeId;
            (v, v + 1)
        })
        .collect()
}

fn bench_snapshot_rebuild(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_snapshot_rebuild");
    group.sample_size(10);
    for blocks in [50usize, 250] {
        let n = blocks * 200;

        // Full rebuild: a single-shard store re-serializes every row —
        // the pre-sharding baseline. The 0-1 toggle (an intra-block
        // pair) bumps the version without changing the final graph.
        let store = GraphStore::from_graph_sharded(fragmented(blocks), 1);
        store.insert_edge(0, 1); // ensure the toggled edge exists
        group.bench_function(format!("full_rebuild_n{n}"), |b| {
            b.iter(|| {
                store.remove_edge(0, 1);
                store.insert_edge(0, 1);
                black_box(store.snapshot().m())
            })
        });

        // One dirty shard of 16: the same toggle leaves 15 shards'
        // CSR segments to be copied forward from the previous snapshot.
        let store = GraphStore::from_graph_sharded(fragmented(blocks), SHARDS);
        store.insert_edge(0, 1);
        store.snapshot();
        group.bench_function(format!("one_dirty_shard_n{n}"), |b| {
            b.iter(|| {
                store.remove_edge(0, 1);
                store.insert_edge(0, 1);
                black_box(store.snapshot().m())
            })
        });

        // The same 16-edge batch on a single-shard store: the fair
        // baseline for `all_dirty` below (identical write workload,
        // pre-sharding layout).
        let store = GraphStore::from_graph_sharded(fragmented(blocks), 1);
        let pairs = per_shard_pairs(n);
        for &(u, v) in &pairs {
            store.insert_edge(u, v); // ensure every toggled edge exists
        }
        store.snapshot();
        group.bench_function(format!("full_rebuild_batch_n{n}"), |b| {
            b.iter(|| {
                for &(u, v) in &pairs {
                    store.remove_edge(u, v);
                    store.insert_edge(u, v);
                }
                black_box(store.snapshot().m())
            })
        });

        // All 16 shards dirty: one edge toggled per shard — the
        // incremental path's worst case, which must not regress against
        // the full rebuild of the same batch.
        let store = GraphStore::from_graph_sharded(fragmented(blocks), SHARDS);
        for &(u, v) in &pairs {
            store.insert_edge(u, v); // ensure every toggled edge exists
        }
        store.snapshot();
        group.bench_function(format!("all_dirty_n{n}"), |b| {
            b.iter(|| {
                for &(u, v) in &pairs {
                    store.remove_edge(u, v);
                    store.insert_edge(u, v);
                }
                black_box(store.snapshot().m())
            })
        });

        // Read-only: snapshot() between mutations is an Arc clone.
        let store = GraphStore::from_graph(fragmented(blocks));
        store.snapshot();
        group.bench_function(format!("cached_read_n{n}"), |b| {
            b.iter(|| black_box(store.snapshot().m()))
        });
    }
    group.finish();
}

fn bench_cached_repeats(c: &mut Criterion) {
    let g = fragmented(250);
    let spec = AlgoSpec::new("fpa");
    let req = [QueryRequest::new(vec![0])];

    let mut group = c.benchmark_group("cached_repeats_fragmented50k");
    group.sample_size(10);

    // Uncached: capacity 0 disables the cache, every repeat recomputes
    // (workspace reuse still applies via per-batch sessions).
    let uncached = Engine::with_cache_capacity(GraphStore::from_graph(g.clone()), 0);
    group.bench_function("uncached_repeated_query", |b| {
        b.iter(|| black_box(uncached.run_batch(&spec, &req, 1).unwrap().succeeded()))
    });

    // Cached: after the first miss every repeat is a fingerprint-valid
    // hit.
    let cached = Engine::from_graph(g);
    cached.run_batch(&spec, &req, 1).unwrap(); // warm the entry
    group.bench_function("cached_repeated_query", |b| {
        b.iter(|| black_box(cached.run_batch(&spec, &req, 1).unwrap().cache_hits))
    });

    // Update-then-query: each iteration invalidates the queried
    // component's shard and recomputes, plus pays one (incremental)
    // snapshot rebuild — the worst case of the mutate→snapshot→query
    // cycle.
    let churn = Engine::from_graph(fragmented(250));
    group.bench_function("update_then_query", |b| {
        b.iter(|| {
            churn.remove_edge(0, 1);
            churn.insert_edge(0, 1);
            black_box(churn.run_batch(&spec, &req, 1).unwrap().cache_misses)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_snapshot_rebuild, bench_cached_repeats);
criterion_main!(benches);
