//! Versioned-store benchmarks backing the two performance claims of the
//! live-update path:
//!
//! 1. **Snapshot rebuild cost scales with graph size** (`O(|V| + |E|)`),
//!    and the lazy cache makes the *read* path free between mutations —
//!    `snapshot_rebuild` measures a mutate→snapshot cycle (forced
//!    rebuild) against a pure snapshot read (Arc clone) at 10k and 50k
//!    nodes.
//! 2. **Repeated queries are dominated by the result cache** —
//!    `cached_repeats` compares a repeated single query on the
//!    fragmented-50k serving graph with the version-keyed cache against
//!    the same query recomputed every time (cache capacity 0).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dmcs_engine::{AlgoSpec, Engine, QueryRequest};
use dmcs_gen::sbm;
use dmcs_graph::{Graph, GraphStore};

/// The fragmented serving graph of the engine's other benches: 250
/// disconnected ~200-node blocks.
fn fragmented(blocks: usize) -> Graph {
    let sizes = vec![200usize; blocks];
    let (g, _) = sbm::planted_partition(&sizes, 0.06, 0.0, 7);
    g
}

fn bench_snapshot_rebuild(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_snapshot_rebuild");
    group.sample_size(10);
    for blocks in [50usize, 250] {
        let n = blocks * 200;
        let store = GraphStore::from_graph(fragmented(blocks));
        // Mutate + read: every iteration bumps the version (toggling one
        // edge), so snapshot() pays the full CSR rebuild.
        group.bench_function(format!("rebuild_n{n}"), |b| {
            b.iter(|| {
                // 0-1 is an intra-block edge: remove re-add toggles the
                // version twice without changing the final graph.
                store.remove_edge(0, 1);
                store.insert_edge(0, 1);
                black_box(store.snapshot().m())
            })
        });
        // Read-only: snapshot() between mutations is an Arc clone.
        let store = GraphStore::from_graph(fragmented(blocks));
        store.snapshot();
        group.bench_function(format!("cached_read_n{n}"), |b| {
            b.iter(|| black_box(store.snapshot().m()))
        });
    }
    group.finish();
}

fn bench_cached_repeats(c: &mut Criterion) {
    let g = fragmented(250);
    let spec = AlgoSpec::new("fpa");
    let req = [QueryRequest::new(vec![0])];

    let mut group = c.benchmark_group("cached_repeats_fragmented50k");
    group.sample_size(10);

    // Uncached: capacity 0 disables the cache, every repeat recomputes
    // (workspace reuse still applies via per-batch sessions).
    let uncached = Engine::with_cache_capacity(GraphStore::from_graph(g.clone()), 0);
    group.bench_function("uncached_repeated_query", |b| {
        b.iter(|| black_box(uncached.run_batch(&spec, &req, 1).unwrap().succeeded()))
    });

    // Cached: after the first miss every repeat is a version-keyed hit.
    let cached = Engine::from_graph(g);
    cached.run_batch(&spec, &req, 1).unwrap(); // warm the entry
    group.bench_function("cached_repeated_query", |b| {
        b.iter(|| black_box(cached.run_batch(&spec, &req, 1).unwrap().cache_hits))
    });

    // Update-then-query: each iteration invalidates (version bump) and
    // recomputes plus pays one snapshot rebuild — the worst case of the
    // mutate→snapshot→query cycle.
    let churn = Engine::from_graph(fragmented(250));
    group.bench_function("update_then_query", |b| {
        b.iter(|| {
            churn.remove_edge(0, 1);
            churn.insert_edge(0, 1);
            black_box(churn.run_batch(&spec, &req, 1).unwrap().cache_misses)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_snapshot_rebuild, bench_cached_repeats);
criterion_main!(benches);
