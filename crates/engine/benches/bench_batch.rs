//! Batch-engine benchmarks backing the engine's two performance claims:
//!
//! 1. **Concurrency** — `batch_throughput` runs the same 64-query batch
//!    through `BatchRunner` at 1 and 4 worker threads over an SBM graph.
//!    On a ≥4-core machine the 4-thread batch should finish ≥2× faster
//!    per iteration (community searches are embarrassingly parallel and
//!    the graph is shared read-only).
//! 2. **Workspace reuse** — `workspace_reuse` compares per-query FPA and
//!    NCA latency with a fresh allocation per query (`search`) against a
//!    recycled per-worker `QueryWorkspace` (`search_with_workspace`):
//!    the reused path skips the `O(n)` alive-mask / degree / distance
//!    allocations every query.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dmcs_core::{CommunitySearch, Fpa, Nca};
use dmcs_engine::{AlgoSpec, BatchRunner, Engine, QueryRequest, Session};
use dmcs_gen::sbm;
use dmcs_graph::view::QueryWorkspace;
use dmcs_graph::{Graph, GraphStore, NodeId, Snapshot};

/// Eight planted blocks of 100 nodes: big enough that per-query state
/// dominates, small enough that a full batch fits one bench iteration.
fn sbm_graph() -> (Graph, Vec<Vec<NodeId>>) {
    let blocks = [100usize; 8];
    let (g, comms) = sbm::planted_partition(&blocks, 0.12, 0.004, 42);
    // One single-node query per block member sample: 8 per block.
    let queries: Vec<Vec<NodeId>> = comms
        .iter()
        .flat_map(|c| c.iter().step_by(c.len() / 8).take(8).map(|&v| vec![v]))
        .collect();
    (g, queries)
}

fn bench_batch_throughput(c: &mut Criterion) {
    let (g, queries) = sbm_graph();
    let snap = Snapshot::freeze(g);
    let requests = QueryRequest::from_node_lists(&queries);
    let mut group = c.benchmark_group("batch_throughput_sbm800");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        let runner = BatchRunner::new(AlgoSpec::new("fpa"), threads).unwrap();
        group.bench_function(format!("fpa_threads{threads}"), |b| {
            b.iter(|| black_box(runner.run(black_box(&snap), black_box(&requests)).unwrap()))
        });
    }
    group.finish();
}

fn bench_workspace_reuse(c: &mut Criterion) {
    let (g, queries) = sbm_graph();
    let mut group = c.benchmark_group("workspace_reuse_sbm800");
    group.sample_size(10);

    let fpa = Fpa::default();
    let mut i = 0usize;
    group.bench_function("fpa_fresh_alloc_per_query", |b| {
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(fpa.search(&g, q).unwrap())
        })
    });
    let mut ws = QueryWorkspace::new();
    let mut j = 0usize;
    group.bench_function("fpa_reused_workspace", |b| {
        b.iter(|| {
            let q = &queries[j % queries.len()];
            j += 1;
            black_box(fpa.search_with_workspace(&g, q, &mut ws).unwrap())
        })
    });

    let nca = Nca::default();
    let mut i = 0usize;
    group.bench_function("nca_fresh_alloc_per_query", |b| {
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(nca.search(&g, q).unwrap())
        })
    });
    let mut ws = QueryWorkspace::new();
    let mut j = 0usize;
    group.bench_function("nca_reused_workspace", |b| {
        b.iter(|| {
            let q = &queries[j % queries.len()];
            j += 1;
            black_box(nca.search_with_workspace(&g, q, &mut ws).unwrap())
        })
    });
    group.finish();

    // Serving-shaped workload: a big fragmented graph (250 disconnected
    // blocks, 50k nodes) where each query touches one ~200-node
    // component. Per-query work is O(component), but the fresh-allocation
    // path pays four O(n) array constructions per query (alive mask,
    // local degrees, BFS distances, component scan); the workspace's
    // sparse resets drop all of them.
    let blocks = [200usize; 250];
    let (frag, comms) = sbm::planted_partition(&blocks, 0.06, 0.0, 7);
    let frag_queries: Vec<Vec<NodeId>> = comms.iter().map(|c| vec![c[0]]).collect();
    let mut group = c.benchmark_group("workspace_reuse_fragmented50k");
    group.sample_size(10);
    let mut i = 0usize;
    group.bench_function("fpa_fresh_alloc_per_query", |b| {
        b.iter(|| {
            let q = &frag_queries[i % frag_queries.len()];
            i += 1;
            black_box(fpa.search(&frag, q).unwrap())
        })
    });
    let mut ws = QueryWorkspace::new();
    let mut j = 0usize;
    group.bench_function("fpa_reused_workspace", |b| {
        b.iter(|| {
            let q = &frag_queries[j % frag_queries.len()];
            j += 1;
            black_box(fpa.search_with_workspace(&frag, q, &mut ws).unwrap())
        })
    });
    group.finish();
}

/// The serving-API claim behind `Engine::session`: a client issuing
/// repeated *single* queries through one long-lived [`Session`] beats
/// spinning a fresh one-query `Engine::run_batch` per request, because
/// the session keeps its `QueryWorkspace` (and resolved algorithm)
/// across queries while each fresh batch re-allocates both. Same
/// fragmented-50k graph as the workspace-reuse benchmark above.
fn bench_session_vs_fresh_batch(c: &mut Criterion) {
    let blocks = [200usize; 250];
    let (frag, comms) = sbm::planted_partition(&blocks, 0.06, 0.0, 7);
    let queries: Vec<Vec<NodeId>> = comms.iter().map(|c| vec![c[0]]).collect();
    // Cache capacity 0: this bench isolates workspace/session reuse,
    // not the result cache (bench_store covers cached repeats).
    let engine = Engine::with_cache_capacity(GraphStore::from_graph(frag), 0);
    let spec = AlgoSpec::new("fpa");

    let mut group = c.benchmark_group("session_reuse_fragmented50k");
    group.sample_size(10);

    let mut i = 0usize;
    group.bench_function("fresh_run_batch_per_query", |b| {
        b.iter(|| {
            let q = queries[i % queries.len()].clone();
            i += 1;
            let report = engine.run_batch(&spec, &[QueryRequest::new(q)], 1).unwrap();
            black_box(report.succeeded())
        })
    });

    let mut session: Session = engine.session(&spec).unwrap();
    let mut j = 0usize;
    group.bench_function("session_repeated_single_queries", |b| {
        b.iter(|| {
            let q = &queries[j % queries.len()];
            j += 1;
            black_box(session.search(q).unwrap())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_batch_throughput,
    bench_workspace_reuse,
    bench_session_vs_fresh_batch
);
criterion_main!(benches);
