//! Batch-engine benchmarks backing the engine's two performance claims:
//!
//! 1. **Concurrency** — `batch_throughput` runs the same 64-query batch
//!    through `BatchRunner` at 1 and 4 worker threads over an SBM graph.
//!    On a ≥4-core machine the 4-thread batch should finish ≥2× faster
//!    per iteration (community searches are embarrassingly parallel and
//!    the graph is shared read-only).
//! 2. **Workspace reuse** — `workspace_reuse` compares per-query FPA and
//!    NCA latency with a fresh allocation per query (`search`) against a
//!    recycled per-worker `QueryWorkspace` (`search_with_workspace`):
//!    the reused path skips the `O(n)` alive-mask / degree / distance
//!    allocations every query.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dmcs_core::{CommunitySearch, Fpa, Nca};
use dmcs_engine::{AlgoSpec, BatchRunner, Engine, PlanMode, QueryRequest, Session};
use dmcs_gen::sbm;
use dmcs_graph::layout::{self, ComputeGraph, NodeMap};
use dmcs_graph::view::QueryWorkspace;
use dmcs_graph::{Graph, GraphStore, LayoutPolicy, NodeId, Snapshot};

/// Eight planted blocks of 100 nodes: big enough that per-query state
/// dominates, small enough that a full batch fits one bench iteration.
fn sbm_graph() -> (Graph, Vec<Vec<NodeId>>) {
    let blocks = [100usize; 8];
    let (g, comms) = sbm::planted_partition(&blocks, 0.12, 0.004, 42);
    // One single-node query per block member sample: 8 per block.
    let queries: Vec<Vec<NodeId>> = comms
        .iter()
        .flat_map(|c| c.iter().step_by(c.len() / 8).take(8).map(|&v| vec![v]))
        .collect();
    (g, queries)
}

fn bench_batch_throughput(c: &mut Criterion) {
    let (g, queries) = sbm_graph();
    let snap = Snapshot::freeze(g);
    let requests = QueryRequest::from_node_lists(&queries);
    let mut group = c.benchmark_group("batch_throughput_sbm800");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        let runner = BatchRunner::new(AlgoSpec::new("fpa"), threads).unwrap();
        group.bench_function(format!("fpa_threads{threads}"), |b| {
            b.iter(|| black_box(runner.run(black_box(&snap), black_box(&requests)).unwrap()))
        });
    }
    group.finish();
}

fn bench_workspace_reuse(c: &mut Criterion) {
    let (g, queries) = sbm_graph();
    let mut group = c.benchmark_group("workspace_reuse_sbm800");
    group.sample_size(10);

    let fpa = Fpa::default();
    let mut i = 0usize;
    group.bench_function("fpa_fresh_alloc_per_query", |b| {
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(fpa.search(&g, q).unwrap())
        })
    });
    let mut ws = QueryWorkspace::new();
    let mut j = 0usize;
    group.bench_function("fpa_reused_workspace", |b| {
        b.iter(|| {
            let q = &queries[j % queries.len()];
            j += 1;
            black_box(fpa.search_with_workspace(&g, q, &mut ws).unwrap())
        })
    });

    let nca = Nca::default();
    let mut i = 0usize;
    group.bench_function("nca_fresh_alloc_per_query", |b| {
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(nca.search(&g, q).unwrap())
        })
    });
    let mut ws = QueryWorkspace::new();
    let mut j = 0usize;
    group.bench_function("nca_reused_workspace", |b| {
        b.iter(|| {
            let q = &queries[j % queries.len()];
            j += 1;
            black_box(nca.search_with_workspace(&g, q, &mut ws).unwrap())
        })
    });
    group.finish();

    // Serving-shaped workload: a big fragmented graph (250 disconnected
    // blocks, 50k nodes) where each query touches one ~200-node
    // component. Per-query work is O(component), but the fresh-allocation
    // path pays four O(n) array constructions per query (alive mask,
    // local degrees, BFS distances, component scan); the workspace's
    // sparse resets drop all of them.
    let blocks = [200usize; 250];
    let (frag, comms) = sbm::planted_partition(&blocks, 0.06, 0.0, 7);
    let frag_queries: Vec<Vec<NodeId>> = comms.iter().map(|c| vec![c[0]]).collect();
    let mut group = c.benchmark_group("workspace_reuse_fragmented50k");
    group.sample_size(10);
    let mut i = 0usize;
    group.bench_function("fpa_fresh_alloc_per_query", |b| {
        b.iter(|| {
            let q = &frag_queries[i % frag_queries.len()];
            i += 1;
            black_box(fpa.search(&frag, q).unwrap())
        })
    });
    let mut ws = QueryWorkspace::new();
    let mut j = 0usize;
    group.bench_function("fpa_reused_workspace", |b| {
        b.iter(|| {
            let q = &frag_queries[j % frag_queries.len()];
            j += 1;
            black_box(fpa.search_with_workspace(&frag, q, &mut ws).unwrap())
        })
    });
    group.finish();
}

/// The serving-API claim behind `Engine::session`: a client issuing
/// repeated *single* queries through one long-lived [`Session`] beats
/// spinning a fresh one-query `Engine::run_batch` per request, because
/// the session keeps its `QueryWorkspace` (and resolved algorithm)
/// across queries while each fresh batch re-allocates both. Same
/// fragmented-50k graph as the workspace-reuse benchmark above.
fn bench_session_vs_fresh_batch(c: &mut Criterion) {
    let blocks = [200usize; 250];
    let (frag, comms) = sbm::planted_partition(&blocks, 0.06, 0.0, 7);
    let queries: Vec<Vec<NodeId>> = comms.iter().map(|c| vec![c[0]]).collect();
    // Cache capacity 0: this bench isolates workspace/session reuse,
    // not the result cache (bench_store covers cached repeats).
    let engine = Engine::with_cache_capacity(GraphStore::from_graph(frag), 0);
    let spec = AlgoSpec::new("fpa");

    let mut group = c.benchmark_group("session_reuse_fragmented50k");
    group.sample_size(10);

    let mut i = 0usize;
    group.bench_function("fresh_run_batch_per_query", |b| {
        b.iter(|| {
            let q = queries[i % queries.len()].clone();
            i += 1;
            let report = engine.run_batch(&spec, &[QueryRequest::new(q)], 1).unwrap();
            black_box(report.succeeded())
        })
    });

    let mut session: Session = engine.session(&spec).unwrap();
    let mut j = 0usize;
    group.bench_function("session_repeated_single_queries", |b| {
        b.iter(|| {
            let q = &queries[j % queries.len()];
            j += 1;
            black_box(session.search(q).unwrap())
        })
    });
    group.finish();
}

/// A deterministic random permutation (`order[internal] = external`,
/// the shape `layout::apply_order` takes) via Fisher–Yates over a
/// splitmix-style generator — no external RNG crates.
fn scramble_order(n: usize, mut state: u64) -> Vec<NodeId> {
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = ((state >> 33) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

/// A scrambled fragmented workload (`n_blocks` components of 200 nodes)
/// shared by the locality and planning benchmarks below: the
/// planted-partition generator emits its blocks *contiguously* (already
/// the best possible layout), so the graph is first scrambled by a
/// random permutation — the realistic "ids arrived in load order" case —
/// and the layout pass has real work to undo. Returns the scrambled
/// graph plus each block's members in scrambled id space.
fn scrambled_fragmented(n_blocks: usize) -> (Graph, Vec<Vec<NodeId>>) {
    scrambled_blocks(n_blocks, 200, 0.04)
}

/// The same scrambled-fragmented construction with a chosen block size
/// and intra-block density (`scrambled_fragmented` is the 200-node
/// incarnation the locality/planning groups share).
fn scrambled_blocks(n_blocks: usize, per: usize, p_in: f64) -> (Graph, Vec<Vec<NodeId>>) {
    let blocks = vec![per; n_blocks];
    let (frag, comms) = sbm::planted_partition(&blocks, p_in, 0.0, 7);
    let order = scramble_order(frag.n(), 0xD1CE_5EED);
    let scrambled = layout::apply_order(&frag, &order);
    let mut inv = vec![0 as NodeId; frag.n()];
    for (i, &ext) in order.iter().enumerate() {
        inv[ext as usize] = i as NodeId;
    }
    let comms: Vec<Vec<NodeId>> = comms
        .iter()
        .map(|c| c.iter().map(|&v| inv[v as usize]).collect())
        .collect();
    (scrambled, comms)
}

/// **Locality claim** — `layout_fpa_fragmented50k` runs the same
/// per-query FPA workload against each layout policy's compute mirror
/// of the scrambled graph (identity = the scrambled CSR itself).
/// BFS/RCM make each ~200-node component contiguous again, so the
/// peeling loops and distance-array writes touch a compact id range
/// instead of 250 cache lines scattered over 50k slots.
fn bench_layout_locality(c: &mut Criterion) {
    let (scrambled, comms) = scrambled_fragmented(250);
    let queries: Vec<Vec<NodeId>> = comms.iter().map(|c| vec![c[0], c[c.len() / 2]]).collect();
    let fpa = Fpa::default();
    let mut group = c.benchmark_group("layout_fpa_fragmented50k");
    group.sample_size(30);
    for policy in LayoutPolicy::ALL {
        let (graph, map): (Graph, NodeMap) = match ComputeGraph::build(&scrambled, policy) {
            Some(mirror) => (mirror.graph().clone(), mirror.map().clone()),
            None => (scrambled.clone(), NodeMap::identity()),
        };
        let queries: Vec<Vec<NodeId>> = queries
            .iter()
            .map(|q| q.iter().map(|&v| map.to_internal(v)).collect())
            .collect();
        let mut ws = QueryWorkspace::new();
        let mut i = 0usize;
        group.bench_function(policy.as_str(), |b| {
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                black_box(fpa.search_with_workspace(&graph, q, &mut ws).unwrap())
            })
        });
    }
    group.finish();
}

/// **Scheduling claim** — `batch_sched_fragmented100k` runs a 4000-query
/// batch (8 queries per component, interleaved round-robin across the
/// 500 components — the worst case for any per-worker locality) with
/// the planner off (ungrouped, no memo: the pre-planner baseline) and
/// on auto (component-grouped group stealing + per-worker component
/// memo). Results are bit-identical either way — the layout_invariance
/// and batch tests pin that — so the delta is pure scheduling.
fn bench_batch_scheduling(c: &mut Criterion) {
    let (scrambled, comms) = scrambled_fragmented(500);
    // Multi-node queries throughout: that is the paper's multi-query
    // setting, and the case component scheduling targets — connectivity
    // validation for an unmemoized multi-node query costs a full-graph
    // BFS, which membership in the memoized component replaces.
    let mut queries: Vec<Vec<NodeId>> = Vec::new();
    for round in 0..8usize {
        for comm in &comms {
            let h = comm.len() / 2;
            queries.push(match round % 4 {
                0 => vec![comm[round], comm[h + round]],
                1 => vec![comm[round + 4], comm[h / 2 + round]],
                2 => vec![comm[round + 8], comm[h + round + 4], comm[h / 4 + round]],
                _ => vec![comm[round + 12], comm[h / 3 + round]],
            });
        }
    }
    // `plan_auto_rcm` stacks both tentpole levers: the batch served
    // from a physically RCM-renumbered store (what a fresh load under
    // `--layout rcm` order would look like) *and* component-grouped
    // scheduling — against the scrambled, ungrouped, memo-free
    // baseline. `plan_auto` on the scrambled store isolates the pure
    // scheduling win.
    let rcm = ComputeGraph::build(&scrambled, LayoutPolicy::Rcm).expect("rcm builds a mirror");
    let rcm_queries: Vec<Vec<NodeId>> = queries
        .iter()
        .map(|q| q.iter().map(|&v| rcm.map().to_internal(v)).collect())
        .collect();
    let scrambled_snap = Snapshot::freeze(scrambled);
    let cases = [
        (
            "plan_off",
            PlanMode::Off,
            scrambled_snap.clone(),
            QueryRequest::from_node_lists(&queries),
        ),
        (
            "plan_auto",
            PlanMode::Auto,
            scrambled_snap,
            QueryRequest::from_node_lists(&queries),
        ),
        (
            "plan_auto_rcm",
            PlanMode::Auto,
            Snapshot::freeze(rcm.graph().clone()),
            QueryRequest::from_node_lists(&rcm_queries),
        ),
    ];
    let mut group = c.benchmark_group("batch_sched_fragmented100k");
    group.sample_size(20);
    // One worker: the benefit measured here is the component-consecutive
    // execution order and the memo it feeds (on multicore, grouping
    // additionally parallelises across groups — group stealing — but a
    // thread count above the machine's core count only adds scheduler
    // noise to both sides of the comparison).
    for (label, mode, snap, requests) in &cases {
        let runner = BatchRunner::new(AlgoSpec::new("fpa"), 1)
            .unwrap()
            .with_plan(*mode);
        group.bench_function(*label, |b| {
            b.iter(|| black_box(runner.run(black_box(snap), black_box(requests)).unwrap()))
        });
    }
    group.finish();
}

/// **Memo claim** — `session_memo_fragmented50k` isolates the session
/// fix: consecutive same-component queries on one session used to
/// re-derive the component per query (an `O(n)` validation BFS plus a
/// collect-and-sort); the armed workspace memo now proves connectivity
/// by membership and reuses the component slice.
fn bench_session_memo(c: &mut Criterion) {
    let (scrambled, comms) = scrambled_fragmented(250);
    // Consecutive same-component queries, the serving pattern the memo
    // targets (a client exploring one region before moving on).
    let queries: Vec<Vec<NodeId>> = comms
        .iter()
        .flat_map(|c| {
            [
                vec![c[0]],
                vec![c[0], c[c.len() / 2]],
                vec![c[1]],
                vec![c[2], c[c.len() / 4]],
            ]
        })
        .collect();
    let spec = AlgoSpec::new("fpa");
    let snap = Snapshot::freeze(scrambled);
    let mut group = c.benchmark_group("session_memo_fragmented50k");
    group.sample_size(30);

    let mut off = Session::new(snap.clone(), &spec).unwrap().without_memo();
    let mut i = 0usize;
    group.bench_function("memo_off", |b| {
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(off.search(q).unwrap())
        })
    });

    let mut on = Session::new(snap, &spec).unwrap();
    let mut j = 0usize;
    group.bench_function("memo_on", |b| {
        b.iter(|| {
            let q = &queries[j % queries.len()];
            j += 1;
            black_box(on.search(q).unwrap())
        })
    });
    group.finish();
    // Regression guard: the memoized session must actually have reused
    // components (3 of every 4 consecutive queries share one).
    assert!(off.memo_hits() == 0, "disarmed session must never hit");
    assert!(
        on.memo_hits() > 0,
        "memoized session answered consecutive same-component queries \
         without a single memo hit — the session memo regressed"
    );
}

/// **Mirror-serving claim** — `mirror_fpa_fragmented50k` runs the same
/// single-node FPA workload through [`Session::search`] with mirror
/// serving on (per layout policy) and off (`canonical`, the scrambled
/// CSR). The responses are byte-identical — the session tests and
/// `layout_invariance` pin that — so the delta is pure substrate: the
/// mirror packs each ~200-node component into a contiguous id range,
/// and the canonical tie-break shim's id translation is the only tax.
/// Queries sweep the components in two passes (never two consecutive
/// queries in one component), so every call is a component-memo miss —
/// the cold-component serving shape the mirror exists for; the memo's
/// own win is priced separately by `session_memo_fragmented50k`.
fn bench_mirror_serving(c: &mut Criterion) {
    let (scrambled, comms) = scrambled_fragmented(250);
    let queries: Vec<Vec<NodeId>> = comms
        .iter()
        .map(|c| vec![c[0]])
        .chain(comms.iter().map(|c| vec![c[c.len() / 2]]))
        .collect();
    let spec = AlgoSpec::new("fpa");
    let mut group = c.benchmark_group("mirror_fpa_fragmented50k");
    group.sample_size(30);
    // Single-core box with noisy neighbours: a longer window keeps the
    // substrate ratio from wobbling run to run.
    group.measurement_time(std::time::Duration::from_secs(10));

    let canonical_snap = Snapshot::freeze(scrambled.clone());
    let mut canonical = Session::new(canonical_snap, &spec)
        .unwrap()
        .without_mirror();
    let mut i = 0usize;
    group.bench_function("canonical", |b| {
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(canonical.search(q).unwrap())
        })
    });

    for policy in [LayoutPolicy::Identity, LayoutPolicy::Bfs, LayoutPolicy::Rcm] {
        let store = GraphStore::from_graph(scrambled.clone()).with_layout(policy);
        let mut session = Session::new(store.snapshot(), &spec).unwrap();
        let mut j = 0usize;
        group.bench_function(format!("mirror_{}", policy.as_str()), |b| {
            b.iter(|| {
                let q = &queries[j % queries.len()];
                j += 1;
                black_box(session.search(q).unwrap())
            })
        });
        // Regression guard: the non-identity sessions must actually have
        // served from the mirror, not silently fallen back.
        assert_eq!(
            session.mirror_served() > 0,
            policy != LayoutPolicy::Identity,
            "mirror serving active exactly for non-identity policies"
        );
    }
    group.finish();
}

/// **Bitset-frontier claim** — `validate_bfs_fragmented50k` compares the
/// validation BFS the engine used to run (a fresh `vec![false; n]`
/// bytemask per call) against the pooled `u64` bitset frontier
/// ([`same_component_with_workspace`]): 8× less frontier memory touched
/// per visit plus zero allocations once the workspace is warm.
fn bench_validation_bfs(c: &mut Criterion) {
    use dmcs_graph::traversal::same_component_with_workspace;
    let (scrambled, comms) = scrambled_fragmented(250);
    // Two-node in-component queries: the BFS must actually run (single
    // nodes short-circuit) and walk a whole ~200-node component.
    let queries: Vec<Vec<NodeId>> = comms.iter().map(|c| vec![c[0], c[c.len() - 1]]).collect();
    let mut group = c.benchmark_group("validate_bfs_fragmented50k");
    group.sample_size(30);

    let mut i = 0usize;
    group.bench_function("bytemask_fresh", |b| {
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            // The pre-bitset shape: allocate a bytemask and a queue per
            // call, scan the mask as `bool`s.
            let mut visited = vec![false; scrambled.n()];
            let mut queue: Vec<NodeId> = Vec::new();
            visited[q[0] as usize] = true;
            queue.push(q[0]);
            let mut head = 0usize;
            while head < queue.len() {
                let u = queue[head];
                head += 1;
                for &w in scrambled.neighbors(u) {
                    if !visited[w as usize] {
                        visited[w as usize] = true;
                        queue.push(w);
                    }
                }
            }
            black_box(q[1..].iter().all(|&v| visited[v as usize]))
        })
    });

    let mut ws = QueryWorkspace::new();
    let mut j = 0usize;
    group.bench_function("bitset_pooled", |b| {
        b.iter(|| {
            let q = &queries[j % queries.len()];
            j += 1;
            black_box(same_component_with_workspace(&scrambled, q, &mut ws))
        })
    });
    group.finish();
}

/// **Skew-aware planning claim** — `plan_skew_giant50k` runs a batch
/// over one 40k-node giant component plus 50 two-hundred-node
/// villages: fragmented by *count* (51 components), but 80% of the mass
/// is the giant, and so is virtually all of the traffic. A count-only
/// planner (simulated via the `count_only` plan override) turns
/// grouping on — a no-op here (the giant's queries form one group in
/// submission order) that still pays the group build, and one that
/// *actively hurts* on multi-worker runs, where stealing whole groups
/// would pin the giant's entire query stream to a single worker. The
/// skew-aware auto planner sees `skew > 0.75`, skips grouping and
/// keeps only the memo — it must never lose to the planner-off
/// baseline, and count-only gains nothing over it (parity: grouping
/// had nothing to recover).
fn bench_plan_skew(c: &mut Criterion) {
    let giant = 40_000usize;
    let villages = 50usize;
    let per = 200usize;
    let mut b = dmcs_graph::GraphBuilder::new(giant + villages * per);
    for v in 0..giant as NodeId {
        b.add_edge(v, (v + 1) % giant as NodeId); // ring: connected
        if v % 13 == 0 {
            b.add_edge(v, (v + giant as NodeId / 7) % giant as NodeId);
        }
    }
    for blk in 0..villages {
        let base = (giant + blk * per) as NodeId;
        for i in 0..per as NodeId {
            b.add_edge(base + i, base + (i + 1) % per as NodeId);
            if i % 7 == 0 {
                b.add_edge(base + i, base + (i + per as NodeId / 3) % per as NodeId);
            }
        }
    }
    let snap = Snapshot::freeze(b.build());
    assert!(snap.component_index().count() > 1, "fragmented by count");
    let skew = snap.component_index().largest() as f64 / snap.graph().n() as f64;
    assert!(
        skew > 0.75 && skew < 0.9,
        "giant plus villages: skew {skew}"
    );

    // Giant-dominated traffic with an occasional village single — the
    // skewed serving shape: each giant two-node query validates and
    // peels the full 40k component (memoized consecutively under auto),
    // and the rare village query is what evicts a naive memo.
    let mut queries: Vec<Vec<NodeId>> = Vec::new();
    for i in 0..150usize {
        let a = ((i * 2_347) % (giant - 40)) as NodeId;
        queries.push(vec![a, a + 23]);
        if i % 37 == 0 {
            let blk = (i / 37) % villages;
            queries.push(vec![(giant + blk * per) as NodeId]);
        }
    }
    let requests = QueryRequest::from_node_lists(&queries);

    let auto_plan = dmcs_engine::QueryPlan::choose(PlanMode::Auto, &snap);
    assert!(
        !auto_plan.grouped && auto_plan.memoize,
        "skew must veto grouping: {auto_plan:?}"
    );
    let count_only = dmcs_engine::QueryPlan {
        grouped: true, // what a count>1 planner would decide here
        label: "count-only",
        ..auto_plan
    };

    let mut group = c.benchmark_group("plan_skew_giant50k");
    group.sample_size(10);
    // One worker: the CI containers are single-core, so the comparison
    // isolates what the plans cost and recover per query — the memo
    // (auto vs off) and the pointless group build (count-only vs auto).
    // The multi-worker serialization cost of grouping a giant is
    // structural (workers steal whole groups; see `BatchRunner::run`)
    // and is not priced here.
    let cases: [(&str, BatchRunner); 3] = [
        (
            "plan_off",
            BatchRunner::new(AlgoSpec::new("fpa"), 1)
                .unwrap()
                .with_plan(PlanMode::Off),
        ),
        (
            "plan_auto",
            BatchRunner::new(AlgoSpec::new("fpa"), 1)
                .unwrap()
                .with_plan(PlanMode::Auto),
        ),
        (
            "count_only",
            BatchRunner::new(AlgoSpec::new("fpa"), 1)
                .unwrap()
                .with_plan_override(count_only),
        ),
    ];
    for (label, runner) in &cases {
        group.bench_function(*label, |b| {
            b.iter(|| black_box(runner.run(black_box(&snap), black_box(&requests)).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_batch_throughput,
    bench_workspace_reuse,
    bench_session_vs_fresh_batch,
    bench_layout_locality,
    bench_batch_scheduling,
    bench_session_memo,
    bench_mirror_serving,
    bench_validation_bfs,
    bench_plan_skew
);
criterion_main!(benches);
