//! Weighted-serving benchmarks backing the two performance claims of the
//! weights-lane design:
//!
//! 1. **The unweighted hot path did not regress** — the weights lane is
//!    pay-for-what-you-use. `per_query_latency` measures single-query
//!    FPA on the fragmented-50k serving graph three ways: unweighted FPA
//!    on a bare graph (the PR-4 baseline shape), unweighted FPA on a
//!    *lane-carrying* graph (the lane must be inert for unweighted
//!    algorithms), and W-FPA on the weighted graph (the price of the
//!    weighted objective: f64 arithmetic + per-layer scans instead of
//!    the lazy heap).
//! 2. **Weighted snapshot rebuilds stay `O(|V| + |E|)`** —
//!    `snapshot_rebuild` compares a forced mutate→snapshot cycle on an
//!    unweighted vs a weighted 50k-node store (the weighted rebuild adds
//!    one slot-weight copy plus a strength pass).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dmcs_engine::{AlgoSpec, Engine, QueryRequest};
use dmcs_gen::sbm;
use dmcs_gen::weighting::{weight_by_communities, WeightingConfig};
use dmcs_graph::{Graph, GraphStore, NodeId};

/// The fragmented serving graph of the engine's other benches: 250
/// disconnected ~200-node blocks (50k nodes), plus its planted blocks.
fn fragmented(blocks: usize) -> (Graph, Vec<Vec<NodeId>>) {
    let sizes = vec![200usize; blocks];
    sbm::planted_partition(&sizes, 0.06, 0.0, 7)
}

/// Community-correlated weights over the fragmented topology (intra 5x,
/// seeded jitter) — the weighted regime of Definition 2.
fn weighted_fragmented(blocks: usize) -> Graph {
    let (g, comms) = fragmented(blocks);
    weight_by_communities(&g, &comms, WeightingConfig::default()).into_graph()
}

fn bench_per_query_latency(c: &mut Criterion) {
    let (bare, _) = fragmented(250);
    let laned = weighted_fragmented(250);
    let req = [QueryRequest::new(vec![0])];

    let mut group = c.benchmark_group("weighted_per_query_fragmented50k");
    group.sample_size(10);

    // Caching disabled throughout: every iteration pays the real search.
    let baseline = Engine::with_cache_capacity(GraphStore::from_graph(bare), 0);
    let spec = AlgoSpec::new("fpa");
    group.bench_function("fpa_unweighted_bare_graph", |b| {
        b.iter(|| black_box(baseline.run_batch(&spec, &req, 1).unwrap().succeeded()))
    });

    // Same unweighted algorithm, lane present: must be within noise of
    // the bare-graph number (the lane is never consulted).
    let inert = Engine::with_cache_capacity(GraphStore::from_graph(laned.clone()), 0);
    group.bench_function("fpa_unweighted_lane_carrying_graph", |b| {
        b.iter(|| black_box(inert.run_batch(&spec, &req, 1).unwrap().succeeded()))
    });

    // The weighted objective on the same graph.
    let wspec = AlgoSpec::new("fpa").weighted();
    group.bench_function("wfpa_weighted_graph", |b| {
        b.iter(|| black_box(inert.run_batch(&wspec, &req, 1).unwrap().succeeded()))
    });
    group.finish();
}

fn bench_snapshot_rebuild(c: &mut Criterion) {
    let mut group = c.benchmark_group("weighted_snapshot_rebuild_n50k");
    group.sample_size(10);

    // Unweighted baseline: toggle one edge, rebuild.
    let (bare, _) = fragmented(250);
    let store = GraphStore::from_graph(bare);
    group.bench_function("rebuild_unweighted", |b| {
        b.iter(|| {
            store.remove_edge(0, 1);
            store.insert_edge(0, 1);
            black_box(store.snapshot().m())
        })
    });

    // Weighted: same toggle (weight preserved) plus the lane rebuild.
    let wstore = GraphStore::from_graph(weighted_fragmented(250));
    let w01 = wstore.edge_weight(0, 1).expect("intra-block edge");
    group.bench_function("rebuild_weighted", |b| {
        b.iter(|| {
            wstore.remove_edge(0, 1);
            wstore.insert_edge_w(0, 1, w01);
            black_box(wstore.snapshot().m())
        })
    });

    // Weight-only churn: set_weight → rebuild (the setw serving cycle).
    group.bench_function("setw_then_rebuild", |b| {
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            wstore.set_weight(0, 1, if flip { w01 * 2.0 } else { w01 });
            black_box(wstore.snapshot().m())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_per_query_latency, bench_snapshot_rebuild);
criterion_main!(benches);
