//! Layout must be invisible: a store configured with any compute-mirror
//! [`LayoutPolicy`] answers every query with **byte-identical** response
//! JSON to the identity-layout store — same communities, same DM, same
//! errors, same external node ids — for every registered algorithm, at
//! every thread count, with planning on and off, across random update
//! interleavings. Under `--plan auto` mirror-safe searches *execute on
//! the permuted mirror* (the canonical tie-break shim keeps every byte
//! identical; plan `off` and ineligible queries stay on the canonical
//! external-id CSR), so this test pins down both halves of the
//! contract: the bytes never move, and the mirror really serves.

use dmcs_engine::output::response_json;
use dmcs_engine::registry::{self, AlgoSpec};
use dmcs_engine::{BatchRunner, PlanMode, QueryRequest};
use dmcs_gen::{lfr, sbm};
use dmcs_graph::{Graph, GraphStore, LayoutPolicy, NodeId, Snapshot};
use proptest::prelude::*;

/// Render a report's responses as JSON with the timing field zeroed —
/// `seconds` is the only legitimately nondeterministic member.
fn canonical_lines(report: &dmcs_engine::BatchReport) -> Vec<String> {
    report
        .responses
        .iter()
        .map(|r| {
            let mut r = r.clone();
            r.seconds = 0.0;
            response_json(&r, None).render()
        })
        .collect()
}

/// Deterministic update interleaving derived from `seed`: a mix of edge
/// inserts (possibly re-connecting components), deletes and fresh
/// nodes, applied identically to every store under test.
fn apply_updates(store: &GraphStore, seed: u64, rounds: usize) {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = |bound: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % bound.max(1)
    };
    for _ in 0..rounds {
        let n = store.n() as u64;
        let u = next(n) as NodeId;
        let v = next(n) as NodeId;
        match next(4) {
            0 => {
                store.remove_edge(u, v);
            }
            3 => {
                store.add_node();
            }
            _ => {
                if u != v {
                    store.insert_edge(u, v);
                }
            }
        }
    }
}

/// The property: every layout policy serves the same bytes as identity,
/// for each algorithm, at 1/2/4 threads, with planning on and off.
fn assert_layouts_invisible(g: &Graph, seed: u64, specs: &[AlgoSpec], queries: &[Vec<NodeId>]) {
    let requests = QueryRequest::from_node_lists(queries);
    let snapshots: Vec<(LayoutPolicy, Snapshot)> = LayoutPolicy::ALL
        .iter()
        .map(|&policy| {
            let store = GraphStore::from_graph(g.clone()).with_layout(policy);
            apply_updates(&store, seed, 12);
            let snap = store.snapshot();
            assert_eq!(
                snap.layout_policy(),
                policy,
                "snapshot carries its store's policy"
            );
            assert_eq!(
                snap.compute().is_some(),
                policy != LayoutPolicy::Identity,
                "mirror built exactly for non-identity policies"
            );
            (policy, snap)
        })
        .collect();

    for spec in specs {
        for threads in [1usize, 2, 4] {
            for plan in [PlanMode::Auto, PlanMode::Off] {
                let mut baseline: Option<Vec<String>> = None;
                for (policy, snap) in &snapshots {
                    let report = BatchRunner::new(spec.clone(), threads)
                        .expect("registered algorithm")
                        .with_plan(plan)
                        .run(snap, &requests)
                        .expect("no overrides to fail");
                    let lines = canonical_lines(&report);
                    match &baseline {
                        None => baseline = Some(lines),
                        Some(expect) => assert_eq!(
                            expect, &lines,
                            "{}: layout {policy} changed response bytes \
                             ({threads} threads, plan {plan})",
                            spec.name
                        ),
                    }
                    // The mirror must actually serve: every plan-auto
                    // run on a mirrored snapshot of a mirror-safe
                    // algorithm executes its single-node queries there;
                    // plan off and identity layouts never mirror.
                    let mirror_safe = registry::find(&spec.name)
                        .is_some_and(|e| e.mirror_safe && !spec.serves_weighted());
                    let singles = requests.iter().filter(|r| r.nodes.len() == 1).count() as u64;
                    if plan == PlanMode::Auto && snap.compute().is_some() && mirror_safe {
                        assert_eq!(
                            report.mirror_served, singles,
                            "{}: layout {policy} must mirror-serve single-node \
                             queries ({threads} threads)",
                            spec.name
                        );
                    } else {
                        assert_eq!(
                            report.mirror_served, 0,
                            "{}: layout {policy} plan {plan} must not mirror",
                            spec.name
                        );
                    }
                }
            }
        }
    }
}

/// Queries covering every component: each node alone plus a few
/// multi-node queries (same-component and cross-component — the latter
/// must fail identically everywhere).
fn query_mix(g: &Graph) -> Vec<Vec<NodeId>> {
    let n = g.n() as NodeId;
    let mut queries: Vec<Vec<NodeId>> = (0..n).step_by(3).map(|v| vec![v]).collect();
    if n >= 8 {
        queries.push(vec![0, 1]);
        queries.push(vec![0, n - 1]);
        queries.push(vec![n / 2, n / 2 + 1]);
    }
    queries
}

/// Exponential exact solvers only on graphs they can enumerate.
fn specs_for(n_nodes: usize) -> Vec<AlgoSpec> {
    registry::names()
        .into_iter()
        .filter(|name| n_nodes <= 16 || !matches!(*name, "exact" | "bnb"))
        .map(AlgoSpec::new)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    // Fragmented SBM (isolated blocks) — layout reorders aggressively
    // (components become contiguous under bfs/rcm) and grouping kicks
    // in; the polynomial algorithms must not notice.
    #[test]
    fn layouts_invisible_on_fragmented_sbm(seed in 0u64..1000) {
        let (g, _) = sbm::planted_partition(&[9, 8, 7], 0.7, 0.0, seed);
        let specs = specs_for(g.n());
        assert_layouts_invisible(&g, seed, &specs, &query_mix(&g));
    }

    // Small dense SBM: every algorithm, including the exact solvers.
    #[test]
    fn layouts_invisible_for_every_algorithm(seed in 0u64..1000) {
        let (g, _) = sbm::planted_partition(&[7, 7], 0.7, 0.1, seed);
        let specs = specs_for(g.n());
        assert_layouts_invisible(&g, seed, &specs, &query_mix(&g));
    }

    // LFR with hub-heavy degree sequence: degree ordering actually
    // permutes, updates splinter and regrow components.
    #[test]
    fn layouts_invisible_on_lfr(seed in 0u64..1000) {
        let cfg = lfr::LfrConfig {
            n: 48,
            avg_degree: 5.0,
            max_degree: 16,
            min_community: 8,
            max_community: 20,
            seed,
            ..lfr::LfrConfig::default()
        };
        let g = lfr::generate(&cfg).graph;
        let specs = specs_for(g.n());
        assert_layouts_invisible(&g, seed, &specs, &query_mix(&g));
    }
}
