//! The engine's central correctness property: for **every registered
//! algorithm**, `BatchRunner` at any thread count returns bit-identical
//! outcomes (same community ids, same order, same DM, same errors) to
//! sequential execution — on SBM and LFR graphs alike. This pins down
//! both the deterministic result re-ordering of the fan-out and the
//! behavioural equivalence of workspace-reusing search paths.

use dmcs_engine::registry::{self, AlgoSpec};
use dmcs_engine::{BatchRunner, QueryRequest};
use dmcs_gen::{lfr, sbm};
use dmcs_graph::{Graph, NodeId, Snapshot};
use proptest::prelude::*;

/// Compare a multi-threaded batch against the single-threaded reference
/// for one algorithm, on every thread count worth distinguishing.
fn assert_batch_deterministic(spec: &AlgoSpec, g: &Graph, queries: &[Vec<NodeId>]) {
    let snap = Snapshot::freeze(g.clone());
    let requests = QueryRequest::from_node_lists(queries);
    let reference = BatchRunner::new(spec.clone(), 1)
        .expect("registered algorithm")
        .run(&snap, &requests)
        .expect("no overrides to fail");
    for threads in [2usize, 4] {
        let parallel = BatchRunner::new(spec.clone(), threads)
            .expect("registered algorithm")
            .run(&snap, &requests)
            .expect("no overrides to fail");
        assert_eq!(reference.responses.len(), parallel.responses.len());
        for (i, (s, p)) in reference
            .responses
            .iter()
            .zip(&parallel.responses)
            .enumerate()
        {
            assert_eq!(
                s.request.nodes, p.request.nodes,
                "{}: query {i} reordered",
                spec.name
            );
            assert_eq!(
                s.result, p.result,
                "{}: query {i} differs at {threads} threads",
                spec.name
            );
        }
    }
}

/// The exponential-time exact solvers stay on graphs small enough to
/// enumerate; everything else runs everywhere.
fn specs_for(n_nodes: usize) -> Vec<AlgoSpec> {
    registry::names()
        .into_iter()
        .filter(|name| n_nodes <= 16 || !matches!(*name, "exact" | "bnb"))
        .map(AlgoSpec::new)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // Small SBM: every algorithm, including the exact solvers.
    #[test]
    fn all_algorithms_deterministic_on_sbm(seed in 0u64..1000, p_in_pct in 50u32..80) {
        let (g, comms) = sbm::planted_partition(&[7, 7], p_in_pct as f64 / 100.0, 0.15, seed);
        let queries: Vec<Vec<NodeId>> = (0..g.n() as NodeId).map(|v| vec![v]).collect();
        // Plus one multi-node query per block (exercises Steiner seeds
        // and the kt single-query error path identically on both sides).
        let mut queries = queries;
        for c in &comms {
            queries.push(vec![c[0], c[c.len() / 2]]);
        }
        for spec in specs_for(g.n()) {
            assert_batch_deterministic(&spec, &g, &queries);
        }
    }

    // Larger LFR: the polynomial algorithms.
    #[test]
    fn all_algorithms_deterministic_on_lfr(seed in 0u64..1000) {
        let cfg = lfr::LfrConfig {
            n: 60,
            avg_degree: 6.0,
            max_degree: 20,
            min_community: 10,
            max_community: 25,
            seed,
            ..lfr::LfrConfig::default()
        };
        let g = lfr::generate(&cfg).graph;
        let queries: Vec<Vec<NodeId>> =
            (0..g.n() as NodeId).step_by(5).map(|v| vec![v]).collect();
        for spec in specs_for(g.n()) {
            assert_batch_deterministic(&spec, &g, &queries);
        }
    }
}
