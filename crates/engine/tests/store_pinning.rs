//! The serving contracts of the versioned store, end to end:
//!
//! 1. a batch pins its snapshot — updates landing mid-stream never
//!    change its answers (bit-identical to a pre-update run);
//! 2. the result cache invalidates by *shard fingerprint* — a repeated
//!    query recomputes after any update touching a shard its component
//!    lives in (in a connected graph: any update at all), while a repeat
//!    with no intervening update is a hit with byte-identical JSON, and
//!    an update confined to other shards leaves the hit hot;
//! 3. in-batch dedup plus the shared cache compose across batches.

use dmcs_engine::output::{report_jsonl, response_json};
use dmcs_engine::{AlgoSpec, BatchRunner, Engine, QueryRequest};
use dmcs_gen::sbm;
use dmcs_graph::{GraphBuilder, GraphStore, NodeId, Snapshot};

fn planted_store() -> GraphStore {
    // 4 planted blocks of 24 nodes: answers are nontrivial communities.
    let (g, _) = sbm::planted_partition(&[24usize; 4], 0.5, 0.02, 11);
    GraphStore::from_graph(g)
}

fn requests() -> Vec<QueryRequest> {
    QueryRequest::from_node_lists(
        &(0..96u32)
            .step_by(8)
            .map(|v| vec![v])
            .collect::<Vec<Vec<NodeId>>>(),
    )
}

#[test]
fn a_batch_started_before_an_update_runs_on_its_pinned_snapshot() {
    let store = planted_store();
    let runner = BatchRunner::new(AlgoSpec::new("fpa"), 2).unwrap();
    let reqs = requests();

    // Reference run, no updates anywhere.
    let pinned: Snapshot = store.snapshot();
    let before = runner.run(&pinned, &reqs).unwrap();

    // Land a burst of updates in the store *between* pinning and
    // running — the snapshot must not see them.
    assert!(store.insert_edge(0, 95));
    assert!(store.insert_edge(1, 94));
    assert!(store.remove_edge(0, 95));
    let again = runner.run(&pinned, &reqs).unwrap();
    assert_eq!(before.responses.len(), again.responses.len());
    for (a, b) in before.responses.iter().zip(&again.responses) {
        assert_eq!(a.result, b.result, "pinned batch ignores updates");
    }
    // Byte-for-byte: the rendered JSON (minus per-run timings, which the
    // fixed responses carry along) is identical.
    let render = |r| report_jsonl("FPA", false, r, None);
    let strip_summary = |s: String| {
        s.lines()
            .filter(|l| l.contains("\"response\""))
            .map(str::to_string)
            .collect::<Vec<_>>()
    };
    // Timings differ per run; compare everything except "seconds".
    let scrub = |lines: Vec<String>| -> Vec<String> {
        lines
            .into_iter()
            .map(|l| {
                let mut v = dmcs_engine::output::Json::parse(&l).unwrap();
                if let dmcs_engine::output::Json::Obj(members) = &mut v {
                    members.retain(|(k, _)| k != "seconds");
                }
                v.render()
            })
            .collect()
    };
    assert_eq!(
        scrub(strip_summary(render(&before))),
        scrub(strip_summary(render(&again)))
    );

    // A fresh snapshot *does* see the net update.
    let fresh = store.snapshot();
    assert_eq!(fresh.version(), 3);
    assert!(fresh.has_edge(1, 94));
    assert!(!fresh.has_edge(0, 95));
}

#[test]
fn repeated_query_is_a_byte_identical_hit_until_any_update() {
    let engine = Engine::new(planted_store());
    let spec = AlgoSpec::new("fpa");
    let req = [QueryRequest::new(vec![3])];

    let first = engine.run_batch(&spec, &req, 1).unwrap();
    assert_eq!((first.cache_hits, first.cache_misses), (0, 1));

    // Repeat with no intervening update: a hit, and the response line
    // (including the replayed timing) renders byte-identically.
    let second = engine.run_batch(&spec, &req, 1).unwrap();
    assert_eq!((second.cache_hits, second.cache_misses), (1, 0));
    assert_eq!(
        response_json(&first.responses[0], None).render(),
        response_json(&second.responses[0], None).render(),
        "cache hit must be byte-identical JSON"
    );

    // An unrelated-looking update (an edge across the far blocks): the
    // planted graph is one connected component, so the cached answer's
    // fingerprint covers every shard the component spans — including
    // the mutated ones — and the entry stops matching.
    assert!(engine.insert_edge(70, 95));
    let third = engine.run_batch(&spec, &req, 1).unwrap();
    assert_eq!(
        (third.cache_hits, third.cache_misses),
        (0, 1),
        "an update inside the component recomputes"
    );

    // And the recomputation is an honest answer for the new graph.
    let direct = Engine::new(GraphStore::from_graph(engine.snapshot().graph().clone()));
    let check = direct.run_batch(&spec, &req, 1).unwrap();
    assert_eq!(third.responses[0].result, check.responses[0].result);
}

#[test]
fn dedup_and_cache_compose_across_batches() {
    let engine = Engine::new(planted_store());
    let spec = AlgoSpec::new("fpa");
    // 9 requests, 3 distinct.
    let reqs: Vec<QueryRequest> = (0..9u32).map(|i| QueryRequest::new(vec![i % 3])).collect();
    let first = engine.run_batch(&spec, &reqs, 4).unwrap();
    assert_eq!(first.unique_queries, 3);
    assert_eq!((first.cache_hits, first.cache_misses), (0, 3));
    assert_eq!(first.responses.len(), 9);

    let second = engine.run_batch(&spec, &reqs, 4).unwrap();
    assert_eq!(second.unique_queries, 3);
    assert_eq!(
        (second.cache_hits, second.cache_misses),
        (3, 0),
        "second batch is served entirely from the cache"
    );
    for (a, b) in first.responses.iter().zip(&second.responses) {
        assert_eq!(a.result, b.result);
        assert_eq!(a.seconds, b.seconds, "hits replay original timings");
    }
    assert_eq!(engine.cache().hits(), 3);
    assert_eq!(engine.cache().misses(), 3);
}

#[test]
fn update_in_one_shard_leaves_other_shards_cached_answers_hot() {
    // Two disjoint triangles in different shards of an 8-node store
    // split 4 ways: shard ranges {0,1} {2,3} {4,5} {6,7}. The left
    // triangle {0,1,2} lives in shards 0-1, the right one {5,6,7} in
    // shards 2-3.
    let g = GraphBuilder::from_edges(8, &[(0, 1), (1, 2), (0, 2), (5, 6), (6, 7), (5, 7)]);
    let engine = Engine::new(GraphStore::from_graph_sharded(g, 4));
    assert_eq!(engine.shard_count(), 4);
    let spec = AlgoSpec::new("fpa");
    let left = [QueryRequest::new(vec![0])];
    let right = [QueryRequest::new(vec![6])];

    let first_left = engine.run_batch(&spec, &left, 1).unwrap();
    let _first_right = engine.run_batch(&spec, &right, 1).unwrap();
    assert_eq!((engine.cache().hits(), engine.cache().misses()), (0, 2));

    // Mutate the right triangle only: bumps shards 2 and 3.
    assert!(engine.remove_edge(5, 7));

    // The left answer survives as a byte-identical hit — the update
    // never touched shards 0 or 1, the only ones its fingerprint pins.
    let replay_left = engine.run_batch(&spec, &left, 1).unwrap();
    assert_eq!(
        (replay_left.cache_hits, replay_left.cache_misses),
        (1, 0),
        "update in shard 2/3 must not evict a shard-0/1 answer"
    );
    assert_eq!(
        response_json(&first_left.responses[0], None).render(),
        response_json(&replay_left.responses[0], None).render(),
        "cache hit must replay byte-identical JSON"
    );

    // The right answer's shards moved: it recomputes honestly.
    let replay_right = engine.run_batch(&spec, &right, 1).unwrap();
    assert_eq!((replay_right.cache_hits, replay_right.cache_misses), (0, 1));
    let direct = Engine::new(GraphStore::from_graph(engine.snapshot().graph().clone()));
    let check = direct.run_batch(&spec, &right, 1).unwrap();
    assert_eq!(replay_right.responses[0].result, check.responses[0].result);
}

#[test]
fn weight_only_updates_invalidate_the_cache() {
    // Same topology, changed weight → new epoch → cache miss. The
    // weighted objective depends on every weight through w_G, so the
    // version-keyed cache must not serve pre-update answers.
    let mut b = dmcs_graph::weighted::WeightedGraphBuilder::new(6);
    for (u, v, w) in [
        (0, 1, 5.0),
        (1, 2, 5.0),
        (0, 2, 5.0),
        (3, 4, 1.0),
        (4, 5, 1.0),
        (3, 5, 1.0),
        (2, 3, 0.5),
    ] {
        b.add_edge(u, v, w);
    }
    let engine = Engine::new(GraphStore::from_graph(b.build().into_graph()));
    assert!(engine.store().is_weighted());
    let spec = AlgoSpec::new("fpa").weighted();
    let req = [QueryRequest::new(vec![3])];

    let first = engine.run_batch(&spec, &req, 1).unwrap();
    assert_eq!((first.cache_hits, first.cache_misses), (0, 1));
    assert_eq!(first.responses[0].algo, "W-FPA");
    // Light triangle from its own corner.
    assert_eq!(
        first.responses[0].result.as_ref().unwrap().community,
        vec![3, 4, 5]
    );

    // Repeat: hit.
    let repeat = engine.run_batch(&spec, &req, 1).unwrap();
    assert_eq!((repeat.cache_hits, repeat.cache_misses), (1, 0));

    // Weight-only update (no topological change): the version moves and
    // the cached answer stops matching.
    assert_eq!(engine.set_weight(2, 3, 40.0), Some(0.5));
    let after = engine.run_batch(&spec, &req, 1).unwrap();
    assert_eq!(
        (after.cache_hits, after.cache_misses),
        (0, 1),
        "changed weight, same topology: must recompute"
    );
    // And the recomputed answer reflects the new weights: the massive
    // bridge pulls node 2 into node 3's community.
    assert!(after.responses[0]
        .result
        .as_ref()
        .unwrap()
        .community
        .contains(&2));

    // Re-setting the same weight is a no-op epoch-wise: hit again.
    assert_eq!(engine.set_weight(2, 3, 40.0), Some(40.0));
    let noop = engine.run_batch(&spec, &req, 1).unwrap();
    assert_eq!((noop.cache_hits, noop.cache_misses), (1, 0));

    // Weighted and unweighted specs never share cache slots.
    let plain = engine.run_batch(&AlgoSpec::new("fpa"), &req, 1).unwrap();
    assert_eq!((plain.cache_hits, plain.cache_misses), (0, 1));
    assert_eq!(plain.responses[0].algo, "FPA");
}

#[test]
fn sessions_pin_and_reopen_across_epochs() {
    let engine = Engine::new(planted_store());
    let spec = AlgoSpec::new("fpa");
    let mut old = engine.session(&spec).unwrap();
    let before = old.query(&QueryRequest::new(vec![0])).unwrap();

    engine.insert_edge(0, 95);
    // The old session still answers for its pinned epoch — same bytes.
    let replay = old.query(&QueryRequest::new(vec![0])).unwrap();
    assert!(replay.cached, "old epoch still cached");
    assert_eq!(
        response_json(&before, None).render(),
        response_json(&replay, None).render()
    );

    // A re-opened session serves the new epoch.
    let mut fresh = engine.session(&spec).unwrap();
    assert_eq!(fresh.snapshot().version(), 1);
    let after = fresh.query(&QueryRequest::new(vec![0])).unwrap();
    assert!(!after.cached, "new epoch, new computation");
    assert!(after.result.as_ref().unwrap().community.contains(&0));
}
