//! Golden-file test for the JSON-lines rendering: a hand-constructed
//! [`BatchReport`] (fixed timings, so the output is byte-stable) must
//! render exactly the checked-in `tests/golden/batch_report.jsonl`.
//! Guards the schema the bench harness and external consumers parse —
//! a field rename or reorder fails this test, not a downstream script.

use dmcs_core::{SearchError, SearchResult};
use dmcs_engine::output::{report_jsonl, response_json, Json};
use dmcs_engine::{AlgoSpec, BatchReport, QueryRequest, QueryResponse};
use dmcs_graph::GraphError;

fn ok_result(community: Vec<u32>, dm: f64, iterations: usize) -> Result<SearchResult, SearchError> {
    Ok(SearchResult {
        community,
        density_modularity: dm,
        removal_order: vec![],
        iterations,
    })
}

/// The fixture: two successes (one tagged, one with an algorithm
/// override) and one per-query failure, with power-of-two timings so
/// float rendering is exact on every platform.
fn fixed_report() -> BatchReport {
    let responses = vec![
        QueryResponse {
            request: QueryRequest::new(vec![0]),
            algo: "FPA",
            result: ok_result(vec![0, 1, 2], 0.5, 3),
            seconds: 0.015625,
            cached: false,
        },
        QueryResponse {
            request: QueryRequest::new(vec![5, 3])
                .with_algo(AlgoSpec::new("nca"))
                .with_tag("vip"),
            algo: "NCA",
            result: ok_result(vec![3, 4, 5], 0.25, 1),
            seconds: 0.5,
            cached: true, // cached responses render identically
        },
        QueryResponse {
            request: QueryRequest::new(vec![0, 3]),
            algo: "FPA",
            result: Err(SearchError::Graph(GraphError::QueryDisconnected)),
            seconds: 0.125,
            cached: false,
        },
    ];
    BatchReport {
        responses,
        wall_seconds: 0.75,
        queries_per_sec: 4.0,
        p50_seconds: 0.125,
        p95_seconds: 0.5,
        unique_queries: 3,
        cache_hits: 1,
        cache_misses: 2,
        groups: 2,
        grouped_queries: 3,
        shared_bfs_reuses: 1,
        mirror_served: 2,
        skew: 0.5,
        plan: "auto:grouped+memo",
    }
}

#[test]
fn report_matches_the_golden_file() {
    let rendered = report_jsonl("FPA", false, &fixed_report(), None);
    let golden = include_str!("golden/batch_report.jsonl");
    assert_eq!(
        rendered, golden,
        "JSON-lines schema drifted from tests/golden/batch_report.jsonl; \
         update the golden file only on a deliberate schema change"
    );
}

#[test]
fn every_golden_line_is_valid_json() {
    for (i, line) in include_str!("golden/batch_report.jsonl")
        .lines()
        .enumerate()
    {
        let v = Json::parse(line).unwrap_or_else(|e| panic!("golden line {i}: {e}"));
        let ty = v.get("type").and_then(|t| t.as_str()).expect("type field");
        assert!(matches!(ty, "response" | "summary"), "line {i}: {ty}");
        assert_eq!(
            v.get("protocol_version").and_then(|p| p.as_u64()),
            Some(dmcs_engine::output::PROTOCOL_VERSION),
            "line {i}: protocol_version"
        );
        assert_eq!(
            v.get("server").and_then(|s| s.as_str()),
            Some(dmcs_engine::output::SERVER_ID),
            "line {i}: server"
        );
    }
}

#[test]
fn id_mapping_rewrites_query_and_community() {
    let original: Vec<u64> = vec![100, 200, 300, 4000, 5000, 6000];
    let resp = &fixed_report().responses[0];
    let v = response_json(resp, Some(&original));
    let ids = |key: &str| -> Vec<u64> {
        v.get(key)
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|x| x.as_f64().unwrap() as u64)
            .collect()
    };
    assert_eq!(ids("query"), vec![100]);
    assert_eq!(ids("community"), vec![100, 200, 300]);
}
