//! Property test: the JSON-lines rendering of a real batch round-trips
//! through the parser back to exactly the communities (and error/tag
//! structure) of the in-memory [`BatchReport`] — i.e. the structured
//! output is a faithful, lossless view of what the engine computed.

use dmcs_engine::output::{report_jsonl, Json};
use dmcs_engine::{AlgoSpec, BatchRunner, QueryRequest};
use dmcs_gen::sbm;
use dmcs_graph::{NodeId, Snapshot};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn json_lines_round_trip_the_batch_report(seed in 0u64..1000, threads in 1usize..4) {
        let (g, comms) = sbm::planted_partition(&[8, 8, 8], 0.7, 0.05, seed);
        // A mix of plain, tagged, overridden, capped and failing
        // requests, one per node sample.
        let mut requests: Vec<QueryRequest> = (0..g.n() as NodeId)
            .step_by(3)
            .map(|v| QueryRequest::new(vec![v]))
            .collect();
        requests[1] = requests[1].clone().with_tag("tagged \"q\"");
        requests[2] = requests[2].clone().with_algo(AlgoSpec::new("nca"));
        requests[3] = requests[3].clone().with_max_community_size(1);
        requests.push(QueryRequest::new(vec![comms[0][0], comms[1][0]]));

        // Synthetic original-id mapping (sparse, order-preserving).
        let original: Vec<u64> = (0..g.n() as u64).map(|v| v * 10 + 7).collect();

        let report = BatchRunner::new(AlgoSpec::new("fpa"), threads)
            .expect("registered")
            .run(&Snapshot::freeze(g), &requests)
            .expect("overrides resolve");
        let rendered = report_jsonl("FPA", false, &report, Some(&original));

        let lines: Vec<&str> = rendered.lines().collect();
        prop_assert_eq!(lines.len(), report.responses.len() + 1, "responses + summary");

        for (i, resp) in report.responses.iter().enumerate() {
            let v = Json::parse(lines[i]).expect("valid JSON line");
            prop_assert_eq!(v.get("type").unwrap().as_str(), Some("response"));
            prop_assert_eq!(v.get("algo").unwrap().as_str(), Some(resp.algo));
            match &resp.request.tag {
                Some(t) => prop_assert_eq!(v.get("tag").unwrap().as_str(), Some(t.as_str())),
                None => prop_assert_eq!(v.get("tag").unwrap(), &Json::Null),
            }
            prop_assert_eq!(v.get("ok").unwrap().as_bool(), Some(resp.is_ok()));
            match &resp.result {
                Ok(r) => {
                    // The communities must round-trip exactly (mapped to
                    // original ids, sorted).
                    let mut expected: Vec<u64> =
                        r.community.iter().map(|&n| original[n as usize]).collect();
                    expected.sort_unstable();
                    let got: Vec<u64> = v
                        .get("community")
                        .expect("community field")
                        .as_arr()
                        .expect("array")
                        .iter()
                        .map(|x| x.as_f64().unwrap() as u64)
                        .collect();
                    prop_assert_eq!(&got, &expected, "query {} community drifted", i);
                    prop_assert_eq!(
                        v.get("size").unwrap().as_f64(),
                        Some(r.community.len() as f64)
                    );
                    prop_assert_eq!(v.get("dm").unwrap().as_f64(), Some(r.density_modularity));
                }
                Err(e) => {
                    let msg = e.to_string();
                    prop_assert_eq!(v.get("error").unwrap().as_str(), Some(msg.as_str()));
                    prop_assert!(v.get("community").is_none());
                }
            }
        }

        let summary = Json::parse(lines[report.responses.len()]).expect("valid summary");
        prop_assert_eq!(summary.get("type").unwrap().as_str(), Some("summary"));
        prop_assert_eq!(summary.get("weighted").unwrap().as_bool(), Some(false));
        prop_assert_eq!(
            summary.get("queries").unwrap().as_f64(),
            Some(report.responses.len() as f64)
        );
        prop_assert_eq!(
            summary.get("ok").unwrap().as_f64(),
            Some(report.succeeded() as f64)
        );
    }
}
