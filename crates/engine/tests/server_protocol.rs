//! Integration tests of the `dmcs serve` daemon over real sockets:
//! unix and TCP round trips, framing edge cases (torn, oversized and
//! pipelined lines), a multi-connection soak with interleaved updates,
//! and graceful shutdown hygiene (no stray socket file, all threads
//! joined).
#![cfg(unix)]

use dmcs_engine::output::Json;
use dmcs_engine::registry::AlgoSpec;
use dmcs_engine::{Engine, Server, ServerConfig, ServerHandle};
use dmcs_graph::GraphBuilder;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

/// Two triangles bridged by 2–3; original ids 0..6.
fn demo_engine() -> (Engine, Vec<u64>) {
    let g = GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]);
    (Engine::from_graph(g), (0..6).collect())
}

/// A per-test unix socket path that cannot collide across the test
/// binary's threads.
fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dmcs-test-{}-{tag}.sock", std::process::id()))
}

/// Bind a server on the given config and run it on a background thread.
/// Returns the handle (for shutdown) and the join handle.
fn spawn_server(
    cfg: ServerConfig,
) -> (
    ServerHandle,
    Option<PathBuf>,
    Option<std::net::SocketAddr>,
    std::thread::JoinHandle<dmcs_engine::ServerStats>,
) {
    let (engine, original) = demo_engine();
    let server = Server::bind(engine, AlgoSpec::new("fpa"), original, &cfg).expect("bind");
    let handle = server.handle();
    let unix = server.unix_path().map(PathBuf::from);
    let tcp = server.tcp_addr();
    let join = std::thread::spawn(move || server.run());
    (handle, unix, tcp, join)
}

/// One request line out, one reply line in.
fn round_trip<S: Write, R: BufRead>(w: &mut S, r: &mut R, req: &str) -> Json {
    writeln!(w, "{req}").expect("write request");
    w.flush().expect("flush");
    let mut line = String::new();
    r.read_line(&mut line).expect("read reply");
    assert!(line.ends_with('\n'), "reply is a complete line: {line:?}");
    Json::parse(line.trim()).expect("reply parses")
}

fn reply_type(v: &Json) -> &str {
    v.get("type").and_then(Json::as_str).expect("typed reply")
}

#[test]
fn unix_round_trip_and_socket_file_hygiene() {
    let path = socket_path("unix-rt");
    let (_handle, unix, _tcp, join) = spawn_server(ServerConfig {
        unix_path: Some(path.to_string_lossy().into_owned()),
        ..ServerConfig::default()
    });
    assert_eq!(unix.as_deref(), Some(path.as_path()));
    assert!(path.exists(), "socket file exists while serving");

    let stream = UnixStream::connect(&path).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut stream = stream;

    let resp = round_trip(
        &mut stream,
        &mut reader,
        r#"{"op":"query","nodes":[0],"tag":"u"}"#,
    );
    assert_eq!(reply_type(&resp), "response");
    assert_eq!(resp.get("tag").and_then(Json::as_str), Some("u"));
    assert_eq!(resp.get("protocol_version").and_then(Json::as_u64), Some(1));
    assert!(resp
        .get("server")
        .and_then(Json::as_str)
        .unwrap()
        .starts_with("dmcs/"));

    let stats = round_trip(&mut stream, &mut reader, r#"{"op":"stats"}"#);
    assert_eq!(reply_type(&stats), "stats");
    assert_eq!(stats.get("connections").and_then(Json::as_u64), Some(1));

    let bye = round_trip(&mut stream, &mut reader, r#"{"op":"shutdown"}"#);
    assert_eq!(reply_type(&bye), "shutdown");
    // The connection still flushes its summary line before closing.
    let mut line = String::new();
    reader.read_line(&mut line).expect("summary");
    let summary = Json::parse(line.trim()).expect("summary parses");
    assert_eq!(reply_type(&summary), "summary");
    assert_eq!(summary.get("queries").and_then(Json::as_u64), Some(1));

    let stats = join.join().expect("server thread joins");
    assert_eq!(stats.connections, 1);
    assert_eq!(stats.served, 1);
    assert!(!path.exists(), "socket file unlinked after shutdown");
}

#[test]
fn tcp_round_trip_with_updates_and_repin() {
    let (handle, _unix, tcp, join) = spawn_server(ServerConfig {
        tcp_addr: Some("127.0.0.1:0".into()),
        ..ServerConfig::default()
    });
    let addr = tcp.expect("ephemeral tcp port resolved");

    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut stream = stream;

    let before = round_trip(&mut stream, &mut reader, r#"{"op":"query","nodes":[0]}"#);
    assert_eq!(reply_type(&before), "response");

    let up = round_trip(
        &mut stream,
        &mut reader,
        r#"{"op":"update","action":"add","u":0,"v":3}"#,
    );
    assert_eq!(reply_type(&up), "update");
    assert_eq!(up.get("version").and_then(Json::as_u64), Some(1));

    // Still pinned: the same query replays the pre-update answer.
    let pinned = round_trip(&mut stream, &mut reader, r#"{"op":"query","nodes":[0]}"#);
    assert_eq!(pinned, before);

    let repin = round_trip(&mut stream, &mut reader, r#"{"op":"repin"}"#);
    assert_eq!(reply_type(&repin), "repin");
    assert_eq!(repin.get("version").and_then(Json::as_u64), Some(1));

    let after = round_trip(&mut stream, &mut reader, r#"{"op":"query","nodes":[0]}"#);
    assert_eq!(reply_type(&after), "response");
    assert_ne!(after, before, "the new epoch serves the mutated graph");

    handle.shutdown();
    drop(stream);
    drop(reader);
    let stats = join.join().expect("server thread joins");
    assert_eq!(stats.connections, 1);
    assert_eq!(stats.served, 4);
}

#[test]
fn pipelined_requests_answer_in_order() {
    let (handle, _unix, tcp, join) = spawn_server(ServerConfig {
        tcp_addr: Some("127.0.0.1:0".into()),
        ..ServerConfig::default()
    });
    let stream = TcpStream::connect(tcp.unwrap()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut stream = stream;

    // One write, several requests: replies must come back in order.
    let batch = r#"{"op":"query","nodes":[0],"tag":"first"}
{"op":"query","nodes":[3],"tag":"second"}
{"op":"stats"}
{"op":"query","nodes":[5],"tag":"third"}
"#;
    stream.write_all(batch.as_bytes()).expect("write batch");
    stream.flush().expect("flush");

    let mut tags = Vec::new();
    for _ in 0..4 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("reply");
        let v = Json::parse(line.trim()).expect("parses");
        match reply_type(&v) {
            "response" => tags.push(v.get("tag").and_then(Json::as_str).unwrap().to_string()),
            "stats" => tags.push("<stats>".into()),
            other => panic!("unexpected reply type {other}"),
        }
    }
    assert_eq!(tags, ["first", "second", "<stats>", "third"]);

    handle.shutdown();
    drop(stream);
    drop(reader);
    join.join().expect("server thread joins");
}

#[test]
fn torn_and_oversized_lines_over_a_real_socket() {
    let (handle, _unix, tcp, join) = spawn_server(ServerConfig {
        tcp_addr: Some("127.0.0.1:0".into()),
        max_line_bytes: 64,
        ..ServerConfig::default()
    });
    let addr = tcp.unwrap();

    // Oversized line: typed code-9 reply, then the connection resyncs.
    {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut stream = stream;
        let huge = format!("{{\"op\":\"query\",\"nodes\":[{}0]}}\n", "0,".repeat(200));
        stream.write_all(huge.as_bytes()).expect("write huge");
        let next = r#"{"op":"query","nodes":[1],"tag":"after"}"#;
        let resync = round_trip(&mut stream, &mut reader, next);
        // Depending on read interleaving the huge line's error may land
        // first; collect until the tagged response shows up.
        let mut seen_oversize = false;
        let mut current = resync;
        loop {
            match reply_type(&current) {
                "error" => {
                    assert_eq!(current.get("code").and_then(Json::as_u64), Some(9));
                    assert!(current
                        .get("error")
                        .and_then(Json::as_str)
                        .unwrap()
                        .contains("exceeds 64 bytes"));
                    seen_oversize = true;
                }
                "response" => {
                    assert_eq!(current.get("tag").and_then(Json::as_str), Some("after"));
                    break;
                }
                other => panic!("unexpected reply type {other}"),
            }
            let mut line = String::new();
            reader.read_line(&mut line).expect("next reply");
            current = Json::parse(line.trim()).expect("parses");
        }
        assert!(seen_oversize, "the oversized line got its typed reply");
    }

    // Torn line: close the write half mid-request; the server answers
    // with a typed code-9 reply and the summary, never hangs.
    {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut stream = stream;
        stream
            .write_all(br#"{"op":"stats""#)
            .expect("write partial");
        stream.flush().expect("flush");
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let mut line = String::new();
        reader.read_line(&mut line).expect("torn reply");
        let torn = Json::parse(line.trim()).expect("parses");
        assert_eq!(reply_type(&torn), "error");
        assert_eq!(torn.get("code").and_then(Json::as_u64), Some(9));
        assert!(torn
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("torn line"));
        line.clear();
        reader.read_line(&mut line).expect("summary");
        assert_eq!(reply_type(&Json::parse(line.trim()).unwrap()), "summary");
    }

    handle.shutdown();
    join.join().expect("server thread joins");
}

#[test]
fn overload_replies_are_typed_code_8() {
    let (handle, _unix, tcp, join) = spawn_server(ServerConfig {
        tcp_addr: Some("127.0.0.1:0".into()),
        queue_cap: 0,
        ..ServerConfig::default()
    });
    let stream = TcpStream::connect(tcp.unwrap()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut stream = stream;

    let rejected = round_trip(&mut stream, &mut reader, r#"{"op":"query","nodes":[0]}"#);
    assert_eq!(reply_type(&rejected), "error");
    assert_eq!(rejected.get("code").and_then(Json::as_u64), Some(8));

    // Control ops are exempt from admission: clients can still observe
    // and drain an overloaded server.
    let stats = round_trip(&mut stream, &mut reader, r#"{"op":"stats"}"#);
    assert_eq!(reply_type(&stats), "stats");
    assert_eq!(stats.get("queue_cap").and_then(Json::as_u64), Some(0));

    handle.shutdown();
    drop(stream);
    drop(reader);
    join.join().expect("server thread joins");
}

/// The acceptance soak: 4 concurrent connections pinned to the same
/// epoch, queries pipelined while a fifth connection applies updates.
/// Every connection's replies must be byte-identical to the sequential
/// reference run (pinning + version-keyed cache make this exact, not
/// just approximate).
#[test]
fn soak_concurrent_connections_with_interleaved_updates() {
    let path = socket_path("soak");
    let (_handle, _unix, _tcp, join) = spawn_server(ServerConfig {
        unix_path: Some(path.to_string_lossy().into_owned()),
        ..ServerConfig::default()
    });

    const SCRIPT: [&str; 5] = [
        r#"{"op":"query","nodes":[0],"tag":"s1"}"#,
        r#"{"op":"query","nodes":[3],"tag":"s2"}"#,
        r#"{"op":"query","nodes":[0,1],"tag":"s3"}"#,
        r#"{"op":"query","nodes":[5],"tag":"s4"}"#,
        r#"{"op":"query","nodes":[0],"tag":"s1"}"#, // repeat of s1
    ];

    // Sequential reference on epoch 0 (also warms the shared cache).
    let reference: Vec<String> = {
        let stream = UnixStream::connect(&path).expect("connect ref");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut stream = stream;
        SCRIPT
            .iter()
            .map(|req| {
                writeln!(stream, "{req}").expect("write");
                let mut line = String::new();
                reader.read_line(&mut line).expect("reply");
                line
            })
            .collect()
    };
    assert_eq!(
        reference[0], reference[4],
        "repeat of the same query replays byte-identically"
    );

    // 4 clients connect and pin epoch 0 by completing SCRIPT[0] before
    // any update is applied.
    let mut clients: Vec<(UnixStream, BufReader<UnixStream>, Vec<String>)> = (0..4)
        .map(|_| {
            let stream = UnixStream::connect(&path).expect("connect");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut stream = stream;
            writeln!(stream, "{}", SCRIPT[0]).expect("write");
            let mut line = String::new();
            reader.read_line(&mut line).expect("pin reply");
            (stream, reader, vec![line])
        })
        .collect();

    // Interleaved updates on their own connection, concurrent with the
    // clients' remaining queries.
    let updater = {
        let path = path.clone();
        std::thread::spawn(move || {
            let stream = UnixStream::connect(&path).expect("connect updater");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut stream = stream;
            for req in [
                r#"{"op":"update","action":"add","u":0,"v":3}"#,
                r#"{"op":"update","action":"del","u":2,"v":3}"#,
                r#"{"op":"update","action":"add","u":6,"v":0}"#,
            ] {
                writeln!(stream, "{req}").expect("write update");
                let mut line = String::new();
                reader.read_line(&mut line).expect("update reply");
                let v = Json::parse(line.trim()).expect("parses");
                assert_eq!(reply_type(&v), "update", "{line}");
            }
        })
    };

    // Pipeline the rest of the script on every client concurrently.
    let worker_replies: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = clients
            .iter_mut()
            .map(|(stream, reader, _)| {
                scope.spawn(move || {
                    let rest = SCRIPT[1..].join("\n") + "\n";
                    stream.write_all(rest.as_bytes()).expect("write rest");
                    stream.flush().expect("flush");
                    (1..SCRIPT.len())
                        .map(|_| {
                            let mut line = String::new();
                            reader.read_line(&mut line).expect("reply");
                            line
                        })
                        .collect::<Vec<String>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    updater.join().unwrap();

    for (i, ((_, _, pinned), rest)) in clients.iter().zip(&worker_replies).enumerate() {
        let mut got = pinned.clone();
        got.extend(rest.iter().cloned());
        assert_eq!(
            got, reference,
            "client {i}: pinned-epoch replies are byte-identical to the sequential run"
        );
    }

    // Cache counters surface in stats; every connection and the server
    // shut down cleanly with no socket file left behind.
    let stream = UnixStream::connect(&path).expect("connect stats");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut stream = stream;
    let stats = round_trip(&mut stream, &mut reader, r#"{"op":"stats"}"#);
    assert_eq!(reply_type(&stats), "stats");
    let hits = stats.get("cache_hits").and_then(Json::as_u64).unwrap();
    let misses = stats.get("cache_misses").and_then(Json::as_u64).unwrap();
    // 4 distinct epoch-0 queries compute once each; everything else
    // (the reference repeat + 4 clients x 5 queries) replays.
    assert_eq!(misses, 4, "distinct (query, epoch) pairs compute once");
    assert_eq!(hits, 21, "every repeated query is a cache hit");
    // 3 update ops, but `add 6 0` first creates node 6: 4 version bumps.
    assert_eq!(stats.get("version").and_then(Json::as_u64), Some(4));
    let bye = round_trip(&mut stream, &mut reader, r#"{"op":"shutdown"}"#);
    assert_eq!(reply_type(&bye), "shutdown");
    drop(clients);

    let final_stats = join.join().expect("server thread joins");
    assert_eq!(final_stats.connections, 7);
    assert_eq!(final_stats.served, 5 + 4 * 5 + 3);
    assert_eq!(final_stats.cache_hits, 21);
    assert_eq!(final_stats.cache_misses, 4);
    assert!(!path.exists(), "socket file unlinked after shutdown");
}
