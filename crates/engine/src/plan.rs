//! Stats-driven query planning: pick *execution strategy* — never
//! results — from cheap per-snapshot graph statistics.
//!
//! The planner reads the snapshot's component index (a one-pass
//! union-find computed lazily and cached on the snapshot, see
//! [`Snapshot::component_index`](dmcs_graph::Snapshot::component_index))
//! and decides two things:
//!
//! - **`grouped`** — whether a [`BatchRunner`](crate::BatchRunner)
//!   should schedule queries component-by-component so that consecutive
//!   queries on a worker share a connected component (and therefore the
//!   worker session's memoized component BFS). Grouping only pays when
//!   the graph is fragmented; on a single-component graph it is a no-op
//!   reordering, so the planner turns it off.
//! - **`memoize`** — whether worker sessions arm the per-workspace
//!   component memo at all ([`QueryWorkspace::arm_component_memo`](
//!   dmcs_graph::view::QueryWorkspace::arm_component_memo)).
//! - **`mirror`** — whether sessions may execute mirror-safe searches on
//!   the snapshot's renumbered compute mirror (the canonical tie-break
//!   shim keeps the output byte-identical; see `dmcs_graph::layout`).
//!
//! Grouping is **skew-aware**, not just count-aware: a graph that is one
//! giant component plus dust has many components but no locality to
//! recover — nearly every query lands in the giant component anyway, so
//! grouping would only pay scheduling overhead. The planner computes the
//! largest-component mass fraction ([`QueryPlan::skew`]) from the
//! snapshot's component index and groups only fragmented snapshots whose
//! mass is actually spread out.
//!
//! ## Why the planner never touches the algorithm
//!
//! Every knob the planner controls is **result-invariant**: grouping
//! only permutes the order in which workers *execute* queries (the
//! report still lists responses in submission order), and the component
//! memo short-circuits a BFS whose outcome is fully determined by the
//! snapshot. The planner deliberately has no authority over *which*
//! algorithm answers a query — the peeling algorithms break ties by
//! node id and track best-snapshots by removal order, so substituting
//! an "equivalent" algorithm (or reordering its removals) could return
//! a different, equally valid community. The engine's contract is
//! byte-identical output for identical requests, with or without a
//! plan; strategy choices that cannot alter bytes are the planner's
//! entire vocabulary.

use dmcs_graph::Snapshot;

/// Planner switch, selected with `--plan auto|off` on the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanMode {
    /// Choose strategy from per-snapshot statistics (the default).
    #[default]
    Auto,
    /// Disable planning: ungrouped scheduling, no component memo. The
    /// baseline execution path, kept selectable for benchmarks and for
    /// bisecting suspected planner regressions.
    Off,
}

impl PlanMode {
    /// Stable lowercase name, the inverse of the [`FromStr`](std::str::FromStr) parse.
    pub fn as_str(self) -> &'static str {
        match self {
            PlanMode::Auto => "auto",
            PlanMode::Off => "off",
        }
    }
}

impl std::str::FromStr for PlanMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(PlanMode::Auto),
            "off" => Ok(PlanMode::Off),
            other => Err(format!("unknown plan mode '{other}' (expected auto|off)")),
        }
    }
}

impl std::fmt::Display for PlanMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The execution strategy chosen for one snapshot: all fields are
/// result-invariant (see the module docs for why that is a hard rule).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryPlan {
    /// Schedule batch queries grouped by connected component.
    pub grouped: bool,
    /// Arm the per-worker component memo.
    pub memoize: bool,
    /// Let sessions serve mirror-safe searches from the renumbered
    /// compute mirror (only ever true when the snapshot carries one).
    pub mirror: bool,
    /// Largest-component mass fraction of the snapshot (`1.0` on a
    /// connected or empty graph) — the statistic behind the grouping
    /// decision, surfaced in summaries and `stats` replies.
    pub skew: f64,
    /// Human-readable label surfaced in batch summaries and server
    /// `stats` output, e.g. `"auto:grouped+memo"`.
    pub label: &'static str,
}

/// Above this largest-component mass fraction the snapshot is treated as
/// "one giant component plus dust": grouping cannot recover locality
/// that was never spread out, so Auto plans skip it.
const SKEW_GROUPING_CUTOFF: f64 = 0.75;

impl QueryPlan {
    /// Choose a plan for `snapshot` under `mode`.
    ///
    /// `Auto` always memoizes (the memo is free when it never hits),
    /// groups exactly when the snapshot is fragmented **and** its mass
    /// is spread out (`skew < SKEW_GROUPING_CUTOFF`, 0.75), and serves
    /// from the mirror whenever the snapshot carries one — the
    /// canonical tie-break shim makes that unconditionally safe, and
    /// per-query eligibility (algorithm, weights) is the session's
    /// call. `Off` disables everything; `skew` is still reported so
    /// observability does not depend on the plan.
    pub fn choose(mode: PlanMode, snapshot: &Snapshot) -> QueryPlan {
        let index = snapshot.component_index();
        let n = snapshot.graph().n();
        let skew = if n == 0 {
            1.0
        } else {
            index.largest() as f64 / n as f64
        };
        match mode {
            PlanMode::Off => QueryPlan {
                grouped: false,
                memoize: false,
                mirror: false,
                skew,
                label: "off",
            },
            PlanMode::Auto => {
                let grouped = index.count() > 1 && skew < SKEW_GROUPING_CUTOFF;
                let mirror = snapshot.compute().is_some();
                QueryPlan {
                    grouped,
                    memoize: true,
                    mirror,
                    skew,
                    label: match (grouped, mirror) {
                        (false, false) => "auto:memo",
                        (true, false) => "auto:grouped+memo",
                        (false, true) => "auto:memo+mirror",
                        (true, true) => "auto:grouped+memo+mirror",
                    },
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmcs_graph::GraphBuilder;

    #[test]
    fn mode_round_trips_through_strings() {
        for mode in [PlanMode::Auto, PlanMode::Off] {
            assert_eq!(mode.as_str().parse::<PlanMode>().unwrap(), mode);
            assert_eq!(mode.to_string(), mode.as_str());
        }
        assert!("tortoise".parse::<PlanMode>().is_err());
        assert_eq!(PlanMode::default(), PlanMode::Auto);
    }

    #[test]
    fn auto_groups_only_fragmented_snapshots() {
        let connected = Snapshot::freeze(GraphBuilder::from_edges(3, &[(0, 1), (1, 2)]));
        let plan = QueryPlan::choose(PlanMode::Auto, &connected);
        assert!(!plan.grouped && plan.memoize && !plan.mirror);
        assert_eq!(plan.label, "auto:memo");
        assert!((plan.skew - 1.0).abs() < 1e-12);

        let split = Snapshot::freeze(GraphBuilder::from_edges(4, &[(0, 1), (2, 3)]));
        let plan = QueryPlan::choose(PlanMode::Auto, &split);
        assert!(plan.grouped && plan.memoize);
        assert_eq!(plan.label, "auto:grouped+memo");
        assert!((plan.skew - 0.5).abs() < 1e-12);
    }

    #[test]
    fn skew_disables_grouping_on_giant_plus_dust() {
        // A 16-node path plus 2 isolated dust components: fragmented by
        // count (3 components) but 16/18 ≈ 0.89 of the mass is one giant
        // component — grouping has no locality to recover.
        let edges: Vec<(u32, u32)> = (0..15u32).map(|v| (v, v + 1)).collect();
        let giant = Snapshot::freeze(GraphBuilder::from_edges(18, &edges));
        assert!(giant.component_index().count() > 1);
        let plan = QueryPlan::choose(PlanMode::Auto, &giant);
        assert!(!plan.grouped, "skew {} must veto grouping", plan.skew);
        assert!(plan.skew > SKEW_GROUPING_CUTOFF);
        assert_eq!(plan.label, "auto:memo");
    }

    #[test]
    fn auto_serves_from_the_mirror_when_one_exists() {
        use dmcs_graph::{GraphStore, LayoutPolicy};
        let store = GraphStore::from_graph(GraphBuilder::from_edges(4, &[(0, 1), (2, 3)]));
        let plan = QueryPlan::choose(PlanMode::Auto, &store.snapshot());
        assert!(!plan.mirror, "identity layout builds no mirror");
        store.set_layout_policy(LayoutPolicy::Bfs);
        let plan = QueryPlan::choose(PlanMode::Auto, &store.snapshot());
        assert!(plan.mirror && plan.grouped);
        assert_eq!(plan.label, "auto:grouped+memo+mirror");
        // Off never mirrors, but still reports the skew statistic.
        let off = QueryPlan::choose(PlanMode::Off, &store.snapshot());
        assert!(!off.mirror);
        assert!((off.skew - 0.5).abs() < 1e-12);
    }

    #[test]
    fn off_disables_everything() {
        let split = Snapshot::freeze(GraphBuilder::from_edges(4, &[(0, 1), (2, 3)]));
        let plan = QueryPlan::choose(PlanMode::Off, &split);
        assert!(!plan.grouped && !plan.memoize && !plan.mirror);
        assert_eq!(plan.label, "off");
    }
}
