//! Stats-driven query planning: pick *execution strategy* — never
//! results — from cheap per-snapshot graph statistics.
//!
//! The planner reads the snapshot's component index (a one-pass
//! union-find computed lazily and cached on the snapshot, see
//! [`Snapshot::component_index`](dmcs_graph::Snapshot::component_index))
//! and decides two things:
//!
//! - **`grouped`** — whether a [`BatchRunner`](crate::BatchRunner)
//!   should schedule queries component-by-component so that consecutive
//!   queries on a worker share a connected component (and therefore the
//!   worker session's memoized component BFS). Grouping only pays when
//!   the graph is fragmented; on a single-component graph it is a no-op
//!   reordering, so the planner turns it off.
//! - **`memoize`** — whether worker sessions arm the per-workspace
//!   component memo at all ([`QueryWorkspace::arm_component_memo`](
//!   dmcs_graph::view::QueryWorkspace::arm_component_memo)).
//!
//! ## Why the planner never touches the algorithm
//!
//! Every knob the planner controls is **result-invariant**: grouping
//! only permutes the order in which workers *execute* queries (the
//! report still lists responses in submission order), and the component
//! memo short-circuits a BFS whose outcome is fully determined by the
//! snapshot. The planner deliberately has no authority over *which*
//! algorithm answers a query — the peeling algorithms break ties by
//! node id and track best-snapshots by removal order, so substituting
//! an "equivalent" algorithm (or reordering its removals) could return
//! a different, equally valid community. The engine's contract is
//! byte-identical output for identical requests, with or without a
//! plan; strategy choices that cannot alter bytes are the planner's
//! entire vocabulary.

use dmcs_graph::Snapshot;

/// Planner switch, selected with `--plan auto|off` on the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanMode {
    /// Choose strategy from per-snapshot statistics (the default).
    #[default]
    Auto,
    /// Disable planning: ungrouped scheduling, no component memo. The
    /// baseline execution path, kept selectable for benchmarks and for
    /// bisecting suspected planner regressions.
    Off,
}

impl PlanMode {
    /// Stable lowercase name, the inverse of the [`FromStr`](std::str::FromStr) parse.
    pub fn as_str(self) -> &'static str {
        match self {
            PlanMode::Auto => "auto",
            PlanMode::Off => "off",
        }
    }
}

impl std::str::FromStr for PlanMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(PlanMode::Auto),
            "off" => Ok(PlanMode::Off),
            other => Err(format!("unknown plan mode '{other}' (expected auto|off)")),
        }
    }
}

impl std::fmt::Display for PlanMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The execution strategy chosen for one snapshot: all fields are
/// result-invariant (see the module docs for why that is a hard rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryPlan {
    /// Schedule batch queries grouped by connected component.
    pub grouped: bool,
    /// Arm the per-worker component memo.
    pub memoize: bool,
    /// Human-readable label surfaced in batch summaries and server
    /// `stats` output, e.g. `"auto:grouped+memo"`.
    pub label: &'static str,
}

impl QueryPlan {
    /// Choose a plan for `snapshot` under `mode`.
    ///
    /// `Auto` always memoizes (the memo is free when it never hits) and
    /// groups exactly when the snapshot has more than one connected
    /// component — on a connected graph every query shares the single
    /// component, so grouping would reorder work for no locality gain.
    /// `Off` disables everything.
    pub fn choose(mode: PlanMode, snapshot: &Snapshot) -> QueryPlan {
        match mode {
            PlanMode::Off => QueryPlan {
                grouped: false,
                memoize: false,
                label: "off",
            },
            PlanMode::Auto => {
                let fragmented = snapshot.component_index().count() > 1;
                QueryPlan {
                    grouped: fragmented,
                    memoize: true,
                    label: if fragmented {
                        "auto:grouped+memo"
                    } else {
                        "auto:memo"
                    },
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmcs_graph::GraphBuilder;

    #[test]
    fn mode_round_trips_through_strings() {
        for mode in [PlanMode::Auto, PlanMode::Off] {
            assert_eq!(mode.as_str().parse::<PlanMode>().unwrap(), mode);
            assert_eq!(mode.to_string(), mode.as_str());
        }
        assert!("tortoise".parse::<PlanMode>().is_err());
        assert_eq!(PlanMode::default(), PlanMode::Auto);
    }

    #[test]
    fn auto_groups_only_fragmented_snapshots() {
        let connected = Snapshot::freeze(GraphBuilder::from_edges(3, &[(0, 1), (1, 2)]));
        let plan = QueryPlan::choose(PlanMode::Auto, &connected);
        assert!(!plan.grouped && plan.memoize);
        assert_eq!(plan.label, "auto:memo");

        let split = Snapshot::freeze(GraphBuilder::from_edges(4, &[(0, 1), (2, 3)]));
        let plan = QueryPlan::choose(PlanMode::Auto, &split);
        assert!(plan.grouped && plan.memoize);
        assert_eq!(plan.label, "auto:grouped+memo");
    }

    #[test]
    fn off_disables_everything() {
        let split = Snapshot::freeze(GraphBuilder::from_edges(4, &[(0, 1), (2, 3)]));
        let plan = QueryPlan::choose(PlanMode::Off, &split);
        assert!(!plan.grouped && !plan.memoize);
        assert_eq!(plan.label, "off");
    }
}
