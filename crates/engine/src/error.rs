//! The engine's error taxonomy: one typed [`EngineError`] for every
//! fallible entry point of the serving API, replacing the prototype-era
//! stringly-typed error plumbing.
//!
//! Each variant maps to a stable process exit code (see
//! [`EngineError::exit_code`]) so shell callers and the CI smoke tests
//! can distinguish failure classes without parsing messages:
//!
//! | variant          | exit code | meaning                                   |
//! |------------------|-----------|-------------------------------------------|
//! | [`BadParam`]     | 2         | invalid flag / parameter / combination    |
//! | [`UnknownAlgo`]  | 3         | `--algo` label not in the registry        |
//! | [`Io`]           | 4         | a file could not be read or written       |
//! | [`UnknownNode`]  | 5         | a query id does not appear in the graph   |
//! | [`Search`]       | 6         | the search itself failed                  |
//! | [`BadUpdate`]    | 7         | a `--updates` script line is invalid      |
//! | [`Overloaded`]   | 8         | admission queue full, request rejected    |
//! | [`BadRequest`]   | 9         | a wire-protocol request line is invalid   |
//!
//! [`BadParam`]: EngineError::BadParam
//! [`UnknownAlgo`]: EngineError::UnknownAlgo
//! [`Io`]: EngineError::Io
//! [`UnknownNode`]: EngineError::UnknownNode
//! [`Search`]: EngineError::Search
//! [`BadUpdate`]: EngineError::BadUpdate
//! [`Overloaded`]: EngineError::Overloaded
//! [`BadRequest`]: EngineError::BadRequest

use crate::registry;
use dmcs_core::SearchError;

/// Everything that can go wrong between a request arriving and a
/// [`QueryResponse`](crate::QueryResponse) leaving.
///
/// ```
/// use dmcs_engine::{AlgoSpec, EngineError};
///
/// // An unknown label carries a nearest-name suggestion.
/// let Err(err) = AlgoSpec::new("fpa-dgm").build() else {
///     unreachable!("not a registered label");
/// };
/// match &err {
///     EngineError::UnknownAlgo { given, suggestion } => {
///         assert_eq!(given, "fpa-dgm");
///         assert_eq!(*suggestion, Some("fpa-dmg"));
///     }
///     other => panic!("unexpected error {other}"),
/// }
/// assert_eq!(err.exit_code(), 3);
/// assert!(err.to_string().contains("did you mean \"fpa-dmg\"?"));
/// ```
#[derive(Debug)]
pub enum EngineError {
    /// The algorithm label is not in the registry. `suggestion` is the
    /// nearest registered label by edit distance, when one is close
    /// enough to be plausible.
    UnknownAlgo {
        /// The label as given by the caller.
        given: String,
        /// Nearest registered label, if any is plausibly intended.
        suggestion: Option<&'static str>,
    },
    /// A parameter, flag value or flag combination is invalid.
    BadParam {
        /// Human-readable description of the offending parameter.
        what: String,
    },
    /// A file could not be read or written.
    Io {
        /// The path involved.
        path: String,
        /// The underlying I/O error (also exposed via `source()`).
        source: std::io::Error,
    },
    /// A query node id does not appear in the loaded graph.
    UnknownNode {
        /// The id, in the original (file) id space.
        id: u64,
        /// Where the id came from (e.g. `"q.txt: query 3"`), when the
        /// caller has more context than the bare flag value.
        context: Option<String>,
    },
    /// The community search itself failed.
    Search {
        /// Display name of the algorithm that failed.
        algo: String,
        /// The underlying search error (also exposed via `source()`).
        source: SearchError,
    },
    /// A line of a `--updates` script is malformed or names an
    /// impossible mutation (unknown node in `del`, duplicate `add`, …).
    BadUpdate {
        /// 1-based line number in the update script.
        line: usize,
        /// What is wrong with the line.
        reason: String,
    },
    /// The server's bounded admission queue is full: the request was
    /// rejected instead of queueing unboundedly (backpressure, not an
    /// internal failure — retry after a backoff).
    Overloaded {
        /// Requests currently admitted (in flight).
        in_flight: usize,
        /// The admission capacity that was exceeded.
        capacity: usize,
    },
    /// A wire-protocol request line is invalid: not a JSON object, a
    /// torn/partial line, an unknown `op`, or malformed arguments.
    BadRequest {
        /// 1-based request-line number within the connection.
        line: usize,
        /// What is wrong with the request.
        reason: String,
    },
}

impl EngineError {
    /// The process exit code the CLI maps this error to. Codes are
    /// stable, documented in the module table, and distinct per variant
    /// (0 = success, 2–9 = the failure classes). Over the wire the same
    /// numbers travel as the `code` member of `error` reply lines.
    pub fn exit_code(&self) -> i32 {
        match self {
            EngineError::BadParam { .. } => 2,
            EngineError::UnknownAlgo { .. } => 3,
            EngineError::Io { .. } => 4,
            EngineError::UnknownNode { .. } => 5,
            EngineError::Search { .. } => 6,
            EngineError::BadUpdate { .. } => 7,
            EngineError::Overloaded { .. } => 8,
            EngineError::BadRequest { .. } => 9,
        }
    }

    /// Shorthand for a [`EngineError::BadParam`].
    pub fn bad_param(what: impl Into<String>) -> Self {
        EngineError::BadParam { what: what.into() }
    }

    /// Shorthand for an [`EngineError::Io`] tagged with `path`.
    pub fn io(path: impl Into<String>, source: std::io::Error) -> Self {
        EngineError::Io {
            path: path.into(),
            source,
        }
    }

    /// An [`EngineError::UnknownAlgo`] for `given`, with the suggestion
    /// computed from the registry.
    pub fn unknown_algo(given: impl Into<String>) -> Self {
        let given = given.into();
        let suggestion = registry::suggest(&given);
        EngineError::UnknownAlgo { given, suggestion }
    }

    /// An [`EngineError::UnknownNode`] with no extra context.
    pub fn unknown_node(id: u64) -> Self {
        EngineError::UnknownNode { id, context: None }
    }

    /// Shorthand for an [`EngineError::BadUpdate`] at `line` (1-based).
    pub fn bad_update(line: usize, reason: impl Into<String>) -> Self {
        EngineError::BadUpdate {
            line,
            reason: reason.into(),
        }
    }

    /// Shorthand for an [`EngineError::Overloaded`] rejection.
    pub fn overloaded(in_flight: usize, capacity: usize) -> Self {
        EngineError::Overloaded {
            in_flight,
            capacity,
        }
    }

    /// Shorthand for an [`EngineError::BadRequest`] at request `line`
    /// (1-based within the connection).
    pub fn bad_request(line: usize, reason: impl Into<String>) -> Self {
        EngineError::BadRequest {
            line,
            reason: reason.into(),
        }
    }

    /// Attach (or replace) the context of an [`EngineError::UnknownNode`];
    /// other variants pass through unchanged.
    pub fn with_node_context(self, context: impl Into<String>) -> Self {
        match self {
            EngineError::UnknownNode { id, .. } => EngineError::UnknownNode {
                id,
                context: Some(context.into()),
            },
            other => other,
        }
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownAlgo { given, suggestion } => {
                write!(f, "unknown algorithm {given:?}")?;
                if let Some(s) = suggestion {
                    write!(f, " — did you mean {s:?}?")?;
                }
                write!(f, " (valid: {})", registry::names().join(", "))
            }
            EngineError::BadParam { what } => write!(f, "{what}"),
            EngineError::Io { path, source } => write!(f, "cannot access {path}: {source}"),
            EngineError::UnknownNode { id, context } => {
                if let Some(c) = context {
                    write!(f, "{c}: ")?;
                }
                write!(f, "query node {id} does not appear in the graph")
            }
            // An empty algo name happens on the bare From<SearchError>
            // conversion; don't render a leading ": " in that case.
            EngineError::Search { algo, source } if algo.is_empty() => write!(f, "{source}"),
            EngineError::Search { algo, source } => write!(f, "{algo}: {source}"),
            EngineError::BadUpdate { line, reason } => {
                write!(f, "update script line {line}: {reason}")
            }
            EngineError::Overloaded {
                in_flight,
                capacity,
            } => write!(
                f,
                "server overloaded: {in_flight} requests in flight at capacity {capacity}; \
                 retry after a backoff"
            ),
            EngineError::BadRequest { line, reason } => {
                write!(f, "bad request line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Io { source, .. } => Some(source),
            EngineError::Search { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<SearchError> for EngineError {
    fn from(source: SearchError) -> Self {
        EngineError::Search {
            algo: String::new(),
            source,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmcs_graph::GraphError;
    use std::error::Error;

    fn all_variants() -> Vec<EngineError> {
        vec![
            EngineError::bad_param("--threads must be at least 1"),
            EngineError::unknown_algo("zeus"),
            EngineError::io(
                "/no/such/file",
                std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
            ),
            EngineError::unknown_node(999),
            EngineError::Search {
                algo: "FPA".into(),
                source: SearchError::EmptyQuery,
            },
            EngineError::bad_update(3, "unknown op \"swap\""),
            EngineError::overloaded(16, 16),
            EngineError::bad_request(2, "not a JSON object"),
        ]
    }

    #[test]
    fn exit_codes_are_distinct_and_documented() {
        let codes: Vec<i32> = all_variants().iter().map(|e| e.exit_code()).collect();
        assert_eq!(codes, vec![2, 3, 4, 5, 6, 7, 8, 9]);
        let mut dedup = codes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len(), "exit codes collide: {codes:?}");
        assert!(!codes.contains(&0) && !codes.contains(&1), "0/1 reserved");
    }

    #[test]
    fn display_covers_every_variant() {
        let texts: Vec<String> = all_variants().iter().map(|e| e.to_string()).collect();
        assert_eq!(texts[0], "--threads must be at least 1");
        assert!(
            texts[1].starts_with("unknown algorithm \"zeus\""),
            "{}",
            texts[1]
        );
        assert!(texts[1].contains("valid: fpa, nca"), "{}", texts[1]);
        assert!(texts[2].contains("/no/such/file") && texts[2].contains("gone"));
        assert_eq!(texts[3], "query node 999 does not appear in the graph");
        assert_eq!(texts[4], "FPA: query set is empty");
        assert_eq!(texts[5], "update script line 3: unknown op \"swap\"");
        assert_eq!(
            texts[6],
            "server overloaded: 16 requests in flight at capacity 16; retry after a backoff"
        );
        assert_eq!(texts[7], "bad request line 2: not a JSON object");

        // Context prefixes the unknown-node message when present.
        let contextual = EngineError::unknown_node(7).with_node_context("q.txt: query 3");
        assert_eq!(
            contextual.to_string(),
            "q.txt: query 3: query node 7 does not appear in the graph"
        );
        // Non-UnknownNode errors pass through with_node_context untouched.
        let passthrough = EngineError::bad_param("x").with_node_context("ignored");
        assert_eq!(passthrough.to_string(), "x");
    }

    #[test]
    fn unknown_algo_suggests_the_nearest_label() {
        match EngineError::unknown_algo("fpa-dgm") {
            EngineError::UnknownAlgo {
                suggestion: Some(s),
                ..
            } => assert_eq!(s, "fpa-dmg"),
            other => panic!("{other:?}"),
        }
        let text = EngineError::unknown_algo("luovain").to_string();
        assert!(text.contains("did you mean \"louvain\"?"), "{text}");
        // Garbage nowhere near a label gets no suggestion, only the list.
        match EngineError::unknown_algo("qqqqqqqqqq") {
            EngineError::UnknownAlgo {
                suggestion: None, ..
            } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn source_chains_reach_the_root_cause() {
        let io = EngineError::io(
            "f",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        assert_eq!(io.source().unwrap().to_string(), "gone");

        let search = EngineError::Search {
            algo: "FPA".into(),
            source: SearchError::Graph(GraphError::QueryDisconnected),
        };
        let level1 = search.source().expect("SearchError");
        let level2 = level1.source().expect("GraphError");
        assert_eq!(
            level2.to_string(),
            "query nodes are not in the same connected component"
        );

        for e in [
            EngineError::bad_param("x"),
            EngineError::unknown_algo("zeus"),
            EngineError::unknown_node(1),
            EngineError::bad_update(1, "x"),
            EngineError::overloaded(1, 1),
            EngineError::bad_request(1, "x"),
        ] {
            assert!(e.source().is_none(), "{e:?} has no cause");
        }
    }

    #[test]
    fn search_errors_convert_and_render_without_a_dangling_prefix() {
        let e: EngineError = SearchError::EmptyQuery.into();
        assert_eq!(e.exit_code(), 6);
        assert_eq!(e.to_string(), "query set is empty");
    }
}
