//! Structured (JSON) output for the serving API — hand-rolled, like the
//! `vendor/` shims, because the workspace's dependency policy admits no
//! serde. One [`Json`] value type with a writer and a strict parser: the
//! writer renders [`QueryResponse`]s and [`BatchReport`]s as JSON-lines
//! (one object per line, machine-consumable by the bench harness and
//! `--format json` CLI users); the parser backs the round-trip property
//! tests and the CI output validator.
//!
//! ## JSON-lines schema
//!
//! Every object carries the protocol fields first: `protocol_version`
//! (the wire-schema revision, [`PROTOCOL_VERSION`] — consumers reject
//! lines from a future protocol instead of misparsing them) and `server`
//! (the producing build, [`SERVER_ID`]). One `response` object per
//! query, in submission order:
//!
//! ```json
//! {"type":"response","protocol_version":1,"server":"dmcs/0.1.0","tag":null,
//!  "algo":"FPA","query":[0,33],"ok":true,
//!  "size":7,"dm":0.551,"iterations":27,"seconds":0.0012,"community":[0,1,2,3,7,13,33]}
//! {"type":"response","protocol_version":1,"server":"dmcs/0.1.0","tag":"t-9",
//!  "algo":"FPA","query":[0,5],"ok":false,
//!  "error":"query nodes are not in the same connected component","seconds":0.0001}
//! ```
//!
//! followed, for batches, by exactly one `summary` object:
//!
//! ```json
//! {"type":"summary","protocol_version":1,"server":"dmcs/0.1.0","algo":"FPA",
//!  "weighted":false,"queries":3,"ok":2,
//!  "wall_seconds":0.004,"queries_per_sec":750.0,"p50_seconds":0.001,
//!  "p95_seconds":0.002,"unique":3,"cache_hits":0,"cache_misses":3,
//!  "groups":2,"grouped_queries":3,"shared_bfs_reuses":1,"plan":"auto:grouped+memo",
//!  "mirror_served":0,"skew":0.5}
//! ```
//!
//! `weighted` records whether the batch served the weighted density
//! modularity (the CLI's `--weighted`, or an
//! [`AlgoSpec`](crate::AlgoSpec) with the weighted parameter); weighted
//! responses additionally reveal themselves through the algorithm name
//! (`"W-FPA"` / `"W-NCA"`), and their `dm` field is the *weighted*
//! objective.
//!
//! `unique` counts the distinct work items the batch actually dispatched
//! (in-batch dedup answers the rest by fan-out); `cache_hits` /
//! `cache_misses` count executed queries served from / missing the
//! engine's version-keyed result cache (both 0 when no cache was
//! attached). Responses served from the cache are **byte-identical** to
//! the response that populated the entry — there is deliberately no
//! per-response cached marker.
//!
//! `groups` / `grouped_queries` / `shared_bfs_reuses` describe the
//! component-aware scheduler: how many connected-component groups the
//! plan formed, how many work items ran through them (both 0 on an
//! ungrouped run), and how many queries reused a component BFS memoized
//! by an earlier query on the same worker. `plan` is the planner's
//! label (`"auto:grouped+memo"`, `"auto:memo+mirror"`, `"off"`);
//! `mirror_served` counts queries executed on the snapshot's renumbered
//! compute mirror (always byte-identical to canonical execution, see
//! `dmcs_graph::layout`), and `skew` is the largest-component mass
//! fraction the planner weighed. None of these affect response bytes —
//! plans choose execution strategy only.
//!
//! Node ids in `query` and `community` are in the *original* (input
//! file) id space when a mapping is supplied, dense ids otherwise.
//! Non-finite floats render as `null` (JSON has no NaN/Infinity).

use crate::batch::BatchReport;
use crate::request::QueryResponse;
use dmcs_core::{SearchError, SearchResult};
use dmcs_graph::NodeId;

/// Revision of the JSON-lines wire schema. Bumped only on an
/// incompatible change (a field rename, a meaning change); additive
/// fields do not bump it. Every emitted object carries this as its
/// `protocol_version` member.
pub const PROTOCOL_VERSION: u64 = 1;

/// Identity of the producing build, emitted as the `server` member of
/// every object (`"dmcs/<crate version>"`).
pub const SERVER_ID: &str = concat!("dmcs/", env!("CARGO_PKG_VERSION"));

/// The two members every emitted object leads with, right after `type`.
fn protocol_members() -> [(String, Json); 2] {
    [
        ("protocol_version".to_string(), Json::UInt(PROTOCOL_VERSION)),
        ("server".to_string(), Json::str(SERVER_ID)),
    ]
}

/// An object of the given `type` with the protocol fields in place.
pub(crate) fn typed_obj(ty: &str, members: Vec<(String, Json)>) -> Json {
    let mut all = vec![("type".to_string(), Json::str(ty))];
    all.extend(protocol_members());
    all.extend(members);
    Json::Obj(all)
}

/// A JSON value. Object member order is preserved (the writer emits a
/// stable field order; the parser keeps whatever it reads).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer, kept exact — node ids are `u64` and must
    /// not round-trip through `f64` (ids above 2^53 would silently lose
    /// precision). The parser produces this for any bare digit run that
    /// fits a `u64`.
    UInt(u64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Member lookup (objects only).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one. Integers above 2^53 lose precision
    /// here; use [`Json::as_u64`] for ids.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::UInt(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as an exact unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            // Strict upper bound: `u64::MAX as f64` rounds up to 2^64,
            // which is itself out of range — a saturating cast there
            // would fabricate u64::MAX.
            Json::Num(x) if x.fract() == 0.0 && *x >= 0.0 && *x < u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render as compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => out.push_str(&format!("{v}")),
            Json::Num(x) => {
                if x.is_finite() {
                    // Rust's shortest round-trip float formatting; whole
                    // numbers render without a fraction ("5", not "5.0").
                    out.push_str(&format!("{x}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse one JSON document (strict: trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::new(pos, "trailing characters after value"));
        }
        Ok(value)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub msg: String,
}

impl JsonError {
    fn new(offset: usize, msg: impl Into<String>) -> Self {
        JsonError {
            offset,
            msg: msg.into(),
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for JsonError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), JsonError> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(JsonError::new(*pos, format!("expected {token:?}")))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError::new(*pos, "unexpected end of input")),
        Some(b'n') => expect(bytes, pos, "null").map(|_| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|_| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(JsonError::new(*pos, "expected ',' or ']' in array")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(JsonError::new(*pos, "expected ':' after object key"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(JsonError::new(*pos, "expected ',' or '}' in object")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(JsonError::new(*pos, "expected '\"'"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError::new(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes
                    .get(*pos)
                    .ok_or_else(|| JsonError::new(*pos, "unterminated escape"))?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| JsonError::new(*pos, "truncated \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError::new(*pos, "bad \\u escape"))?;
                        *pos += 4;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(JsonError::new(*pos, "unknown escape")),
                }
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so slicing
                // at char boundaries is safe via the chars iterator).
                let rest = &bytes[*pos..];
                let s =
                    std::str::from_utf8(rest).map_err(|_| JsonError::new(*pos, "invalid UTF-8"))?;
                let c = s.chars().next().expect("non-empty");
                if (c as u32) < 0x20 {
                    return Err(JsonError::new(*pos, "raw control character in string"));
                }
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Parse a number following the JSON grammar exactly:
/// `-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?`. Rust's permissive
/// `f64::from_str` (which accepts `+1`, `.5`, `1.`, `inf`) is only used
/// on text this grammar already admitted, so non-JSON forms are
/// rejected rather than laundered through the validator.
fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    let digits = |bytes: &[u8], pos: &mut usize| -> bool {
        let before = *pos;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        *pos > before
    };
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    // Integer part: 0, or a nonzero digit followed by more digits
    // (leading zeros like "007" are not JSON).
    match bytes.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(b'1'..=b'9') => {
            digits(bytes, pos);
        }
        _ => return Err(JsonError::new(start, "expected a value")),
    }
    let mut is_float = false;
    if bytes.get(*pos) == Some(&b'.') {
        is_float = true;
        *pos += 1;
        if !digits(bytes, pos) {
            return Err(JsonError::new(*pos, "expected digits after '.'"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        is_float = true;
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(bytes, pos) {
            return Err(JsonError::new(*pos, "expected exponent digits"));
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII by construction");
    // Bare digit runs stay exact u64 integers (node ids above 2^53 must
    // not round-trip through f64); everything else is an f64.
    if !is_float && !text.starts_with('-') {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::UInt(v));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| JsonError::new(start, "malformed number"))
}

/// Map a dense node id to the original (file) id space, when a mapping
/// is present.
fn map_id(v: NodeId, original: Option<&[u64]>) -> u64 {
    original.map_or(v as u64, |o| o[v as usize])
}

fn id_array(nodes: &[NodeId], original: Option<&[u64]>) -> Json {
    let mut ids: Vec<u64> = nodes.iter().map(|&v| map_id(v, original)).collect();
    ids.sort_unstable();
    Json::Arr(ids.into_iter().map(Json::UInt).collect())
}

/// One `response` object from its parts. The lower-level entry point
/// for output that does not flow through a [`QueryResponse`] (the CLI's
/// top-k rounds and weighted searches).
pub fn result_json(
    algo: &str,
    tag: Option<&str>,
    query: &[NodeId],
    result: &Result<SearchResult, SearchError>,
    seconds: f64,
    original: Option<&[u64]>,
) -> Json {
    let mut members = vec![
        (
            "tag".to_string(),
            tag.map_or(Json::Null, |t| Json::str(t.to_string())),
        ),
        ("algo".to_string(), Json::str(algo)),
        ("query".to_string(), id_array(query, original)),
    ];
    match result {
        Ok(r) => {
            members.push(("ok".to_string(), Json::Bool(true)));
            members.push(("size".to_string(), Json::UInt(r.community.len() as u64)));
            members.push(("dm".to_string(), Json::Num(r.density_modularity)));
            members.push(("iterations".to_string(), Json::UInt(r.iterations as u64)));
            members.push(("seconds".to_string(), Json::Num(seconds)));
            members.push(("community".to_string(), id_array(&r.community, original)));
        }
        Err(e) => {
            members.push(("ok".to_string(), Json::Bool(false)));
            members.push(("error".to_string(), Json::str(e.to_string())));
            members.push(("seconds".to_string(), Json::Num(seconds)));
        }
    }
    typed_obj("response", members)
}

/// The `response` object for one [`QueryResponse`].
pub fn response_json(resp: &QueryResponse, original: Option<&[u64]>) -> Json {
    result_json(
        resp.algo,
        resp.request.tag.as_deref(),
        &resp.request.nodes,
        &resp.result,
        resp.seconds,
        original,
    )
}

/// The `summary` object of a [`BatchReport`]. `weighted` records
/// whether the batch ran the weighted objective.
pub fn summary_json(algo: &str, weighted: bool, report: &BatchReport) -> Json {
    typed_obj(
        "summary",
        vec![
            ("algo".to_string(), Json::str(algo)),
            ("weighted".to_string(), Json::Bool(weighted)),
            (
                "queries".to_string(),
                Json::UInt(report.responses.len() as u64),
            ),
            ("ok".to_string(), Json::UInt(report.succeeded() as u64)),
            ("wall_seconds".to_string(), Json::Num(report.wall_seconds)),
            (
                "queries_per_sec".to_string(),
                Json::Num(report.queries_per_sec),
            ),
            ("p50_seconds".to_string(), Json::Num(report.p50_seconds)),
            ("p95_seconds".to_string(), Json::Num(report.p95_seconds)),
            (
                "unique".to_string(),
                Json::UInt(report.unique_queries as u64),
            ),
            (
                "cache_hits".to_string(),
                Json::UInt(report.cache_hits as u64),
            ),
            (
                "cache_misses".to_string(),
                Json::UInt(report.cache_misses as u64),
            ),
            ("groups".to_string(), Json::UInt(report.groups as u64)),
            (
                "grouped_queries".to_string(),
                Json::UInt(report.grouped_queries as u64),
            ),
            (
                "shared_bfs_reuses".to_string(),
                Json::UInt(report.shared_bfs_reuses),
            ),
            ("plan".to_string(), Json::str(report.plan)),
            (
                "mirror_served".to_string(),
                Json::UInt(report.mirror_served),
            ),
            ("skew".to_string(), Json::Num(report.skew)),
        ],
    )
}

/// A whole [`BatchReport`] as JSON-lines: one `response` line per query
/// in submission order, then one `summary` line. Every line is a
/// complete JSON object; the result ends with a newline.
pub fn report_jsonl(
    algo: &str,
    weighted: bool,
    report: &BatchReport,
    original: Option<&[u64]>,
) -> String {
    let mut out = String::new();
    for resp in &report.responses {
        out.push_str(&response_json(resp, original).render());
        out.push('\n');
    }
    out.push_str(&summary_json(algo, weighted, report).render());
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trip_on_scalars() {
        for (v, text) in [
            (Json::Null, "null"),
            (Json::Bool(true), "true"),
            (Json::UInt(5), "5"),
            (Json::Num(-0.25), "-0.25"),
            (Json::str("a \"b\"\n\t\\"), "\"a \\\"b\\\"\\n\\t\\\\\""),
        ] {
            assert_eq!(v.render(), text);
            assert_eq!(Json::parse(text).unwrap(), v);
        }
        // Non-finite numbers degrade to null on write.
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn large_u64_ids_stay_exact() {
        // 2^53 + 1 is not representable as f64; ids must not go through
        // one.
        for v in [9007199254740993u64, u64::MAX] {
            let text = Json::UInt(v).render();
            assert_eq!(text, v.to_string());
            let back = Json::parse(&text).unwrap();
            assert_eq!(back.as_u64(), Some(v), "{v} corrupted via {text}");
        }
        // as_u64 tolerates integral floats but rejects fractions.
        assert_eq!(Json::Num(4.0).as_u64(), Some(4));
        assert_eq!(Json::Num(4.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::Obj(vec![
            ("a".to_string(), Json::Arr(vec![Json::UInt(1), Json::Null])),
            (
                "b".to_string(),
                Json::Obj(vec![("c".to_string(), Json::str("x"))]),
            ),
        ]);
        let text = v.render();
        assert_eq!(text, "{\"a\":[1,null],\"b\":{\"c\":\"x\"}}");
        assert_eq!(Json::parse(&text).unwrap(), v);
        // Whitespace tolerance on parse.
        assert_eq!(
            Json::parse(" { \"a\" : [ 1 , null ] , \"b\": {\"c\":\"x\"} } ").unwrap(),
            v
        );
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\":1,}",
            "nul",
            // JSON's number grammar is strict; Rust's permissive float
            // parser must not leak through the validator.
            "+1",
            ".5",
            "1.",
            "007",
            "-",
            "1e",
            "1e+",
            "inf",
            "NaN",
        ] {
            let err = Json::parse(bad).unwrap_err();
            assert!(!err.to_string().is_empty(), "{bad:?} must fail");
        }
        // ...while every legal shape still parses.
        for good in ["0", "-0", "10", "-5", "0.5", "1e3", "1E-3", "2.5e+7"] {
            Json::parse(good).unwrap_or_else(|e| panic!("{good:?} must parse: {e}"));
        }
        assert_eq!(Json::parse("-5").unwrap().as_f64(), Some(-5.0));
        // The exact-2^64 float is out of u64 range, not saturated.
        assert_eq!(Json::Num(18446744073709551616.0).as_u64(), None);
    }

    #[test]
    fn float_round_trip_is_exact() {
        for x in [0.1, 1.0 / 3.0, 1e-12, 123456.789, -0.0] {
            let text = Json::Num(x).render();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {text}");
        }
    }

    #[test]
    fn unicode_survives() {
        let v = Json::str("café → 社区");
        let back = Json::parse(&v.render()).unwrap();
        assert_eq!(back.as_str(), Some("café → 社区"));
        // \u escapes parse too.
        assert_eq!(
            Json::parse("\"\\u0041\\u00e9\"").unwrap().as_str(),
            Some("Aé")
        );
    }

    #[test]
    fn result_json_maps_ids_and_reports_errors() {
        let original = vec![100u64, 200, 300];
        let ok = Ok(SearchResult {
            community: vec![2, 0],
            density_modularity: 0.5,
            removal_order: vec![],
            iterations: 3,
        });
        let line = result_json("FPA", Some("t"), &[0], &ok, 0.25, Some(&original)).render();
        let v = Json::parse(&line).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("response"));
        assert_eq!(
            v.get("protocol_version").unwrap().as_u64(),
            Some(PROTOCOL_VERSION)
        );
        assert_eq!(v.get("server").unwrap().as_str(), Some(SERVER_ID));
        assert!(SERVER_ID.starts_with("dmcs/"));
        assert_eq!(v.get("tag").unwrap().as_str(), Some("t"));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("size").unwrap().as_f64(), Some(2.0));
        let comm: Vec<f64> = v
            .get("community")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|x| x.as_f64().unwrap())
            .collect();
        assert_eq!(comm, vec![100.0, 300.0], "mapped and sorted");

        let err = Err(SearchError::EmptyQuery);
        let line = result_json("FPA", None, &[], &err, 0.0, None).render();
        let v = Json::parse(&line).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("error").unwrap().as_str(), Some("query set is empty"));
        assert_eq!(v.get("tag").unwrap(), &Json::Null);
        assert!(v.get("community").is_none());
    }
}
