//! `dmcs serve` — a long-lived socket daemon fronting the typed engine
//! API with a versioned JSON-lines wire protocol.
//!
//! The daemon listens on a unix socket and/or a TCP address
//! (hand-rolled on `std::net` / `std::os::unix::net` — the workspace's
//! dependency policy admits no async runtime or socket crate) and
//! serves each connection from its own thread. Every connection opens a
//! [`Session`] pinned to the snapshot current at accept time, so a
//! client's answers are consistent under concurrent updates until it
//! explicitly asks to re-pin; all connections share the engine's
//! [`GraphStore`](dmcs_graph::GraphStore) and shard-scoped result
//! cache, so one client's computation is every client's cache hit.
//!
//! ## Wire protocol (protocol_version 1)
//!
//! Requests are JSON objects, one per line, parsed by the same strict
//! parser that backs `--format json` validation. The envelope is an
//! `op` member naming the operation; node ids are in the *original*
//! (input file) id space:
//!
//! | op | request members | reply `type` |
//! |---|---|---|
//! | `query` | `nodes` (required), `tag`, `k` | `response`, or `topk` when `k` > 0 |
//! | `update` | `action` (`add`/`del`/`setw`), `u`, `v`, `w` | `update` |
//! | `repin` | — | `repin` |
//! | `stats` | — | `stats` |
//! | `shutdown` | — | `shutdown` |
//!
//! Replies are JSON-lines carrying the schema's protocol fields
//! (`protocol_version`, `server`) like every other output of the
//! workspace. Failures are typed `error` lines mirroring the
//! [`EngineError`] taxonomy:
//!
//! ```json
//! {"type":"error","protocol_version":1,"server":"dmcs/0.1.0","line":3,"code":9,
//!  "error":"bad request line 3: not a JSON object"}
//! ```
//!
//! `line` is the 1-based request line number on this connection and
//! `code` is the exit-code analog of the error class (5 unknown node,
//! 7 bad update, 8 overloaded, 9 bad request).
//!
//! **Framing** is newline-delimited and defensive: a torn line (the
//! peer closes mid-request) and an oversized line (longer than
//! [`ServerConfig::max_line_bytes`]) are typed
//! [`EngineError::BadRequest`] replies — never hangs; the oversized
//! line's remainder is discarded up to the next newline so the
//! connection resynchronises. Pipelined requests on one connection are
//! answered strictly in order.
//!
//! **Backpressure**: queries and updates pass a bounded admission gate
//! shared by all connections ([`ServerConfig::queue_cap`] concurrent
//! work items). Past capacity the daemon answers immediately with a
//! typed [`EngineError::Overloaded`] error line (code 8) instead of
//! queueing unboundedly; `stats`, `repin` and `shutdown` are control
//! ops and always admitted.
//!
//! **Draining**: a `shutdown` op or SIGTERM (see
//! [`install_sigterm_drain`]) puts the daemon into drain mode:
//! listeners stop accepting, every connection finishes the requests it
//! already received, flushes its per-connection `summary` line, and the
//! unix socket file is unlinked before [`Server::run`] returns.

use crate::batch::BatchReport;
use crate::error::EngineError;
use crate::output::{response_json, summary_json, typed_obj, Json};
use crate::registry::AlgoSpec;
use crate::request::{QueryRequest, QueryResponse};
use crate::{Engine, Session};
use dmcs_graph::NodeId;
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener};
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::thread::Scope;
use std::time::{Duration, Instant};

/// How long a blocked read/accept waits before re-checking the drain
/// flag. Bounds shutdown latency, not throughput (data ready on the
/// socket returns immediately).
const POLL: Duration = Duration::from_millis(25);

/// Where and how the daemon listens.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Path of the unix socket to bind (`None` = no unix listener). A
    /// stale file at the path is removed before binding.
    pub unix_path: Option<String>,
    /// TCP address to bind, e.g. `127.0.0.1:7171` (`None` = no TCP
    /// listener; port `0` binds an ephemeral port — read it back with
    /// [`Server::tcp_addr`]).
    pub tcp_addr: Option<String>,
    /// Bounded admission: how many queries/updates may be in flight at
    /// once across all connections. Requests past the cap get an
    /// immediate typed [`EngineError::Overloaded`] reply (code 8). `0`
    /// rejects every work op — useful to test client backoff paths.
    pub queue_cap: usize,
    /// Longest accepted request line in bytes; longer lines are typed
    /// [`EngineError::BadRequest`] replies and discarded up to the next
    /// newline.
    pub max_line_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            unix_path: None,
            tcp_addr: None,
            queue_cap: 64,
            max_line_bytes: 64 * 1024,
        }
    }
}

/// Original-id ↔ dense-id mapping shared by all connections. `add`
/// ops may introduce fresh ids; `original` only ever grows, in lockstep
/// with the store's node count.
struct IdSpace {
    index: HashMap<u64, NodeId>,
    original: Vec<u64>,
}

/// State shared by the listeners and every connection thread.
struct Shared {
    engine: Engine,
    spec: AlgoSpec,
    algo_name: &'static str,
    ids: RwLock<IdSpace>,
    drain: AtomicBool,
    in_flight: AtomicUsize,
    queue_cap: usize,
    max_line_bytes: usize,
    served: AtomicU64,
    connections: AtomicU64,
}

/// Set by the SIGTERM handler (signal handlers may only touch statics);
/// folded into [`Shared::draining`].
static SIGTERM_DRAIN: AtomicBool = AtomicBool::new(false);

/// Install a SIGTERM handler that puts every running [`Server`] in this
/// process into drain mode — the graceful-shutdown path for daemons run
/// under an init system or CI harness. Hand-rolled `signal(2)` binding;
/// the handler body is a single atomic store (async-signal-safe).
#[cfg(unix)]
#[allow(unsafe_code)] // lone workspace exception: dependency-free signal(2) FFI
pub fn install_sigterm_drain() {
    extern "C" fn on_sigterm(_signum: i32) {
        SIGTERM_DRAIN.store(true, Ordering::SeqCst);
    }
    unsafe extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_sigterm as *const () as usize);
    }
}

impl Shared {
    fn draining(&self) -> bool {
        self.drain.load(Ordering::SeqCst) || SIGTERM_DRAIN.load(Ordering::SeqCst)
    }

    // Id-map access with poison recovery: a panicking connection thread
    // must not take the map down with it. Both id spaces only ever grow
    // (appends under the write lock), so a poisoned guard still holds a
    // usable — at worst slightly stale — mapping.
    fn ids_read(&self) -> std::sync::RwLockReadGuard<'_, IdSpace> {
        self.ids
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn ids_write(&self) -> std::sync::RwLockWriteGuard<'_, IdSpace> {
        self.ids
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Try to admit one work op through the bounded gate.
    fn admit(&self) -> bool {
        let prev = self.in_flight.fetch_add(1, Ordering::SeqCst);
        if prev >= self.queue_cap {
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
            return false;
        }
        true
    }

    fn release(&self) {
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A remote-control handle on a running server: cheap to clone into
/// tests or signal glue. Dropping it does not stop the server.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Put the server into drain mode (idempotent): stop accepting,
    /// finish in-flight requests, flush summaries, return from
    /// [`Server::run`].
    pub fn shutdown(&self) {
        self.shared.drain.store(true, Ordering::SeqCst);
    }

    /// Whether the server is draining.
    pub fn is_draining(&self) -> bool {
        self.shared.draining()
    }
}

/// Counters of a finished [`Server::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Queries and updates served (admitted work ops, including ones
    /// whose search failed; excluding overload rejections).
    pub served: u64,
    /// Result-cache hits across all connections.
    pub cache_hits: u64,
    /// Result-cache misses across all connections.
    pub cache_misses: u64,
}

/// The daemon: bound listeners plus the shared serving state. Built
/// with [`Server::bind`], driven to completion with [`Server::run`].
pub struct Server {
    shared: Arc<Shared>,
    #[cfg(unix)]
    unix: Option<UnixListener>,
    unix_path: Option<PathBuf>,
    tcp: Option<TcpListener>,
    tcp_addr: Option<SocketAddr>,
}

impl Server {
    /// Validate `spec`, bind the configured listeners (at least one is
    /// required) and return the ready-to-run server. `original` is the
    /// dense → original id mapping of the loaded graph, as produced by
    /// the edge-list readers.
    pub fn bind(
        engine: Engine,
        spec: AlgoSpec,
        original: Vec<u64>,
        cfg: &ServerConfig,
    ) -> Result<Server, EngineError> {
        let algo_name = spec.build()?.name();
        if cfg.unix_path.is_none() && cfg.tcp_addr.is_none() {
            return Err(EngineError::bad_param(
                "serve needs at least one listener (--unix <path> and/or --tcp <addr>)",
            ));
        }
        let index = original
            .iter()
            .enumerate()
            .map(|(i, &o)| (o, i as NodeId))
            .collect();
        let shared = Arc::new(Shared {
            engine,
            spec,
            algo_name,
            ids: RwLock::new(IdSpace { index, original }),
            drain: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            queue_cap: cfg.queue_cap,
            max_line_bytes: cfg.max_line_bytes.max(2),
            served: AtomicU64::new(0),
            connections: AtomicU64::new(0),
        });

        #[cfg(unix)]
        let (unix, unix_path) = match &cfg.unix_path {
            Some(path) => {
                let pb = PathBuf::from(path);
                // A stale socket file from a crashed predecessor blocks
                // bind(2); remove it (a live listener is unaffected on
                // its end — it holds the inode, not the name).
                let _ = std::fs::remove_file(&pb);
                let listener = UnixListener::bind(&pb).map_err(|e| EngineError::io(path, e))?;
                listener
                    .set_nonblocking(true)
                    .map_err(|e| EngineError::io(path, e))?;
                (Some(listener), Some(pb))
            }
            None => (None, None),
        };
        #[cfg(not(unix))]
        let unix_path: Option<PathBuf> = match &cfg.unix_path {
            Some(_) => {
                return Err(EngineError::bad_param(
                    "--unix sockets are not available on this platform",
                ))
            }
            None => None,
        };

        let (tcp, tcp_addr) = match &cfg.tcp_addr {
            Some(addr) => {
                let listener = TcpListener::bind(addr).map_err(|e| EngineError::io(addr, e))?;
                listener
                    .set_nonblocking(true)
                    .map_err(|e| EngineError::io(addr, e))?;
                let local = listener
                    .local_addr()
                    .map_err(|e| EngineError::io(addr, e))?;
                (Some(listener), Some(local))
            }
            None => (None, None),
        };

        Ok(Server {
            shared,
            #[cfg(unix)]
            unix,
            unix_path,
            tcp,
            tcp_addr,
        })
    }

    /// The control handle (clone it before [`Server::run`] consumes the
    /// server).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The bound TCP address, when a TCP listener is configured —
    /// resolves `--tcp 127.0.0.1:0` to the actual ephemeral port.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The bound unix socket path, when a unix listener is configured.
    pub fn unix_path(&self) -> Option<&std::path::Path> {
        self.unix_path.as_deref()
    }

    /// Serve until drained (a `shutdown` op, [`ServerHandle::shutdown`]
    /// or SIGTERM via [`install_sigterm_drain`]): accept loops and
    /// per-connection threads all run inside one scope, so every thread
    /// is joined — and the unix socket file unlinked — before this
    /// returns.
    pub fn run(self) -> ServerStats {
        let shared = &*self.shared;
        std::thread::scope(|scope| {
            if let Some(listener) = &self.tcp {
                scope.spawn(move || accept_tcp(listener, shared, scope));
            }
            #[cfg(unix)]
            if let Some(listener) = &self.unix {
                scope.spawn(move || accept_unix(listener, shared, scope));
            }
        });
        // All listeners and connections are done; close the listeners
        // and release the socket name (dropping the unix listener does
        // not unlink the file).
        drop(self.tcp);
        #[cfg(unix)]
        drop(self.unix);
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
        ServerStats {
            connections: shared.connections.load(Ordering::SeqCst),
            served: shared.served.load(Ordering::SeqCst),
            cache_hits: shared.engine.cache().hits(),
            cache_misses: shared.engine.cache().misses(),
        }
    }
}

fn accept_tcp<'s, 'e>(listener: &'e TcpListener, shared: &'e Shared, scope: &'s Scope<'s, 'e>) {
    loop {
        if shared.draining() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(POLL));
                scope.spawn(move || serve_conn(shared, stream));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

#[cfg(unix)]
fn accept_unix<'s, 'e>(listener: &'e UnixListener, shared: &'e Shared, scope: &'s Scope<'s, 'e>) {
    loop {
        if shared.draining() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(POLL));
                scope.spawn(move || serve_conn(shared, stream));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// What a processed request asks the connection loop to do next.
enum Flow {
    Continue,
    /// `shutdown` op: close this connection (after its summary) and
    /// drain the server.
    Close,
}

/// Per-connection bookkeeping for the closing `summary` line.
struct ConnState {
    /// 1-based count of request lines received (including empty,
    /// malformed and discarded ones — the client can correlate error
    /// replies with what it sent).
    line_no: usize,
    /// Single-query responses served, for the summary percentiles.
    responses: Vec<QueryResponse>,
    started: Instant,
}

/// Serve one connection: newline-framed requests in, JSON-lines out,
/// strictly in order, ending with a `summary` line.
fn serve_conn<S: Read + Write>(shared: &Shared, mut stream: S) {
    shared.connections.fetch_add(1, Ordering::SeqCst);
    let mut session = match shared.engine.session(&shared.spec) {
        Ok(s) => s,
        // The spec was validated at bind time; an error here would be a
        // registry regression — drop the connection rather than panic a
        // server thread.
        Err(_) => return,
    };
    let mut conn = ConnState {
        line_no: 0,
        responses: Vec::new(),
        started: Instant::now(),
    };
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    // Oversized-line recovery: when set, bytes are dropped until the
    // next newline so the connection resynchronises on line boundaries.
    let mut discarding = false;

    'conn: loop {
        // Answer every complete line already buffered (pipelining).
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=pos).collect();
            conn.line_no += 1;
            if line.len() - 1 > shared.max_line_bytes {
                // A complete-but-oversized line (it can arrive whole when
                // the peer writes fast): same typed reply as the
                // streaming case below, no resync needed.
                let e = EngineError::bad_request(
                    conn.line_no,
                    format!("request line exceeds {} bytes", shared.max_line_bytes),
                );
                if write_reply(&mut stream, &error_json(conn.line_no, &e)).is_err() {
                    return;
                }
                continue;
            }
            let text = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
            match process_line(shared, &mut session, &mut conn, &mut stream, text.trim()) {
                Ok(Flow::Continue) => {}
                Ok(Flow::Close) => break 'conn,
                Err(_) => return, // peer gone mid-write: nothing to flush
            }
        }
        if !discarding && buf.len() > shared.max_line_bytes {
            conn.line_no += 1; // the dropped line keeps its sequence slot
            let e = EngineError::bad_request(
                conn.line_no,
                format!(
                    "request line exceeds {} bytes; discarding to the next newline",
                    shared.max_line_bytes
                ),
            );
            if write_reply(&mut stream, &error_json(conn.line_no, &e)).is_err() {
                return;
            }
            buf.clear();
            discarding = true;
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                if !buf.is_empty() && !discarding {
                    // Torn request: the peer closed mid-line. A typed
                    // reply instead of silence (best effort — the write
                    // side may already be gone too).
                    conn.line_no += 1;
                    let e = EngineError::bad_request(
                        conn.line_no,
                        "connection closed mid-request (torn line, no trailing newline)",
                    );
                    let _ = write_reply(&mut stream, &error_json(conn.line_no, &e));
                }
                break;
            }
            Ok(n) => {
                let mut bytes = &chunk[..n];
                if discarding {
                    match bytes.iter().position(|&b| b == b'\n') {
                        Some(p) => {
                            bytes = &bytes[p + 1..];
                            discarding = false;
                        }
                        None => continue,
                    }
                }
                buf.extend_from_slice(bytes);
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // Idle: buffered complete lines were all processed
                // above, so draining now honours "in-flight requests
                // finish".
                if shared.draining() {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }

    // Per-connection summary: same schema as a batch footer.
    let wall = conn.started.elapsed().as_secs_f64();
    let hits = conn.responses.iter().filter(|r| r.cached).count();
    let misses = conn.responses.len() - hits;
    let unique = conn.responses.len();
    let mut report = BatchReport::from_responses(conn.responses, wall, unique, hits, misses);
    // The daemon serves on an auto plan: surface how many queries ran
    // on the compute mirror and the pinned snapshot's skew statistic.
    report.mirror_served = session.mirror_served();
    report.skew =
        crate::plan::QueryPlan::choose(crate::plan::PlanMode::Auto, session.snapshot()).skew;
    let summary = summary_json(shared.algo_name, shared.spec.serves_weighted(), &report);
    let _ = write_reply(&mut stream, &summary);
}

fn write_reply<W: Write>(out: &mut W, reply: &Json) -> std::io::Result<()> {
    let mut line = reply.render();
    line.push('\n');
    out.write_all(line.as_bytes())?;
    out.flush()
}

/// A wire `error` line for `err`, tagged with the request's line number
/// and the error's exit-code analog.
fn error_json(line_no: usize, err: &EngineError) -> Json {
    typed_obj(
        "error",
        vec![
            ("line".to_string(), Json::UInt(line_no as u64)),
            ("code".to_string(), Json::UInt(err.exit_code() as u64)),
            ("error".to_string(), Json::str(err.to_string())),
        ],
    )
}

/// Parse and execute one request line, writing exactly one reply line
/// (empty input lines are ignored). `Err` means the peer is gone.
fn process_line<S: Write>(
    shared: &Shared,
    session: &mut Session,
    conn: &mut ConnState,
    stream: &mut S,
    text: &str,
) -> std::io::Result<Flow> {
    if text.is_empty() {
        return Ok(Flow::Continue);
    }
    let line_no = conn.line_no;
    let bad = |reason: String| EngineError::bad_request(line_no, reason);
    let parsed = match Json::parse(text) {
        Ok(v @ Json::Obj(_)) => v,
        Ok(_) => {
            write_reply(
                stream,
                &error_json(line_no, &bad("not a JSON object".into())),
            )?;
            return Ok(Flow::Continue);
        }
        Err(e) => {
            write_reply(
                stream,
                &error_json(line_no, &bad(format!("not valid JSON: {e}"))),
            )?;
            return Ok(Flow::Continue);
        }
    };
    let Some(op) = parsed.get("op").and_then(Json::as_str) else {
        write_reply(
            stream,
            &error_json(line_no, &bad("missing \"op\" member (string)".into())),
        )?;
        return Ok(Flow::Continue);
    };
    match op {
        "query" => {
            let reply = op_query(shared, session, conn, &parsed, line_no);
            write_reply(stream, &reply)?;
            Ok(Flow::Continue)
        }
        "update" => {
            let reply = op_update(shared, &parsed, line_no);
            write_reply(stream, &reply)?;
            Ok(Flow::Continue)
        }
        "repin" => {
            let reply = match shared.engine.session(&shared.spec) {
                Ok(fresh) => {
                    *session = fresh;
                    let snap = session.snapshot();
                    typed_obj(
                        "repin",
                        vec![
                            ("version".to_string(), Json::UInt(snap.version())),
                            ("nodes".to_string(), Json::UInt(snap.n() as u64)),
                            ("edges".to_string(), Json::UInt(snap.m() as u64)),
                        ],
                    )
                }
                Err(e) => error_json(line_no, &e),
            };
            write_reply(stream, &reply)?;
            Ok(Flow::Continue)
        }
        "stats" => {
            let snap_version = shared.engine.version();
            let store = shared.engine.store();
            let cache = shared.engine.cache();
            let rb = store.rebuild_stats();
            let plan =
                crate::plan::QueryPlan::choose(crate::plan::PlanMode::Auto, session.snapshot());
            let reply = typed_obj(
                "stats",
                vec![
                    ("algo".to_string(), Json::str(shared.algo_name)),
                    (
                        "weighted".to_string(),
                        Json::Bool(shared.spec.serves_weighted()),
                    ),
                    ("version".to_string(), Json::UInt(snap_version)),
                    ("nodes".to_string(), Json::UInt(store.n() as u64)),
                    ("edges".to_string(), Json::UInt(store.m() as u64)),
                    (
                        "pinned_version".to_string(),
                        Json::UInt(session.snapshot().version()),
                    ),
                    // What the auto planner chooses for the pinned
                    // snapshot (the daemon serves single queries, so
                    // this reports strategy, it never alters results),
                    // plus its skew statistic and how many of this
                    // connection's queries ran on the compute mirror.
                    ("plan".to_string(), Json::str(plan.label)),
                    (
                        "mirror_served".to_string(),
                        Json::UInt(session.mirror_served()),
                    ),
                    ("skew".to_string(), Json::Num(plan.skew)),
                    ("cache_hits".to_string(), Json::UInt(cache.hits())),
                    ("cache_misses".to_string(), Json::UInt(cache.misses())),
                    ("shards".to_string(), Json::UInt(store.shard_count() as u64)),
                    (
                        "dirty_shards".to_string(),
                        Json::UInt(store.dirty_shards() as u64),
                    ),
                    ("rebuilds".to_string(), Json::UInt(rb.rebuilds)),
                    ("shards_rebuilt".to_string(), Json::UInt(rb.shards_rebuilt)),
                    (
                        "last_dirty_shards".to_string(),
                        Json::UInt(rb.last_dirty_shards as u64),
                    ),
                    (
                        "last_rebuild_seconds".to_string(),
                        Json::Num(rb.last_rebuild_seconds),
                    ),
                    (
                        "in_flight".to_string(),
                        Json::UInt(shared.in_flight.load(Ordering::SeqCst) as u64),
                    ),
                    ("queue_cap".to_string(), Json::UInt(shared.queue_cap as u64)),
                    (
                        "connections".to_string(),
                        Json::UInt(shared.connections.load(Ordering::SeqCst)),
                    ),
                    (
                        "served".to_string(),
                        Json::UInt(shared.served.load(Ordering::SeqCst)),
                    ),
                    ("draining".to_string(), Json::Bool(shared.draining())),
                ],
            );
            write_reply(stream, &reply)?;
            Ok(Flow::Continue)
        }
        "shutdown" => {
            shared.drain.store(true, Ordering::SeqCst);
            let reply = typed_obj("shutdown", vec![("draining".to_string(), Json::Bool(true))]);
            write_reply(stream, &reply)?;
            Ok(Flow::Close)
        }
        other => {
            write_reply(
                stream,
                &error_json(
                    line_no,
                    &bad(format!(
                        "unknown op {other:?} (expected query, update, repin, stats or shutdown)"
                    )),
                ),
            )?;
            Ok(Flow::Continue)
        }
    }
}

/// `{"op":"query","nodes":[...],"tag":...,"k":...}` — a single
/// community (the typed [`Session::query`] path, rendered exactly like
/// `--format json`) or, with `k` > 0, a top-k enumeration as one `topk`
/// line.
fn op_query(
    shared: &Shared,
    session: &mut Session,
    conn: &mut ConnState,
    req: &Json,
    line_no: usize,
) -> Json {
    let Some(raw_nodes) = req.get("nodes").and_then(Json::as_arr) else {
        return error_json(
            line_no,
            &EngineError::bad_request(line_no, "query needs a \"nodes\" array of node ids"),
        );
    };
    let mut nodes_raw = Vec::with_capacity(raw_nodes.len());
    for v in raw_nodes {
        match v.as_u64() {
            Some(id) => nodes_raw.push(id),
            None => {
                return error_json(
                    line_no,
                    &EngineError::bad_request(
                        line_no,
                        format!("bad node id {} (unsigned integers only)", v.render()),
                    ),
                )
            }
        }
    }
    let k = match req.get("k") {
        None => 0,
        Some(v) => match v.as_u64() {
            Some(k) => k as usize,
            None => {
                return error_json(
                    line_no,
                    &EngineError::bad_request(line_no, "\"k\" must be an unsigned integer"),
                )
            }
        },
    };
    let tag = req.get("tag").and_then(Json::as_str).map(str::to_string);

    if !shared.admit() {
        let e = EngineError::overloaded(shared.in_flight.load(Ordering::SeqCst), shared.queue_cap);
        return error_json(line_no, &e);
    }
    let reply = serve_admitted_query(shared, session, conn, &nodes_raw, k, tag, line_no);
    shared.release();
    reply
}

/// The admitted body of a `query` op (the caller pairs admit/release).
fn serve_admitted_query(
    shared: &Shared,
    session: &mut Session,
    conn: &mut ConnState,
    nodes_raw: &[u64],
    k: usize,
    tag: Option<String>,
    line_no: usize,
) -> Json {
    // Original → dense, under the shared id map.
    let dense: Result<Vec<NodeId>, u64> = {
        let ids = shared.ids_read();
        nodes_raw
            .iter()
            .map(|raw| ids.index.get(raw).copied().ok_or(*raw))
            .collect()
    };
    let dense = match dense {
        Ok(d) => d,
        Err(raw) => return error_json(line_no, &EngineError::unknown_node(raw)),
    };

    if k > 0 {
        let outcome = session.top_k(&dense, k);
        shared.served.fetch_add(1, Ordering::SeqCst);
        let ids = shared.ids_read();
        return topk_json(&outcome, k, tag.as_deref(), nodes_raw, &ids.original);
    }

    let mut request = QueryRequest::new(dense);
    if let Some(t) = tag {
        request = request.with_tag(t);
    }
    match session.query(&request) {
        Ok(resp) => {
            shared.served.fetch_add(1, Ordering::SeqCst);
            let ids = shared.ids_read();
            let json = response_json(&resp, Some(&ids.original));
            conn.responses.push(resp); // feeds the closing summary line
            json
        }
        // Unreachable without per-request algo overrides, but keep the
        // taxonomy honest rather than panicking a connection thread.
        Err(e) => error_json(line_no, &e),
    }
}

/// One `topk` reply line: the enumeration's rounds inlined, communities
/// in original ids.
fn topk_json(
    outcome: &crate::session::TopKOutcome,
    k: usize,
    tag: Option<&str>,
    query_raw: &[u64],
    original: &[u64],
) -> Json {
    let mut query: Vec<u64> = query_raw.to_vec();
    query.sort_unstable();
    let mut members = vec![
        ("tag".to_string(), tag.map_or(Json::Null, Json::str)),
        ("algo".to_string(), Json::str(outcome.algo)),
        (
            "query".to_string(),
            Json::Arr(query.into_iter().map(Json::UInt).collect()),
        ),
        ("k".to_string(), Json::UInt(k as u64)),
    ];
    match &outcome.rounds {
        Ok(rounds) => {
            members.push(("ok".to_string(), Json::Bool(true)));
            members.push(("seconds".to_string(), Json::Num(outcome.seconds)));
            let rounds_json: Vec<Json> = rounds
                .iter()
                .map(|r| {
                    let mut community: Vec<u64> =
                        r.community.iter().map(|&v| original[v as usize]).collect();
                    community.sort_unstable();
                    Json::Obj(vec![
                        ("size".to_string(), Json::UInt(r.community.len() as u64)),
                        ("dm".to_string(), Json::Num(r.density_modularity)),
                        ("iterations".to_string(), Json::UInt(r.iterations as u64)),
                        (
                            "community".to_string(),
                            Json::Arr(community.into_iter().map(Json::UInt).collect()),
                        ),
                    ])
                })
                .collect();
            members.push(("rounds".to_string(), Json::Arr(rounds_json)));
        }
        Err(e) => {
            members.push(("ok".to_string(), Json::Bool(false)));
            members.push(("error".to_string(), Json::str(e.to_string())));
            members.push(("seconds".to_string(), Json::Num(outcome.seconds)));
        }
    }
    typed_obj("topk", members)
}

/// `{"op":"update","action":"add|del|setw","u":..,"v":..,"w":..}` —
/// same semantics (and error taxonomy) as a `--updates` script line,
/// applied to the live store. Sessions keep serving their pinned
/// snapshot until the client sends `repin`.
fn op_update(shared: &Shared, req: &Json, line_no: usize) -> Json {
    let Some(action) = req.get("action").and_then(Json::as_str) else {
        return error_json(
            line_no,
            &EngineError::bad_request(
                line_no,
                "update needs an \"action\" member (add, del or setw)",
            ),
        );
    };
    let endpoint = |name: &str| -> Result<u64, EngineError> {
        req.get(name).and_then(Json::as_u64).ok_or_else(|| {
            EngineError::bad_request(line_no, format!("update needs {name:?} (unsigned node id)"))
        })
    };
    let (u_raw, v_raw) = match (endpoint("u"), endpoint("v")) {
        (Ok(u), Ok(v)) => (u, v),
        (Err(e), _) | (_, Err(e)) => return error_json(line_no, &e),
    };
    let weight = match req.get("w") {
        None => None,
        Some(v) => match v.as_f64() {
            Some(w) if dmcs_graph::weighted::valid_weight(w) => Some(w),
            Some(w) => {
                return error_json(
                    line_no,
                    &EngineError::bad_update(
                        line_no,
                        format!("weight {w} {}", dmcs_graph::weighted::WEIGHT_CONSTRAINT),
                    ),
                )
            }
            None => {
                return error_json(
                    line_no,
                    &EngineError::bad_request(line_no, "\"w\" must be a number"),
                )
            }
        },
    };
    if u_raw == v_raw {
        return error_json(
            line_no,
            &EngineError::bad_update(line_no, format!("self-loop {action} {u_raw} {u_raw}")),
        );
    }

    if !shared.admit() {
        let e = EngineError::overloaded(shared.in_flight.load(Ordering::SeqCst), shared.queue_cap);
        return error_json(line_no, &e);
    }
    let reply = apply_update(shared, action, u_raw, v_raw, weight, line_no);
    shared.release();
    reply
}

/// The admitted body of an `update` op.
fn apply_update(
    shared: &Shared,
    action: &str,
    u_raw: u64,
    v_raw: u64,
    weight: Option<f64>,
    line_no: usize,
) -> Json {
    let engine = &shared.engine;
    let bad_update = |reason: String| EngineError::bad_update(line_no, reason);
    // Dense ids for known nodes (del/setw never create).
    let known = |raw: u64| -> Result<NodeId, EngineError> {
        shared
            .ids_read()
            .index
            .get(&raw)
            .copied()
            .ok_or_else(|| bad_update(format!("unknown node {raw}")))
    };
    let mut extra: Vec<(String, Json)> = Vec::new();
    let outcome: Result<(), EngineError> = match action {
        "add" => {
            if weight.is_some() && !engine.store().is_weighted() {
                Err(bad_update(format!(
                    "weighted add {u_raw} {v_raw} requires a weighted graph"
                )))
            } else {
                // Unseen ids create fresh store nodes, in lockstep with
                // the shared id map (one write lock spans both).
                let (u, v) = {
                    let mut ids = shared.ids_write();
                    let mut resolve = |raw: u64| -> NodeId {
                        if let Some(&dense) = ids.index.get(&raw) {
                            return dense;
                        }
                        let dense = engine.add_node();
                        debug_assert_eq!(
                            dense as usize,
                            ids.original.len(),
                            "id spaces in lockstep"
                        );
                        ids.index.insert(raw, dense);
                        ids.original.push(raw);
                        dense
                    };
                    let u = resolve(u_raw);
                    let v = resolve(v_raw);
                    (u, v)
                };
                let inserted = if engine.store().is_weighted() {
                    engine.insert_edge_w(u, v, weight.unwrap_or(1.0))
                } else {
                    engine.insert_edge(u, v)
                };
                if inserted {
                    Ok(())
                } else {
                    Err(bad_update(format!("edge {u_raw} {v_raw} already exists")))
                }
            }
        }
        "del" => match (known(u_raw), known(v_raw)) {
            (Ok(u), Ok(v)) => {
                if engine.remove_edge(u, v) {
                    Ok(())
                } else {
                    Err(bad_update(format!("edge {u_raw} {v_raw} does not exist")))
                }
            }
            (Err(e), _) | (_, Err(e)) => Err(e),
        },
        "setw" => {
            if !engine.store().is_weighted() {
                Err(bad_update(format!(
                    "setw {u_raw} {v_raw} requires a weighted graph"
                )))
            } else {
                match weight {
                    None => Err(EngineError::bad_request(
                        line_no,
                        "setw needs a \"w\" member",
                    )),
                    Some(w) => match (known(u_raw), known(v_raw)) {
                        (Ok(u), Ok(v)) => match engine.set_weight(u, v, w) {
                            Some(old) => {
                                extra.push(("previous".to_string(), Json::Num(old)));
                                Ok(())
                            }
                            None => Err(bad_update(format!("edge {u_raw} {v_raw} does not exist"))),
                        },
                        (Err(e), _) | (_, Err(e)) => Err(e),
                    },
                }
            }
        }
        other => Err(EngineError::bad_request(
            line_no,
            format!("unknown update action {other:?} (expected add, del or setw)"),
        )),
    };
    match outcome {
        Ok(()) => {
            shared.served.fetch_add(1, Ordering::SeqCst);
            let mut members = vec![
                ("action".to_string(), Json::str(action)),
                ("u".to_string(), Json::UInt(u_raw)),
                ("v".to_string(), Json::UInt(v_raw)),
            ];
            members.extend(extra);
            members.extend([
                ("version".to_string(), Json::UInt(engine.version())),
                ("nodes".to_string(), Json::UInt(engine.store().n() as u64)),
                ("edges".to_string(), Json::UInt(engine.store().m() as u64)),
            ]);
            typed_obj("update", members)
        }
        Err(e) => error_json(line_no, &e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmcs_graph::GraphBuilder;

    fn demo_engine() -> (Engine, Vec<u64>) {
        let g =
            GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]);
        (Engine::from_graph(g), (0..6).collect())
    }

    /// In-memory stream double: requests in, replies captured.
    struct Script {
        input: std::io::Cursor<Vec<u8>>,
        output: Vec<u8>,
    }

    impl Script {
        fn new(text: &str) -> Self {
            Script {
                input: std::io::Cursor::new(text.as_bytes().to_vec()),
                output: Vec::new(),
            }
        }

        fn replies(&self) -> Vec<Json> {
            String::from_utf8(self.output.clone())
                .unwrap()
                .lines()
                .map(|l| Json::parse(l).unwrap())
                .collect()
        }
    }

    impl Read for Script {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.input.read(buf)
        }
    }

    impl Write for Script {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.output.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn shared(engine: Engine, original: Vec<u64>, queue_cap: usize) -> Shared {
        let index = original
            .iter()
            .enumerate()
            .map(|(i, &o)| (o, i as NodeId))
            .collect();
        Shared {
            engine,
            spec: AlgoSpec::new("fpa"),
            algo_name: "FPA",
            ids: RwLock::new(IdSpace { index, original }),
            drain: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            queue_cap,
            max_line_bytes: 64 * 1024,
            served: AtomicU64::new(0),
            connections: AtomicU64::new(0),
        }
    }

    #[test]
    fn query_update_repin_round_trip() {
        let (engine, original) = demo_engine();
        let sh = shared(engine, original, 8);
        let mut io = Script::new(
            "{\"op\":\"query\",\"nodes\":[0],\"tag\":\"a\"}\n\
             {\"op\":\"update\",\"action\":\"add\",\"u\":0,\"v\":3}\n\
             {\"op\":\"query\",\"nodes\":[0]}\n\
             {\"op\":\"repin\"}\n\
             {\"op\":\"query\",\"nodes\":[0]}\n",
        );
        serve_conn(&sh, &mut io);
        let replies = io.replies();
        // 5 requests + closing summary.
        assert_eq!(replies.len(), 6, "{replies:?}");
        assert_eq!(replies[0].get("type").unwrap().as_str(), Some("response"));
        assert_eq!(replies[0].get("tag").unwrap().as_str(), Some("a"));
        assert_eq!(replies[1].get("type").unwrap().as_str(), Some("update"));
        assert_eq!(replies[1].get("version").unwrap().as_u64(), Some(1));
        // Pinned session: the pre-update answer replays (cache hit on
        // the old epoch) even after the store moved.
        assert_eq!(replies[2], replies[0].clone_without_tag());
        assert_eq!(replies[3].get("type").unwrap().as_str(), Some("repin"));
        assert_eq!(replies[3].get("version").unwrap().as_u64(), Some(1));
        // Fresh epoch: same query, different graph.
        assert_eq!(replies[4].get("type").unwrap().as_str(), Some("response"));
        assert_ne!(replies[4], replies[2]);
        assert_eq!(replies[5].get("type").unwrap().as_str(), Some("summary"));
        assert_eq!(replies[5].get("queries").unwrap().as_u64(), Some(3));
    }

    impl Json {
        /// Test helper: the same object with `"tag": null` (queries
        /// repeated without a tag should otherwise replay identically).
        fn clone_without_tag(&self) -> Json {
            match self {
                Json::Obj(members) => Json::Obj(
                    members
                        .iter()
                        .map(|(k, v)| {
                            if k == "tag" {
                                (k.clone(), Json::Null)
                            } else {
                                (k.clone(), v.clone())
                            }
                        })
                        .collect(),
                ),
                other => other.clone(),
            }
        }
    }

    #[test]
    fn malformed_lines_are_typed_bad_requests() {
        let (engine, original) = demo_engine();
        let sh = shared(engine, original, 8);
        let mut io = Script::new(
            "this is not json\n\
             [1,2,3]\n\
             {\"nodes\":[0]}\n\
             {\"op\":\"dance\"}\n\
             {\"op\":\"query\"}\n\
             {\"op\":\"query\",\"nodes\":[\"zero\"]}\n\
             {\"op\":\"query\",\"nodes\":[77]}\n",
        );
        serve_conn(&sh, &mut io);
        let replies = io.replies();
        assert_eq!(replies.len(), 8, "{replies:?}");
        for (i, expect_code) in [(0, 9), (1, 9), (2, 9), (3, 9), (4, 9), (5, 9), (6, 5)] {
            let r = &replies[i];
            assert_eq!(r.get("type").unwrap().as_str(), Some("error"), "{r:?}");
            assert_eq!(
                r.get("code").unwrap().as_u64(),
                Some(expect_code),
                "line {i}: {r:?}"
            );
            assert_eq!(r.get("line").unwrap().as_u64(), Some(i as u64 + 1));
        }
        assert_eq!(replies[7].get("type").unwrap().as_str(), Some("summary"));
        assert_eq!(replies[7].get("queries").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn zero_queue_cap_rejects_work_but_not_control() {
        let (engine, original) = demo_engine();
        let sh = shared(engine, original, 0);
        let mut io = Script::new(
            "{\"op\":\"query\",\"nodes\":[0]}\n\
             {\"op\":\"update\",\"action\":\"add\",\"u\":0,\"v\":5}\n\
             {\"op\":\"stats\"}\n",
        );
        serve_conn(&sh, &mut io);
        let replies = io.replies();
        assert_eq!(replies.len(), 4, "{replies:?}");
        for r in &replies[..2] {
            assert_eq!(r.get("type").unwrap().as_str(), Some("error"), "{r:?}");
            assert_eq!(r.get("code").unwrap().as_u64(), Some(8));
            assert!(r
                .get("error")
                .unwrap()
                .as_str()
                .unwrap()
                .contains("overloaded"));
        }
        assert_eq!(replies[2].get("type").unwrap().as_str(), Some("stats"));
        assert_eq!(replies[2].get("queue_cap").unwrap().as_u64(), Some(0));
        assert_eq!(replies[2].get("served").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn update_taxonomy_matches_the_script_mode() {
        let (engine, original) = demo_engine();
        let sh = shared(engine, original, 8);
        let mut io = Script::new(
            "{\"op\":\"update\",\"action\":\"add\",\"u\":0,\"v\":1}\n\
             {\"op\":\"update\",\"action\":\"del\",\"u\":0,\"v\":9}\n\
             {\"op\":\"update\",\"action\":\"setw\",\"u\":0,\"v\":1,\"w\":2.0}\n\
             {\"op\":\"update\",\"action\":\"add\",\"u\":4,\"v\":4}\n\
             {\"op\":\"update\",\"action\":\"add\",\"u\":0,\"v\":1,\"w\":-2.0}\n\
             {\"op\":\"update\",\"action\":\"add\",\"u\":0,\"v\":9}\n",
        );
        serve_conn(&sh, &mut io);
        let replies = io.replies();
        assert_eq!(replies.len(), 7, "{replies:?}");
        // Duplicate edge, unknown node, setw on unweighted, self-loop,
        // invalid weight: all exit-7 analogs.
        for r in &replies[..5] {
            assert_eq!(r.get("type").unwrap().as_str(), Some("error"), "{r:?}");
            assert_eq!(r.get("code").unwrap().as_u64(), Some(7), "{r:?}");
        }
        // A fresh id creates a node (id map growth).
        let grown = &replies[5];
        assert_eq!(grown.get("type").unwrap().as_str(), Some("update"));
        assert_eq!(grown.get("nodes").unwrap().as_u64(), Some(7));
        let ids = sh.ids.read().unwrap();
        assert_eq!(ids.original.last(), Some(&9));
        assert_eq!(ids.index.get(&9), Some(&6));
    }

    #[test]
    fn top_k_over_the_wire() {
        // Two 4-cliques sharing node 0, original ids shifted by 100.
        let mut b = GraphBuilder::new(7);
        for c in [[0u32, 1, 2, 3], [0, 4, 5, 6]] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    b.add_edge(c[i], c[j]);
                }
            }
        }
        let engine = Engine::from_graph(b.build());
        let original: Vec<u64> = (100..107).collect();
        let sh = shared(engine, original, 8);
        let mut io = Script::new("{\"op\":\"query\",\"nodes\":[100],\"k\":3}\n");
        serve_conn(&sh, &mut io);
        let replies = io.replies();
        assert_eq!(replies.len(), 2, "{replies:?}");
        let topk = &replies[0];
        assert_eq!(topk.get("type").unwrap().as_str(), Some("topk"));
        assert_eq!(topk.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(topk.get("k").unwrap().as_u64(), Some(3));
        let rounds = topk.get("rounds").unwrap().as_arr().unwrap();
        assert_eq!(rounds.len(), 2, "both wings");
        for round in rounds {
            let community = round.get("community").unwrap().as_arr().unwrap();
            assert!(
                community.iter().all(|v| v.as_u64().unwrap() >= 100),
                "communities are reported in original ids: {round:?}"
            );
        }
    }

    #[test]
    fn torn_and_oversized_lines_resync() {
        let (engine, original) = demo_engine();
        let mut sh = shared(engine, original, 8);
        sh.max_line_bytes = 32;
        let huge = format!("{{\"op\":\"query\",\"nodes\":[{}]}}", "0,".repeat(64) + "0");
        let mut io = Script::new(&format!(
            "{huge}\n{{\"op\":\"query\",\"nodes\":[0]}}\n{{\"op\":\"stats\""
        ));
        serve_conn(&sh, &mut io);
        let replies = io.replies();
        assert_eq!(replies.len(), 4, "{replies:?}");
        // Oversized line: typed 9, then the connection resyncs and the
        // next request is served normally.
        assert_eq!(replies[0].get("code").unwrap().as_u64(), Some(9));
        assert!(replies[0]
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("exceeds 32 bytes"));
        assert_eq!(replies[1].get("type").unwrap().as_str(), Some("response"));
        // Torn final line (EOF without newline): typed 9, then summary.
        assert_eq!(replies[2].get("code").unwrap().as_u64(), Some(9));
        assert!(replies[2]
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("torn line"));
        assert_eq!(replies[3].get("type").unwrap().as_str(), Some("summary"));
    }

    #[test]
    fn shutdown_op_drains_and_still_summarises() {
        let (engine, original) = demo_engine();
        let sh = shared(engine, original, 8);
        let mut io = Script::new(
            "{\"op\":\"query\",\"nodes\":[0]}\n\
             {\"op\":\"shutdown\"}\n\
             {\"op\":\"query\",\"nodes\":[1]}\n",
        );
        serve_conn(&sh, &mut io);
        assert!(sh.draining());
        let replies = io.replies();
        // The request pipelined after shutdown is not served.
        assert_eq!(replies.len(), 3, "{replies:?}");
        assert_eq!(replies[1].get("type").unwrap().as_str(), Some("shutdown"));
        assert_eq!(replies[2].get("type").unwrap().as_str(), Some("summary"));
        assert_eq!(replies[2].get("queries").unwrap().as_u64(), Some(1));
    }
}
