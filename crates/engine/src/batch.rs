//! Concurrent batch execution: fan a slice of [`QueryRequest`]s out
//! across scoped worker threads over one shared graph, with
//! deterministic result ordering and a throughput summary.
//!
//! Each worker is a thin wrapper over a per-thread
//! [`Session`], so the `O(n)` per-query allocations
//! (alive masks, degree and distance arrays) are paid once per worker,
//! not once per query. Workers pull request indices from a shared atomic
//! counter (work stealing by construction — a slow query never stalls
//! the others), and responses are re-ordered by index before returning,
//! so the output of [`BatchRunner::run`] is bit-identical to sequential
//! execution regardless of the thread count — a property the engine's
//! property tests pin down for every registered algorithm.

use crate::error::EngineError;
use crate::registry::{self, AlgoSpec};
use crate::request::{QueryRequest, QueryResponse};
use crate::session::Session;
use dmcs_graph::Graph;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// A completed batch: per-request responses in submission order plus the
/// latency/throughput summary a serving deployment monitors.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Responses, index-aligned with the submitted requests.
    pub responses: Vec<QueryResponse>,
    /// End-to-end wall-clock seconds for the whole batch.
    pub wall_seconds: f64,
    /// Queries completed per wall-clock second.
    pub queries_per_sec: f64,
    /// Median per-query latency (seconds).
    pub p50_seconds: f64,
    /// 95th-percentile per-query latency (seconds).
    pub p95_seconds: f64,
}

impl BatchReport {
    /// Number of requests that produced a community.
    pub fn succeeded(&self) -> usize {
        self.responses.iter().filter(|r| r.is_ok()).count()
    }
}

/// Executes batches of requests with a default algorithm and a worker
/// count.
#[derive(Debug, Clone)]
pub struct BatchRunner {
    spec: AlgoSpec,
    algo_name: &'static str,
    threads: usize,
}

impl BatchRunner {
    /// Runner for `spec` on `threads` workers.
    ///
    /// `threads == 0` is an [`EngineError::BadParam`]; an unregistered
    /// label is an [`EngineError::UnknownAlgo`] (detected here, not at
    /// run time). A thread count larger than a batch is clamped to one
    /// worker per request when the batch runs.
    pub fn new(spec: AlgoSpec, threads: usize) -> Result<Self, EngineError> {
        if threads == 0 {
            return Err(EngineError::bad_param(
                "batch thread count must be at least 1 (got 0)",
            ));
        }
        let algo_name = spec.build()?.name();
        Ok(BatchRunner {
            spec,
            algo_name,
            threads,
        })
    }

    /// Display name of the default algorithm.
    pub fn algo_name(&self) -> &'static str {
        self.algo_name
    }

    /// Configured worker count (before per-batch clamping).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run every request and aggregate the report. Responses come back
    /// in submission order whatever the thread count.
    ///
    /// Per-query search failures land inside their [`QueryResponse`];
    /// only request-level failures (an unknown per-request algorithm
    /// override) abort the batch, and those are detected up front —
    /// before any query runs.
    pub fn run(&self, g: &Graph, requests: &[QueryRequest]) -> Result<BatchReport, EngineError> {
        // Check every override label now so workers cannot fail
        // mid-batch. A registry lookup suffices: construction itself is
        // infallible once the label resolves (params are plain config).
        for req in requests {
            if let Some(spec) = &req.algo {
                if registry::find(&spec.name).is_none() {
                    return Err(EngineError::unknown_algo(spec.name.clone()));
                }
            }
        }

        let start = Instant::now();
        let workers = self.threads.min(requests.len()).max(1);
        let responses: Vec<QueryResponse> = if workers == 1 {
            let mut session = Session::new(g, &self.spec)?;
            requests
                .iter()
                .map(|req| answer(&mut session, req))
                .collect()
        } else {
            let next = AtomicUsize::new(0);
            let mut indexed = std::thread::scope(
                |scope| -> Result<Vec<(usize, QueryResponse)>, EngineError> {
                    let mut handles = Vec::with_capacity(workers);
                    for _ in 0..workers {
                        let next = &next;
                        let mut session = Session::new(g, &self.spec)?;
                        handles.push(scope.spawn(move || {
                            let mut local = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                let Some(req) = requests.get(i) else { break };
                                local.push((i, answer(&mut session, req)));
                            }
                            local
                        }));
                    }
                    let mut indexed = Vec::with_capacity(requests.len());
                    for h in handles {
                        indexed.extend(h.join().expect("batch worker panicked"));
                    }
                    Ok(indexed)
                },
            )?;
            indexed.sort_unstable_by_key(|&(i, _)| i);
            indexed.into_iter().map(|(_, r)| r).collect()
        };
        let wall_seconds = start.elapsed().as_secs_f64();

        let mut lat: Vec<f64> = responses.iter().map(|r| r.seconds).collect();
        lat.sort_unstable_by(|a, b| a.total_cmp(b));
        let pct = |p: f64| -> f64 {
            if lat.is_empty() {
                return 0.0;
            }
            let idx = ((lat.len() as f64 * p).ceil() as usize).clamp(1, lat.len()) - 1;
            lat[idx]
        };
        let (p50_seconds, p95_seconds) = (pct(0.50), pct(0.95));
        let queries_per_sec = if wall_seconds > 0.0 {
            responses.len() as f64 / wall_seconds
        } else {
            0.0
        };
        Ok(BatchReport {
            responses,
            wall_seconds,
            queries_per_sec,
            p50_seconds,
            p95_seconds,
        })
    }
}

/// One request through a worker's session. Overrides were pre-resolved
/// by [`BatchRunner::run`], so a request-level error here is impossible.
fn answer(session: &mut Session<'_>, req: &QueryRequest) -> QueryResponse {
    session.query(req).expect("overrides pre-validated")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmcs_graph::{GraphBuilder, NodeId};

    fn barbell() -> Graph {
        GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
    }

    fn requests() -> Vec<QueryRequest> {
        QueryRequest::from_node_lists(&(0..6u32).map(|v| vec![v]).collect::<Vec<Vec<NodeId>>>())
    }

    #[test]
    fn batch_matches_sequential_and_preserves_order() {
        let g = barbell();
        let reqs = requests();
        let seq = BatchRunner::new(AlgoSpec::new("fpa"), 1)
            .unwrap()
            .run(&g, &reqs)
            .unwrap();
        let par = BatchRunner::new(AlgoSpec::new("fpa"), 4)
            .unwrap()
            .run(&g, &reqs)
            .unwrap();
        assert_eq!(seq.responses.len(), par.responses.len());
        for (s, p) in seq.responses.iter().zip(&par.responses) {
            assert_eq!(s.request, p.request);
            assert_eq!(s.result, p.result);
        }
    }

    #[test]
    fn zero_threads_is_a_bad_param_and_excess_threads_clamp() {
        let err = BatchRunner::new(AlgoSpec::new("fpa"), 0).unwrap_err();
        assert!(matches!(err, EngineError::BadParam { .. }), "{err:?}");
        assert_eq!(err.exit_code(), 2);

        // 64 threads over 3 requests: clamped to one worker per request,
        // still deterministic and complete.
        let g = barbell();
        let reqs = QueryRequest::from_node_lists(&[vec![0], vec![3], vec![5]]);
        let runner = BatchRunner::new(AlgoSpec::new("fpa"), 64).unwrap();
        assert_eq!(runner.threads(), 64);
        let report = runner.run(&g, &reqs).unwrap();
        assert_eq!(report.responses.len(), 3);
        assert_eq!(report.succeeded(), 3);
    }

    #[test]
    fn unknown_default_algo_fails_at_construction() {
        let err = BatchRunner::new(AlgoSpec::new("zeus"), 2).unwrap_err();
        assert!(matches!(err, EngineError::UnknownAlgo { .. }));
    }

    #[test]
    fn unknown_override_fails_before_any_query_runs() {
        let g = barbell();
        let reqs = vec![
            QueryRequest::new(vec![0]),
            QueryRequest::new(vec![1]).with_algo(AlgoSpec::new("zeus")),
        ];
        let err = BatchRunner::new(AlgoSpec::new("fpa"), 2)
            .unwrap()
            .run(&g, &reqs)
            .unwrap_err();
        assert!(matches!(err, EngineError::UnknownAlgo { .. }));
    }

    #[test]
    fn per_request_overrides_run_their_own_algorithm() {
        let g = barbell();
        let reqs = vec![
            QueryRequest::new(vec![0]),
            QueryRequest::new(vec![0]).with_algo(AlgoSpec::new("nca")),
        ];
        let report = BatchRunner::new(AlgoSpec::new("fpa"), 2)
            .unwrap()
            .run(&g, &reqs)
            .unwrap();
        assert_eq!(report.responses[0].algo, "FPA");
        assert_eq!(report.responses[1].algo, "NCA");
    }

    #[test]
    fn per_query_errors_do_not_abort_the_batch() {
        // A multi-node query spanning two components fails; the batch
        // records the error and keeps going.
        let split = GraphBuilder::from_edges(4, &[(0, 1), (2, 3)]);
        let reqs = QueryRequest::from_node_lists(&[vec![0u32], vec![0, 3], vec![2]]);
        let report = BatchRunner::new(AlgoSpec::new("fpa"), 2)
            .unwrap()
            .run(&split, &reqs)
            .unwrap();
        assert_eq!(report.responses.len(), 3);
        assert!(report.responses[0].is_ok());
        assert!(!report.responses[1].is_ok());
        assert!(report.responses[2].is_ok());
        assert_eq!(report.succeeded(), 2);
    }

    #[test]
    fn report_statistics_are_sane() {
        let g = barbell();
        let report = BatchRunner::new(AlgoSpec::new("nca"), 2)
            .unwrap()
            .run(&g, &requests())
            .unwrap();
        assert!(report.wall_seconds > 0.0);
        assert!(report.queries_per_sec > 0.0);
        assert!(report.p50_seconds <= report.p95_seconds);
        assert_eq!(report.succeeded(), 6);
    }

    #[test]
    fn empty_batch_is_fine() {
        let g = barbell();
        let report = BatchRunner::new(AlgoSpec::new("fpa"), 4)
            .unwrap()
            .run(&g, &[])
            .unwrap();
        assert!(report.responses.is_empty());
        assert_eq!(report.p50_seconds, 0.0);
    }
}
