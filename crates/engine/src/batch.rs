//! Concurrent batch execution: fan a slice of [`QueryRequest`]s out
//! across scoped worker threads over one pinned graph snapshot, with
//! deterministic result ordering and a throughput summary.
//!
//! Each worker is a thin wrapper over a per-thread
//! [`Session`], so the `O(n)` per-query allocations
//! (alive masks, degree and distance arrays) are paid once per worker,
//! not once per query. Workers pull request indices from a shared atomic
//! counter (work stealing by construction — a slow query never stalls
//! the others), and responses are re-ordered by index before returning,
//! so the output of [`BatchRunner::run`] is bit-identical to sequential
//! execution regardless of the thread count — a property the engine's
//! property tests pin down for every registered algorithm.
//!
//! Three serving optimisations happen transparently:
//!
//! - **In-batch dedup** — requests that resolve to the same
//!   `(algorithm, params, nodes, cap)` work item are answered once and
//!   the answer is fanned back out to every duplicate in submission
//!   order (tags stay per-request). [`BatchReport::unique_queries`]
//!   reports how much work the dedup saved.
//! - **Cross-batch caching** — when a shared
//!   [`ResponseCache`] is attached (as
//!   [`Engine::run_batch`](crate::Engine::run_batch) does), workers
//!   consult it per executed query; [`BatchReport::cache_hits`] /
//!   [`cache_misses`](BatchReport::cache_misses) surface the outcome.
//! - **Component-aware scheduling** — under the default
//!   [`PlanMode::Auto`] plan on a fragmented snapshot, work items are
//!   grouped by the connected component of their first query node
//!   (from the snapshot's cached [`ComponentIndex`](
//!   dmcs_graph::ComponentIndex)) and workers steal *groups* instead
//!   of single queries. Consecutive queries on a worker then share a
//!   component, so the worker session's memoized component BFS is
//!   reused ([`BatchReport::shared_bfs_reuses`]) and the peeling loops
//!   walk cache-warm CSR rows. Grouping only permutes execution order;
//!   responses are still re-ordered to submission order, so output
//!   stays bit-identical to the ungrouped path.
//!
//! All queries run against the **pinned** [`Snapshot`]: updates landing
//! in the owning [`GraphStore`](dmcs_graph::GraphStore) mid-batch do not
//! tear the batch.

use crate::cache::ResponseCache;
use crate::error::EngineError;
use crate::plan::{PlanMode, QueryPlan};
use crate::registry::{self, AlgoSpec};
use crate::request::{QueryRequest, QueryResponse};
use crate::session::Session;
use dmcs_graph::{NodeId, Snapshot};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A completed batch: per-request responses in submission order plus the
/// latency/throughput summary a serving deployment monitors.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Responses, index-aligned with the submitted requests.
    pub responses: Vec<QueryResponse>,
    /// End-to-end wall-clock seconds for the whole batch.
    pub wall_seconds: f64,
    /// Queries completed per wall-clock second.
    pub queries_per_sec: f64,
    /// Median per-query latency (seconds).
    pub p50_seconds: f64,
    /// 95th-percentile per-query latency (seconds).
    pub p95_seconds: f64,
    /// Distinct `(algorithm, params, nodes, cap)` work items actually
    /// dispatched — duplicates beyond this were answered by fan-out.
    pub unique_queries: usize,
    /// Executed queries answered from the shared result cache (0 when no
    /// cache was attached).
    pub cache_hits: usize,
    /// Executed queries that missed the shared result cache (0 when no
    /// cache was attached).
    pub cache_misses: usize,
    /// Connected-component groups the scheduler formed (0 when the plan
    /// ran ungrouped).
    pub groups: usize,
    /// Work items dispatched through component-grouped scheduling (0
    /// when the plan ran ungrouped).
    pub grouped_queries: usize,
    /// Queries that reused a component BFS memoized by an earlier query
    /// on the same worker session (0 when the plan disabled the memo).
    pub shared_bfs_reuses: u64,
    /// Queries executed on the snapshot's renumbered compute mirror (0
    /// when no mirror exists or the plan disabled mirror serving).
    pub mirror_served: u64,
    /// Largest-component mass fraction of the snapshot the planner saw
    /// (`1.0` for a connected or empty graph) — the statistic behind
    /// the grouping decision.
    pub skew: f64,
    /// Label of the query plan that scheduled the batch, e.g.
    /// `"auto:grouped+memo"`; `"off"` for unplanned paths like the
    /// CLI's `--updates` loop.
    pub plan: &'static str,
}

impl BatchReport {
    /// Assemble a report from finished responses: computes throughput
    /// and the latency percentiles. Used by [`BatchRunner::run`] and by
    /// the CLI's `--updates` loop (which interleaves queries with
    /// mutations and builds its report at the end).
    pub fn from_responses(
        responses: Vec<QueryResponse>,
        wall_seconds: f64,
        unique_queries: usize,
        cache_hits: usize,
        cache_misses: usize,
    ) -> Self {
        let mut lat: Vec<f64> = responses.iter().map(|r| r.seconds).collect();
        lat.sort_unstable_by(|a, b| a.total_cmp(b));
        let pct = |p: f64| -> f64 {
            if lat.is_empty() {
                return 0.0;
            }
            let idx = ((lat.len() as f64 * p).ceil() as usize).clamp(1, lat.len()) - 1;
            lat[idx]
        };
        let (p50_seconds, p95_seconds) = (pct(0.50), pct(0.95));
        let queries_per_sec = if wall_seconds > 0.0 {
            responses.len() as f64 / wall_seconds
        } else {
            0.0
        };
        BatchReport {
            responses,
            wall_seconds,
            queries_per_sec,
            p50_seconds,
            p95_seconds,
            unique_queries,
            cache_hits,
            cache_misses,
            groups: 0,
            grouped_queries: 0,
            shared_bfs_reuses: 0,
            mirror_served: 0,
            skew: 1.0,
            plan: "off",
        }
    }

    /// Record how the batch was scheduled: group/memo/mirror counters
    /// plus the plan's label and skew statistic. [`BatchRunner::run`]
    /// calls this; the defaults from [`BatchReport::from_responses`]
    /// describe an unplanned run.
    pub fn with_scheduling(
        mut self,
        groups: usize,
        grouped_queries: usize,
        shared_bfs_reuses: u64,
        mirror_served: u64,
        plan: &QueryPlan,
    ) -> Self {
        self.groups = groups;
        self.grouped_queries = grouped_queries;
        self.shared_bfs_reuses = shared_bfs_reuses;
        self.mirror_served = mirror_served;
        self.skew = plan.skew;
        self.plan = plan.label;
        self
    }

    /// Number of requests that produced a community.
    pub fn succeeded(&self) -> usize {
        self.responses.iter().filter(|r| r.is_ok()).count()
    }
}

/// Executes batches of requests with a default algorithm and a worker
/// count.
#[derive(Debug, Clone)]
pub struct BatchRunner {
    spec: AlgoSpec,
    algo_name: &'static str,
    threads: usize,
    cache: Option<Arc<ResponseCache>>,
    plan_mode: PlanMode,
    plan_override: Option<QueryPlan>,
}

/// The dedup identity of one request: everything that determines its
/// answer — label, `k`, layer pruning, weightedness, nodes and cap (the
/// correlation tag deliberately excluded).
type WorkKey = (String, u32, bool, bool, Vec<NodeId>, Option<usize>);

/// What the multi-worker scope hands back: submission-indexed responses
/// plus the workers' summed memo-hit and mirror-served counters.
type WorkerHarvest = (Vec<(usize, QueryResponse)>, u64, u64);

impl BatchRunner {
    /// Runner for `spec` on `threads` workers.
    ///
    /// `threads == 0` is an [`EngineError::BadParam`]; an unregistered
    /// label is an [`EngineError::UnknownAlgo`] (detected here, not at
    /// run time). A thread count larger than a batch is clamped to one
    /// worker per distinct request when the batch runs.
    pub fn new(spec: AlgoSpec, threads: usize) -> Result<Self, EngineError> {
        if threads == 0 {
            return Err(EngineError::bad_param(
                "batch thread count must be at least 1 (got 0)",
            ));
        }
        let algo_name = spec.build()?.name();
        Ok(BatchRunner {
            spec,
            algo_name,
            threads,
            cache: None,
            plan_mode: PlanMode::default(),
            plan_override: None,
        })
    }

    /// Replace the planner's decision with a fixed plan. Plans are
    /// result-invariant, so this cannot change responses — it exists so
    /// benchmarks and regression bisects can force a specific strategy
    /// (e.g. count-only grouping on a giant-component graph) that
    /// [`QueryPlan::choose`] would refuse.
    #[doc(hidden)]
    pub fn with_plan_override(mut self, plan: QueryPlan) -> Self {
        self.plan_override = Some(plan);
        self
    }

    /// Attach a shared result cache; worker sessions consult it per
    /// executed query and the report's hit/miss counters light up.
    pub fn with_cache(mut self, cache: Arc<ResponseCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Select the planner mode ([`PlanMode::Auto`] by default). The plan
    /// only chooses execution strategy — grouping and memoization —
    /// never results; [`BatchRunner::run`] output is bit-identical
    /// across modes.
    pub fn with_plan(mut self, mode: PlanMode) -> Self {
        self.plan_mode = mode;
        self
    }

    /// The configured planner mode.
    pub fn plan_mode(&self) -> PlanMode {
        self.plan_mode
    }

    /// Display name of the default algorithm.
    pub fn algo_name(&self) -> &'static str {
        self.algo_name
    }

    /// Configured worker count (before per-batch clamping).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Open one worker session over `snap`, attaching the shared cache
    /// when configured, disarming the component memo and mirror serving
    /// when the plan says so.
    fn worker_session(&self, snap: &Snapshot, plan: &QueryPlan) -> Result<Session, EngineError> {
        let mut session = Session::new(snap.clone(), &self.spec)?;
        if !plan.memoize {
            session = session.without_memo();
        }
        if !plan.mirror {
            session = session.without_mirror();
        }
        Ok(match &self.cache {
            Some(cache) => session.with_cache(Arc::clone(cache)),
            None => session,
        })
    }

    /// Run every request against the pinned snapshot and aggregate the
    /// report. Responses come back in submission order whatever the
    /// thread count.
    ///
    /// Per-query search failures land inside their [`QueryResponse`];
    /// only request-level failures (an unknown per-request algorithm
    /// override) abort the batch, and those are detected up front —
    /// before any query runs.
    pub fn run(
        &self,
        snap: &Snapshot,
        requests: &[QueryRequest],
    ) -> Result<BatchReport, EngineError> {
        // Check every override label now so workers cannot fail
        // mid-batch. A registry lookup suffices: construction itself is
        // infallible once the label resolves (params are plain config).
        for req in requests {
            if let Some(spec) = &req.algo {
                if registry::find(&spec.name).is_none() {
                    return Err(EngineError::unknown_algo(spec.name.clone()));
                }
            }
        }

        let start = Instant::now();
        let plan = match self.plan_override {
            Some(plan) => plan,
            None => QueryPlan::choose(self.plan_mode, snap),
        };

        // Dedup: answer each distinct work item once, fan back out below.
        let mut seen: HashMap<WorkKey, usize> = HashMap::new();
        let mut unique: Vec<usize> = Vec::new(); // representative request index
        let mut assign: Vec<usize> = Vec::with_capacity(requests.len());
        for (i, req) in requests.iter().enumerate() {
            let spec = req.algo.as_ref().unwrap_or(&self.spec);
            let key: WorkKey = (
                spec.name.clone(),
                spec.params.k,
                spec.params.layer_pruning,
                spec.params.weighted,
                req.nodes.clone(),
                req.max_community_size,
            );
            let slot = *seen.entry(key).or_insert_with(|| {
                unique.push(i);
                unique.len() - 1
            });
            assign.push(slot);
        }
        let work: Vec<&QueryRequest> = unique.iter().map(|&i| &requests[i]).collect();

        // Schedule: under a grouped plan, one group per connected
        // component of the first query node (groups ordered by first
        // appearance, members in submission order); otherwise one
        // singleton group per work item, which is plain per-query work
        // stealing. Grouping is a heuristic about *locality only* —
        // multi-node or out-of-range queries still validate inside the
        // search, whatever group they land in.
        let grouped = plan.grouped && work.len() > 1;
        let groups: Vec<Vec<usize>> = if grouped {
            let index = snap.component_index();
            let mut by_label: HashMap<u32, usize> = HashMap::new();
            let mut groups: Vec<Vec<usize>> = Vec::new();
            for (i, req) in work.iter().enumerate() {
                // Out-of-range first nodes (doomed to a validation
                // error) share one sentinel group.
                let label = req.nodes.first().map_or(u32::MAX, |&v| {
                    if (v as usize) < snap.n() {
                        index.label(v)
                    } else {
                        u32::MAX
                    }
                });
                let slot = *by_label.entry(label).or_insert_with(|| {
                    groups.push(Vec::new());
                    groups.len() - 1
                });
                groups[slot].push(i);
            }
            groups
        } else {
            (0..work.len()).map(|i| vec![i]).collect()
        };

        let workers = self.threads.min(groups.len()).max(1);
        let shared_bfs_reuses: u64;
        let mirror_served: u64;
        let mut indexed: Vec<(usize, QueryResponse)> = if workers == 1 {
            let mut session = self.worker_session(snap, &plan)?;
            let mut indexed = Vec::with_capacity(work.len());
            for group in &groups {
                for &i in group {
                    indexed.push((i, session.query(work[i])?));
                }
            }
            shared_bfs_reuses = session.memo_hits();
            mirror_served = session.mirror_served();
            indexed
        } else {
            let next = AtomicUsize::new(0);
            let work = &work;
            let groups = &groups;
            let plan = &plan;
            let (indexed, reuses, mirrored) =
                std::thread::scope(|scope| -> Result<WorkerHarvest, EngineError> {
                    let mut handles = Vec::with_capacity(workers);
                    for _ in 0..workers {
                        let next = &next;
                        let mut session = self.worker_session(snap, plan)?;
                        // Workers carry per-request Results home instead
                        // of unwrapping on their own thread (overrides
                        // were pre-resolved, so errors are unexpected —
                        // but a worker must not decide to panic for the
                        // whole batch). They steal whole groups so a
                        // group's queries stay on one session (and its
                        // memo); a slow group never stalls the others.
                        handles.push(scope.spawn(move || {
                            let mut local = Vec::new();
                            loop {
                                let g = next.fetch_add(1, Ordering::Relaxed);
                                let Some(group) = groups.get(g) else { break };
                                for &i in group {
                                    local.push((i, session.query(work[i])));
                                }
                            }
                            (local, session.memo_hits(), session.mirror_served())
                        }));
                    }
                    let mut indexed = Vec::with_capacity(work.len());
                    let mut reuses = 0u64;
                    let mut mirrored = 0u64;
                    for h in handles {
                        match h.join() {
                            Ok((local, hits, served)) => {
                                reuses += hits;
                                mirrored += served;
                                for (i, r) in local {
                                    indexed.push((i, r?));
                                }
                            }
                            // A worker panic is a bug in search code;
                            // re-raise it on the batch thread rather
                            // than inventing an error value for it.
                            Err(payload) => std::panic::resume_unwind(payload),
                        }
                    }
                    Ok((indexed, reuses, mirrored))
                })?;
            shared_bfs_reuses = reuses;
            mirror_served = mirrored;
            indexed
        };
        // Grouped order is an execution detail; answers go home in
        // submission order whatever the plan or thread count.
        indexed.sort_unstable_by_key(|&(i, _)| i);
        let executed: Vec<QueryResponse> = indexed.into_iter().map(|(_, r)| r).collect();
        let wall_seconds = start.elapsed().as_secs_f64();

        let (cache_hits, cache_misses) = if self.cache.is_some() {
            let hits = executed.iter().filter(|r| r.cached).count();
            (hits, executed.len() - hits)
        } else {
            (0, 0)
        };

        // Fan the executed answers back out to submission order; each
        // duplicate echoes its own request (tag and all) around the
        // shared answer.
        let responses: Vec<QueryResponse> = assign
            .iter()
            .zip(requests)
            .map(|(&slot, req)| {
                let mut resp = executed[slot].clone();
                resp.request = req.clone();
                resp
            })
            .collect();

        Ok(BatchReport::from_responses(
            responses,
            wall_seconds,
            work.len(),
            cache_hits,
            cache_misses,
        )
        .with_scheduling(
            if grouped { groups.len() } else { 0 },
            if grouped { work.len() } else { 0 },
            shared_bfs_reuses,
            mirror_served,
            &plan,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmcs_graph::{Graph, GraphBuilder};

    fn barbell() -> Graph {
        GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
    }

    fn barbell_snap() -> Snapshot {
        Snapshot::freeze(barbell())
    }

    fn requests() -> Vec<QueryRequest> {
        QueryRequest::from_node_lists(&(0..6u32).map(|v| vec![v]).collect::<Vec<Vec<NodeId>>>())
    }

    #[test]
    fn batch_matches_sequential_and_preserves_order() {
        let snap = barbell_snap();
        let reqs = requests();
        let seq = BatchRunner::new(AlgoSpec::new("fpa"), 1)
            .unwrap()
            .run(&snap, &reqs)
            .unwrap();
        let par = BatchRunner::new(AlgoSpec::new("fpa"), 4)
            .unwrap()
            .run(&snap, &reqs)
            .unwrap();
        assert_eq!(seq.responses.len(), par.responses.len());
        for (s, p) in seq.responses.iter().zip(&par.responses) {
            assert_eq!(s.request, p.request);
            assert_eq!(s.result, p.result);
        }
        assert_eq!(seq.unique_queries, 6, "all distinct, nothing deduped");
    }

    #[test]
    fn zero_threads_is_a_bad_param_and_excess_threads_clamp() {
        let err = BatchRunner::new(AlgoSpec::new("fpa"), 0).unwrap_err();
        assert!(matches!(err, EngineError::BadParam { .. }), "{err:?}");
        assert_eq!(err.exit_code(), 2);

        // 64 threads over 3 requests: clamped to one worker per request,
        // still deterministic and complete.
        let reqs = QueryRequest::from_node_lists(&[vec![0], vec![3], vec![5]]);
        let runner = BatchRunner::new(AlgoSpec::new("fpa"), 64).unwrap();
        assert_eq!(runner.threads(), 64);
        let report = runner.run(&barbell_snap(), &reqs).unwrap();
        assert_eq!(report.responses.len(), 3);
        assert_eq!(report.succeeded(), 3);
    }

    #[test]
    fn unknown_default_algo_fails_at_construction() {
        let err = BatchRunner::new(AlgoSpec::new("zeus"), 2).unwrap_err();
        assert!(matches!(err, EngineError::UnknownAlgo { .. }));
    }

    #[test]
    fn unknown_override_fails_before_any_query_runs() {
        let reqs = vec![
            QueryRequest::new(vec![0]),
            QueryRequest::new(vec![1]).with_algo(AlgoSpec::new("zeus")),
        ];
        let err = BatchRunner::new(AlgoSpec::new("fpa"), 2)
            .unwrap()
            .run(&barbell_snap(), &reqs)
            .unwrap_err();
        assert!(matches!(err, EngineError::UnknownAlgo { .. }));
    }

    #[test]
    fn per_request_overrides_run_their_own_algorithm() {
        let reqs = vec![
            QueryRequest::new(vec![0]),
            QueryRequest::new(vec![0]).with_algo(AlgoSpec::new("nca")),
        ];
        let report = BatchRunner::new(AlgoSpec::new("fpa"), 2)
            .unwrap()
            .run(&barbell_snap(), &reqs)
            .unwrap();
        assert_eq!(report.responses[0].algo, "FPA");
        assert_eq!(report.responses[1].algo, "NCA");
        assert_eq!(report.unique_queries, 2, "different algos never dedup");
    }

    #[test]
    fn per_query_errors_do_not_abort_the_batch() {
        // A multi-node query spanning two components fails; the batch
        // records the error and keeps going.
        let split = Snapshot::freeze(GraphBuilder::from_edges(4, &[(0, 1), (2, 3)]));
        let reqs = QueryRequest::from_node_lists(&[vec![0u32], vec![0, 3], vec![2]]);
        let report = BatchRunner::new(AlgoSpec::new("fpa"), 2)
            .unwrap()
            .run(&split, &reqs)
            .unwrap();
        assert_eq!(report.responses.len(), 3);
        assert!(report.responses[0].is_ok());
        assert!(!report.responses[1].is_ok());
        assert!(report.responses[2].is_ok());
        assert_eq!(report.succeeded(), 2);
    }

    #[test]
    fn report_statistics_are_sane() {
        let report = BatchRunner::new(AlgoSpec::new("nca"), 2)
            .unwrap()
            .run(&barbell_snap(), &requests())
            .unwrap();
        assert!(report.wall_seconds > 0.0);
        assert!(report.queries_per_sec > 0.0);
        assert!(report.p50_seconds <= report.p95_seconds);
        assert_eq!(report.succeeded(), 6);
        assert_eq!((report.cache_hits, report.cache_misses), (0, 0));
    }

    #[test]
    fn empty_batch_is_fine() {
        let report = BatchRunner::new(AlgoSpec::new("fpa"), 4)
            .unwrap()
            .run(&barbell_snap(), &[])
            .unwrap();
        assert!(report.responses.is_empty());
        assert_eq!(report.p50_seconds, 0.0);
        assert_eq!(report.unique_queries, 0);
    }

    #[test]
    fn duplicate_requests_are_answered_once_and_fanned_out() {
        let reqs = vec![
            QueryRequest::new(vec![0]).with_tag("a"),
            QueryRequest::new(vec![5]),
            QueryRequest::new(vec![0]).with_tag("b"), // dup of [0]
            QueryRequest::new(vec![0]).with_max_community_size(1), // NOT a dup (cap differs)
            QueryRequest::new(vec![5]),               // dup of [5]
        ];
        for threads in [1usize, 3] {
            let report = BatchRunner::new(AlgoSpec::new("fpa"), threads)
                .unwrap()
                .run(&barbell_snap(), &reqs)
                .unwrap();
            assert_eq!(report.unique_queries, 3, "{threads} threads");
            assert_eq!(report.responses.len(), 5, "every request answered");
            // Duplicates share the answer (and its timing) but keep
            // their own request echo.
            assert_eq!(report.responses[0].result, report.responses[2].result);
            assert_eq!(report.responses[0].seconds, report.responses[2].seconds);
            assert_eq!(report.responses[0].request.tag.as_deref(), Some("a"));
            assert_eq!(report.responses[2].request.tag.as_deref(), Some("b"));
            assert_eq!(report.responses[1].result, report.responses[4].result);
            // The capped variant ran separately and failed its cap.
            assert!(matches!(
                report.responses[3].result,
                Err(dmcs_core::SearchError::CommunityTooLarge { .. })
            ));
        }
    }

    #[test]
    fn dedup_output_matches_the_undeduped_answer() {
        // A batch of pure duplicates must answer exactly like a batch of
        // one, fanned out.
        let single = BatchRunner::new(AlgoSpec::new("fpa"), 1)
            .unwrap()
            .run(&barbell_snap(), &[QueryRequest::new(vec![0])])
            .unwrap();
        let many: Vec<QueryRequest> = (0..8).map(|_| QueryRequest::new(vec![0])).collect();
        let report = BatchRunner::new(AlgoSpec::new("fpa"), 4)
            .unwrap()
            .run(&barbell_snap(), &many)
            .unwrap();
        assert_eq!(report.unique_queries, 1);
        for resp in &report.responses {
            assert_eq!(resp.result, single.responses[0].result);
        }
    }

    /// Three components (two triangles and a 4-path) with queries
    /// interleaved across them — the worst case for per-query component
    /// derivation and the best case for grouping.
    fn fragmented_snap() -> Snapshot {
        let mut b = GraphBuilder::new(10);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            b.add_edge(u, v);
        }
        for (u, v) in [(6, 7), (7, 8), (8, 9)] {
            b.add_edge(u, v);
        }
        Snapshot::freeze(b.build())
    }

    fn interleaved_requests() -> Vec<QueryRequest> {
        QueryRequest::from_node_lists(&[
            vec![0u32],
            vec![3],
            vec![6],
            vec![1],
            vec![4],
            vec![7, 9],
            vec![2],
            vec![5, 3],
            vec![8],
        ])
    }

    #[test]
    fn grouped_plan_matches_plan_off_bit_identically() {
        let snap = fragmented_snap();
        let reqs = interleaved_requests();
        let baseline = BatchRunner::new(AlgoSpec::new("fpa"), 1)
            .unwrap()
            .with_plan(PlanMode::Off)
            .run(&snap, &reqs)
            .unwrap();
        assert_eq!(baseline.plan, "off");
        assert_eq!(
            (
                baseline.groups,
                baseline.grouped_queries,
                baseline.shared_bfs_reuses
            ),
            (0, 0, 0)
        );
        for threads in [1usize, 2, 4] {
            let grouped = BatchRunner::new(AlgoSpec::new("fpa"), threads)
                .unwrap()
                .with_plan(PlanMode::Auto)
                .run(&snap, &reqs)
                .unwrap();
            assert_eq!(grouped.plan, "auto:grouped+memo", "{threads} threads");
            assert_eq!(grouped.groups, 3, "{threads} threads");
            assert_eq!(grouped.grouped_queries, reqs.len(), "{threads} threads");
            for (a, b) in baseline.responses.iter().zip(&grouped.responses) {
                assert_eq!(a.request, b.request, "{threads} threads");
                assert_eq!(a.result, b.result, "{threads} threads");
                assert_eq!(a.algo, b.algo, "{threads} threads");
            }
        }
    }

    #[test]
    fn grouping_reuses_component_bfs_across_a_group() {
        // Single worker: all 9 queries run on one session; with three
        // groups of 3 the first of each group misses the memo and the
        // other two hit it.
        let report = BatchRunner::new(AlgoSpec::new("fpa"), 1)
            .unwrap()
            .run(&fragmented_snap(), &interleaved_requests())
            .unwrap();
        assert_eq!(report.groups, 3);
        assert_eq!(report.shared_bfs_reuses, 6);
    }

    #[test]
    fn connected_graphs_plan_memo_without_grouping() {
        let report = BatchRunner::new(AlgoSpec::new("fpa"), 2)
            .unwrap()
            .run(&barbell_snap(), &requests())
            .unwrap();
        assert_eq!(report.plan, "auto:memo");
        assert_eq!((report.groups, report.grouped_queries), (0, 0));
    }

    #[test]
    fn out_of_range_queries_share_the_sentinel_group() {
        let reqs = QueryRequest::from_node_lists(&[vec![0u32], vec![99], vec![3], vec![98]]);
        let report = BatchRunner::new(AlgoSpec::new("fpa"), 2)
            .unwrap()
            .run(&barbell_snap(), &reqs)
            .unwrap();
        // Barbell is connected → ungrouped; the doomed queries still
        // answer with their validation error.
        assert!(report.responses[0].is_ok());
        assert!(!report.responses[1].is_ok());
        let split = fragmented_snap();
        let report = BatchRunner::new(AlgoSpec::new("fpa"), 2)
            .unwrap()
            .run(&split, &reqs)
            .unwrap();
        assert_eq!(report.groups, 3, "two components + one sentinel group");
        assert!(!report.responses[3].is_ok());
    }

    #[test]
    fn mirror_serving_batches_match_plan_off_bit_identically() {
        use dmcs_graph::{GraphStore, LayoutPolicy};
        let mut b = GraphBuilder::new(10);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            b.add_edge(u, v);
        }
        for (u, v) in [(6, 7), (7, 8), (8, 9)] {
            b.add_edge(u, v);
        }
        let store = GraphStore::from_graph(b.build());
        store.set_layout_policy(LayoutPolicy::Rcm);
        let snap = store.snapshot();
        let reqs = interleaved_requests();
        let single_node = reqs.iter().filter(|r| r.nodes.len() == 1).count() as u64;
        let baseline = BatchRunner::new(AlgoSpec::new("fpa"), 1)
            .unwrap()
            .with_plan(PlanMode::Off)
            .run(&snap, &reqs)
            .unwrap();
        assert_eq!((baseline.mirror_served, baseline.plan), (0, "off"));
        for threads in [1usize, 2, 4] {
            let mirrored = BatchRunner::new(AlgoSpec::new("fpa"), threads)
                .unwrap()
                .run(&snap, &reqs)
                .unwrap();
            assert_eq!(mirrored.plan, "auto:grouped+memo+mirror");
            assert_eq!(mirrored.mirror_served, single_node, "{threads} threads");
            assert!((mirrored.skew - 0.4).abs() < 1e-12);
            for (a, b) in baseline.responses.iter().zip(&mirrored.responses) {
                assert_eq!(a.result, b.result, "{threads} threads");
            }
        }
    }

    #[test]
    fn attached_cache_counts_hits_across_batches() {
        let cache = Arc::new(ResponseCache::new(64));
        let snap = barbell_snap();
        let runner = BatchRunner::new(AlgoSpec::new("fpa"), 2)
            .unwrap()
            .with_cache(Arc::clone(&cache));
        let first = runner.run(&snap, &requests()).unwrap();
        assert_eq!(first.cache_hits, 0);
        assert_eq!(first.cache_misses, 6);
        let second = runner.run(&snap, &requests()).unwrap();
        assert_eq!(second.cache_hits, 6, "same snapshot version: all hits");
        assert_eq!(second.cache_misses, 0);
        for (a, b) in first.responses.iter().zip(&second.responses) {
            assert_eq!(a.result, b.result);
            assert_eq!(a.seconds, b.seconds, "hits replay original timings");
        }
    }
}
