//! Concurrent batch execution: fan a list of queries out across scoped
//! worker threads over one shared graph, with deterministic result
//! ordering and a throughput summary.
//!
//! Each worker owns a [`QueryWorkspace`], so the `O(n)` per-query
//! allocations (alive masks, degree and distance arrays) are paid once
//! per worker, not once per query. Workers pull query indices from a
//! shared atomic counter (work stealing by construction — a slow query
//! never stalls the others), and results are re-ordered by index before
//! returning, so the output of [`BatchRunner::run`] is bit-identical to
//! sequential execution regardless of the thread count — a property the
//! engine's property tests pin down for every registered algorithm.

use crate::registry::AlgoSpec;
use dmcs_core::{CommunitySearch, SearchError, SearchResult};
use dmcs_graph::view::QueryWorkspace;
use dmcs_graph::{Graph, NodeId};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// One query's outcome inside a batch.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The query node set (dense ids), as submitted.
    pub query: Vec<NodeId>,
    /// Search result or the per-query error (a failed query never aborts
    /// the batch).
    pub result: Result<SearchResult, SearchError>,
    /// Wall-clock seconds of this query alone.
    pub seconds: f64,
}

/// A completed batch: per-query outcomes in submission order plus the
/// latency/throughput summary a serving deployment monitors.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Outcomes, index-aligned with the submitted queries.
    pub outcomes: Vec<QueryOutcome>,
    /// End-to-end wall-clock seconds for the whole batch.
    pub wall_seconds: f64,
    /// Queries completed per wall-clock second.
    pub queries_per_sec: f64,
    /// Median per-query latency (seconds).
    pub p50_seconds: f64,
    /// 95th-percentile per-query latency (seconds).
    pub p95_seconds: f64,
}

impl BatchReport {
    /// Number of queries that produced a community.
    pub fn succeeded(&self) -> usize {
        self.outcomes.iter().filter(|o| o.result.is_ok()).count()
    }
}

/// Executes batches of queries with a fixed algorithm and thread count.
pub struct BatchRunner {
    algo: Box<dyn CommunitySearch>,
    threads: usize,
}

impl BatchRunner {
    /// Runner over an already-built algorithm. `threads` is clamped to at
    /// least 1.
    pub fn new(algo: Box<dyn CommunitySearch>, threads: usize) -> Self {
        BatchRunner {
            algo,
            threads: threads.max(1),
        }
    }

    /// Runner from a registry spec.
    pub fn from_spec(spec: &AlgoSpec, threads: usize) -> Result<Self, String> {
        Ok(Self::new(spec.build()?, threads))
    }

    /// The algorithm's display name.
    pub fn algo_name(&self) -> &'static str {
        self.algo.name()
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run every query and aggregate the report. Outcomes come back in
    /// submission order whatever the thread count.
    pub fn run(&self, g: &Graph, queries: &[Vec<NodeId>]) -> BatchReport {
        let start = Instant::now();
        let outcomes: Vec<QueryOutcome> = if self.threads == 1 || queries.len() <= 1 {
            let mut ws = QueryWorkspace::new();
            queries
                .iter()
                .map(|q| run_one(self.algo.as_ref(), g, q, &mut ws))
                .collect()
        } else {
            let next = AtomicUsize::new(0);
            let algo: &dyn CommunitySearch = self.algo.as_ref();
            let workers = self.threads.min(queries.len());
            let mut indexed: Vec<(usize, QueryOutcome)> = Vec::with_capacity(queries.len());
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let next = &next;
                        scope.spawn(move || {
                            let mut ws = QueryWorkspace::new();
                            let mut local = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                let Some(q) = queries.get(i) else { break };
                                local.push((i, run_one(algo, g, q, &mut ws)));
                            }
                            local
                        })
                    })
                    .collect();
                for h in handles {
                    indexed.extend(h.join().expect("batch worker panicked"));
                }
            });
            indexed.sort_unstable_by_key(|&(i, _)| i);
            indexed.into_iter().map(|(_, o)| o).collect()
        };
        let wall_seconds = start.elapsed().as_secs_f64();

        let mut lat: Vec<f64> = outcomes.iter().map(|o| o.seconds).collect();
        lat.sort_unstable_by(|a, b| a.total_cmp(b));
        let pct = |p: f64| -> f64 {
            if lat.is_empty() {
                return 0.0;
            }
            let idx = ((lat.len() as f64 * p).ceil() as usize).clamp(1, lat.len()) - 1;
            lat[idx]
        };
        let (p50_seconds, p95_seconds) = (pct(0.50), pct(0.95));
        let queries_per_sec = if wall_seconds > 0.0 {
            outcomes.len() as f64 / wall_seconds
        } else {
            0.0
        };
        BatchReport {
            outcomes,
            wall_seconds,
            queries_per_sec,
            p50_seconds,
            p95_seconds,
        }
    }
}

fn run_one(
    algo: &dyn CommunitySearch,
    g: &Graph,
    query: &[NodeId],
    ws: &mut QueryWorkspace,
) -> QueryOutcome {
    let t = Instant::now();
    let result = algo.search_with_workspace(g, query, ws);
    QueryOutcome {
        query: query.to_vec(),
        result,
        seconds: t.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmcs_graph::GraphBuilder;

    fn barbell() -> Graph {
        GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
    }

    fn queries() -> Vec<Vec<NodeId>> {
        (0..6u32).map(|v| vec![v]).collect()
    }

    #[test]
    fn batch_matches_sequential_and_preserves_order() {
        let g = barbell();
        let qs = queries();
        let seq = BatchRunner::from_spec(&AlgoSpec::new("fpa"), 1)
            .unwrap()
            .run(&g, &qs);
        let par = BatchRunner::from_spec(&AlgoSpec::new("fpa"), 4)
            .unwrap()
            .run(&g, &qs);
        assert_eq!(seq.outcomes.len(), par.outcomes.len());
        for (s, p) in seq.outcomes.iter().zip(&par.outcomes) {
            assert_eq!(s.query, p.query);
            assert_eq!(s.result, p.result);
        }
    }

    #[test]
    fn per_query_errors_do_not_abort_the_batch() {
        // A multi-node query spanning two components fails; the batch
        // records the error and keeps going.
        let split = GraphBuilder::from_edges(4, &[(0, 1), (2, 3)]);
        let qs = vec![vec![0u32], vec![0, 3], vec![2]];
        let report = BatchRunner::from_spec(&AlgoSpec::new("fpa"), 2)
            .unwrap()
            .run(&split, &qs);
        assert_eq!(report.outcomes.len(), 3);
        assert!(report.outcomes[0].result.is_ok());
        assert!(report.outcomes[1].result.is_err());
        assert!(report.outcomes[2].result.is_ok());
        assert_eq!(report.succeeded(), 2);
    }

    #[test]
    fn report_statistics_are_sane() {
        let g = barbell();
        let report = BatchRunner::from_spec(&AlgoSpec::new("nca"), 2)
            .unwrap()
            .run(&g, &queries());
        assert!(report.wall_seconds > 0.0);
        assert!(report.queries_per_sec > 0.0);
        assert!(report.p50_seconds <= report.p95_seconds);
        assert_eq!(report.succeeded(), 6);
    }

    #[test]
    fn empty_batch_is_fine() {
        let g = barbell();
        let report = BatchRunner::from_spec(&AlgoSpec::new("fpa"), 4)
            .unwrap()
            .run(&g, &[]);
        assert!(report.outcomes.is_empty());
        assert_eq!(report.p50_seconds, 0.0);
    }
}
