//! The version-keyed response cache: a hand-rolled LRU (the workspace's
//! dependency policy admits no cache crate) mapping `(algorithm, params,
//! sorted query nodes, store id, graph version)` to a finished answer.
//!
//! Correctness comes entirely from the **graph version in the key**: a
//! mutation bumps the store version, so every entry computed against the
//! old graph simply stops matching — there is no invalidation walk, no
//! "is this update near the query" heuristic (DM depends on the global
//! edge count, so *any* edge change can shift any answer). Stale entries
//! age out of the LRU like everything else.
//!
//! A cached answer replays the original response verbatim — including
//! its `seconds` — so a cache hit renders **byte-identical** JSON to the
//! miss that populated it. Community-size caps are applied *after*
//! retrieval (they are response shaping, not search work), so one cached
//! search serves requests with different caps.

use crate::registry::AlgoSpec;
use dmcs_core::{SearchError, SearchResult};
use dmcs_graph::{NodeId, Snapshot};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default entry capacity of an engine's cache.
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

/// What one cache entry answers: the exact search outcome plus the
/// display name of the algorithm that ran and the wall time of the
/// *original* computation (replayed on hits, keeping output byte-stable).
///
/// The outcome is a *list* of communities: single queries store exactly
/// one ([`CachedAnswer::single`] / [`CachedAnswer::single_result`]),
/// top-k enumerations store one per round. The two never collide — the
/// key's [`CacheKey::top_k`] field separates them.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedAnswer {
    /// Display name of the algorithm that computed the entry.
    pub algo: &'static str,
    /// The raw (un-capped) search outcome: one community per round
    /// (exactly one for single queries).
    pub result: Result<Vec<SearchResult>, SearchError>,
    /// Wall-clock seconds of the original computation.
    pub seconds: f64,
}

impl CachedAnswer {
    /// Entry for a single-community outcome.
    pub fn single(
        algo: &'static str,
        result: Result<SearchResult, SearchError>,
        seconds: f64,
    ) -> Self {
        CachedAnswer {
            algo,
            result: result.map(|r| vec![r]),
            seconds,
        }
    }

    /// The outcome as a single-community result (the first round).
    /// Meaningful only for entries stored under a single-query key.
    pub fn single_result(&self) -> Result<SearchResult, SearchError> {
        match &self.result {
            Ok(rounds) => Ok(rounds
                .first()
                .expect("single-query entries hold exactly one community")
                .clone()),
            Err(e) => Err(e.clone()),
        }
    }
}

/// Cache key: everything that determines a search outcome.
///
/// Query nodes are **sorted** — the searches treat the query as a set,
/// so `[0, 33]` and `[33, 0]` share an entry. The snapshot's
/// `(store id, version)` pair is the staleness discriminator (see the
/// module docs): versions only order mutations *within* one store, so
/// the process-unique store id keeps snapshots of different graphs from
/// ever colliding in a shared cache. `k` participates even for
/// algorithms that ignore it; that only costs duplicate entries for
/// off-label `--k` usage, never a wrong answer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Registry label of the algorithm.
    pub algo: String,
    /// The `k` parameter.
    pub k: u32,
    /// FPA's layer-pruning toggle.
    pub layer_pruning: bool,
    /// Whether the spec asked for the weighted objective
    /// ([`crate::AlgoParams::weighted`]) — a weighted and an unweighted
    /// request over the same label must never share an entry.
    pub weighted: bool,
    /// Query nodes, sorted ascending.
    pub nodes: Vec<NodeId>,
    /// `0` for a single-community query; for a top-k enumeration, the
    /// requested round count. Keeps a top-k answer (a *list* of
    /// communities) from ever being replayed as a single answer or vice
    /// versa, and separates different `k`s.
    pub top_k: usize,
    /// Process-unique id of the graph store the answer belongs to.
    pub store: u64,
    /// Graph-store version the answer is valid for.
    pub version: u64,
}

impl CacheKey {
    /// Key for running `spec` on `nodes` against the epoch `snapshot`
    /// pins.
    pub fn new(spec: &AlgoSpec, nodes: &[NodeId], snapshot: &Snapshot) -> CacheKey {
        let mut nodes = nodes.to_vec();
        nodes.sort_unstable();
        CacheKey {
            algo: spec.name.clone(),
            k: spec.params.k,
            layer_pruning: spec.params.layer_pruning,
            weighted: spec.params.weighted,
            nodes,
            top_k: 0,
            store: snapshot.store_id(),
            version: snapshot.version(),
        }
    }

    /// Key for a top-`k` enumeration of `spec` on `nodes` against the
    /// epoch `snapshot` pins.
    pub fn for_top_k(spec: &AlgoSpec, nodes: &[NodeId], snapshot: &Snapshot, k: usize) -> CacheKey {
        CacheKey {
            top_k: k,
            ..CacheKey::new(spec, nodes, snapshot)
        }
    }
}

#[derive(Debug)]
struct Entry {
    answer: CachedAnswer,
    last_used: u64,
}

#[derive(Debug, Default)]
struct LruInner {
    map: HashMap<CacheKey, Entry>,
    tick: u64,
}

/// A bounded, thread-safe LRU of query answers with hit/miss counters.
///
/// One instance is shared by everything serving a given
/// [`GraphStore`](dmcs_graph::GraphStore) — the engine hands clones of
/// one `Arc<ResponseCache>` to every [`Session`](crate::Session) it
/// opens, so a batch worker's miss becomes the next request's hit.
///
/// ```
/// use dmcs_engine::cache::{CacheKey, CachedAnswer, ResponseCache};
/// use dmcs_engine::AlgoSpec;
///
/// use dmcs_graph::{GraphBuilder, Snapshot};
///
/// let cache = ResponseCache::new(2);
/// let snap = Snapshot::freeze(GraphBuilder::from_edges(34, &[(0, 33)]));
/// let key = CacheKey::new(&AlgoSpec::new("fpa"), &[33, 0], &snap);
/// assert!(cache.get(&key).is_none());
/// cache.insert(key.clone(), CachedAnswer {
///     algo: "FPA",
///     result: Err(dmcs_core::SearchError::EmptyQuery),
///     seconds: 0.25,
/// });
/// assert_eq!(cache.get(&key).unwrap().seconds, 0.25);
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// ```
#[derive(Debug)]
pub struct ResponseCache {
    inner: Mutex<LruInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResponseCache {
    /// An empty cache holding at most `capacity` entries (0 disables
    /// storage: every lookup is a miss and inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        ResponseCache {
            inner: Mutex::new(LruInner::default()),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, LruInner> {
        self.inner.lock().expect("response cache lock poisoned")
    }

    /// Look `key` up, bumping its recency and the hit/miss counters.
    pub fn get(&self, key: &CacheKey) -> Option<CachedAnswer> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.answer.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store `answer` under `key`, evicting the least-recently-used
    /// entry when at capacity.
    pub fn insert(&self, key: CacheKey, answer: CachedAnswer) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        // Eviction is a linear min-scan over u64 recency ticks. At the
        // default capacity (1024) that is microseconds, paid only on a
        // miss that already paid a full search; an index that made this
        // O(log n) would clone keys on every *hit*, the wrong trade.
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            if let Some(evict) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&evict);
            }
        }
        inner.map.insert(
            key,
            Entry {
                answer,
                last_used: tick,
            },
        );
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the cache currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit count (across every consumer sharing this cache).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn answer(secs: f64) -> CachedAnswer {
        CachedAnswer::single(
            "FPA",
            Ok(SearchResult {
                community: vec![0, 1],
                density_modularity: 0.5,
                removal_order: vec![],
                iterations: 1,
            }),
            secs,
        )
    }

    fn key(nodes: &[NodeId], version: u64) -> CacheKey {
        let mut nodes = nodes.to_vec();
        nodes.sort_unstable();
        CacheKey {
            algo: "fpa".into(),
            k: 3,
            layer_pruning: true,
            weighted: false,
            nodes,
            top_k: 0,
            store: 0,
            version,
        }
    }

    #[test]
    fn keys_sort_nodes_and_separate_versions_and_stores() {
        use dmcs_graph::GraphBuilder;
        let snap = Snapshot::freeze(GraphBuilder::from_edges(34, &[(0, 33)]));
        assert_eq!(
            CacheKey::new(&AlgoSpec::new("fpa"), &[33, 0], &snap),
            CacheKey::new(&AlgoSpec::new("fpa"), &[0, 33], &snap),
            "query is a set"
        );
        assert_ne!(key(&[0], 1), key(&[0], 2), "versions separate epochs");
        assert_ne!(
            CacheKey::new(&AlgoSpec::new("fpa"), &[0], &snap),
            CacheKey::new(&AlgoSpec::new("nca"), &[0], &snap),
        );
        assert_ne!(
            CacheKey::new(&AlgoSpec::with_k("kc", 3), &[0], &snap),
            CacheKey::new(&AlgoSpec::with_k("kc", 4), &[0], &snap),
        );
        assert_ne!(
            CacheKey::new(&AlgoSpec::new("fpa"), &[0], &snap),
            CacheKey::new(&AlgoSpec::new("fpa").weighted(), &[0], &snap),
            "weightedness separates entries"
        );
        // A top-k enumeration never shares an entry with the single
        // query (or a different k) over the same nodes.
        assert_ne!(
            CacheKey::new(&AlgoSpec::new("fpa"), &[0], &snap),
            CacheKey::for_top_k(&AlgoSpec::new("fpa"), &[0], &snap, 3),
        );
        assert_ne!(
            CacheKey::for_top_k(&AlgoSpec::new("fpa"), &[0], &snap, 2),
            CacheKey::for_top_k(&AlgoSpec::new("fpa"), &[0], &snap, 3),
        );
        // Two different graphs frozen at the same version must never
        // share an entry: the process-unique store id separates them.
        let other = Snapshot::freeze(GraphBuilder::from_edges(34, &[(0, 1)]));
        assert_eq!((snap.version(), other.version()), (0, 0));
        assert_ne!(
            CacheKey::new(&AlgoSpec::new("fpa"), &[0], &snap),
            CacheKey::new(&AlgoSpec::new("fpa"), &[0], &other),
            "store identity is part of the key"
        );
    }

    #[test]
    fn round_trip_and_counters() {
        let cache = ResponseCache::new(8);
        assert!(cache.get(&key(&[0], 0)).is_none());
        cache.insert(key(&[0], 0), answer(0.125));
        let got = cache.get(&key(&[0], 0)).unwrap();
        assert_eq!(got.seconds, 0.125, "original timing replayed");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = ResponseCache::new(2);
        cache.insert(key(&[0], 0), answer(0.1));
        cache.insert(key(&[1], 0), answer(0.2));
        // Touch [0] so [1] is the coldest.
        assert!(cache.get(&key(&[0], 0)).is_some());
        cache.insert(key(&[2], 0), answer(0.3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(&[0], 0)).is_some(), "recently used survives");
        assert!(cache.get(&key(&[1], 0)).is_none(), "coldest evicted");
        assert!(cache.get(&key(&[2], 0)).is_some());
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let cache = ResponseCache::new(2);
        cache.insert(key(&[0], 0), answer(0.1));
        cache.insert(key(&[1], 0), answer(0.2));
        cache.insert(key(&[0], 0), answer(0.9)); // overwrite, no eviction
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&key(&[0], 0)).unwrap().seconds, 0.9);
        assert!(cache.get(&key(&[1], 0)).is_some());
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let cache = ResponseCache::new(0);
        cache.insert(key(&[0], 0), answer(0.1));
        assert!(cache.is_empty());
        assert!(cache.get(&key(&[0], 0)).is_none());
        assert_eq!(cache.misses(), 1);
    }
}
