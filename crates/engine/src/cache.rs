//! The shard-scoped response cache: a hand-rolled LRU (the workspace's
//! dependency policy admits no cache crate) mapping `(algorithm, params,
//! sorted query nodes, store id)` to finished answers, each validated by
//! a **shard fingerprint**.
//!
//! Correctness comes from the fingerprint: every entry records the
//! `(shard, version)` pairs of the shards its community's component
//! actually touched (captured at search time via
//! [`QueryWorkspace`](dmcs_graph::view::QueryWorkspace) shard tracking),
//! and a lookup replays the entry only while the serving snapshot still
//! carries those exact shard versions. An update to shard 3 therefore
//! stops matching entries whose communities touch shard 3 — and leaves
//! entries living entirely in shards 0–2 hot. When a search path cannot
//! report what it touched (top-k enumerations, validation errors,
//! algorithms without component tracking) the entry conservatively
//! fingerprints *every* shard, degrading to whole-graph invalidation,
//! never to a wrong answer.
//!
//! One deliberate relaxation: the fingerprint covers the query's
//! *component*, while the density modularity's normalization reads the
//! global edge count — an update in a *different* component rescales DM
//! values without re-running searches whose component is untouched. The
//! community membership served is unchanged by such updates; callers
//! that need globally renormalized DM scores re-query after re-pinning.
//! Stale entries age out of the LRU like everything else.
//!
//! A cached answer replays the original response verbatim — including
//! its `seconds` — so a cache hit renders **byte-identical** JSON to the
//! miss that populated it. Community-size caps are applied *after*
//! retrieval (they are response shaping, not search work), so one cached
//! search serves requests with different caps.

use crate::registry::AlgoSpec;
use dmcs_core::{SearchError, SearchResult};
use dmcs_graph::{NodeId, Snapshot};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A cache entry's validity certificate: the `(shard, shard version)`
/// pairs the answer depends on, sorted by shard. Built with
/// [`fingerprint`].
pub type ShardFingerprint = Vec<(u32, u64)>;

/// Build the fingerprint for an answer computed against `snapshot`:
/// `touched` is the sorted shard list the query's component covered
/// (from [`QueryWorkspace::take_touched_shards`]), or `None` to
/// conservatively pin every shard.
///
/// [`QueryWorkspace::take_touched_shards`]: dmcs_graph::view::QueryWorkspace::take_touched_shards
pub fn fingerprint(snapshot: &Snapshot, touched: Option<&[u32]>) -> ShardFingerprint {
    let versions = snapshot.shard_versions();
    match touched {
        Some(shards) => shards.iter().map(|&s| (s, versions[s as usize])).collect(),
        None => versions
            .iter()
            .enumerate()
            .map(|(s, &v)| (s as u32, v))
            .collect(),
    }
}

/// Default entry capacity of an engine's cache.
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

/// What one cache entry answers: the exact search outcome plus the
/// display name of the algorithm that ran and the wall time of the
/// *original* computation (replayed on hits, keeping output byte-stable).
///
/// The outcome is a *list* of communities: single queries store exactly
/// one ([`CachedAnswer::single`] / [`CachedAnswer::single_result`]),
/// top-k enumerations store one per round. The two never collide — the
/// key's [`CacheKey::top_k`] field separates them.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedAnswer {
    /// Display name of the algorithm that computed the entry.
    pub algo: &'static str,
    /// The raw (un-capped) search outcome: one community per round
    /// (exactly one for single queries).
    pub result: Result<Vec<SearchResult>, SearchError>,
    /// Wall-clock seconds of the original computation.
    pub seconds: f64,
}

impl CachedAnswer {
    /// Entry for a single-community outcome.
    pub fn single(
        algo: &'static str,
        result: Result<SearchResult, SearchError>,
        seconds: f64,
    ) -> Self {
        CachedAnswer {
            algo,
            result: result.map(|r| vec![r]),
            seconds,
        }
    }

    /// The outcome as a single-community result (the first round).
    /// Meaningful only for entries stored under a single-query key; an
    /// (impossible by construction) empty entry surfaces as
    /// [`SearchError::EmptyQuery`] rather than tearing the thread down.
    pub fn single_result(&self) -> Result<SearchResult, SearchError> {
        match &self.result {
            Ok(rounds) => match rounds.first() {
                Some(first) => Ok(first.clone()),
                None => Err(SearchError::EmptyQuery),
            },
            Err(e) => Err(e.clone()),
        }
    }
}

/// Cache key: everything that determines a search outcome, *except* the
/// graph epoch — staleness is handled by each entry's
/// [`ShardFingerprint`], not by the key.
///
/// Query nodes are **sorted** — the searches treat the query as a set,
/// so `[0, 33]` and `[33, 0]` share an entry. The process-unique store
/// id keeps snapshots of different graphs from ever colliding in a
/// shared cache (shard versions only order mutations *within* one
/// store). `k` participates even for algorithms that ignore it; that
/// only costs duplicate entries for off-label `--k` usage, never a
/// wrong answer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Registry label of the algorithm.
    pub algo: String,
    /// The `k` parameter.
    pub k: u32,
    /// FPA's layer-pruning toggle.
    pub layer_pruning: bool,
    /// Whether the spec asked for the weighted objective
    /// ([`crate::AlgoParams::weighted`]) — a weighted and an unweighted
    /// request over the same label must never share an entry.
    pub weighted: bool,
    /// Query nodes, sorted ascending.
    pub nodes: Vec<NodeId>,
    /// `0` for a single-community query; for a top-k enumeration, the
    /// requested round count. Keeps a top-k answer (a *list* of
    /// communities) from ever being replayed as a single answer or vice
    /// versa, and separates different `k`s.
    pub top_k: usize,
    /// Process-unique id of the graph store the answer belongs to.
    pub store: u64,
}

impl CacheKey {
    /// Key for running `spec` on `nodes` against the store `snapshot`
    /// pins.
    pub fn new(spec: &AlgoSpec, nodes: &[NodeId], snapshot: &Snapshot) -> CacheKey {
        let mut nodes = nodes.to_vec();
        nodes.sort_unstable();
        CacheKey {
            algo: spec.name.clone(),
            k: spec.params.k,
            layer_pruning: spec.params.layer_pruning,
            weighted: spec.params.weighted,
            nodes,
            top_k: 0,
            store: snapshot.store_id(),
        }
    }

    /// Key for a top-`k` enumeration of `spec` on `nodes` against the
    /// store `snapshot` pins.
    pub fn for_top_k(spec: &AlgoSpec, nodes: &[NodeId], snapshot: &Snapshot, k: usize) -> CacheKey {
        CacheKey {
            top_k: k,
            ..CacheKey::new(spec, nodes, snapshot)
        }
    }
}

#[derive(Debug)]
struct Entry {
    answer: CachedAnswer,
    last_used: u64,
    /// The shard versions this entry is valid for (see [`fingerprint`]).
    fingerprint: ShardFingerprint,
}

impl Entry {
    /// Whether this entry may answer a query served at `shard_versions`.
    fn matches(&self, shard_versions: &[u64]) -> bool {
        self.fingerprint
            .iter()
            .all(|&(s, v)| shard_versions.get(s as usize) == Some(&v))
    }
}

/// Buckets per key: sessions pinned to *different epochs* can each keep
/// a live entry under the same key (their fingerprints differ), so an
/// old-epoch reader's replay never thrashes a new-epoch writer's entry.
#[derive(Debug, Default)]
struct LruInner {
    map: HashMap<CacheKey, Vec<Entry>>,
    tick: u64,
}

/// A bounded, thread-safe LRU of query answers with hit/miss counters.
///
/// One instance is shared by everything serving a given
/// [`GraphStore`](dmcs_graph::GraphStore) — the engine hands clones of
/// one `Arc<ResponseCache>` to every [`Session`](crate::Session) it
/// opens, so a batch worker's miss becomes the next request's hit.
///
/// ```
/// use dmcs_engine::cache::{fingerprint, CacheKey, CachedAnswer, ResponseCache};
/// use dmcs_engine::AlgoSpec;
///
/// use dmcs_graph::{GraphBuilder, Snapshot};
///
/// let cache = ResponseCache::new(2);
/// let snap = Snapshot::freeze(GraphBuilder::from_edges(34, &[(0, 33)]));
/// let key = CacheKey::new(&AlgoSpec::new("fpa"), &[33, 0], &snap);
/// assert!(cache.get(&key, snap.shard_versions()).is_none());
/// cache.insert(
///     key.clone(),
///     CachedAnswer {
///         algo: "FPA",
///         result: Err(dmcs_core::SearchError::EmptyQuery),
///         seconds: 0.25,
///     },
///     fingerprint(&snap, None),
/// );
/// assert_eq!(cache.get(&key, snap.shard_versions()).unwrap().seconds, 0.25);
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// ```
#[derive(Debug)]
pub struct ResponseCache {
    inner: Mutex<LruInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResponseCache {
    /// An empty cache holding at most `capacity` entries (0 disables
    /// storage: every lookup is a miss and inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        ResponseCache {
            inner: Mutex::new(LruInner::default()),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    // A poisoned mutex means some other thread panicked mid-operation;
    // the LRU state is still structurally sound (every mutation below
    // is panic-free between lock and unlock), so serve through it
    // rather than cascading the panic into every serving thread.
    fn lock(&self) -> std::sync::MutexGuard<'_, LruInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Look `key` up for a caller serving at `shard_versions` (the
    /// pinned snapshot's [`Snapshot::shard_versions`]), bumping the
    /// matched entry's recency and the hit/miss counters. Entries whose
    /// fingerprints no longer match are left to age out.
    pub fn get(&self, key: &CacheKey, shard_versions: &[u64]) -> Option<CachedAnswer> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let hit = inner
            .map
            .get_mut(key)
            .and_then(|bucket| bucket.iter_mut().find(|e| e.matches(shard_versions)));
        match hit {
            Some(entry) => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.answer.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store `answer` under `key` with its validity `fingerprint`,
    /// evicting the least-recently-used entry when at capacity. An
    /// existing entry with the *same* fingerprint is overwritten in
    /// place; entries for other epochs coexist in the key's bucket.
    pub fn insert(&self, key: CacheKey, answer: CachedAnswer, fingerprint: ShardFingerprint) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(existing) = inner
            .map
            .get_mut(&key)
            .and_then(|bucket| bucket.iter_mut().find(|e| e.fingerprint == fingerprint))
        {
            existing.answer = answer;
            existing.last_used = tick;
            return;
        }
        // Eviction is a linear min-scan over u64 recency ticks. At the
        // default capacity (1024) that is microseconds, paid only on a
        // miss that already paid a full search; an index that made this
        // O(log n) would clone keys on every *hit*, the wrong trade.
        if inner.map.values().map(Vec::len).sum::<usize>() >= self.capacity {
            let evict = inner
                .map
                .iter()
                .filter_map(|(k, bucket)| {
                    bucket
                        .iter()
                        .map(|e| e.last_used)
                        .min()
                        .map(|used| (used, k.clone()))
                })
                .min_by_key(|&(used, _)| used)
                .map(|(used, k)| (k, used));
            if let Some((k, used)) = evict {
                if let Some(bucket) = inner.map.get_mut(&k) {
                    bucket.retain(|e| e.last_used != used);
                    if bucket.is_empty() {
                        inner.map.remove(&k);
                    }
                }
            }
        }
        inner.map.entry(key).or_default().push(Entry {
            answer,
            last_used: tick,
            fingerprint,
        });
    }

    /// Number of live entries (across all epochs).
    pub fn len(&self) -> usize {
        self.lock().map.values().map(Vec::len).sum()
    }

    /// Whether the cache currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit count (across every consumer sharing this cache).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn answer(secs: f64) -> CachedAnswer {
        CachedAnswer::single(
            "FPA",
            Ok(SearchResult {
                community: vec![0, 1],
                density_modularity: 0.5,
                removal_order: vec![],
                iterations: 1,
            }),
            secs,
        )
    }

    fn key(nodes: &[NodeId]) -> CacheKey {
        let mut nodes = nodes.to_vec();
        nodes.sort_unstable();
        CacheKey {
            algo: "fpa".into(),
            k: 3,
            layer_pruning: true,
            weighted: false,
            nodes,
            top_k: 0,
            store: 0,
        }
    }

    /// Fingerprint pinning shard 0 at version `v`.
    fn fp(v: u64) -> ShardFingerprint {
        vec![(0, v)]
    }

    #[test]
    fn keys_sort_nodes_and_separate_params_and_stores() {
        use dmcs_graph::GraphBuilder;
        let snap = Snapshot::freeze(GraphBuilder::from_edges(34, &[(0, 33)]));
        assert_eq!(
            CacheKey::new(&AlgoSpec::new("fpa"), &[33, 0], &snap),
            CacheKey::new(&AlgoSpec::new("fpa"), &[0, 33], &snap),
            "query is a set"
        );
        assert_ne!(
            CacheKey::new(&AlgoSpec::new("fpa"), &[0], &snap),
            CacheKey::new(&AlgoSpec::new("nca"), &[0], &snap),
        );
        assert_ne!(
            CacheKey::new(&AlgoSpec::with_k("kc", 3), &[0], &snap),
            CacheKey::new(&AlgoSpec::with_k("kc", 4), &[0], &snap),
        );
        assert_ne!(
            CacheKey::new(&AlgoSpec::new("fpa"), &[0], &snap),
            CacheKey::new(&AlgoSpec::new("fpa").weighted(), &[0], &snap),
            "weightedness separates entries"
        );
        // A top-k enumeration never shares an entry with the single
        // query (or a different k) over the same nodes.
        assert_ne!(
            CacheKey::new(&AlgoSpec::new("fpa"), &[0], &snap),
            CacheKey::for_top_k(&AlgoSpec::new("fpa"), &[0], &snap, 3),
        );
        assert_ne!(
            CacheKey::for_top_k(&AlgoSpec::new("fpa"), &[0], &snap, 2),
            CacheKey::for_top_k(&AlgoSpec::new("fpa"), &[0], &snap, 3),
        );
        // Two different graphs frozen at the same version must never
        // share an entry: the process-unique store id separates them.
        let other = Snapshot::freeze(GraphBuilder::from_edges(34, &[(0, 1)]));
        assert_eq!((snap.version(), other.version()), (0, 0));
        assert_ne!(
            CacheKey::new(&AlgoSpec::new("fpa"), &[0], &snap),
            CacheKey::new(&AlgoSpec::new("fpa"), &[0], &other),
            "store identity is part of the key"
        );
    }

    #[test]
    fn round_trip_and_counters() {
        let cache = ResponseCache::new(8);
        assert!(cache.get(&key(&[0]), &[0]).is_none());
        cache.insert(key(&[0]), answer(0.125), fp(0));
        let got = cache.get(&key(&[0]), &[0]).unwrap();
        assert_eq!(got.seconds, 0.125, "original timing replayed");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = ResponseCache::new(2);
        cache.insert(key(&[0]), answer(0.1), fp(0));
        cache.insert(key(&[1]), answer(0.2), fp(0));
        // Touch [0] so [1] is the coldest.
        assert!(cache.get(&key(&[0]), &[0]).is_some());
        cache.insert(key(&[2]), answer(0.3), fp(0));
        assert_eq!(cache.len(), 2);
        assert!(
            cache.get(&key(&[0]), &[0]).is_some(),
            "recently used survives"
        );
        assert!(cache.get(&key(&[1]), &[0]).is_none(), "coldest evicted");
        assert!(cache.get(&key(&[2]), &[0]).is_some());
    }

    #[test]
    fn reinserting_a_fingerprint_overwrites_in_place() {
        let cache = ResponseCache::new(2);
        cache.insert(key(&[0]), answer(0.1), fp(0));
        cache.insert(key(&[1]), answer(0.2), fp(0));
        cache.insert(key(&[0]), answer(0.9), fp(0)); // overwrite, no eviction
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&key(&[0]), &[0]).unwrap().seconds, 0.9);
        assert!(cache.get(&key(&[1]), &[0]).is_some());
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let cache = ResponseCache::new(0);
        cache.insert(key(&[0]), answer(0.1), fp(0));
        assert!(cache.is_empty());
        assert!(cache.get(&key(&[0]), &[0]).is_none());
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn shard_scoped_invalidation() {
        let cache = ResponseCache::new(8);
        // An answer whose community touches only shard 1 (version 5).
        cache.insert(key(&[0]), answer(0.1), vec![(1, 5)]);
        // Updates in other shards leave the entry hot ...
        assert!(cache.get(&key(&[0]), &[9, 5, 7]).is_some());
        assert!(cache.get(&key(&[0]), &[0, 5, 99]).is_some());
        // ... but a shard-1 move kills it.
        assert!(cache.get(&key(&[0]), &[9, 6, 7]).is_none());
        // A fingerprint naming a shard the serving layout lacks never
        // matches (defensive: store ids should already prevent this).
        cache.insert(key(&[1]), answer(0.2), vec![(7, 0)]);
        assert!(cache.get(&key(&[1]), &[0, 0]).is_none());
    }

    #[test]
    fn epochs_coexist_in_one_bucket() {
        let cache = ResponseCache::new(8);
        // Old epoch (shard 0 @ 0) and new epoch (shard 0 @ 1) both live.
        cache.insert(key(&[0]), answer(0.1), fp(0));
        cache.insert(key(&[0]), answer(0.2), fp(1));
        assert_eq!(cache.len(), 2);
        assert_eq!(
            cache.get(&key(&[0]), &[0]).unwrap().seconds,
            0.1,
            "old-epoch pinned session replays its own entry"
        );
        assert_eq!(cache.get(&key(&[0]), &[1]).unwrap().seconds, 0.2);
    }

    #[test]
    fn fingerprint_builder_covers_touched_or_all_shards() {
        use dmcs_graph::GraphBuilder;
        let snap = Snapshot::freeze(GraphBuilder::from_edges(4, &[(0, 1)]));
        assert_eq!(fingerprint(&snap, None), vec![(0, 0)], "freeze: one shard");
        assert_eq!(fingerprint(&snap, Some(&[0])), vec![(0, 0)]);

        let store = dmcs_graph::GraphStore::with_shards(8, 4);
        store.insert_edge(0, 7); // shards 0 and 3
        let snap = store.snapshot();
        assert_eq!(
            fingerprint(&snap, Some(&[0, 3])),
            vec![(0, 1), (3, 1)],
            "touched shards pin their current versions"
        );
        assert_eq!(
            fingerprint(&snap, None),
            vec![(0, 1), (1, 0), (2, 0), (3, 1)],
            "no tracking: conservative all-shard pin"
        );
    }
}
