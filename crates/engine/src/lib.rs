//! # dmcs-engine — the batched query engine of the DMCS workspace
//!
//! Turns the one-shot, single-threaded community search into a serving
//! layer: thousands of queries against one shared graph, dispatched by
//! name through a single [`registry`], executed concurrently by a
//! [`BatchRunner`] with per-worker recyclable
//! [`QueryWorkspace`](dmcs_graph::view::QueryWorkspace)s.
//!
//! - [`registry`] — [`AlgoSpec`] (label + params) → `Box<dyn
//!   CommunitySearch>`; the **only** algorithm-construction site in the
//!   workspace. CLI `--algo` parsing, the experiment line-ups and the
//!   generated help text all resolve through it.
//! - [`batch`] — [`BatchRunner`]: `std::thread::scope` fan-out with an
//!   atomic work queue, deterministic (submission-order) results, and a
//!   throughput/latency report.
//! - [`Engine`] — an `Arc<Graph>` + convenience entry points, the handle
//!   a server would hold per loaded dataset.
//!
//! ```
//! use dmcs_engine::{registry::AlgoSpec, Engine};
//! use dmcs_graph::GraphBuilder;
//! use std::sync::Arc;
//!
//! let g = GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)]);
//! let engine = Engine::new(Arc::new(g));
//! let queries: Vec<Vec<u32>> = vec![vec![0], vec![5]];
//! let report = engine.run_batch(&AlgoSpec::new("fpa"), &queries, 2).unwrap();
//! assert_eq!(report.outcomes.len(), 2);
//! assert!(report.outcomes.iter().all(|o| o.result.is_ok()));
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod registry;

pub use batch::{BatchReport, BatchRunner, QueryOutcome};
pub use registry::{AlgoParams, AlgoSpec};

use dmcs_graph::{Graph, NodeId};
use std::sync::Arc;

/// A loaded dataset ready to serve queries: the shared graph plus the
/// engine entry points. Clone-cheap (the graph is behind an [`Arc`]), so
/// one instance can be handed to many serving tasks.
#[derive(Clone)]
pub struct Engine {
    graph: Arc<Graph>,
}

impl Engine {
    /// Wrap a shared graph.
    pub fn new(graph: Arc<Graph>) -> Self {
        Engine { graph }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// A clone of the shared handle.
    pub fn graph_handle(&self) -> Arc<Graph> {
        Arc::clone(&self.graph)
    }

    /// Resolve `spec` through the registry and run the whole batch on
    /// `threads` workers.
    pub fn run_batch(
        &self,
        spec: &AlgoSpec,
        queries: &[Vec<NodeId>],
        threads: usize,
    ) -> Result<BatchReport, String> {
        Ok(BatchRunner::from_spec(spec, threads)?.run(&self.graph, queries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmcs_graph::GraphBuilder;

    #[test]
    fn engine_round_trip() {
        let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let engine = Engine::new(Arc::new(g));
        let report = engine
            .run_batch(&AlgoSpec::new("nca"), &[vec![0]], 1)
            .unwrap();
        assert_eq!(report.succeeded(), 1);
        assert!(engine.run_batch(&AlgoSpec::new("nope"), &[], 1).is_err());
        assert_eq!(engine.graph().n(), engine.graph_handle().n());
    }
}
