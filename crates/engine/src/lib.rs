//! # dmcs-engine — the typed serving layer of the DMCS workspace
//!
//! Turns the one-shot, single-threaded community search into a serving
//! API: typed requests and responses, long-lived sessions with reusable
//! buffers, concurrent batches over pinned graph snapshots, live graph
//! updates through a versioned sharded store, a shard-scoped result
//! cache, a typed error taxonomy with stable exit codes, and structured
//! (JSON-lines) output.
//!
//! - [`registry`] — [`AlgoSpec`] (label + params) → `Box<dyn
//!   CommunitySearch>`; the **only** algorithm-construction site in the
//!   workspace. CLI `--algo` parsing, the experiment line-ups and the
//!   generated help text all resolve through it; unknown labels come
//!   back as [`EngineError::UnknownAlgo`] with a nearest-name
//!   suggestion. Weighted serving is first-class: `fpa-w`/`nca-w` (or
//!   any spec with [`AlgoParams::weighted`]) build the weighted
//!   searchers, and weightedness participates in cache and batch-dedup
//!   keys.
//! - [`error`] — [`EngineError`], the workspace-wide error taxonomy.
//!   Implements `std::error::Error` with full `source()` chains and maps
//!   every variant to a distinct, documented process exit code.
//! - [`request`] — [`QueryRequest`] (query nodes + per-request algorithm
//!   override, size cap, correlation tag) and [`QueryResponse`] (the
//!   [`SearchResult`](dmcs_core::SearchResult) plus the algorithm that
//!   ran, the query's wall time, and whether the answer came from the
//!   cache).
//! - [`cache`] — [`ResponseCache`], the
//!   hand-rolled LRU keyed by `(algorithm, params, sorted query nodes,
//!   store id)` with entries validated by a *shard fingerprint*: the
//!   versions of exactly the store shards the answering search touched.
//!   Updates to other shards leave the entry live.
//! - [`session`] — [`Session`]: a pinned
//!   [`dmcs_graph::Snapshot`] + resolved algorithm + a
//!   persistent [`QueryWorkspace`](dmcs_graph::view::QueryWorkspace), so
//!   repeated single queries get the buffer-reuse speedup that batches
//!   get from per-worker workspaces.
//! - [`batch`] — [`BatchRunner`]: `std::thread::scope` fan-out with an
//!   atomic work queue where every worker is a per-thread [`Session`]
//!   over the same pinned snapshot; in-batch dedup of identical
//!   requests; deterministic (submission-order) responses and a
//!   throughput/latency [`BatchReport`] with cache counters.
//! - [`output`] — a hand-rolled [`Json`](output::Json) writer/parser
//!   rendering responses and reports as JSON-lines (the CLI's
//!   `--format json`).
//! - [`server`] — [`Server`], the `dmcs serve` socket daemon: unix/TCP
//!   listeners on `std::net`, one snapshot-pinned [`Session`] per
//!   connection, a versioned JSON-lines wire protocol
//!   (`query`/`update`/`repin`/`stats`/`shutdown`), bounded admission
//!   with typed overload replies, and graceful draining.
//! - [`Engine`] — a shared [`GraphStore`] + result cache + convenience
//!   entry points: the handle a server holds per loaded dataset, serving
//!   queries *and* mutations concurrently.
//!
//! ```
//! use dmcs_engine::{registry::AlgoSpec, Engine, QueryRequest};
//! use dmcs_graph::GraphBuilder;
//!
//! let g = GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)]);
//! let engine = Engine::from_graph(g);
//!
//! // Repeated single queries: one session, reused buffers, cached
//! // answers (the session pins the current snapshot).
//! let mut session = engine.session(&AlgoSpec::new("fpa"))?;
//! let result = session.search(&[0])?;
//! assert!(result.community.contains(&0));
//!
//! // A typed batch across 2 workers.
//! let requests = vec![
//!     QueryRequest::new(vec![0]),
//!     QueryRequest::new(vec![5]).with_tag("vip"),
//! ];
//! let report = engine.run_batch(&AlgoSpec::new("fpa"), &requests, 2)?;
//! assert_eq!(report.responses.len(), 2);
//! assert!(report.responses.iter().all(|r| r.is_ok()));
//! assert_eq!(report.responses[1].request.tag.as_deref(), Some("vip"));
//!
//! // A live update: lands in the store, served by the next snapshot.
//! engine.insert_edge(2, 4);
//! assert_eq!(engine.snapshot().version(), 1);
//! # Ok::<(), dmcs_engine::EngineError>(())
//! ```

#![warn(missing_docs)]

// Each module carries its own `//!` docs; outer `///` docs here would
// make rustdoc resolve those modules' intra-doc links in *this* scope,
// where they dangle.
pub mod batch;
pub mod cache;
pub mod error;
pub mod output;
pub mod plan;
pub mod registry;
pub mod request;
pub mod server;
pub mod session;

pub use batch::{BatchReport, BatchRunner};
pub use cache::ResponseCache;
pub use error::EngineError;
pub use plan::{PlanMode, QueryPlan};
pub use registry::{AlgoParams, AlgoSpec};
pub use request::{QueryRequest, QueryResponse};
#[cfg(unix)]
pub use server::install_sigterm_drain;
pub use server::{Server, ServerConfig, ServerHandle, ServerStats};
pub use session::{Session, TopKOutcome};

use cache::DEFAULT_CACHE_CAPACITY;
use dmcs_graph::{GraphStore, NodeId, Snapshot};
use std::sync::Arc;

/// A loaded dataset ready to serve queries *and* mutations: a shared
/// sharded [`GraphStore`], a shared shard-scoped [`ResponseCache`], and
/// the engine entry points. Clone-cheap (both are behind [`Arc`]s), so
/// one instance can be handed to many serving tasks; mutators take
/// `&self`.
///
/// Reads pin snapshots: a batch (or session) opened before an update
/// keeps answering against the graph it started with, while the next
/// [`Engine::snapshot`] call sees the new epoch. Cache entries carry a
/// shard fingerprint — the versions of the shards their search actually
/// touched — so an update in one shard invalidates the answers living
/// there and leaves the rest of the cache warm.
#[derive(Debug, Clone)]
pub struct Engine {
    store: Arc<GraphStore>,
    cache: Arc<ResponseCache>,
}

impl Engine {
    /// Serve an existing store (pass a [`GraphStore`] to hand over
    /// ownership, or an `Arc<GraphStore>` to share it with other
    /// writers, e.g. a [`dmcs_core::dynamic::IncrementalSearch`]), with
    /// a default-capacity result cache.
    pub fn new(store: impl Into<Arc<GraphStore>>) -> Self {
        Engine::with_cache_capacity(store, DEFAULT_CACHE_CAPACITY)
    }

    /// Like [`Engine::new`] with an explicit cache capacity (0 disables
    /// caching).
    pub fn with_cache_capacity(store: impl Into<Arc<GraphStore>>, capacity: usize) -> Self {
        Engine {
            store: store.into(),
            cache: Arc::new(ResponseCache::new(capacity)),
        }
    }

    /// Build a store around a static graph and serve it (default shard
    /// count — [`dmcs_graph::DEFAULT_SHARD_COUNT`]).
    pub fn from_graph(graph: dmcs_graph::Graph) -> Self {
        Engine::new(GraphStore::from_graph(graph))
    }

    /// Like [`Engine::from_graph`] with an explicit shard count for the
    /// store (the CLI's `--shards`). More shards mean finer-grained
    /// incremental rebuilds and cache invalidation; the count is fixed
    /// for the store's lifetime.
    pub fn from_graph_sharded(graph: dmcs_graph::Graph, shards: usize) -> Self {
        Engine::new(GraphStore::from_graph_sharded(graph, shards))
    }

    /// The underlying versioned store.
    pub fn store(&self) -> &GraphStore {
        &self.store
    }

    /// The shared result cache (for counter inspection).
    pub fn cache(&self) -> &ResponseCache {
        &self.cache
    }

    /// A snapshot of the current graph epoch (see
    /// [`GraphStore::snapshot`]: lazy rebuild, then `Arc` clones).
    pub fn snapshot(&self) -> Snapshot {
        self.store.snapshot()
    }

    /// The store's current mutation counter.
    pub fn version(&self) -> u64 {
        self.store.version()
    }

    /// Number of shards the store partitions its node-id space into.
    pub fn shard_count(&self) -> usize {
        self.store.shard_count()
    }

    /// Snapshot-rebuild counters (see
    /// [`dmcs_graph::RebuildStats`]): shard count, rebuild count,
    /// dirty/reused shard totals and last-rebuild timings.
    pub fn rebuild_stats(&self) -> dmcs_graph::RebuildStats {
        self.store.rebuild_stats()
    }

    /// Number of shards currently dirty relative to the cached snapshot
    /// (what the next [`Engine::snapshot`] call would recompile).
    pub fn dirty_shards(&self) -> usize {
        self.store.dirty_shards()
    }

    /// Insert an edge into the live graph (see
    /// [`GraphStore::insert_edge`]). In-flight snapshots are unaffected;
    /// cached answers for the old epoch stop matching.
    pub fn insert_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.store.insert_edge(u, v)
    }

    /// Insert an edge with weight `w` into the live (weighted) graph
    /// (see [`GraphStore::insert_edge_w`]).
    pub fn insert_edge_w(&self, u: NodeId, v: NodeId, w: f64) -> bool {
        self.store.insert_edge_w(u, v, w)
    }

    /// Update the weight of an existing edge on the live (weighted)
    /// graph, returning the previous weight (see
    /// [`GraphStore::set_weight`]). A weight change bumps the version,
    /// so cached answers for the old epoch stop matching — same
    /// topology, different weights, different epoch.
    pub fn set_weight(&self, u: NodeId, v: NodeId, w: f64) -> Option<f64> {
        self.store.set_weight(u, v, w)
    }

    /// Remove an edge from the live graph (see
    /// [`GraphStore::remove_edge`]).
    pub fn remove_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.store.remove_edge(u, v)
    }

    /// Append a fresh isolated node to the live graph; returns its id.
    pub fn add_node(&self) -> NodeId {
        self.store.add_node()
    }

    /// Open a [`Session`] for `spec`, pinned to the **current** snapshot
    /// and sharing the engine's result cache — the entry point for
    /// repeated single queries. Re-open after updates to serve the new
    /// epoch.
    pub fn session(&self, spec: &AlgoSpec) -> Result<Session, EngineError> {
        Ok(Session::new(self.snapshot(), spec)?.with_cache(Arc::clone(&self.cache)))
    }

    /// Resolve `spec` through the registry and run the whole batch on
    /// `threads` workers (clamped to one worker per distinct request)
    /// against the current snapshot, consulting the shared cache. Plans
    /// under [`PlanMode::Auto`]; see [`Engine::run_batch_planned`].
    pub fn run_batch(
        &self,
        spec: &AlgoSpec,
        requests: &[QueryRequest],
        threads: usize,
    ) -> Result<BatchReport, EngineError> {
        self.run_batch_planned(spec, requests, threads, PlanMode::Auto)
    }

    /// [`Engine::run_batch`] with an explicit planner mode (the CLI's
    /// `--plan`). Plans choose execution strategy only — grouping and
    /// memoization — so responses are bit-identical across modes; the
    /// report's scheduling counters and `plan` label record the choice.
    pub fn run_batch_planned(
        &self,
        spec: &AlgoSpec,
        requests: &[QueryRequest],
        threads: usize,
        plan: PlanMode,
    ) -> Result<BatchReport, EngineError> {
        BatchRunner::new(spec.clone(), threads)?
            .with_cache(Arc::clone(&self.cache))
            .with_plan(plan)
            .run(&self.snapshot(), requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmcs_graph::GraphBuilder;

    fn triangle_engine() -> Engine {
        Engine::from_graph(GraphBuilder::from_edges(3, &[(0, 1), (1, 2), (0, 2)]))
    }

    #[test]
    fn engine_round_trip() {
        let engine = triangle_engine();
        let report = engine
            .run_batch(&AlgoSpec::new("nca"), &[QueryRequest::new(vec![0])], 1)
            .unwrap();
        assert_eq!(report.succeeded(), 1);
        assert!(matches!(
            engine.run_batch(&AlgoSpec::new("nope"), &[], 1),
            Err(EngineError::UnknownAlgo { .. })
        ));
        assert_eq!(engine.store().n(), engine.snapshot().n());
    }

    #[test]
    fn engine_sessions_serve_repeated_queries() {
        let engine = triangle_engine();
        let mut session = engine.session(&AlgoSpec::new("fpa")).unwrap();
        for q in 0..3u32 {
            assert!(session.search(&[q]).unwrap().community.contains(&q));
        }
    }

    #[test]
    fn engine_serves_updates_through_fresh_snapshots() {
        let engine = triangle_engine();
        let pinned = engine.snapshot();
        let v = engine.add_node();
        assert!(engine.insert_edge(2, v));
        assert_eq!(pinned.n(), 3, "pinned snapshot ignores the update");
        let fresh = engine.snapshot();
        assert_eq!(fresh.n(), 4);
        assert_eq!(fresh.version(), 2);
        assert_eq!(engine.version(), 2);
        assert!(!engine.insert_edge(2, v), "duplicate rejected");
    }

    #[test]
    fn engine_batches_hit_the_shared_cache_until_an_update() {
        let engine = triangle_engine();
        let reqs = [QueryRequest::new(vec![0])];
        let spec = AlgoSpec::new("fpa");
        let first = engine.run_batch(&spec, &reqs, 1).unwrap();
        assert_eq!((first.cache_hits, first.cache_misses), (0, 1));
        let second = engine.run_batch(&spec, &reqs, 1).unwrap();
        assert_eq!((second.cache_hits, second.cache_misses), (1, 0));
        assert_eq!(second.responses[0].seconds, first.responses[0].seconds);

        // An update moves the version: the same query recomputes.
        engine.remove_edge(0, 1);
        let third = engine.run_batch(&spec, &reqs, 1).unwrap();
        assert_eq!((third.cache_hits, third.cache_misses), (0, 1));
        assert_eq!(engine.cache().hits(), 1);
        assert_eq!(engine.cache().misses(), 2);
    }

    #[test]
    fn shared_store_between_engines() {
        let store = Arc::new(GraphStore::from_graph(GraphBuilder::from_edges(
            3,
            &[(0, 1), (1, 2)],
        )));
        let a = Engine::new(Arc::clone(&store));
        let b = Engine::new(Arc::clone(&store));
        a.insert_edge(0, 2);
        assert_eq!(b.snapshot().m(), 3, "writers share the store");
    }
}
