//! # dmcs-engine — the typed serving layer of the DMCS workspace
//!
//! Turns the one-shot, single-threaded community search into a serving
//! API: typed requests and responses, long-lived sessions with reusable
//! buffers, concurrent batches over one shared graph, a typed error
//! taxonomy with stable exit codes, and structured (JSON-lines) output.
//!
//! - [`registry`] — [`AlgoSpec`] (label + params) → `Box<dyn
//!   CommunitySearch>`; the **only** algorithm-construction site in the
//!   workspace. CLI `--algo` parsing, the experiment line-ups and the
//!   generated help text all resolve through it; unknown labels come
//!   back as [`EngineError::UnknownAlgo`] with a nearest-name
//!   suggestion.
//! - [`error`] — [`EngineError`], the workspace-wide error taxonomy.
//!   Implements `std::error::Error` with full `source()` chains and maps
//!   every variant to a distinct, documented process exit code.
//! - [`request`] — [`QueryRequest`] (query nodes + per-request algorithm
//!   override, size cap, correlation tag) and [`QueryResponse`] (the
//!   [`SearchResult`](dmcs_core::SearchResult) plus the algorithm that
//!   ran and the query's wall time).
//! - [`session`] — [`Session`]: a resolved algorithm + a persistent
//!   [`QueryWorkspace`](dmcs_graph::view::QueryWorkspace), so repeated
//!   single queries get the buffer-reuse speedup that batches get from
//!   per-worker workspaces.
//! - [`batch`] — [`BatchRunner`]: `std::thread::scope` fan-out with an
//!   atomic work queue where every worker is a per-thread [`Session`];
//!   deterministic (submission-order) responses and a
//!   throughput/latency [`BatchReport`].
//! - [`output`] — a hand-rolled [`Json`](output::Json) writer/parser
//!   rendering responses and reports as JSON-lines (the CLI's
//!   `--format json`).
//! - [`Engine`] — an `Arc<Graph>` + convenience entry points, the handle
//!   a server would hold per loaded dataset.
//!
//! ```
//! use dmcs_engine::{registry::AlgoSpec, Engine, QueryRequest};
//! use dmcs_graph::GraphBuilder;
//! use std::sync::Arc;
//!
//! let g = GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)]);
//! let engine = Engine::new(Arc::new(g));
//!
//! // Repeated single queries: one session, reused buffers.
//! let mut session = engine.session(&AlgoSpec::new("fpa"))?;
//! let result = session.search(&[0])?;
//! assert!(result.community.contains(&0));
//!
//! // A typed batch across 2 workers.
//! let requests = vec![
//!     QueryRequest::new(vec![0]),
//!     QueryRequest::new(vec![5]).with_tag("vip"),
//! ];
//! let report = engine.run_batch(&AlgoSpec::new("fpa"), &requests, 2)?;
//! assert_eq!(report.responses.len(), 2);
//! assert!(report.responses.iter().all(|r| r.is_ok()));
//! assert_eq!(report.responses[1].request.tag.as_deref(), Some("vip"));
//! # Ok::<(), dmcs_engine::EngineError>(())
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod error;
pub mod output;
pub mod registry;
pub mod request;
pub mod session;

pub use batch::{BatchReport, BatchRunner};
pub use error::EngineError;
pub use registry::{AlgoParams, AlgoSpec};
pub use request::{QueryRequest, QueryResponse};
pub use session::Session;

use dmcs_graph::Graph;
use std::sync::Arc;

/// A loaded dataset ready to serve queries: the shared graph plus the
/// engine entry points. Clone-cheap (the graph is behind an [`Arc`]), so
/// one instance can be handed to many serving tasks.
#[derive(Clone)]
pub struct Engine {
    graph: Arc<Graph>,
}

impl Engine {
    /// Wrap a shared graph.
    pub fn new(graph: Arc<Graph>) -> Self {
        Engine { graph }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// A clone of the shared handle.
    pub fn graph_handle(&self) -> Arc<Graph> {
        Arc::clone(&self.graph)
    }

    /// Open a [`Session`] for `spec` over this engine's graph — the
    /// entry point for repeated single queries.
    pub fn session(&self, spec: &AlgoSpec) -> Result<Session<'_>, EngineError> {
        Session::new(&self.graph, spec)
    }

    /// Resolve `spec` through the registry and run the whole batch on
    /// `threads` workers (clamped to one worker per request).
    pub fn run_batch(
        &self,
        spec: &AlgoSpec,
        requests: &[QueryRequest],
        threads: usize,
    ) -> Result<BatchReport, EngineError> {
        BatchRunner::new(spec.clone(), threads)?.run(&self.graph, requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmcs_graph::GraphBuilder;

    #[test]
    fn engine_round_trip() {
        let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let engine = Engine::new(Arc::new(g));
        let report = engine
            .run_batch(&AlgoSpec::new("nca"), &[QueryRequest::new(vec![0])], 1)
            .unwrap();
        assert_eq!(report.succeeded(), 1);
        assert!(matches!(
            engine.run_batch(&AlgoSpec::new("nope"), &[], 1),
            Err(EngineError::UnknownAlgo { .. })
        ));
        assert_eq!(engine.graph().n(), engine.graph_handle().n());
    }

    #[test]
    fn engine_sessions_serve_repeated_queries() {
        let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let engine = Engine::new(Arc::new(g));
        let mut session = engine.session(&AlgoSpec::new("fpa")).unwrap();
        for q in 0..3u32 {
            assert!(session.search(&[q]).unwrap().community.contains(&q));
        }
    }
}
