//! Sessions: a resolved algorithm plus a persistent
//! [`QueryWorkspace`], so *repeated single queries* get the same
//! buffer-reuse speedup that batches get from their per-worker
//! workspaces.
//!
//! A serving task holds one [`Session`] per (dataset, algorithm) pair
//! and feeds it requests one at a time; the `O(n)` alive-mask / degree /
//! distance allocations are paid once per session, not once per query.
//! [`BatchRunner`](crate::BatchRunner) workers are thin wrappers over
//! exactly this type — one session per worker thread.

use crate::error::EngineError;
use crate::registry::AlgoSpec;
use crate::request::{QueryRequest, QueryResponse};
use dmcs_core::{CommunitySearch, SearchError, SearchResult};
use dmcs_graph::view::QueryWorkspace;
use dmcs_graph::{Graph, NodeId};
use std::time::Instant;

/// A live query session: one graph, one resolved algorithm, one
/// recyclable workspace.
///
/// ```
/// use dmcs_engine::{AlgoSpec, QueryRequest, Session};
/// use dmcs_graph::GraphBuilder;
///
/// let g = GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)]);
/// let mut session = Session::new(&g, &AlgoSpec::new("fpa"))?;
///
/// // Hot path: repeated single queries reuse the session's workspace.
/// for q in [0u32, 5, 3] {
///     let result = session.search(&[q])?;
///     assert!(result.community.contains(&q));
/// }
///
/// // Typed path: a full request/response round trip.
/// let response = session.query(&QueryRequest::new(vec![0]).with_tag("demo"))?;
/// assert_eq!(response.algo, "FPA");
/// assert!(response.community_size().unwrap() >= 1);
/// assert_eq!(response.request.tag.as_deref(), Some("demo"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Session<'g> {
    graph: &'g Graph,
    algo: Box<dyn CommunitySearch>,
    ws: QueryWorkspace,
}

impl std::fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("algo", &self.algo.name())
            .field("graph_nodes", &self.graph.n())
            .finish_non_exhaustive()
    }
}

impl<'g> Session<'g> {
    /// Resolve `spec` through the registry and open a session over
    /// `graph`.
    pub fn new(graph: &'g Graph, spec: &AlgoSpec) -> Result<Self, EngineError> {
        Ok(Session {
            graph,
            algo: spec.build()?,
            ws: QueryWorkspace::new(),
        })
    }

    /// The graph this session serves.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Display name of the session's algorithm.
    pub fn algo_name(&self) -> &'static str {
        self.algo.name()
    }

    /// Run one query through the session's algorithm and workspace —
    /// the hot path for repeated single queries.
    pub fn search(&mut self, nodes: &[NodeId]) -> Result<SearchResult, SearchError> {
        self.algo
            .search_with_workspace(self.graph, nodes, &mut self.ws)
    }

    /// Answer one typed request: apply the request's algorithm override
    /// (if any), time the search, and enforce the community-size cap.
    ///
    /// Per-query *search* failures land inside the returned
    /// [`QueryResponse`]; only request-level failures (an unknown
    /// override algorithm) are an `Err`.
    pub fn query(&mut self, req: &QueryRequest) -> Result<QueryResponse, EngineError> {
        let override_algo = req.algo.as_ref().map(|spec| spec.build()).transpose()?;
        let algo = override_algo.as_deref().unwrap_or(self.algo.as_ref());
        let start = Instant::now();
        let mut result = algo.search_with_workspace(self.graph, &req.nodes, &mut self.ws);
        if let (Ok(r), Some(cap)) = (&result, req.max_community_size) {
            if r.community.len() > cap {
                result = Err(SearchError::CommunityTooLarge {
                    size: r.community.len(),
                    cap,
                });
            }
        }
        Ok(QueryResponse {
            request: req.clone(),
            algo: algo.name(),
            result,
            seconds: start.elapsed().as_secs_f64(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmcs_graph::GraphBuilder;

    fn barbell() -> Graph {
        GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
    }

    #[test]
    fn session_matches_one_shot_search() {
        let g = barbell();
        let mut session = Session::new(&g, &AlgoSpec::new("fpa")).unwrap();
        let one_shot = AlgoSpec::new("fpa").build().unwrap();
        for q in 0..6u32 {
            assert_eq!(
                session.search(&[q]),
                one_shot.search(&g, &[q]),
                "query {q} diverges from the workspace-free path"
            );
        }
    }

    #[test]
    fn unknown_session_algo_is_typed() {
        let g = barbell();
        let err = Session::new(&g, &AlgoSpec::new("zeus")).unwrap_err();
        assert!(matches!(err, EngineError::UnknownAlgo { .. }));
        assert_eq!(err.exit_code(), 3);
    }

    #[test]
    fn request_override_and_tag_flow_through() {
        let g = barbell();
        let mut session = Session::new(&g, &AlgoSpec::new("fpa")).unwrap();
        let resp = session
            .query(&QueryRequest::new(vec![0]).with_tag("t-1"))
            .unwrap();
        assert_eq!(resp.algo, "FPA");
        assert_eq!(resp.request.tag.as_deref(), Some("t-1"));
        assert!(resp.seconds >= 0.0);

        let resp = session
            .query(&QueryRequest::new(vec![0]).with_algo(AlgoSpec::new("nca")))
            .unwrap();
        assert_eq!(resp.algo, "NCA");

        let err = session
            .query(&QueryRequest::new(vec![0]).with_algo(AlgoSpec::new("zeus")))
            .unwrap_err();
        assert!(matches!(err, EngineError::UnknownAlgo { .. }));
    }

    #[test]
    fn size_cap_converts_to_a_search_error() {
        let g = barbell();
        let mut session = Session::new(&g, &AlgoSpec::new("fpa")).unwrap();
        let uncapped = session.query(&QueryRequest::new(vec![0])).unwrap();
        let size = uncapped.community_size().unwrap();
        assert!(size >= 2, "barbell community is nontrivial");

        let capped = session
            .query(&QueryRequest::new(vec![0]).with_max_community_size(size - 1))
            .unwrap();
        assert_eq!(
            capped.result,
            Err(SearchError::CommunityTooLarge {
                size,
                cap: size - 1
            })
        );
        // A cap at the exact size passes.
        let exact = session
            .query(&QueryRequest::new(vec![0]).with_max_community_size(size))
            .unwrap();
        assert!(exact.is_ok());
    }

    #[test]
    fn per_query_search_errors_stay_in_the_response() {
        let split = GraphBuilder::from_edges(4, &[(0, 1), (2, 3)]);
        let mut session = Session::new(&split, &AlgoSpec::new("fpa")).unwrap();
        let resp = session.query(&QueryRequest::new(vec![0, 3])).unwrap();
        assert!(!resp.is_ok());
        assert_eq!(resp.community_size(), None);
    }
}
