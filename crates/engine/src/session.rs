//! Sessions: a pinned graph [`Snapshot`], a resolved algorithm, a
//! persistent [`QueryWorkspace`], and (optionally) a handle on the
//! engine's shared shard-scoped result cache.
//!
//! A serving task holds one [`Session`] per (snapshot, algorithm) pair
//! and feeds it requests one at a time; the `O(n)` alive-mask / degree /
//! distance allocations are paid once per session, not once per query.
//! [`BatchRunner`](crate::BatchRunner) workers are thin wrappers over
//! exactly this type — one session per worker thread, all pinning the
//! same snapshot.
//!
//! **Pinning:** the session answers every query against the snapshot it
//! was opened with, even while updates land in the owning
//! [`GraphStore`](dmcs_graph::GraphStore). Long-lived callers that want
//! to see updates re-open their session (cheap — the store hands out
//! `Arc` clones between mutations) when
//! [`Snapshot::version`](dmcs_graph::Snapshot::version) falls behind the
//! store; the CLI's `--updates` loop does exactly that.
//!
//! **Mirror serving:** when the pinned snapshot carries a renumbered
//! compute mirror (a non-identity `--layout`) and the session's
//! algorithm is registered mirror-safe, eligible queries execute on the
//! cache-friendly mirror through a second workspace whose canonical
//! [`NodeMap`](dmcs_graph::layout::NodeMap) drives every id tie-break.
//! Results are translated back to external ids at this boundary, so
//! responses — including removal order — are byte-identical to
//! canonical execution; [`Session::mirror_served`] counts how many
//! queries took the fast substrate. Multi-node queries stay canonical
//! (their Steiner seed construction is id-sensitive), as do weighted
//! specs and per-request algorithm overrides.

use crate::cache::{fingerprint, CacheKey, CachedAnswer, ResponseCache};
use crate::error::EngineError;
use crate::registry::AlgoSpec;
use crate::request::{QueryRequest, QueryResponse};
use dmcs_core::topk::{top_k_communities_with, TopKConfig};
use dmcs_core::{CommunitySearch, SearchError, SearchResult};
use dmcs_graph::view::QueryWorkspace;
use dmcs_graph::{NodeId, Snapshot};
use std::sync::Arc;
use std::time::Instant;

/// A finished top-k enumeration from [`Session::top_k`]: the rounds (one
/// community each), stamped like a [`QueryResponse`] so callers render
/// and cache it the same way.
#[derive(Debug, Clone)]
pub struct TopKOutcome {
    /// Display name of the algorithm that drove the rounds.
    pub algo: &'static str,
    /// One community per round, diversity-ordered (empty when no round
    /// clears the objective floor), or the validation error.
    pub rounds: Result<Vec<SearchResult>, SearchError>,
    /// Wall-clock seconds of the computation (the *original* one when
    /// served from the cache).
    pub seconds: f64,
    /// Whether the outcome was replayed from the shared result cache.
    pub cached: bool,
}

/// A live query session: one pinned snapshot, one resolved algorithm,
/// one recyclable workspace, and an optional shared result cache.
///
/// ```
/// use dmcs_engine::{AlgoSpec, QueryRequest, Session};
/// use dmcs_graph::{GraphBuilder, Snapshot};
///
/// let g = GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)]);
/// let mut session = Session::new(Snapshot::freeze(g), &AlgoSpec::new("fpa"))?;
///
/// // Hot path: repeated single queries reuse the session's workspace.
/// for q in [0u32, 5, 3] {
///     let result = session.search(&[q])?;
///     assert!(result.community.contains(&q));
/// }
///
/// // Typed path: a full request/response round trip.
/// let response = session.query(&QueryRequest::new(vec![0]).with_tag("demo"))?;
/// assert_eq!(response.algo, "FPA");
/// assert!(response.community_size().unwrap() >= 1);
/// assert_eq!(response.request.tag.as_deref(), Some("demo"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Session {
    snapshot: Snapshot,
    spec: AlgoSpec,
    algo: Box<dyn CommunitySearch>,
    ws: QueryWorkspace,
    mirror: Option<MirrorServing>,
    mirror_served: u64,
    cache: Option<Arc<ResponseCache>>,
}

/// The mirror-serving half of a session: a second workspace whose canon
/// map is the mirror's external ordering (so kernel tie-breaks compare
/// canonical ids) and whose component memo speaks internal ids.
struct MirrorServing {
    ws: QueryWorkspace,
    /// Sentinel-filled (`NodeId::MAX`) slots indexed by
    /// [`ComputeGraph::ext_rank`](dmcs_graph::layout::ComputeGraph::ext_rank),
    /// lazily sized to the mirror; `mirror_search` parks each community
    /// member at its rank and sweeps the touched band back out in
    /// canonical order, restoring the sentinels as it goes.
    rank_slots: Vec<NodeId>,
}

/// Execute one single-node query on the snapshot's compute mirror and
/// translate the result back to external ids. The canonical tie-break
/// shim (armed via the workspace's canon map) makes the removal
/// sequence identical to canonical-order execution, so this is a pure
/// substrate swap. The eligibility gate guarantees `q` is in range, so
/// no error path can leak an internal id.
fn mirror_search(
    algo: &dyn CommunitySearch,
    compute: &dmcs_graph::layout::ComputeGraph,
    mirror: &mut MirrorServing,
    q: NodeId,
) -> Result<SearchResult, SearchError> {
    let map = compute.map();
    let internal = [map.to_internal(q)];
    let mut r = algo.search_with_workspace(compute.graph(), &internal, &mut mirror.ws)?;
    // A compute mirror is never the identity map, so the table is
    // always present; index it directly rather than paying
    // `to_external`'s indirection per translated node.
    if let Some(ext) = map.external_ids() {
        // Community: translate *and* canonically order in linear time.
        // Each member parks its external id at its component-band rank;
        // sweeping the touched band emits ascending external ids (the
        // community lives in exactly one component, whose band ranks
        // ascend by external id), replacing the `O(k log k)` sort this
        // path used to pay per query.
        let rank = compute.ext_rank();
        let slots = &mut mirror.rank_slots;
        if slots.len() < rank.len() {
            slots.resize(rank.len(), NodeId::MAX);
        }
        let (mut lo, mut hi) = (usize::MAX, 0usize);
        for &v in &r.community {
            let rk = rank[v as usize] as usize;
            slots[rk] = ext[v as usize];
            lo = lo.min(rk);
            hi = hi.max(rk);
        }
        let mut sorted = Vec::with_capacity(r.community.len());
        if lo <= hi {
            for slot in &mut slots[lo..=hi] {
                if *slot != NodeId::MAX {
                    sorted.push(*slot);
                    *slot = NodeId::MAX;
                }
            }
        }
        debug_assert_eq!(sorted.len(), r.community.len());
        r.community = sorted;
        for v in &mut r.removal_order {
            *v = ext[*v as usize];
        }
    }
    Ok(r)
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("algo", &self.algo.name())
            .field("graph_nodes", &self.snapshot.n())
            .field("graph_version", &self.snapshot.version())
            .field("cache", &self.cache.is_some())
            .finish_non_exhaustive()
    }
}

impl Session {
    /// Resolve `spec` through the registry and open a session pinned to
    /// `snapshot`.
    ///
    /// The workspace's component memo is armed with the snapshot's epoch
    /// key, so consecutive queries landing in the same connected
    /// component skip the per-query component BFS (memoization is free
    /// when it never hits; [`Session::without_memo`] turns it off for
    /// `--plan off` runs and baseline benchmarks).
    pub fn new(snapshot: Snapshot, spec: &AlgoSpec) -> Result<Self, EngineError> {
        let mut ws = QueryWorkspace::new();
        ws.arm_component_memo(snapshot.epoch_key());
        // Mirror serving: only when the snapshot carries a mirror and
        // the algorithm is registered mirror-safe (and the spec is not
        // weighted — float sums are traversal-order sensitive). The
        // mirror workspace's canon map is what makes kernel tie-breaks
        // compare canonical ids.
        let mirror = match snapshot.compute() {
            Some(compute)
                if !spec.serves_weighted()
                    && crate::registry::find(&spec.name).is_some_and(|e| e.mirror_safe) =>
            {
                let mut mws = QueryWorkspace::new();
                mws.set_canon(compute.map().clone());
                mws.arm_component_memo(snapshot.epoch_key());
                Some(MirrorServing {
                    ws: mws,
                    rank_slots: Vec::new(),
                })
            }
            _ => None,
        };
        Ok(Session {
            snapshot,
            spec: spec.clone(),
            algo: spec.build()?,
            ws,
            mirror,
            mirror_served: 0,
            cache: None,
        })
    }

    /// Disarm the workspace's component memo — every query re-derives
    /// its connected component from scratch. Used by `--plan off` and by
    /// benchmarks that measure the memo's effect.
    pub fn without_memo(mut self) -> Self {
        self.ws.disarm_component_memo();
        if let Some(m) = &mut self.mirror {
            m.ws.disarm_component_memo();
        }
        self
    }

    /// Disable mirror serving — every query executes on the canonical
    /// CSR. Used by `--plan off` workers and by benchmarks comparing
    /// the substrates (output is byte-identical either way).
    pub fn without_mirror(mut self) -> Self {
        self.mirror = None;
        self
    }

    /// Number of queries so far that reused the memoized component of
    /// an earlier query on this session (always 0 when disarmed).
    pub fn memo_hits(&self) -> u64 {
        self.ws.memo_hits() + self.mirror.as_ref().map_or(0, |m| m.ws.memo_hits())
    }

    /// Number of queries this session executed on the renumbered
    /// compute mirror (0 unless the snapshot carries one, the algorithm
    /// is mirror-safe, and the planner left mirror serving on).
    pub fn mirror_served(&self) -> u64 {
        self.mirror_served
    }

    /// Attach a shared result cache. Subsequent [`Session::query`] calls
    /// consult it before searching and populate it after; the cache key
    /// carries the pinned snapshot's store id, and each entry carries a
    /// shard fingerprint validated against the pinned snapshot's shard
    /// versions — so entries never cross stores, and they survive
    /// updates that touch none of the shards their community lives in.
    pub fn with_cache(mut self, cache: Arc<ResponseCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The snapshot this session is pinned to.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// Display name of the session's algorithm.
    pub fn algo_name(&self) -> &'static str {
        self.algo.name()
    }

    /// Run one query through the session's algorithm and workspace — the
    /// raw hot path for repeated single queries. Always computes (the
    /// result cache is consulted only by the typed [`Session::query`]
    /// path); eligible queries execute on the compute mirror with
    /// byte-identical output (see the module docs).
    pub fn search(&mut self, nodes: &[NodeId]) -> Result<SearchResult, SearchError> {
        if let (&[q], Some(m)) = (nodes, &mut self.mirror) {
            if (q as usize) < self.snapshot.n() {
                if let Some(compute) = self.snapshot.compute() {
                    self.mirror_served += 1;
                    return mirror_search(self.algo.as_ref(), compute, m, q);
                }
            }
        }
        self.algo
            .search_with_workspace(self.snapshot.graph(), nodes, &mut self.ws)
    }

    /// Answer one typed request: consult the result cache (when
    /// attached), apply the request's algorithm override (if any), time
    /// the search, and enforce the community-size cap.
    ///
    /// Per-query *search* failures land inside the returned
    /// [`QueryResponse`]; only request-level failures (an unknown
    /// override algorithm) are an `Err`. A cache hit replays the
    /// original computation — algorithm name, outcome **and** timing —
    /// so repeated output is byte-identical; the size cap is applied
    /// after retrieval, so one cached search serves any cap.
    pub fn query(&mut self, req: &QueryRequest) -> Result<QueryResponse, EngineError> {
        let override_algo = req.algo.as_ref().map(|spec| spec.build()).transpose()?;
        let (algo, spec) = match (&override_algo, &req.algo) {
            (Some(boxed), Some(spec)) => (boxed.as_ref(), spec),
            _ => (self.algo.as_ref(), &self.spec),
        };

        // Mirror eligibility for this request: session default algorithm
        // only (overrides were not vetted for mirror safety), single
        // in-range node (multi-node Steiner seeds are id-sensitive).
        let use_mirror = override_algo.is_none()
            && self.mirror.is_some()
            && matches!(req.nodes.as_slice(), &[q] if (q as usize) < self.snapshot.n());

        let key = self
            .cache
            .as_ref()
            .map(|_| CacheKey::new(spec, &req.nodes, &self.snapshot));
        if let (Some(cache), Some(key)) = (&self.cache, &key) {
            if let Some(hit) = cache.get(key, self.snapshot.shard_versions()) {
                return Ok(respond(
                    req,
                    hit.algo,
                    hit.single_result(),
                    hit.seconds,
                    true,
                ));
            }
            // Record which shards the search actually explores, so the
            // entry's fingerprint can be scoped to them. Tracking lives
            // on the workspace that will execute; the mirror workspace's
            // canon map keeps its fingerprints in external-id shards.
            let layout = self.snapshot.shard_layout();
            match (use_mirror, &mut self.mirror) {
                (true, Some(m)) => m.ws.begin_shard_tracking(layout),
                _ => self.ws.begin_shard_tracking(layout),
            }
        }

        let start = Instant::now();
        let result = match (use_mirror, &mut self.mirror, self.snapshot.compute()) {
            (true, Some(m), Some(compute)) => match req.nodes.as_slice() {
                &[q] => {
                    self.mirror_served += 1;
                    mirror_search(algo, compute, m, q)
                }
                _ => algo.search_with_workspace(self.snapshot.graph(), &req.nodes, &mut self.ws),
            },
            _ => algo.search_with_workspace(self.snapshot.graph(), &req.nodes, &mut self.ws),
        };
        let seconds = start.elapsed().as_secs_f64();
        if let (Some(cache), Some(key)) = (&self.cache, key) {
            // Algorithms that never report a component (or error paths)
            // fall back to a conservative all-shards fingerprint.
            let touched = match (use_mirror, &mut self.mirror) {
                (true, Some(m)) => m.ws.take_touched_shards(),
                _ => self.ws.take_touched_shards(),
            };
            cache.insert(
                key,
                CachedAnswer::single(algo.name(), result.clone(), seconds),
                fingerprint(&self.snapshot, touched.as_deref()),
            );
        }
        Ok(respond(req, algo.name(), result, seconds, false))
    }

    /// Enumerate up to `k` node-diverse communities for `nodes`, driving
    /// each round with the session's algorithm (weighted labels score
    /// the weighted objective) and consulting the shared result cache
    /// (when attached) under a top-k key — so repeated enumerations
    /// replay byte-identically, like single queries. Rounds below DM 0
    /// are cut off (the [`TopKConfig`] default).
    pub fn top_k(&mut self, nodes: &[NodeId], k: usize) -> TopKOutcome {
        let key = self
            .cache
            .as_ref()
            .map(|_| CacheKey::for_top_k(&self.spec, nodes, &self.snapshot, k));
        if let (Some(cache), Some(key)) = (&self.cache, &key) {
            if let Some(hit) = cache.get(key, self.snapshot.shard_versions()) {
                return TopKOutcome {
                    algo: hit.algo,
                    rounds: hit.result,
                    seconds: hit.seconds,
                    cached: true,
                };
            }
        }

        let cfg = TopKConfig {
            k,
            ..TopKConfig::default()
        };
        let weighted = self.spec.serves_weighted();
        let start = Instant::now();
        let rounds = top_k_communities_with(
            self.snapshot.graph(),
            nodes,
            cfg,
            self.algo.as_ref(),
            weighted,
        );
        let seconds = start.elapsed().as_secs_f64();
        if let (Some(cache), Some(key)) = (&self.cache, key) {
            // Top-k rounds peel diverse regions; no single component is
            // tracked, so the entry pins every shard (conservative).
            cache.insert(
                key,
                CachedAnswer {
                    algo: self.algo.name(),
                    result: rounds.clone(),
                    seconds,
                },
                fingerprint(&self.snapshot, None),
            );
        }
        TopKOutcome {
            algo: self.algo.name(),
            rounds,
            seconds,
            cached: false,
        }
    }
}

/// Shape a raw search outcome into the response for `req`: apply the
/// community-size cap and echo the request back.
fn respond(
    req: &QueryRequest,
    algo: &'static str,
    mut result: Result<SearchResult, SearchError>,
    seconds: f64,
    cached: bool,
) -> QueryResponse {
    if let (Ok(r), Some(cap)) = (&result, req.max_community_size) {
        if r.community.len() > cap {
            result = Err(SearchError::CommunityTooLarge {
                size: r.community.len(),
                cap,
            });
        }
    }
    QueryResponse {
        request: req.clone(),
        algo,
        result,
        seconds,
        cached,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmcs_graph::{Graph, GraphBuilder};

    fn barbell() -> Graph {
        GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
    }

    fn session(algo: &str) -> Session {
        Session::new(Snapshot::freeze(barbell()), &AlgoSpec::new(algo)).unwrap()
    }

    #[test]
    fn session_matches_one_shot_search() {
        let g = barbell();
        let mut session = session("fpa");
        let one_shot = AlgoSpec::new("fpa").build().unwrap();
        for q in 0..6u32 {
            assert_eq!(
                session.search(&[q]),
                one_shot.search(&g, &[q]),
                "query {q} diverges from the workspace-free path"
            );
        }
    }

    #[test]
    fn unknown_session_algo_is_typed() {
        let err = Session::new(Snapshot::freeze(barbell()), &AlgoSpec::new("zeus")).unwrap_err();
        assert!(matches!(err, EngineError::UnknownAlgo { .. }));
        assert_eq!(err.exit_code(), 3);
    }

    #[test]
    fn request_override_and_tag_flow_through() {
        let mut session = session("fpa");
        let resp = session
            .query(&QueryRequest::new(vec![0]).with_tag("t-1"))
            .unwrap();
        assert_eq!(resp.algo, "FPA");
        assert_eq!(resp.request.tag.as_deref(), Some("t-1"));
        assert!(resp.seconds >= 0.0);
        assert!(!resp.cached, "no cache attached");

        let resp = session
            .query(&QueryRequest::new(vec![0]).with_algo(AlgoSpec::new("nca")))
            .unwrap();
        assert_eq!(resp.algo, "NCA");

        let err = session
            .query(&QueryRequest::new(vec![0]).with_algo(AlgoSpec::new("zeus")))
            .unwrap_err();
        assert!(matches!(err, EngineError::UnknownAlgo { .. }));
    }

    #[test]
    fn size_cap_converts_to_a_search_error() {
        let mut session = session("fpa");
        let uncapped = session.query(&QueryRequest::new(vec![0])).unwrap();
        let size = uncapped.community_size().unwrap();
        assert!(size >= 2, "barbell community is nontrivial");

        let capped = session
            .query(&QueryRequest::new(vec![0]).with_max_community_size(size - 1))
            .unwrap();
        assert_eq!(
            capped.result,
            Err(SearchError::CommunityTooLarge {
                size,
                cap: size - 1
            })
        );
        // A cap at the exact size passes.
        let exact = session
            .query(&QueryRequest::new(vec![0]).with_max_community_size(size))
            .unwrap();
        assert!(exact.is_ok());
    }

    #[test]
    fn per_query_search_errors_stay_in_the_response() {
        let split = GraphBuilder::from_edges(4, &[(0, 1), (2, 3)]);
        let mut session = Session::new(Snapshot::freeze(split), &AlgoSpec::new("fpa")).unwrap();
        let resp = session.query(&QueryRequest::new(vec![0, 3])).unwrap();
        assert!(!resp.is_ok());
        assert_eq!(resp.community_size(), None);
    }

    #[test]
    fn cache_hit_replays_the_original_response() {
        let cache = Arc::new(ResponseCache::new(16));
        let mut session = session("fpa").with_cache(Arc::clone(&cache));
        let miss = session.query(&QueryRequest::new(vec![0])).unwrap();
        assert!(!miss.cached);
        let hit = session.query(&QueryRequest::new(vec![0])).unwrap();
        assert!(hit.cached);
        assert_eq!(hit.result, miss.result);
        assert_eq!(hit.seconds, miss.seconds, "original timing replayed");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));

        // Node order does not defeat the cache (queries are sets) ...
        let mut multi = session.query(&QueryRequest::new(vec![0, 2])).unwrap();
        assert!(!multi.cached);
        multi = session.query(&QueryRequest::new(vec![2, 0])).unwrap();
        assert!(multi.cached);

        // ... and caps are applied after retrieval.
        let capped = session
            .query(&QueryRequest::new(vec![0]).with_max_community_size(1))
            .unwrap();
        assert!(capped.cached, "cap variants share the cached search");
        assert!(matches!(
            capped.result,
            Err(SearchError::CommunityTooLarge { .. })
        ));
    }

    #[test]
    fn cache_errors_are_replayed_too() {
        let split = GraphBuilder::from_edges(4, &[(0, 1), (2, 3)]);
        let cache = Arc::new(ResponseCache::new(16));
        let mut session = Session::new(Snapshot::freeze(split), &AlgoSpec::new("fpa"))
            .unwrap()
            .with_cache(Arc::clone(&cache));
        let miss = session.query(&QueryRequest::new(vec![0, 3])).unwrap();
        assert!(!miss.is_ok() && !miss.cached);
        let hit = session.query(&QueryRequest::new(vec![0, 3])).unwrap();
        assert!(hit.cached, "deterministic failures are cacheable");
        assert_eq!(hit.result, miss.result);
    }

    #[test]
    fn top_k_enumerates_caches_and_replays() {
        // Two 4-cliques sharing node 0: two legitimate communities.
        let mut b = GraphBuilder::new(7);
        for c in [[0u32, 1, 2, 3], [0, 4, 5, 6]] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    b.add_edge(c[i], c[j]);
                }
            }
        }
        let snap = Snapshot::freeze(b.build());
        let cache = Arc::new(ResponseCache::new(16));
        let mut session = Session::new(snap, &AlgoSpec::new("fpa"))
            .unwrap()
            .with_cache(Arc::clone(&cache));

        let miss = session.top_k(&[0], 3);
        assert!(!miss.cached);
        assert_eq!(miss.algo, "FPA");
        let rounds = miss.rounds.as_ref().unwrap();
        assert_eq!(rounds.len(), 2, "both wings of the bowtie");

        let hit = session.top_k(&[0], 3);
        assert!(hit.cached);
        assert_eq!(hit.rounds.as_ref().unwrap(), rounds);
        assert_eq!(hit.seconds, miss.seconds, "original timing replayed");

        // A single query over the same nodes is a different cache slot.
        let single = session.query(&QueryRequest::new(vec![0])).unwrap();
        assert!(!single.cached, "top-k entries never answer single queries");

        // Validation errors surface inside the outcome (and cache too).
        let bad = session.top_k(&[99], 2);
        assert!(bad.rounds.is_err());
        assert!(session.top_k(&[99], 2).cached);
    }

    #[test]
    fn mirror_serving_is_bit_identical_and_counted() {
        use dmcs_graph::{GraphStore, LayoutPolicy};
        let store = GraphStore::from_graph(barbell());
        for policy in [LayoutPolicy::Degree, LayoutPolicy::Bfs, LayoutPolicy::Rcm] {
            store.set_layout_policy(policy);
            let snap = store.snapshot();
            for algo in ["fpa", "nca", "fpa-dmg", "nca-dr"] {
                let mut mirrored = Session::new(snap.clone(), &AlgoSpec::new(algo)).unwrap();
                let mut canonical = Session::new(snap.clone(), &AlgoSpec::new(algo))
                    .unwrap()
                    .without_mirror();
                for q in 0..6u32 {
                    let a = mirrored.search(&[q]);
                    let b = canonical.search(&[q]);
                    assert_eq!(a, b, "{algo} {policy} query {q}");
                }
                assert_eq!(mirrored.mirror_served(), 6, "{algo} {policy}");
                assert_eq!(canonical.mirror_served(), 0);
                // Multi-node queries stay canonical.
                let a = mirrored.search(&[0, 5]);
                let b = canonical.search(&[0, 5]);
                assert_eq!(a, b);
                assert_eq!(mirrored.mirror_served(), 6, "multi-node not mirrored");
            }
        }
    }

    #[test]
    fn mirror_ineligible_specs_never_mirror() {
        use dmcs_graph::{GraphStore, LayoutPolicy};
        let store = GraphStore::from_graph(barbell());
        store.set_layout_policy(LayoutPolicy::Bfs);
        let snap = store.snapshot();
        // Weighted spec and a non-shimmed baseline: no mirror half at all.
        for spec in [AlgoSpec::new("fpa").weighted(), AlgoSpec::new("kc")] {
            let mut s = Session::new(snap.clone(), &spec).unwrap();
            let _ = s.search(&[0]); // outcome is the spec's business
            assert_eq!(s.mirror_served(), 0, "{}", spec.name);
        }
        // Overrides go canonical even on a mirror-serving session —
        // the per-query gate checks the *override's* mirror safety, so
        // even an override onto the session's own graph never mirrors.
        let mut s = Session::new(snap.clone(), &AlgoSpec::new("fpa")).unwrap();
        let resp = s
            .query(&QueryRequest::new(vec![0]).with_algo(AlgoSpec::new("lpa")))
            .unwrap();
        assert!(resp.is_ok());
        assert_eq!(s.mirror_served(), 0);
        // The default path does mirror through query(), cache attached
        // or not, with identical shard-fingerprint semantics.
        let cache = Arc::new(ResponseCache::new(16));
        let mut s = Session::new(snap, &AlgoSpec::new("fpa"))
            .unwrap()
            .with_cache(Arc::clone(&cache));
        let miss = s.query(&QueryRequest::new(vec![0])).unwrap();
        assert!(!miss.cached && s.mirror_served() == 1);
        let hit = s.query(&QueryRequest::new(vec![0])).unwrap();
        assert!(hit.cached, "mirror-served entries are cacheable");
        assert_eq!(hit.result, miss.result);
        assert_eq!(s.mirror_served(), 1, "hits replay, not re-execute");
    }

    #[test]
    fn override_requests_use_their_own_cache_slot() {
        let cache = Arc::new(ResponseCache::new(16));
        let mut session = session("fpa").with_cache(Arc::clone(&cache));
        session.query(&QueryRequest::new(vec![0])).unwrap();
        let other = session
            .query(&QueryRequest::new(vec![0]).with_algo(AlgoSpec::new("nca")))
            .unwrap();
        assert!(!other.cached, "different algorithm, different key");
        let again = session
            .query(&QueryRequest::new(vec![0]).with_algo(AlgoSpec::new("nca")))
            .unwrap();
        assert!(again.cached);
        assert_eq!(again.algo, "NCA");
    }
}
