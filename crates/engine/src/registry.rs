//! The algorithm registry: the **single** construction site for every
//! [`CommunitySearch`] implementation in the workspace.
//!
//! A query names an algorithm by its stable label (the paper's legend
//! name where one exists) plus a small parameter bag; the registry turns
//! that [`AlgoSpec`] into a boxed searcher. The CLI's `--algo` flag, the
//! baseline line-ups of the experiment harness, and the batch engine all
//! resolve through here, so adding an algorithm (or renaming one) is a
//! one-row change and help text / docs are generated rather than
//! hand-maintained.

use crate::error::EngineError;
use dmcs_baselines::{
    CliquePercolation, Cnm, Gn, HighCore, HighTruss, Huang2015, Icwi2008, KCore, KTruss, Kecc,
    LocalKCore, Louvain, Lpa, PprSweep, Wu2015,
};
use dmcs_core::{
    BranchAndBound, CommunitySearch, Exact, Fpa, FpaDmg, Nca, NcaDr, WeightedFpa, WeightedNca,
};

/// Tunable parameters an [`AlgoSpec`] carries to the factory. Algorithms
/// ignore the fields they have no use for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlgoParams {
    /// `k` for the parameterised baselines (`kc` / `kt` / `kecc` / `ls`);
    /// `kt` clamps to at least 3 (a 2-truss is every edge).
    pub k: u32,
    /// FPA's layer-based pruning strategy (§5.7). Only `fpa` reads it.
    pub layer_pruning: bool,
    /// Serve the *weighted* density modularity: `fpa`/`nca` resolve to
    /// their weight-aware implementations (exactly what the canonical
    /// `fpa-w`/`nca-w` labels build). Entries that are not
    /// [`weight_aware`](AlgoEntry::weight_aware) ignore it. Participates
    /// in cache and batch-dedup keys — a weighted and an unweighted
    /// request never share an answer.
    pub weighted: bool,
}

impl Default for AlgoParams {
    fn default() -> Self {
        AlgoParams {
            k: 3,
            layer_pruning: true,
            weighted: false,
        }
    }
}

/// One registry row: the stable label, a one-line summary for generated
/// help text, whether `k` is meaningful, whether the algorithm can serve
/// the weighted objective, and the factory.
pub struct AlgoEntry {
    /// Stable lookup label (lowercase; the CLI's `--algo` value).
    pub name: &'static str,
    /// One-line description, rendered into `--help` and the README.
    pub summary: &'static str,
    /// Whether the `k` parameter changes this algorithm's behaviour.
    pub uses_k: bool,
    /// Whether this algorithm can maximise the *weighted* density
    /// modularity (the CLI's `--weighted` accepts exactly these labels).
    pub weight_aware: bool,
    /// Whether the (unweighted) searcher carries the canonical tie-break
    /// shim and may therefore execute on a renumbered compute mirror
    /// with byte-identical output (sessions consult this before
    /// mirror-serving; see `dmcs_graph::layout`). Weighted serving is
    /// never mirror-safe — floating-point sums depend on traversal
    /// order — so `serves_weighted` specs stay canonical regardless.
    pub mirror_safe: bool,
    factory: fn(&AlgoParams) -> Box<dyn CommunitySearch>,
}

impl AlgoEntry {
    /// Instantiate this algorithm with `params`.
    pub fn build(&self, params: &AlgoParams) -> Box<dyn CommunitySearch> {
        (self.factory)(params)
    }
}

/// Every community-search algorithm in the workspace, in presentation
/// order: the paper's two algorithms and their ablations, the exact
/// solvers, then the baselines of §6.1 and the extensions.
pub const REGISTRY: &[AlgoEntry] = &[
    AlgoEntry {
        name: "fpa",
        summary: "Fast Peeling Algorithm (§5.5, layer pruning §5.7) — the paper's default",
        uses_k: false,
        weight_aware: true,
        mirror_safe: true,
        factory: |p| {
            if p.weighted {
                Box::new(WeightedFpa)
            } else {
                Box::new(Fpa {
                    layer_pruning: p.layer_pruning,
                })
            }
        },
    },
    AlgoEntry {
        name: "nca",
        summary: "Non-articulation Cancellation Algorithm (§5.4)",
        uses_k: false,
        weight_aware: true,
        mirror_safe: true,
        factory: |p| {
            if p.weighted {
                Box::new(WeightedNca::default())
            } else {
                Box::new(Nca::default())
            }
        },
    },
    AlgoEntry {
        name: "fpa-w",
        summary: "FPA on the weighted density modularity (Definition 2, weighted form)",
        uses_k: false,
        weight_aware: true,
        mirror_safe: false,
        factory: |_| Box::new(WeightedFpa),
    },
    AlgoEntry {
        name: "nca-w",
        summary: "NCA on the weighted density modularity",
        uses_k: false,
        weight_aware: true,
        mirror_safe: false,
        factory: |_| Box::new(WeightedNca::default()),
    },
    AlgoEntry {
        name: "fpa-dmg",
        summary: "FPA ablation scored by the unstable DM gain (Fig 3 (b)+(c))",
        uses_k: false,
        weight_aware: false,
        mirror_safe: true,
        factory: |_| Box::new(FpaDmg),
    },
    AlgoEntry {
        name: "nca-dr",
        summary: "NCA ablation scored by the density ratio (Fig 3 (a)+(d))",
        uses_k: false,
        weight_aware: false,
        mirror_safe: true,
        factory: |_| Box::new(NcaDr::default()),
    },
    AlgoEntry {
        name: "exact",
        summary: "bitmask exact optimum (components up to 26 nodes)",
        uses_k: false,
        weight_aware: false,
        mirror_safe: false,
        factory: |_| Box::new(Exact),
    },
    AlgoEntry {
        name: "bnb",
        summary: "branch-and-bound exact optimum (~30-node components)",
        uses_k: false,
        weight_aware: false,
        mirror_safe: false,
        factory: |_| Box::new(BranchAndBound::default()),
    },
    AlgoEntry {
        name: "kc",
        summary: "connected k-core of the queries (Sozio & Gionis 2010)",
        uses_k: true,
        weight_aware: false,
        mirror_safe: false,
        factory: |p| Box::new(KCore::new(p.k)),
    },
    AlgoEntry {
        name: "kt",
        summary: "triangle-connected k-truss community (Huang et al. 2014)",
        uses_k: true,
        weight_aware: false,
        mirror_safe: false,
        factory: |p| Box::new(KTruss::new(p.k.max(3))),
    },
    AlgoEntry {
        name: "kecc",
        summary: "k-edge-connected component (Chang et al. 2015)",
        uses_k: true,
        weight_aware: false,
        mirror_safe: false,
        factory: |p| Box::new(Kecc::new(p.k.into())),
    },
    AlgoEntry {
        name: "highcore",
        summary: "k-core with k maximised",
        uses_k: false,
        weight_aware: false,
        mirror_safe: false,
        factory: |_| Box::new(HighCore),
    },
    AlgoEntry {
        name: "hightruss",
        summary: "k-truss with k maximised",
        uses_k: false,
        weight_aware: false,
        mirror_safe: false,
        factory: |_| Box::new(HighTruss),
    },
    AlgoEntry {
        name: "ls",
        summary: "local k-core expansion",
        uses_k: true,
        weight_aware: false,
        mirror_safe: false,
        factory: |p| Box::new(LocalKCore::new(p.k)),
    },
    AlgoEntry {
        name: "huang2015",
        summary: "closest truss community, 2-approx (Huang et al. 2015)",
        uses_k: false,
        weight_aware: false,
        mirror_safe: false,
        factory: |_| Box::new(Huang2015::default()),
    },
    AlgoEntry {
        name: "wu2015",
        summary: "query-biased density deletion, η=0.5 (Wu et al. 2015)",
        uses_k: false,
        weight_aware: false,
        mirror_safe: false,
        factory: |_| Box::new(Wu2015::default()),
    },
    AlgoEntry {
        name: "clique",
        summary: "densest clique-percolation community (Yuan et al. 2017)",
        uses_k: false,
        weight_aware: false,
        mirror_safe: false,
        factory: |_| Box::new(CliquePercolation::default()),
    },
    AlgoEntry {
        name: "cnm",
        summary: "agglomerative modularity, best-DM intermediate (Clauset et al. 2004)",
        uses_k: false,
        weight_aware: false,
        mirror_safe: false,
        factory: |_| Box::new(Cnm),
    },
    AlgoEntry {
        name: "gn",
        summary: "divisive edge-betweenness, best-DM intermediate (Girvan & Newman 2002)",
        uses_k: false,
        weight_aware: false,
        mirror_safe: false,
        factory: |_| Box::new(Gn::default()),
    },
    AlgoEntry {
        name: "icwi2008",
        summary: "Luo's local-modularity greedy (Luo et al. 2008)",
        uses_k: false,
        weight_aware: false,
        mirror_safe: false,
        factory: |_| Box::new(Icwi2008),
    },
    AlgoEntry {
        name: "lpa",
        summary: "label propagation, label block of the query (Raghavan et al. 2007)",
        uses_k: false,
        weight_aware: false,
        mirror_safe: false,
        factory: |_| Box::new(Lpa::default()),
    },
    AlgoEntry {
        name: "louvain",
        summary: "Louvain detection, community of the query (Blondel et al. 2008)",
        uses_k: false,
        weight_aware: false,
        mirror_safe: false,
        factory: |_| Box::new(Louvain::default()),
    },
    AlgoEntry {
        name: "ppr",
        summary: "personalized-PageRank sweep cut (Andersen et al. 2006)",
        uses_k: false,
        weight_aware: false,
        mirror_safe: false,
        factory: |_| Box::new(PprSweep::default()),
    },
];

/// Look up a registry row by its (case-insensitive) label.
pub fn find(name: &str) -> Option<&'static AlgoEntry> {
    REGISTRY.iter().find(|e| e.name.eq_ignore_ascii_case(name))
}

/// Levenshtein edit distance between two (short) ASCII labels.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<u8>, Vec<u8>) = (a.bytes().collect(), b.bytes().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The registered label nearest to `name` by edit distance, if it is
/// close enough to be a plausible typo (distance ≤ 2, or ≤ a third of
/// the label length for long labels). Drives the "did you mean ...?"
/// part of [`EngineError::UnknownAlgo`].
pub fn suggest(name: &str) -> Option<&'static str> {
    let name = name.to_lowercase();
    let (best, dist) = REGISTRY
        .iter()
        .map(|e| (e.name, edit_distance(&name, e.name)))
        .min_by_key(|&(_, d)| d)?;
    let threshold = 2usize.max(name.len() / 3);
    (dist <= threshold && dist < name.len()).then_some(best)
}

/// All registered labels, in registry order.
pub fn names() -> Vec<&'static str> {
    REGISTRY.iter().map(|e| e.name).collect()
}

/// Generated `--algo` help: one aligned `name  summary` line per
/// algorithm. The CLI embeds this in its usage text so documentation
/// cannot drift from the registry.
pub fn algo_help() -> String {
    let width = REGISTRY.iter().map(|e| e.name.len()).max().unwrap_or(0);
    let mut out = String::new();
    for e in REGISTRY {
        let k = if e.uses_k { "  [uses --k]" } else { "" };
        let w = if e.weight_aware { "  [weights]" } else { "" };
        out.push_str(&format!(
            "      {:width$}  {}{}{}\n",
            e.name, e.summary, k, w
        ));
    }
    out
}

/// An algorithm request: registry label + parameters. The unit of
/// dispatch everywhere — CLI flags parse into one, experiment line-ups
/// are lists of them, the batch engine executes them.
#[derive(Debug, Clone, PartialEq)]
pub struct AlgoSpec {
    /// Registry label, e.g. `"fpa"`.
    pub name: String,
    /// Parameters handed to the factory.
    pub params: AlgoParams,
}

impl AlgoSpec {
    /// Spec for `name` with default parameters.
    pub fn new(name: &str) -> Self {
        AlgoSpec {
            name: name.to_lowercase(),
            params: AlgoParams::default(),
        }
    }

    /// Spec for `name` with the given `k`.
    pub fn with_k(name: &str, k: u32) -> Self {
        AlgoSpec {
            name: name.to_lowercase(),
            params: AlgoParams {
                k,
                ..AlgoParams::default()
            },
        }
    }

    /// Disable FPA's layer pruning (no effect on other algorithms).
    pub fn without_pruning(mut self) -> Self {
        self.params.layer_pruning = false;
        self
    }

    /// Serve the weighted density modularity (see
    /// [`AlgoParams::weighted`]): `AlgoSpec::new("fpa").weighted()`
    /// builds the same searcher as `AlgoSpec::new("fpa-w")`.
    pub fn weighted(mut self) -> Self {
        self.params.weighted = true;
        self
    }

    /// Whether this spec resolves to a searcher maximising the
    /// *weighted* objective: either [`AlgoParams::weighted`] is set or
    /// the label is one of the canonical weighted entries (`fpa-w` /
    /// `nca-w`, which build the weighted searchers unconditionally).
    /// The JSON `summary.weighted` field reports this.
    pub fn serves_weighted(&self) -> bool {
        self.params.weighted || matches!(self.name.as_str(), "fpa-w" | "nca-w")
    }

    /// Instantiate the algorithm. An unregistered label is an
    /// [`EngineError::UnknownAlgo`] carrying the nearest-name suggestion.
    pub fn build(&self) -> Result<Box<dyn CommunitySearch>, EngineError> {
        find(&self.name)
            .map(|e| e.build(&self.params))
            .ok_or_else(|| EngineError::unknown_algo(self.name.clone()))
    }
}

/// The default baseline line-up of the synthetic experiments (Fig 8/9):
/// `kc` (k=3), `kt` (k=4), `kecc` (k=3), `huang2015`, `wu2015` (η=0.5),
/// `highcore`, `hightruss` — §6.1 "Parameter Setting".
pub fn default_baseline_specs() -> Vec<AlgoSpec> {
    vec![
        AlgoSpec::with_k("kc", 3),
        AlgoSpec::with_k("kt", 4),
        AlgoSpec::with_k("kecc", 3),
        AlgoSpec::new("huang2015"),
        AlgoSpec::new("wu2015"),
        AlgoSpec::new("highcore"),
        AlgoSpec::new("hightruss"),
    ]
}

/// The extended line-up of the small-graph experiments (Fig 15/16), which
/// adds the expensive algorithms: `clique`, `GN`, `CNM`, `icwi2008`.
pub fn small_graph_baseline_specs() -> Vec<AlgoSpec> {
    let mut v = vec![
        AlgoSpec::new("clique"),
        AlgoSpec::new("gn"),
        AlgoSpec::new("cnm"),
        AlgoSpec::new("icwi2008"),
    ];
    v.extend(default_baseline_specs());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_entry_builds_and_lookup_is_case_insensitive() {
        let params = AlgoParams::default();
        for e in REGISTRY {
            let algo = e.build(&params);
            assert!(!algo.name().is_empty(), "{} has a display name", e.name);
        }
        assert!(find("FPA").is_some());
        assert!(find("zeus").is_none());
    }

    #[test]
    fn labels_and_display_names_are_unique() {
        let mut labels = names();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), REGISTRY.len());
        let mut display: Vec<&str> = REGISTRY
            .iter()
            .map(|e| e.build(&AlgoParams::default()).name())
            .collect();
        display.sort_unstable();
        display.dedup();
        assert_eq!(display.len(), REGISTRY.len());
    }

    #[test]
    fn lineups_have_expected_sizes_and_build() {
        let build = |specs: Vec<AlgoSpec>| -> Vec<_> {
            specs
                .iter()
                .map(|s| s.build().expect("registered algorithm"))
                .collect()
        };
        assert_eq!(build(default_baseline_specs()).len(), 7);
        assert_eq!(build(small_graph_baseline_specs()).len(), 11);
    }

    #[test]
    fn suggestions_catch_typos_but_not_noise() {
        assert_eq!(suggest("fpa-dgm"), Some("fpa-dmg"));
        assert_eq!(suggest("luovain"), Some("louvain"));
        assert_eq!(suggest("NCA"), Some("nca"), "case-insensitive");
        assert_eq!(suggest("qqqqqqqqqq"), None);
    }

    #[test]
    fn spec_params_reach_the_factory() {
        let spec = AlgoSpec::new("fpa").without_pruning();
        assert!(spec.build().is_ok());
        assert!(!spec.params.layer_pruning);
        let kc = AlgoSpec::with_k("kc", 5);
        assert_eq!(kc.params.k, 5);
        assert!(AlgoSpec::new("no-such-algo").build().is_err());
    }

    #[test]
    fn weightedness_threads_through_specs_and_labels() {
        // The weighted param reroutes fpa/nca to the weighted searchers…
        assert_eq!(
            AlgoSpec::new("fpa").weighted().build().unwrap().name(),
            "W-FPA"
        );
        assert_eq!(
            AlgoSpec::new("nca").weighted().build().unwrap().name(),
            "W-NCA"
        );
        // …which is exactly what the canonical -w labels build.
        assert_eq!(AlgoSpec::new("fpa-w").build().unwrap().name(), "W-FPA");
        assert_eq!(AlgoSpec::new("nca-w").build().unwrap().name(), "W-NCA");
        // Unweighted specs keep the classic implementations.
        assert_eq!(AlgoSpec::new("fpa").build().unwrap().name(), "FPA");
        // Weight-awareness is a registry attribute the CLI validates on.
        for (label, aware) in [
            ("fpa", true),
            ("nca-w", true),
            ("kc", false),
            ("louvain", false),
        ] {
            assert_eq!(find(label).unwrap().weight_aware, aware, "{label}");
        }
        // Typos near the weighted labels get suggestions.
        assert_eq!(suggest("fpa-v"), Some("fpa-w"));
        assert_eq!(suggest("nca-W"), Some("nca-w"));
        // serves_weighted covers both routes to a weighted searcher.
        assert!(AlgoSpec::new("fpa-w").serves_weighted());
        assert!(AlgoSpec::new("fpa").weighted().serves_weighted());
        assert!(!AlgoSpec::new("fpa").serves_weighted());
    }

    #[test]
    fn mirror_safety_covers_exactly_the_shimmed_peelers() {
        let safe: Vec<&str> = REGISTRY
            .iter()
            .filter(|e| e.mirror_safe)
            .map(|e| e.name)
            .collect();
        assert_eq!(safe, ["fpa", "nca", "fpa-dmg", "nca-dr"]);
        // The canonical weighted labels must never mirror-serve.
        assert!(!find("fpa-w").unwrap().mirror_safe);
        assert!(!find("nca-w").unwrap().mirror_safe);
    }

    #[test]
    fn algo_help_lists_every_label() {
        let help = algo_help();
        for e in REGISTRY {
            assert!(help.contains(e.name), "{} missing from help", e.name);
        }
    }
}
