//! The typed request/response contract of the serving API.
//!
//! A [`QueryRequest`] is what a client submits: the query nodes plus the
//! per-request knobs a real service exposes (an algorithm override, a
//! community-size cap, a correlation tag). A [`QueryResponse`] is what
//! comes back: the [`SearchResult`] (or the per-query [`SearchError`]),
//! the algorithm that actually ran, and the query's own wall time.
//! [`Session`](crate::Session)s answer one request at a time;
//! [`BatchRunner`](crate::BatchRunner) fans slices of requests out
//! across worker threads.

use crate::registry::AlgoSpec;
use dmcs_core::{SearchError, SearchResult};
use dmcs_graph::NodeId;

/// One community-search request, builder-style.
///
/// ```
/// use dmcs_engine::{AlgoSpec, QueryRequest};
///
/// // Plain request: the session's own algorithm, no cap.
/// let plain = QueryRequest::new(vec![0, 3]);
/// assert_eq!(plain.nodes, vec![0, 3]);
///
/// // Fully dressed: override the algorithm, cap the community size,
/// // tag the request for correlation in logs / JSON output.
/// let dressed = QueryRequest::new(vec![7])
///     .with_algo(AlgoSpec::with_k("kc", 4))
///     .with_max_community_size(100)
///     .with_tag("user-42");
/// assert_eq!(dressed.algo.as_ref().unwrap().name, "kc");
/// assert_eq!(dressed.max_community_size, Some(100));
/// assert_eq!(dressed.tag.as_deref(), Some("user-42"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// The query nodes (dense graph ids). Every returned community
    /// contains all of them.
    pub nodes: Vec<NodeId>,
    /// Per-request algorithm override; `None` uses the session's (or
    /// batch's) default algorithm.
    pub algo: Option<AlgoSpec>,
    /// Node budget: a response whose community exceeds this many nodes
    /// is converted into [`SearchError::CommunityTooLarge`].
    pub max_community_size: Option<usize>,
    /// Caller-chosen correlation id, echoed verbatim in the response and
    /// the JSON output.
    pub tag: Option<String>,
}

impl QueryRequest {
    /// A plain request for `nodes` with every option at its default.
    pub fn new(nodes: Vec<NodeId>) -> Self {
        QueryRequest {
            nodes,
            algo: None,
            max_community_size: None,
            tag: None,
        }
    }

    /// Override the algorithm for this request only.
    pub fn with_algo(mut self, spec: AlgoSpec) -> Self {
        self.algo = Some(spec);
        self
    }

    /// Cap the size of an acceptable community.
    pub fn with_max_community_size(mut self, cap: usize) -> Self {
        self.max_community_size = Some(cap);
        self
    }

    /// Attach a correlation tag.
    pub fn with_tag(mut self, tag: impl Into<String>) -> Self {
        self.tag = Some(tag.into());
        self
    }

    /// Wrap bare query-node lists into plain requests (the shape batch
    /// files parse into).
    pub fn from_node_lists(queries: &[Vec<NodeId>]) -> Vec<QueryRequest> {
        queries.iter().cloned().map(QueryRequest::new).collect()
    }
}

/// The outcome of one [`QueryRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// The request this answers (nodes, options and tag echoed back).
    pub request: QueryRequest,
    /// Display name of the algorithm that actually ran (the override's
    /// if the request carried one).
    pub algo: &'static str,
    /// The search result, or the per-query error. A failed query never
    /// aborts a batch.
    pub result: Result<SearchResult, SearchError>,
    /// Wall-clock seconds of this query alone. A response served from
    /// the version-keyed cache replays the *original* computation's
    /// timing, so repeated output stays byte-identical.
    pub seconds: f64,
    /// Whether this response was served from the engine's version-keyed
    /// result cache rather than computed. Not part of the JSON `response`
    /// schema (hits must render byte-identically to the miss that
    /// populated them); batch-level hit/miss counts are surfaced in
    /// [`BatchReport`](crate::BatchReport) and the JSON `summary` line.
    pub cached: bool,
}

impl QueryResponse {
    /// Community size, if the search succeeded.
    pub fn community_size(&self) -> Option<usize> {
        self.result.as_ref().ok().map(|r| r.community.len())
    }

    /// Density-modularity score, if the search succeeded.
    pub fn dm_score(&self) -> Option<f64> {
        self.result.as_ref().ok().map(|r| r.density_modularity)
    }

    /// Whether the search produced a community.
    pub fn is_ok(&self) -> bool {
        self.result.is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trip() {
        let req = QueryRequest::new(vec![1, 2])
            .with_algo(AlgoSpec::new("nca"))
            .with_max_community_size(5)
            .with_tag("t");
        assert_eq!(req.nodes, vec![1, 2]);
        assert_eq!(req.algo.as_ref().unwrap().name, "nca");
        assert_eq!(req.max_community_size, Some(5));
        assert_eq!(req.tag.as_deref(), Some("t"));
    }

    #[test]
    fn node_lists_become_plain_requests() {
        let reqs = QueryRequest::from_node_lists(&[vec![0], vec![1, 2]]);
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[1].nodes, vec![1, 2]);
        assert!(reqs[0].algo.is_none() && reqs[0].tag.is_none());
    }

    #[test]
    fn response_accessors_mirror_the_result() {
        let ok = QueryResponse {
            request: QueryRequest::new(vec![0]),
            algo: "FPA",
            result: Ok(SearchResult {
                community: vec![0, 1, 2],
                density_modularity: 0.5,
                removal_order: vec![],
                iterations: 1,
            }),
            seconds: 0.001,
            cached: false,
        };
        assert_eq!(ok.community_size(), Some(3));
        assert_eq!(ok.dm_score(), Some(0.5));
        assert!(ok.is_ok());

        let err = QueryResponse {
            result: Err(SearchError::EmptyQuery),
            ..ok
        };
        assert_eq!(err.community_size(), None);
        assert_eq!(err.dm_score(), None);
        assert!(!err.is_ok());
    }
}
