//! The Algorithm 1 framework, compositional.
//!
//! Figure 3 of the paper factors the two proposed algorithms into a 2×2
//! grid: a *removable-node rule* — (a) non-articulation nodes or (b) the
//! farthest distance layer — crossed with a *best-node scorer* — (c) the
//! density-modularity gain Λ or (d) the density ratio Θ. NCA = (a)+(c),
//! NCA-DR = (a)+(d), FPA-DMG = (b)+(c), FPA = (b)+(d).
//!
//! [`Nca`](crate::Nca) and [`Fpa`](crate::Fpa) are hand-specialised for
//! speed (FPA's per-layer lazy heap only makes sense with the stable Θ);
//! this module provides the *generic* peeler so new rule/scorer
//! combinations — e.g. degree-based scorers, hybrid rules — can be
//! composed and compared without touching the tuned implementations. The
//! tests verify the framework reproduces the four named variants'
//! objective values.

use crate::measure::{density_ratio, dm_gain};
use crate::peel::{PeelState, TieRule};
use crate::{validate_query, CommunitySearch, SearchError, SearchResult};
use dmcs_graph::articulation::articulation_nodes;
use dmcs_graph::traversal::{component_of, multi_source_bfs};
use dmcs_graph::{Graph, NodeId};

/// Which nodes may be removed this iteration (Figure 3, left column).
/// (`Send + Sync` so composed peelers satisfy [`CommunitySearch`]'s
/// thread-safety supertrait; rules are configuration, not shared state.)
pub trait RemovableRule: Send + Sync {
    /// Candidate removable nodes of the current state. `protected[v]`
    /// marks query/seed nodes that must never be offered.
    fn removable(&mut self, st: &PeelState<'_>, protected: &[bool]) -> Vec<NodeId>;
}

/// How to rank removable candidates (Figure 3, right column). Higher is
/// removed first. (`Send + Sync` — see [`RemovableRule`].)
pub trait Scorer: Send + Sync {
    /// Score of removing `v` from the current subgraph.
    fn score(&self, st: &PeelState<'_>, v: NodeId) -> f64;
}

/// Rule (a): any non-articulation, non-protected node.
#[derive(Debug, Clone, Copy, Default)]
pub struct NonArticulationRule;

impl RemovableRule for NonArticulationRule {
    fn removable(&mut self, st: &PeelState<'_>, protected: &[bool]) -> Vec<NodeId> {
        let art = articulation_nodes(st.view());
        st.view()
            .iter_alive()
            .filter(|&v| !protected[v as usize] && !art[v as usize])
            .collect()
    }
}

/// Rule (b): the alive nodes of the farthest remaining distance layer.
#[derive(Debug, Clone)]
pub struct FarthestLayerRule {
    dist: Vec<u32>,
}

impl FarthestLayerRule {
    /// Precompute distances from the (protected) seed set.
    pub fn new(g: &Graph, seed: &[NodeId]) -> Self {
        FarthestLayerRule {
            dist: multi_source_bfs(g, seed),
        }
    }
}

impl RemovableRule for FarthestLayerRule {
    fn removable(&mut self, st: &PeelState<'_>, protected: &[bool]) -> Vec<NodeId> {
        let mut max_d = 0u32;
        let mut layer = Vec::new();
        for v in st.view().iter_alive() {
            if protected[v as usize] {
                continue;
            }
            let d = self.dist[v as usize];
            match d.cmp(&max_d) {
                std::cmp::Ordering::Greater => {
                    max_d = d;
                    layer.clear();
                    layer.push(v);
                }
                std::cmp::Ordering::Equal => layer.push(v),
                std::cmp::Ordering::Less => {}
            }
        }
        layer
    }
}

/// Scorer (c): the density-modularity gain Λ (Definition 6).
#[derive(Debug, Clone, Copy, Default)]
pub struct GainScorer;

impl Scorer for GainScorer {
    fn score(&self, st: &PeelState<'_>, v: NodeId) -> f64 {
        let k = st.view().local_degree(v) as u64;
        let d_v = st.view().graph().degree(v) as u64;
        dm_gain(st.m(), k, st.d_s(), d_v) as f64
    }
}

/// Scorer (d): the density ratio Θ (Definition 7).
#[derive(Debug, Clone, Copy, Default)]
pub struct RatioScorer;

impl Scorer for RatioScorer {
    fn score(&self, st: &PeelState<'_>, v: NodeId) -> f64 {
        let k = st.view().local_degree(v) as u64;
        density_ratio(st.view().graph().degree(v) as u64, k)
    }
}

/// The generic Algorithm 1 peeler over any rule × scorer combination.
pub struct GenericPeeler<R, S> {
    rule_factory: fn(&Graph, &[NodeId]) -> R,
    scorer: S,
    name: &'static str,
    tie: TieRule,
    _marker: std::marker::PhantomData<R>,
}

impl<R: RemovableRule, S: Scorer> GenericPeeler<R, S> {
    /// Compose a peeler from a rule factory (receives the graph and the
    /// protected seed), a scorer, and the snapshot tie rule (the tuned NCA
    /// keeps the earlier snapshot on DM ties; Algorithm 2 prefers the
    /// later one).
    pub fn new(
        name: &'static str,
        rule_factory: fn(&Graph, &[NodeId]) -> R,
        scorer: S,
        tie: TieRule,
    ) -> Self {
        GenericPeeler {
            rule_factory,
            scorer,
            name,
            tie,
            _marker: std::marker::PhantomData,
        }
    }
}

/// NCA via the framework: (a) + (c).
pub fn generic_nca() -> GenericPeeler<NonArticulationRule, GainScorer> {
    GenericPeeler::new(
        "generic-NCA",
        |_, _| NonArticulationRule,
        GainScorer,
        TieRule::KeepEarlier,
    )
}

/// NCA-DR via the framework: (a) + (d).
pub fn generic_nca_dr() -> GenericPeeler<NonArticulationRule, RatioScorer> {
    GenericPeeler::new(
        "generic-NCA-DR",
        |_, _| NonArticulationRule,
        RatioScorer,
        TieRule::KeepEarlier,
    )
}

/// FPA-DMG via the framework: (b) + (c).
pub fn generic_fpa_dmg() -> GenericPeeler<FarthestLayerRule, GainScorer> {
    GenericPeeler::new(
        "generic-FPA-DMG",
        FarthestLayerRule::new,
        GainScorer,
        TieRule::PreferLater,
    )
}

/// FPA (no layer pruning) via the framework: (b) + (d).
pub fn generic_fpa() -> GenericPeeler<FarthestLayerRule, RatioScorer> {
    GenericPeeler::new(
        "generic-FPA",
        FarthestLayerRule::new,
        RatioScorer,
        TieRule::PreferLater,
    )
}

impl<R: RemovableRule, S: Scorer> CommunitySearch for GenericPeeler<R, S> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn search(&self, g: &Graph, query: &[NodeId]) -> Result<SearchResult, SearchError> {
        validate_query(g, query)?;
        let seed = dmcs_graph::steiner::steiner_seed(g, query)?;
        let comp = component_of(g, seed[0]);
        let mut protected = vec![false; g.n()];
        for &s in &seed {
            protected[s as usize] = true;
        }
        let mut rule = (self.rule_factory)(g, &seed);
        // Tie-breaks mirror the tuned implementations: on equal score
        // remove the candidate farthest from the seed ("keep the node
        // closely located to the query nodes", §5.4); on equal distance
        // the smallest id (FPA's heap order).
        let dist = multi_source_bfs(g, &seed);
        let mut st = PeelState::new(g, &comp, self.tie);
        let mut iterations = 0usize;
        loop {
            let cand = rule.removable(&st, &protected);
            if cand.is_empty() || st.size() <= seed.len() {
                break;
            }
            let (&best, _) = cand
                .iter()
                .map(|v| (v, self.scorer.score(&st, *v)))
                .max_by(|a, b| {
                    a.1.partial_cmp(&b.1)
                        .expect("scores not NaN")
                        .then(dist[*a.0 as usize].cmp(&dist[*b.0 as usize]))
                        .then(b.0.cmp(a.0))
                })
                .expect("cand non-empty");
            st.remove(best);
            iterations += 1;
        }
        let (community, dm, removal_order) = st.finish();
        Ok(SearchResult {
            community,
            density_modularity: dm,
            removal_order,
            iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fpa, FpaDmg, Nca, NcaDr};
    use dmcs_graph::GraphBuilder;

    fn barbell() -> Graph {
        GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
    }

    #[test]
    fn framework_matches_named_variants_on_objective() {
        let g = barbell();
        for q in 0..6u32 {
            let pairs: Vec<(f64, f64, &str)> = vec![
                (
                    generic_nca().search(&g, &[q]).unwrap().density_modularity,
                    Nca::default().search(&g, &[q]).unwrap().density_modularity,
                    "NCA",
                ),
                (
                    generic_nca_dr()
                        .search(&g, &[q])
                        .unwrap()
                        .density_modularity,
                    NcaDr::default()
                        .search(&g, &[q])
                        .unwrap()
                        .density_modularity,
                    "NCA-DR",
                ),
                (
                    generic_fpa_dmg()
                        .search(&g, &[q])
                        .unwrap()
                        .density_modularity,
                    FpaDmg.search(&g, &[q]).unwrap().density_modularity,
                    "FPA-DMG",
                ),
                (
                    generic_fpa().search(&g, &[q]).unwrap().density_modularity,
                    Fpa::without_pruning()
                        .search(&g, &[q])
                        .unwrap()
                        .density_modularity,
                    "FPA",
                ),
            ];
            for (generic, tuned, label) in pairs {
                assert!(
                    (generic - tuned).abs() < 1e-9,
                    "{label} framework {generic} vs tuned {tuned} (query {q})"
                );
            }
        }
    }

    #[test]
    fn framework_results_are_valid_communities() {
        let g = dmcs_gen::ring::ring_of_cliques(4, 4);
        for q in [0u32, 5, 10] {
            let r = generic_fpa().search(&g, &[q]).unwrap();
            assert!(r.community.contains(&q));
            let view = dmcs_graph::SubgraphView::from_nodes(&g, &r.community);
            assert!(view.is_connected());
        }
    }

    #[test]
    fn custom_scorer_composes() {
        // A novel combination the paper never names: farthest layer +
        // *minimum local degree* (peel weakly-attached nodes first).
        #[derive(Default)]
        struct MinLocalDegree;
        impl Scorer for MinLocalDegree {
            fn score(&self, st: &PeelState<'_>, v: NodeId) -> f64 {
                -(st.view().local_degree(v) as f64)
            }
        }
        let peeler = GenericPeeler::new(
            "layer+mindeg",
            FarthestLayerRule::new,
            MinLocalDegree,
            TieRule::PreferLater,
        );
        let g = barbell();
        let r = peeler.search(&g, &[0]).unwrap();
        assert_eq!(r.community, vec![0, 1, 2]);
    }

    #[test]
    fn multi_query_seed_protected_in_framework() {
        let g = barbell();
        let r = generic_fpa().search(&g, &[0, 5]).unwrap();
        for v in [0, 2, 3, 5] {
            assert!(r.community.contains(&v));
        }
    }

    #[test]
    fn custom_rule_composes() {
        // A novel removable-node rule: among non-articulation nodes, offer
        // only those of minimal alive degree (k-core-style peeling made
        // connectivity-safe by the articulation mask).
        #[derive(Default)]
        struct SparsestSafeRule;
        impl RemovableRule for SparsestSafeRule {
            fn removable(&mut self, st: &PeelState<'_>, protected: &[bool]) -> Vec<NodeId> {
                let art = articulation_nodes(st.view());
                let safe: Vec<NodeId> = st
                    .view()
                    .iter_alive()
                    .filter(|&v| !protected[v as usize] && !art[v as usize])
                    .collect();
                let min = safe
                    .iter()
                    .map(|&v| st.view().local_degree(v))
                    .min()
                    .unwrap_or(0);
                safe.into_iter()
                    .filter(|&v| st.view().local_degree(v) == min)
                    .collect()
            }
        }
        let peeler = GenericPeeler::new(
            "sparsest-safe+ratio",
            |_, _| SparsestSafeRule,
            RatioScorer,
            TieRule::KeepEarlier,
        );
        let g = barbell();
        for q in 0..6u32 {
            let r = peeler.search(&g, &[q]).unwrap();
            assert!(r.community.contains(&q));
            let view = dmcs_graph::SubgraphView::from_nodes(&g, &r.community);
            assert!(view.is_connected());
        }
    }

    #[test]
    fn framework_errors_propagate() {
        let g = barbell();
        assert!(generic_fpa().search(&g, &[]).is_err());
        assert!(generic_nca().search(&g, &[42]).is_err());
        let split = GraphBuilder::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(generic_fpa().search(&split, &[0, 3]).is_err());
    }

    #[test]
    fn framework_never_beats_exact_on_small_graphs() {
        for seed in 0..6u64 {
            let g = dmcs_gen::random::erdos_renyi(12, 0.3, seed);
            let Ok(opt) = crate::Exact.search(&g, &[0]) else {
                continue;
            };
            for dm in [
                generic_nca().search(&g, &[0]).unwrap().density_modularity,
                generic_nca_dr()
                    .search(&g, &[0])
                    .unwrap()
                    .density_modularity,
                generic_fpa().search(&g, &[0]).unwrap().density_modularity,
                generic_fpa_dmg()
                    .search(&g, &[0])
                    .unwrap()
                    .density_modularity,
            ] {
                assert!(dm <= opt.density_modularity + 1e-9, "seed {seed}");
            }
        }
    }
}
