//! Weighted NCA: the Non-articulation Cancellation Algorithm on weighted
//! graphs, completing weighted parity with [`crate::WeightedFpa`].
//!
//! Connectivity is a purely topological property, so removable nodes are
//! still the non-articulation nodes of the alive subgraph (Hopcroft–
//! Tarjan on the [`dmcs_graph::SubgraphView`] of the topology). Weights
//! enter through the scorer: the weighted density-modularity gain
//! generalises Definition 6 by replacing edge counts with edge weights
//! and degrees with strengths,
//!
//! ```text
//! Λ_v = −4 w_G · w_{v,S} + 2 d_S d_v − d_v²
//! ```
//!
//! where `w_{v,S}` is the weight of v's alive incident edges, `d_v` the
//! strength of `v` in `G`, `d_S` the strength sum of the alive set, and
//! `w_G` the total edge weight. With unit weights this reduces exactly to
//! the integer gain of the unweighted NCA.
//!
//! [`WeightedNca`] implements [`CommunitySearch`] over any [`Graph`]
//! (unit-weight fallback when no weights lane is attached) and is
//! registered as `nca-w`, so it composes with sessions, batches and the
//! result cache like every other algorithm.

use crate::{validate_query_in, CommunitySearch, SearchError, SearchResult};
use dmcs_graph::articulation::articulation_nodes;
use dmcs_graph::traversal::multi_source_bfs_collect;
use dmcs_graph::view::QueryWorkspace;
use dmcs_graph::{Graph, NodeId};

/// NCA maximising the *weighted* density modularity (`nca-w` in the
/// registry).
///
/// ```
/// use dmcs_core::{CommunitySearch, WeightedNca};
/// use dmcs_graph::weighted::WeightedGraphBuilder;
///
/// // A heavy triangle and a light one, bridged: from node 0 the heavy
/// // triangle is the community.
/// let mut b = WeightedGraphBuilder::new(6);
/// for (u, v, w) in [(0, 1, 5.0), (1, 2, 5.0), (0, 2, 5.0),
///                   (3, 4, 1.0), (4, 5, 1.0), (3, 5, 1.0), (2, 3, 0.5)] {
///     b.add_edge(u, v, w);
/// }
/// let r = WeightedNca::default().search(&b.build(), &[0]).unwrap();
/// assert_eq!(r.community, vec![0, 1, 2]);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct WeightedNca {
    /// Optional hard cap on peeling iterations (`None` = peel to the end).
    pub max_iterations: Option<usize>,
}

impl CommunitySearch for WeightedNca {
    fn name(&self) -> &'static str {
        "W-NCA"
    }

    fn search(&self, g: &Graph, query: &[NodeId]) -> Result<SearchResult, SearchError> {
        self.search_with_workspace(g, query, &mut QueryWorkspace::new())
    }

    fn search_with_workspace(
        &self,
        g: &Graph,
        query: &[NodeId],
        ws: &mut QueryWorkspace,
    ) -> Result<SearchResult, SearchError> {
        validate_query_in(g, query, ws)?;
        // One multi-source BFS both computes query distances (the
        // tie-break) and collects the component (queries are connected).
        let mut dist = ws.take_dist(g.n());
        let component = multi_source_bfs_collect(g, query, &mut dist);
        // Full-tie resolution by canonical id — inert on the identity
        // layout (ascending scan + strict `better` already keeps the
        // smallest id); weighted kernels never mirror-serve, but the
        // clause keeps the tie policy uniform across searchers.
        let canon = ws.canon().clone();

        let mut view = ws.view(g, &component);
        // Weighted running state over the pooled f64 buffer.
        let mut local_w = ws.take_weights(g.n());
        for &v in &component {
            local_w[v as usize] = g
                .weighted_neighbors(v)
                .filter(|&(u, _)| view.contains(u))
                .map(|(_, w)| w)
                .sum();
        }
        let mut w_s: f64 = component.iter().map(|&v| local_w[v as usize]).sum::<f64>() / 2.0;
        let mut d_s: f64 = g.strength_sum(&component);
        let mut size = component.len();
        let w_g = g.total_weight();
        let dm = |w_s: f64, d_s: f64, size: usize| -> f64 {
            if size == 0 || w_g == 0.0 {
                f64::NEG_INFINITY
            } else {
                (w_s - d_s * d_s / (4.0 * w_g)) / size as f64
            }
        };

        let mut removed: Vec<NodeId> = Vec::new();
        let mut best = (dm(w_s, d_s, size), 0usize);
        let cap = self.max_iterations.unwrap_or(usize::MAX);
        let mut iterations = 0usize;
        while iterations < cap && size > query.len() {
            let art = articulation_nodes(&view);
            // Best removable node by weighted Λ; ties: remove the farthest.
            // Query nodes are exactly the BFS sources (`dist == 0`), so
            // protecting them is an O(1) test per candidate.
            let mut chosen: Option<(NodeId, f64, u32)> = None;
            for v in view.iter_alive() {
                if dist[v as usize] == 0 || art[v as usize] {
                    continue;
                }
                let d_v = g.strength(v);
                let gain = -4.0 * w_g * local_w[v as usize] + 2.0 * d_s * d_v - d_v * d_v;
                let dd = dist[v as usize];
                let better = match &chosen {
                    None => true,
                    Some((bv, bg, bd)) => {
                        gain > *bg
                            || (gain == *bg && dd > *bd)
                            || (gain == *bg
                                && dd == *bd
                                && canon.to_external(v) < canon.to_external(*bv))
                    }
                };
                if better {
                    chosen = Some((v, gain, dd));
                }
            }
            let Some((v, _, _)) = chosen else { break };
            view.remove(v);
            w_s -= local_w[v as usize];
            d_s -= g.strength(v);
            size -= 1;
            for (u, w) in g.weighted_neighbors(v) {
                if view.contains(u) {
                    local_w[u as usize] -= w;
                }
            }
            removed.push(v);
            iterations += 1;
            let score = dm(w_s, d_s, size);
            if score >= best.0 {
                best = (score, removed.len());
            }
        }

        let dead: std::collections::HashSet<NodeId> = removed[..best.1].iter().copied().collect();
        let mut community: Vec<NodeId> = component
            .iter()
            .copied()
            .filter(|v| !dead.contains(v))
            .collect();
        community.sort_unstable();
        ws.put_weights(local_w, &component);
        ws.recycle(view, &component);
        ws.put_dist(dist, &component);
        Ok(SearchResult {
            community,
            density_modularity: best.0,
            removal_order: removed,
            iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Nca;
    use dmcs_graph::weighted::{WeightedGraph, WeightedGraphBuilder};
    use dmcs_graph::SubgraphView;

    fn weighted_barbell(left: f64, right: f64) -> WeightedGraph {
        let mut b = WeightedGraphBuilder::new(6);
        b.add_edge(0, 1, left);
        b.add_edge(1, 2, left);
        b.add_edge(0, 2, left);
        b.add_edge(3, 4, right);
        b.add_edge(4, 5, right);
        b.add_edge(3, 5, right);
        b.add_edge(2, 3, 0.5);
        b.build()
    }

    #[test]
    fn finds_query_triangle() {
        let g = weighted_barbell(1.0, 1.0);
        let r = WeightedNca::default().search(&g, &[0]).unwrap();
        assert_eq!(r.community, vec![0, 1, 2]);
        assert!((r.density_modularity - g.density_modularity(&[0, 1, 2])).abs() < 1e-12);
    }

    #[test]
    fn unit_weights_match_unweighted_nca() {
        // A true unit-weight barbell (note `weighted_barbell` gives the
        // bridge weight 0.5, so it is NOT unit-weighted).
        let mut b = WeightedGraphBuilder::new(6);
        for &(u, v) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)] {
            b.add_edge(u, v, 1.0);
        }
        let g = b.build();
        for q in 0..6u32 {
            let wr = WeightedNca::default().search(&g, &[q]).unwrap();
            let ur = Nca::default().search(&g, &[q]).unwrap();
            assert_eq!(wr.community, ur.community, "query {q}");
            assert!(
                (wr.density_modularity - ur.density_modularity).abs() < 1e-9,
                "query {q}: weighted {} vs unweighted {}",
                wr.density_modularity,
                ur.density_modularity
            );
        }
    }

    #[test]
    fn unit_weights_match_unweighted_nca_on_karate() {
        let topo = dmcs_gen::karate::karate();
        let mut b = WeightedGraphBuilder::new(topo.n());
        for (u, v) in topo.edges() {
            b.add_edge(u, v, 1.0);
        }
        let g = b.build();
        for q in [0u32, 16, 33] {
            let wr = WeightedNca::default().search(&g, &[q]).unwrap();
            let ur = Nca::default().search(&topo, &[q]).unwrap();
            assert_eq!(wr.community, ur.community, "query {q}");
            // The unit-fallback path on the bare topology agrees too.
            let bare = WeightedNca::default().search(&topo, &[q]).unwrap();
            assert_eq!(bare.community, wr.community, "laneless query {q}");
        }
    }

    #[test]
    fn weights_steer_the_community() {
        let g = weighted_barbell(0.2, 10.0);
        let r = WeightedNca::default().search(&g, &[3]).unwrap();
        assert_eq!(r.community, vec![3, 4, 5]);
    }

    #[test]
    fn result_connected_and_queries_protected() {
        let g = weighted_barbell(1.0, 1.0);
        let r = WeightedNca::default().search(&g, &[0, 5]).unwrap();
        for v in [0, 5] {
            assert!(r.community.contains(&v));
        }
        let view = SubgraphView::from_nodes(&g, &r.community);
        assert!(view.is_connected());
    }

    #[test]
    fn workspace_reuse_is_bit_identical() {
        let g = weighted_barbell(3.0, 0.5);
        let mut ws = QueryWorkspace::new();
        for q in 0..6u32 {
            let fresh = WeightedNca::default().search(&g, &[q]).unwrap();
            let reused = WeightedNca::default()
                .search_with_workspace(&g, &[q], &mut ws)
                .unwrap();
            assert_eq!(fresh, reused, "query {q}");
        }
    }

    #[test]
    fn errors_propagate() {
        let g = weighted_barbell(1.0, 1.0);
        assert!(WeightedNca::default().search(&g, &[]).is_err());
        assert!(WeightedNca::default().search(&g, &[9]).is_err());
        // Disconnected queries.
        let mut b = WeightedGraphBuilder::new(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(2, 3, 1.0);
        let g2 = b.build();
        assert!(WeightedNca::default().search(&g2, &[0, 3]).is_err());
    }

    #[test]
    fn iteration_cap_respected() {
        let g = weighted_barbell(1.0, 1.0);
        let r = WeightedNca {
            max_iterations: Some(1),
        }
        .search(&g, &[0])
        .unwrap();
        assert!(r.iterations <= 1);
    }
}
