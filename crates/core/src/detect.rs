//! Density-modularity based community *detection* — the paper's stated
//! future work (§7: "we can utilize our new density modularity to solve
//! the community detection problem since the density modularity can
//! mitigate the resolution limit problem").
//!
//! The detector repeatedly runs FPA from an uncovered seed node (highest
//! remaining degree first), claims the returned community, and continues
//! on the residual graph until every node is assigned. Singleton leftovers
//! are merged into the neighbouring community with the strongest
//! connection.

use crate::{CommunitySearch, Fpa};
use dmcs_graph::{Graph, GraphBuilder, NodeId};

/// Configuration for the DM-based detector.
#[derive(Debug, Clone, Copy)]
pub struct DetectConfig {
    /// Communities smaller than this are merged into a neighbour.
    pub min_size: usize,
    /// Use the layer-pruned FPA (faster) or the exact Algorithm 2.
    pub layer_pruning: bool,
}

impl Default for DetectConfig {
    fn default() -> Self {
        DetectConfig {
            min_size: 3,
            layer_pruning: false,
        }
    }
}

/// Partition the whole graph into communities by iterated DMCS. Returns
/// per-node labels (dense in `0..count`) and the community list.
pub fn detect_communities(g: &Graph, cfg: DetectConfig) -> (Vec<u32>, Vec<Vec<NodeId>>) {
    let n = g.n();
    let mut label = vec![u32::MAX; n];
    let mut communities: Vec<Vec<NodeId>> = Vec::new();
    let fpa = Fpa {
        layer_pruning: cfg.layer_pruning,
    };

    // Residual graph handling: rebuild the induced subgraph on uncovered
    // nodes after each extraction (simple and robust; detection is run on
    // moderate graphs).
    let mut remaining: Vec<NodeId> = g.nodes().collect();
    // Seed order: highest degree first, recomputed per round on the
    // residual graph.
    while !remaining.is_empty() {
        let (sub, map) = g.induced(&remaining);
        let seed_local = (0..sub.n() as NodeId)
            .max_by_key(|&v| sub.degree(v))
            .expect("remaining non-empty");
        if sub.degree(seed_local) == 0 {
            // Only isolated nodes left: each becomes (for now) a singleton.
            for &v in &remaining {
                let id = communities.len() as u32;
                label[v as usize] = id;
                communities.push(vec![v]);
            }
            break;
        }
        let found = match fpa.search(&sub, &[seed_local]) {
            Ok(r) => r.community,
            Err(_) => vec![seed_local],
        };
        let id = communities.len() as u32;
        let mut comm: Vec<NodeId> = found.iter().map(|&lv| map[lv as usize]).collect();
        comm.sort_unstable();
        for &v in &comm {
            label[v as usize] = id;
        }
        communities.push(comm);
        remaining.retain(|&v| label[v as usize] == u32::MAX);
    }

    // Post-pass: absorb undersized communities into the neighbour
    // community they touch the most.
    loop {
        let mut moved = false;
        for ci in 0..communities.len() {
            if communities[ci].is_empty() || communities[ci].len() >= cfg.min_size {
                continue;
            }
            // Strongest neighbouring community.
            let mut counts: std::collections::HashMap<u32, usize> =
                std::collections::HashMap::new();
            for &v in &communities[ci] {
                for &w in g.neighbors(v) {
                    let lw = label[w as usize];
                    if lw != ci as u32 {
                        *counts.entry(lw).or_insert(0) += 1;
                    }
                }
            }
            let Some((&target, _)) = counts.iter().max_by_key(|(_, &c)| c) else {
                continue; // isolated: stays a singleton community
            };
            let moved_nodes = std::mem::take(&mut communities[ci]);
            for &v in &moved_nodes {
                label[v as usize] = target;
            }
            communities[target as usize].extend(moved_nodes);
            communities[target as usize].sort_unstable();
            moved = true;
        }
        if !moved {
            break;
        }
    }

    // Compact labels.
    let mut dense = vec![u32::MAX; communities.len()];
    let mut out: Vec<Vec<NodeId>> = Vec::new();
    for (ci, comm) in communities.into_iter().enumerate() {
        if comm.is_empty() {
            continue;
        }
        dense[ci] = out.len() as u32;
        out.push(comm);
    }
    for l in label.iter_mut() {
        *l = dense[*l as usize];
    }
    (label, out)
}

/// Sum of per-community density modularities of a partition — the
/// detection objective the paper's future work implies.
pub fn partition_density_modularity(g: &Graph, communities: &[Vec<NodeId>]) -> f64 {
    communities
        .iter()
        .map(|c| crate::measure::density_modularity(g, c))
        .sum()
}

/// Helper for tests: detection on an explicitly-given subgraph edge list.
#[allow(dead_code)]
fn subgraph_of(edges: &[(NodeId, NodeId)], n: usize) -> Graph {
    GraphBuilder::from_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmcs_gen::{ring, sbm};
    use dmcs_metrics::nmi_partition;

    #[test]
    fn detects_planted_blocks() {
        let (g, comms) = sbm::planted_partition(&[25, 25, 25], 0.5, 0.02, 31);
        let (labels, found) = detect_communities(&g, DetectConfig::default());
        assert!(found.len() >= 2, "degenerate detection: {}", found.len());
        // Compare against the planted labels via partition NMI.
        let mut truth = vec![0u32; g.n()];
        for (ci, c) in comms.iter().enumerate() {
            for &v in c {
                truth[v as usize] = ci as u32;
            }
        }
        let score = nmi_partition(&labels, &truth);
        assert!(score > 0.6, "detection NMI only {score}");
    }

    #[test]
    fn detects_ring_cliques_without_merging() {
        // The resolution-limit showcase: classic-modularity detectors merge
        // adjacent cliques; the DM detector must keep them separate.
        let g = ring::ring_of_cliques(8, 5);
        let (_, found) = detect_communities(&g, DetectConfig::default());
        assert_eq!(found.len(), 8, "cliques merged: {:?}", found.len());
        for c in &found {
            assert_eq!(c.len(), 5);
        }
    }

    #[test]
    fn every_node_labelled_exactly_once() {
        let (g, _) = sbm::planted_partition(&[20, 20], 0.4, 0.05, 7);
        let (labels, found) = detect_communities(&g, DetectConfig::default());
        let total: usize = found.iter().map(|c| c.len()).sum();
        assert_eq!(total, g.n());
        for (v, &l) in labels.iter().enumerate() {
            assert!(
                found[l as usize].contains(&(v as u32)),
                "node {v} mislabelled"
            );
        }
    }

    #[test]
    fn partition_dm_prefers_true_split() {
        let g = ring::ring_of_cliques(6, 4);
        let per_clique: Vec<Vec<u32>> = (0..6).map(|i| ring::clique_nodes(i, 4)).collect();
        let merged: Vec<Vec<u32>> = (0..3)
            .map(|i| {
                let mut c = ring::clique_nodes(2 * i, 4);
                c.extend(ring::clique_nodes(2 * i + 1, 4));
                c
            })
            .collect();
        assert!(
            partition_density_modularity(&g, &per_clique)
                > partition_density_modularity(&g, &merged)
        );
    }

    #[test]
    fn isolated_nodes_become_singletons() {
        let mut b = dmcs_graph::GraphBuilder::new(5);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        let g = b.build();
        let (labels, found) = detect_communities(
            &g,
            DetectConfig {
                min_size: 1,
                ..DetectConfig::default()
            },
        );
        assert_eq!(found.iter().map(|c| c.len()).sum::<usize>(), 5);
        assert_ne!(labels[3], labels[0]);
    }
}
