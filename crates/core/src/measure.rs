//! Community goodness functions.
//!
//! Conventions (unweighted graph `G`, candidate community `C`):
//! - `l_C` — number of edges of the induced subgraph `G[C]`;
//! - `d_C` — sum of **full-graph** degrees of the nodes of `C`;
//! - `m = |E|` — edges of the whole graph.
//!
//! Classic modularity (Definition 1):
//! `CM(C) = l_C/m − (d_C / 2m)²`.
//!
//! Density modularity (Definition 2, unweighted):
//! `DM(C) = l_C/|C| − d_C² / (4 m |C|)`.
//!
//! These are the forms the paper's own worked examples use (Example 3 and
//! the appendix proofs). Example 2 reports values exactly twice these —
//! the paper is inconsistent by a constant factor of 2 between
//! Definition 2 and Example 2 — and a constant factor changes no argmax,
//! no gain ordering and no algorithm; tests pin both relationships down.

use dmcs_graph::{Graph, NodeId};

/// Classic modularity from counts: `l/m − (d/2m)²`.
#[inline]
pub fn classic_modularity_counts(l_c: u64, d_c: u64, m: u64) -> f64 {
    if m == 0 {
        return 0.0;
    }
    let m = m as f64;
    let l = l_c as f64;
    let d = d_c as f64;
    l / m - (d / (2.0 * m)).powi(2)
}

/// Classic modularity of the node set `c` in `g`.
pub fn classic_modularity(g: &Graph, c: &[NodeId]) -> f64 {
    classic_modularity_counts(g.internal_edges(c), g.degree_sum(c), g.m() as u64)
}

/// Density modularity from counts: `l/|C| − d²/(4m|C|)`.
#[inline]
pub fn density_modularity_counts(l_c: u64, d_c: u64, size: usize, m: u64) -> f64 {
    if size == 0 || m == 0 {
        return f64::NEG_INFINITY;
    }
    let s = size as f64;
    let m = m as f64;
    let l = l_c as f64;
    let d = d_c as f64;
    l / s - d * d / (4.0 * m * s)
}

/// Density modularity of the node set `c` in `g` (Definition 2,
/// unweighted).
pub fn density_modularity(g: &Graph, c: &[NodeId]) -> f64 {
    density_modularity_counts(g.internal_edges(c), g.degree_sum(c), c.len(), g.m() as u64)
}

/// Weighted density modularity (Definition 2): `(w_C − d_C²/(4 w_G))/|C|`,
/// where `w_C` sums internal edge weights, `d_C` sums node weights (a node
/// weight is the sum of its adjacent edge weights) and `w_G` sums all edge
/// weights.
pub fn density_modularity_weighted<W>(g: &Graph, c: &[NodeId], weight: W) -> f64
where
    W: Fn(NodeId, NodeId) -> f64,
{
    if c.is_empty() {
        return f64::NEG_INFINITY;
    }
    let mut in_c = vec![false; g.n()];
    for &v in c {
        in_c[v as usize] = true;
    }
    let mut w_c = 0.0f64;
    let mut d_c = 0.0f64;
    for &v in c {
        for &w in g.neighbors(v) {
            let ew = weight(v, w);
            d_c += ew;
            if in_c[w as usize] && v < w {
                w_c += ew;
            }
        }
    }
    let mut w_g = 0.0f64;
    for (u, v) in g.edges() {
        w_g += weight(u, v);
    }
    if w_g == 0.0 {
        return f64::NEG_INFINITY;
    }
    (w_c - d_c * d_c / (4.0 * w_g)) / c.len() as f64
}

/// Single-community term of the generalized modularity density (Guo,
/// Singh & Bassler 2020) with χ = 1: the classic modularity term scaled by
/// the community's internal edge density `2 l_C / (|C|(|C|−1))`. This is
/// the Fig 12 comparator.
pub fn generalized_modularity_density(g: &Graph, c: &[NodeId]) -> f64 {
    let n_c = c.len();
    if n_c < 2 {
        return 0.0;
    }
    let l_c = g.internal_edges(c);
    let cm = classic_modularity_counts(l_c, g.degree_sum(c), g.m() as u64);
    let density = 2.0 * l_c as f64 / (n_c as f64 * (n_c - 1) as f64);
    cm * density
}

/// Graph density `l_C / |C|` (Khuller & Saha 2009) — the "absolute
/// cohesiveness" half of the density-modularity story.
pub fn graph_density(g: &Graph, c: &[NodeId]) -> f64 {
    if c.is_empty() {
        return 0.0;
    }
    g.internal_edges(c) as f64 / c.len() as f64
}

/// Updated density modularity (Definition 5): the density modularity of
/// `S ∖ {v}`, from the counts of `S`.
///
/// `(l_S − k_{v,S}) / (|S|−1) − (d_S − d_v)² / (4m(|S|−1))`.
#[inline]
pub fn updated_density_modularity(
    l_s: u64,
    k_vs: u64,
    d_s: u64,
    d_v: u64,
    size: usize,
    m: u64,
) -> f64 {
    density_modularity_counts(l_s - k_vs, d_s - d_v, size - 1, m)
}

/// Density-modularity gain (Definition 6):
/// `Λ_v = −4m·k_{v,S} + 2 d_S d_v − d_v²`.
///
/// Strictly order-equivalent to [`updated_density_modularity`] when
/// comparing candidates over the same subgraph `S` (the fixed terms
/// `l_S`, `d_S²`, `1/(|S|−1)` drop out) — property-tested below.
#[inline]
pub fn dm_gain(m: u64, k_vs: u64, d_s: u64, d_v: u64) -> i128 {
    -4 * (m as i128) * (k_vs as i128) + 2 * (d_s as i128) * (d_v as i128) - (d_v as i128).pow(2)
}

/// Density ratio (Definition 7): `Θ_v = d_v / k_{v,S}`, with `k = 0`
/// mapped to `+∞` (an alive node with no alive neighbours is the cheapest
/// possible removal).
#[inline]
pub fn density_ratio(d_v: u64, k_vs: u64) -> f64 {
    if k_vs == 0 {
        f64::INFINITY
    } else {
        d_v as f64 / k_vs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmcs_gen::{ring, toy};

    const EPS: f64 = 1e-6;

    #[test]
    fn example1_classic_modularity() {
        // Paper Example 1: CM(A) = (12 − 14²/52)/52 = 0.158284,
        // CM(A∪B) = (28 − 28²/52)/52 = 0.2485207.
        let g = toy::figure1();
        let cm_a = classic_modularity(&g, &toy::figure1_community_a());
        let cm_ab = classic_modularity(&g, &toy::figure1_community_ab());
        assert!((cm_a - 0.158284).abs() < EPS, "CM(A) = {cm_a}");
        assert!((cm_ab - 0.2485207).abs() < EPS, "CM(A∪B) = {cm_ab}");
        // The free-rider effect of CM: the merged community wins.
        assert!(cm_ab > cm_a);
    }

    #[test]
    fn example2_density_modularity() {
        // Paper Example 2 reports DM(A) = 1.028846 and DM(A∪B) = 0.8076923
        // using a factor-2 variant of Definition 2; under Definition 2
        // itself the values are exactly half. Both orderings agree: A wins.
        let g = toy::figure1();
        let dm_a = density_modularity(&g, &toy::figure1_community_a());
        let dm_ab = density_modularity(&g, &toy::figure1_community_ab());
        assert!(
            (2.0 * dm_a - 1.028846).abs() < EPS,
            "2·DM(A) = {}",
            2.0 * dm_a
        );
        assert!(
            (2.0 * dm_ab - 0.8076923).abs() < EPS,
            "2·DM(A∪B) = {}",
            2.0 * dm_ab
        );
        assert!(dm_a > dm_ab, "density modularity must prefer A");
    }

    #[test]
    fn example3_ring_of_cliques() {
        // Paper Example 3 (30 cliques of 6, |E| = 480):
        //   CM(merged) = 0.06013889 > CM(split) = 0.03013889
        //   DM(merged) = 2.405556  < DM(split)  = 2.411111
        let g = ring::ring_of_cliques(30, 6);
        let split = ring::split_community(0, 6);
        let merged = ring::merged_community(0, 30, 6);
        let cm_split = classic_modularity(&g, &split);
        let cm_merged = classic_modularity(&g, &merged);
        assert!((cm_split - 0.03013889).abs() < EPS, "CM split {cm_split}");
        assert!(
            (cm_merged - 0.06013889).abs() < EPS,
            "CM merged {cm_merged}"
        );
        assert!(
            cm_merged > cm_split,
            "classic modularity merges (resolution limit)"
        );

        let dm_split = density_modularity(&g, &split);
        let dm_merged = density_modularity(&g, &merged);
        assert!((dm_split - 2.411111).abs() < EPS, "DM split {dm_split}");
        assert!((dm_merged - 2.405556).abs() < EPS, "DM merged {dm_merged}");
        assert!(dm_split > dm_merged, "density modularity splits");
    }

    #[test]
    fn weighted_dm_with_unit_weights_matches_unweighted() {
        let g = toy::figure1();
        let a = toy::figure1_community_a();
        let w = density_modularity_weighted(&g, &a, |_, _| 1.0);
        let u = density_modularity(&g, &a);
        assert!((w - u).abs() < 1e-12);
    }

    #[test]
    fn weighted_dm_scales_with_weights() {
        // Doubling every weight doubles w_C, d_C, w_G: DM doubles.
        let g = toy::figure1();
        let a = toy::figure1_community_a();
        let w1 = density_modularity_weighted(&g, &a, |_, _| 1.0);
        let w2 = density_modularity_weighted(&g, &a, |_, _| 2.0);
        assert!((w2 - 2.0 * w1).abs() < 1e-12);
    }

    #[test]
    fn updated_dm_matches_recomputation() {
        let g = toy::figure1();
        let ab = toy::figure1_community_ab();
        let l = g.internal_edges(&ab);
        let d = g.degree_sum(&ab);
        let m = g.m() as u64;
        // Remove node 15 (degree 1, one internal edge).
        let v: NodeId = 15;
        let k_vs = 1u64;
        let d_v = g.degree(v) as u64;
        let predicted = updated_density_modularity(l, k_vs, d, d_v, ab.len(), m);
        let after: Vec<NodeId> = ab.iter().copied().filter(|&u| u != v).collect();
        let actual = density_modularity(&g, &after);
        assert!((predicted - actual).abs() < 1e-12);
    }

    #[test]
    fn gain_orders_like_updated_dm() {
        // Property (Definition 6's justification): over a fixed S, the
        // ranking by Λ equals the ranking by updated DM.
        let g = ring::ring_of_cliques(5, 4);
        let s: Vec<NodeId> = (0..12).collect(); // three cliques
        let l_s = g.internal_edges(&s);
        let d_s = g.degree_sum(&s);
        let m = g.m() as u64;
        let mut in_s = vec![false; g.n()];
        for &v in &s {
            in_s[v as usize] = true;
        }
        let mut pairs: Vec<(i128, f64)> = Vec::new();
        for &v in &s {
            let k_vs = g.neighbors(v).iter().filter(|&&w| in_s[w as usize]).count() as u64;
            let d_v = g.degree(v) as u64;
            let gain = dm_gain(m, k_vs, d_s, d_v);
            let upd = updated_density_modularity(l_s, k_vs, d_s, d_v, s.len(), m);
            pairs.push((gain, upd));
        }
        for i in 0..pairs.len() {
            for j in 0..pairs.len() {
                if pairs[i].0 > pairs[j].0 {
                    assert!(
                        pairs[i].1 >= pairs[j].1 - 1e-12,
                        "Λ ordering disagrees with updated DM"
                    );
                }
            }
        }
    }

    #[test]
    fn density_ratio_edge_cases() {
        assert_eq!(density_ratio(5, 0), f64::INFINITY);
        assert!((density_ratio(6, 3) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gmd_penalises_sparse_communities() {
        let g = ring::ring_of_cliques(30, 6);
        let split = ring::split_community(0, 6);
        let merged = ring::merged_community(0, 30, 6);
        // GMD also prefers the split community (its whole point).
        assert!(
            generalized_modularity_density(&g, &split)
                > generalized_modularity_density(&g, &merged)
        );
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let g = toy::figure1();
        assert_eq!(density_modularity(&g, &[]), f64::NEG_INFINITY);
        assert_eq!(generalized_modularity_density(&g, &[3]), 0.0);
        assert_eq!(classic_modularity_counts(0, 0, 0), 0.0);
    }

    #[test]
    fn dm_identity_with_classic_modularity() {
        // DM(C) = (m / |C|) * CM'(C) where CM'(C) = (2 l − d²/2m)/(2m)·2 —
        // concretely: DM = CM * m / |C| * ... simplest check: both formulas
        // derive from the same (l, d) pair.
        let g = toy::figure1();
        let a = toy::figure1_community_a();
        let m = g.m() as f64;
        let cm = classic_modularity(&g, &a);
        let dm = density_modularity(&g, &a);
        assert!((dm - cm * m / a.len() as f64).abs() < 1e-12);
    }
}
