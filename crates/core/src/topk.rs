//! Top-k diverse community search: several communities for one query.
//!
//! In overlapping ground truths (DBLP authors publish in several venues,
//! Youtube users join several groups — §6.3) a query node legitimately
//! belongs to *multiple* communities, yet DMCS returns one. This
//! extension enumerates up to `k` communities by exclusion: after each
//! round, the non-query members of the found community are removed from
//! the candidate pool and the search re-runs on the remainder, so every
//! round must explain the query through fresh nodes. All returned
//! communities are connected, contain every query node, and are scored
//! with the full-graph density modularity (comparable across rounds —
//! rounds are ordered by construction, not necessarily by score).

use crate::dynamic::search_within_scored;
use crate::{validate_query, CommunitySearch, Fpa, SearchError, SearchResult};
use dmcs_graph::traversal::component_of;
use dmcs_graph::{Graph, NodeId};

/// Configuration for [`top_k_communities`].
#[derive(Debug, Clone, Copy)]
pub struct TopKConfig {
    /// Maximum number of communities returned.
    pub k: usize,
    /// Stop early when a round's community drops below this DM (set to
    /// `f64::NEG_INFINITY` to disable; default 0: only positively
    /// cohesive communities count).
    pub min_dm: f64,
}

impl Default for TopKConfig {
    fn default() -> Self {
        TopKConfig { k: 3, min_dm: 0.0 }
    }
}

/// Enumerate up to `cfg.k` node-diverse communities containing `query`,
/// searching each round with FPA.
///
/// ```
/// use dmcs_core::topk::{top_k_communities, TopKConfig};
/// use dmcs_graph::GraphBuilder;
///
/// // Two 4-cliques sharing node 0: two legitimate communities.
/// let mut b = GraphBuilder::new(7);
/// for c in [[0u32, 1, 2, 3], [0, 4, 5, 6]] {
///     for i in 0..4 {
///         for j in (i + 1)..4 {
///             b.add_edge(c[i], c[j]);
///         }
///     }
/// }
/// let rounds = top_k_communities(&b.build(), &[0], TopKConfig::default()).unwrap();
/// assert_eq!(rounds.len(), 2);
/// ```
pub fn top_k_communities(
    g: &Graph,
    query: &[NodeId],
    cfg: TopKConfig,
) -> Result<Vec<SearchResult>, SearchError> {
    top_k_communities_with(g, query, cfg, &Fpa::default(), false)
}

/// [`top_k_communities`] with an explicit per-round searcher and
/// objective — the registry-routed form: any [`CommunitySearch`] drives
/// the rounds, and `weighted` scores them with the weighted density
/// modularity (the induced round pools keep their weights lane), so
/// top-k composes with `fpa-w`/`nca-w` exactly like single queries.
pub fn top_k_communities_with(
    g: &Graph,
    query: &[NodeId],
    cfg: TopKConfig,
    algo: &dyn CommunitySearch,
    weighted: bool,
) -> Result<Vec<SearchResult>, SearchError> {
    validate_query(g, query)?;
    let mut pool: Vec<NodeId> = component_of(g, query[0]);
    let is_query = |v: NodeId| query.contains(&v);
    let mut out = Vec::new();
    for _round in 0..cfg.k {
        if pool.len() <= query.len() {
            break;
        }
        let Ok(r) = search_within_scored(g, &pool, query, algo, weighted) else {
            break; // queries disconnected inside the reduced pool
        };
        if r.density_modularity < cfg.min_dm {
            break;
        }
        // A community that explains the query only through itself (no
        // fresh non-query nodes) would repeat forever: stop.
        if r.community.iter().all(|&v| is_query(v)) {
            out.push(r);
            break;
        }
        let used: Vec<NodeId> = r
            .community
            .iter()
            .copied()
            .filter(|&v| !is_query(v))
            .collect();
        out.push(r);
        pool.retain(|&v| is_query(v) || !used.contains(&v));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmcs_graph::{GraphBuilder, SubgraphView};

    /// Two 4-cliques sharing exactly the query node 0.
    fn bowtie() -> Graph {
        let mut b = GraphBuilder::new(7);
        // Left clique {0,1,2,3}, right clique {0,4,5,6}.
        for c in [[0u32, 1, 2, 3], [0, 4, 5, 6]] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    b.add_edge(c[i], c[j]);
                }
            }
        }
        b.build()
    }

    #[test]
    fn finds_both_cliques_of_the_bowtie() {
        let g = bowtie();
        let rs = top_k_communities(&g, &[0], TopKConfig { k: 3, min_dm: 0.0 }).unwrap();
        assert!(rs.len() >= 2, "expected both wings, got {}", rs.len());
        let mut wings: Vec<Vec<u32>> = rs.iter().take(2).map(|r| r.community.clone()).collect();
        wings.sort();
        assert_eq!(wings[0], vec![0, 1, 2, 3]);
        assert_eq!(wings[1], vec![0, 4, 5, 6]);
    }

    #[test]
    fn every_round_is_connected_and_holds_the_query() {
        let g = dmcs_gen::karate::karate();
        let rs = top_k_communities(&g, &[0], TopKConfig { k: 4, min_dm: 0.0 }).unwrap();
        assert!(!rs.is_empty());
        for r in &rs {
            assert!(r.community.contains(&0));
            let view = SubgraphView::from_nodes(&g, &r.community);
            assert!(view.is_connected());
        }
    }

    #[test]
    fn rounds_are_node_diverse() {
        let g = dmcs_gen::karate::karate();
        let rs = top_k_communities(
            &g,
            &[0],
            TopKConfig {
                k: 4,
                min_dm: f64::NEG_INFINITY,
            },
        )
        .unwrap();
        for i in 0..rs.len() {
            for j in (i + 1)..rs.len() {
                let shared: Vec<u32> = rs[i]
                    .community
                    .iter()
                    .copied()
                    .filter(|v| rs[j].community.contains(v) && *v != 0)
                    .collect();
                assert!(
                    shared.is_empty(),
                    "rounds {i} and {j} share non-query nodes {shared:?}"
                );
            }
        }
    }

    #[test]
    fn min_dm_cuts_off_weak_rounds() {
        let g = bowtie();
        let strict = top_k_communities(&g, &[0], TopKConfig { k: 5, min_dm: 1e9 }).unwrap();
        assert!(strict.is_empty());
    }

    #[test]
    fn multi_query_top_k() {
        let g = bowtie();
        // Queries in both wings: every community must span the waist.
        let rs = top_k_communities(&g, &[1, 4], TopKConfig::default()).unwrap();
        assert!(!rs.is_empty());
        for r in &rs {
            assert!(r.community.contains(&1) && r.community.contains(&4));
        }
    }

    #[test]
    fn errors_propagate() {
        let g = bowtie();
        assert!(top_k_communities(&g, &[], TopKConfig::default()).is_err());
        assert!(top_k_communities(&g, &[99], TopKConfig::default()).is_err());
    }

    #[test]
    fn explicit_searcher_matches_the_default_wrapper() {
        let g = bowtie();
        let cfg = TopKConfig { k: 3, min_dm: 0.0 };
        let via_wrapper = top_k_communities(&g, &[0], cfg).unwrap();
        let via_with = top_k_communities_with(&g, &[0], cfg, &Fpa::default(), false).unwrap();
        assert_eq!(via_wrapper, via_with);
        // A different searcher drives the rounds too.
        let nca = top_k_communities_with(&g, &[0], cfg, &crate::Nca::default(), false).unwrap();
        assert!(!nca.is_empty());
        for r in &nca {
            assert!(r.community.contains(&0));
        }
    }

    #[test]
    fn weighted_rounds_score_the_weighted_objective() {
        use dmcs_graph::weighted::WeightedGraphBuilder;
        // The bowtie with the right wing triple-weighted: both wings are
        // still found, and each round's DM matches the weighted measure
        // of its community on the full graph.
        let mut b = WeightedGraphBuilder::new(7);
        for (c, w) in [([0u32, 1, 2, 3], 1.0), ([0, 4, 5, 6], 3.0)] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    b.add_edge(c[i], c[j], w);
                }
            }
        }
        let g = b.build().into_graph();
        let cfg = TopKConfig { k: 3, min_dm: 0.0 };
        let rounds = top_k_communities_with(&g, &[0], cfg, &crate::WeightedFpa, true).unwrap();
        assert!(rounds.len() >= 2, "got {} rounds", rounds.len());
        for r in &rounds {
            let expect = g.weighted_density_modularity(&r.community);
            assert!(
                (r.density_modularity - expect).abs() < 1e-12,
                "round DM {} vs weighted measure {expect}",
                r.density_modularity
            );
        }
        // Both wings appear across the rounds (the round *order* is a
        // property of the peeling sequence, not of the scores), and the
        // heavy wing scores strictly higher under the weighted
        // objective.
        let mut wings: Vec<Vec<u32>> = rounds.iter().take(2).map(|r| r.community.clone()).collect();
        wings.sort();
        assert_eq!(wings, vec![vec![0, 1, 2, 3], vec![0, 4, 5, 6]]);
        assert!(
            g.weighted_density_modularity(&[0, 4, 5, 6])
                > g.weighted_density_modularity(&[0, 1, 2, 3])
        );
    }

    #[test]
    fn k_zero_returns_nothing() {
        let g = bowtie();
        let rs = top_k_communities(&g, &[0], TopKConfig { k: 0, min_dm: 0.0 }).unwrap();
        assert!(rs.is_empty());
    }
}
