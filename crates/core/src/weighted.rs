//! Weighted DMCS: the Fast Peeling Algorithm on weighted graphs, per the
//! general (weighted) form of Definition 2.
//!
//! Layers are still hop-distance layers — the §5.2.2 removal-safety
//! argument (every node keeps a BFS parent one layer in) is purely
//! topological and holds regardless of weights. Weights enter through the
//! objective (`w_S` replaces `l_S`, strengths replace degrees) and through
//! the weighted density ratio `Θ_v = d_v / w_{v,S}` (strength over the
//! weight of alive incident edges).
//!
//! [`WeightedFpa`] implements [`CommunitySearch`] over any [`Graph`]: a
//! graph carrying a weights lane is searched by weight, and one without
//! falls back to unit weights (where the weighted DM coincides with the
//! unweighted one). It is registered as `fpa-w` in the engine's
//! algorithm registry, so it serves through sessions, batches and the
//! version-keyed result cache like every other algorithm, with the same
//! per-worker [`QueryWorkspace`] buffer reuse.

use crate::fpa::OrdF64;
use crate::{validate_query_in, CommunitySearch, SearchError, SearchResult};
use dmcs_graph::steiner::steiner_seed_with_workspace;
use dmcs_graph::traversal::{multi_source_bfs_collect, UNREACHABLE};
use dmcs_graph::view::QueryWorkspace;
use dmcs_graph::{Graph, NodeId};

/// FPA maximising the *weighted* density modularity (`fpa-w` in the
/// registry).
///
/// ```
/// use dmcs_core::{CommunitySearch, WeightedFpa};
/// use dmcs_graph::weighted::WeightedGraphBuilder;
///
/// // Heavy triangle, light triangle, light bridge.
/// let mut b = WeightedGraphBuilder::new(6);
/// for (u, v, w) in [(0, 1, 5.0), (1, 2, 5.0), (0, 2, 5.0),
///                   (3, 4, 1.0), (4, 5, 1.0), (3, 5, 1.0), (2, 3, 0.5)] {
///     b.add_edge(u, v, w);
/// }
/// let r = WeightedFpa.search(&b.build(), &[0]).unwrap();
/// assert_eq!(r.community, vec![0, 1, 2]);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct WeightedFpa;

impl CommunitySearch for WeightedFpa {
    fn name(&self) -> &'static str {
        "W-FPA"
    }

    fn search(&self, g: &Graph, query: &[NodeId]) -> Result<SearchResult, SearchError> {
        self.search_with_workspace(g, query, &mut QueryWorkspace::new())
    }

    fn search_with_workspace(
        &self,
        g: &Graph,
        query: &[NodeId],
        ws: &mut QueryWorkspace,
    ) -> Result<SearchResult, SearchError> {
        validate_query_in(g, query, ws)?;
        let canon = ws.canon().clone();
        let seed = steiner_seed_with_workspace(g, query, ws)?;
        let mut dist = ws.take_dist(g.n());
        let component = multi_source_bfs_collect(g, &seed, &mut dist);
        let mut max_dist = 0u32;
        for &v in &component {
            debug_assert_ne!(dist[v as usize], UNREACHABLE);
            max_dist = max_dist.max(dist[v as usize]);
        }

        // Alive state with incremental weighted counts, over pooled
        // buffers: the view's alive mask tracks S, `local_w[v]` is
        // `w_{v,S}` (weight of alive incident edges).
        let mut view = ws.view(g, &component);
        let mut local_w = ws.take_weights(g.n());
        for &v in &component {
            local_w[v as usize] = g
                .weighted_neighbors(v)
                .filter(|&(u, _)| view.contains(u))
                .map(|(_, w)| w)
                .sum();
        }
        let mut w_s: f64 = component.iter().map(|&v| local_w[v as usize]).sum::<f64>() / 2.0;
        let mut d_s: f64 = g.strength_sum(&component);
        let mut size = component.len();
        let w_g = g.total_weight();

        let dm = |w_s: f64, d_s: f64, size: usize| -> f64 {
            if size == 0 || w_g == 0.0 {
                f64::NEG_INFINITY
            } else {
                (w_s - d_s * d_s / (4.0 * w_g)) / size as f64
            }
        };

        let mut removed: Vec<NodeId> = Vec::new();
        let mut best = (dm(w_s, d_s, size), 0usize);
        let mut iterations = 0usize;

        // Layer buckets.
        let mut layers: Vec<Vec<NodeId>> = vec![Vec::new(); max_dist as usize + 1];
        for &v in &component {
            layers[dist[v as usize] as usize].push(v);
        }
        for d in (1..=max_dist).rev() {
            // Candidates of this layer; weighted Θ via repeated scans
            // (layers are small in small-world graphs; a lazy heap as in
            // the unweighted FPA would also work).
            let mut cand: Vec<NodeId> = layers[d as usize]
                .iter()
                .copied()
                .filter(|&v| view.contains(v))
                .collect();
            while !cand.is_empty() {
                let (pos, _) = cand
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| {
                        let k = local_w[v as usize];
                        let theta = if k <= 0.0 {
                            f64::INFINITY
                        } else {
                            g.strength(v) / k
                        };
                        // Θ ties go to the smallest canonical node id —
                        // the same deterministic rule as the unweighted
                        // FPA heap, independent of `swap_remove` order.
                        (i, (OrdF64(theta), std::cmp::Reverse(canon.to_external(v))))
                    })
                    .max_by_key(|&(_, key)| key)
                    .expect("cand non-empty");
                let v = cand.swap_remove(pos);
                // Remove v.
                view.remove(v);
                w_s -= local_w[v as usize];
                d_s -= g.strength(v);
                size -= 1;
                for (u, w) in g.weighted_neighbors(v) {
                    if view.contains(u) {
                        local_w[u as usize] -= w;
                    }
                }
                removed.push(v);
                iterations += 1;
                let score = dm(w_s, d_s, size);
                if score >= best.0 && size > 0 {
                    best = (score, removed.len());
                }
            }
        }

        let dead: std::collections::HashSet<NodeId> = removed[..best.1].iter().copied().collect();
        let mut community: Vec<NodeId> = component
            .iter()
            .copied()
            .filter(|v| !dead.contains(v))
            .collect();
        community.sort_unstable();
        ws.put_weights(local_w, &component);
        ws.recycle(view, &component);
        ws.put_dist(dist, &component);
        Ok(SearchResult {
            community,
            density_modularity: best.0,
            removal_order: removed,
            iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fpa;
    use dmcs_graph::weighted::{WeightedGraph, WeightedGraphBuilder};

    /// Barbell with weights: left triangle heavy, right triangle light.
    fn weighted_barbell(left: f64, right: f64) -> WeightedGraph {
        let mut b = WeightedGraphBuilder::new(6);
        b.add_edge(0, 1, left);
        b.add_edge(1, 2, left);
        b.add_edge(0, 2, left);
        b.add_edge(3, 4, right);
        b.add_edge(4, 5, right);
        b.add_edge(3, 5, right);
        b.add_edge(2, 3, 0.5);
        b.build()
    }

    #[test]
    fn finds_query_triangle() {
        let g = weighted_barbell(1.0, 1.0);
        let r = WeightedFpa.search(&g, &[0]).unwrap();
        assert_eq!(r.community, vec![0, 1, 2]);
        assert!((r.density_modularity - g.density_modularity(&[0, 1, 2])).abs() < 1e-12);
    }

    #[test]
    fn unit_weights_match_unweighted_fpa() {
        let g = weighted_barbell(1.0, 1.0);
        for q in 0..6u32 {
            let wr = WeightedFpa.search(&g, &[q]).unwrap();
            let ur = Fpa::without_pruning().search(&g, &[q]).unwrap();
            assert_eq!(wr.community, ur.community, "query {q}");
        }
    }

    #[test]
    fn laneless_graph_matches_unit_weights() {
        // On a plain Graph the unit-weight fallback makes W-FPA behave
        // exactly as on an explicitly unit-weighted lane.
        let topo = dmcs_gen::karate::karate();
        let unit = topo.clone().with_unit_weights();
        for q in [0u32, 16, 33] {
            let bare = WeightedFpa.search(&topo, &[q]).unwrap();
            let lane = WeightedFpa.search(&unit, &[q]).unwrap();
            assert_eq!(bare, lane, "query {q}");
        }
    }

    #[test]
    fn weights_steer_the_community() {
        // Make the *right* triangle massively heavier; from the bridge
        // node 3, the community must be its heavy triangle.
        let g = weighted_barbell(0.2, 10.0);
        let r = WeightedFpa.search(&g, &[3]).unwrap();
        assert_eq!(r.community, vec![3, 4, 5]);
        // And from node 2 (light side), peeling keeps the heavy side out.
        let r2 = WeightedFpa.search(&g, &[2]).unwrap();
        assert!(r2.community.contains(&2));
    }

    #[test]
    fn multi_query_protected() {
        let g = weighted_barbell(1.0, 1.0);
        let r = WeightedFpa.search(&g, &[0, 5]).unwrap();
        for v in [0, 2, 3, 5] {
            assert!(r.community.contains(&v));
        }
    }

    #[test]
    fn workspace_reuse_is_bit_identical() {
        let g = weighted_barbell(0.5, 4.0);
        let mut ws = QueryWorkspace::new();
        for q in 0..6u32 {
            let fresh = WeightedFpa.search(&g, &[q]).unwrap();
            let reused = WeightedFpa
                .search_with_workspace(&g, &[q], &mut ws)
                .unwrap();
            assert_eq!(fresh, reused, "query {q}");
        }
    }

    #[test]
    fn errors_propagate() {
        let g = weighted_barbell(1.0, 1.0);
        assert!(WeightedFpa.search(&g, &[]).is_err());
        assert!(WeightedFpa.search(&g, &[9]).is_err());
    }
}
