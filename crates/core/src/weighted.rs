//! Weighted DMCS: the Fast Peeling Algorithm on weighted graphs, per the
//! general (weighted) form of Definition 2.
//!
//! Layers are still hop-distance layers — the §5.2.2 removal-safety
//! argument (every node keeps a BFS parent one layer in) is purely
//! topological and holds regardless of weights. Weights enter through the
//! objective (`w_S` replaces `l_S`, strengths replace degrees) and through
//! the weighted density ratio `Θ_v = d_v / w_{v,S}` (strength over the
//! weight of alive incident edges).

use crate::{SearchError, SearchResult};
use dmcs_graph::steiner::steiner_seed;
use dmcs_graph::traversal::{component_of, multi_source_bfs, UNREACHABLE};
use dmcs_graph::weighted::WeightedGraph;
use dmcs_graph::{GraphError, NodeId};

/// FPA over a [`WeightedGraph`], maximising the weighted density
/// modularity.
#[derive(Debug, Clone, Copy, Default)]
pub struct WeightedFpa;

impl WeightedFpa {
    /// Find a connected community containing all of `query` with high
    /// weighted density modularity.
    pub fn search(&self, g: &WeightedGraph, query: &[NodeId]) -> Result<SearchResult, SearchError> {
        let topo = g.topology();
        if query.is_empty() {
            return Err(SearchError::EmptyQuery);
        }
        for &q in query {
            if q as usize >= topo.n() {
                return Err(SearchError::Graph(GraphError::NodeOutOfRange(q)));
            }
        }
        if !dmcs_graph::traversal::same_component(topo, query) {
            return Err(SearchError::Graph(GraphError::QueryDisconnected));
        }
        let seed = steiner_seed(topo, query)?;
        let component = component_of(topo, seed[0]);
        let dist = multi_source_bfs(topo, &seed);
        let max_dist = component
            .iter()
            .map(|&v| dist[v as usize])
            .max()
            .unwrap_or(0);
        debug_assert!(component.iter().all(|&v| dist[v as usize] != UNREACHABLE));

        // Alive state with incremental weighted counts.
        let mut alive = vec![false; topo.n()];
        for &v in &component {
            alive[v as usize] = true;
        }
        // w_{v,S}: weight of alive incident edges.
        let mut local_w: Vec<f64> = (0..topo.n() as NodeId)
            .map(|v| {
                if alive[v as usize] {
                    g.weighted_neighbors(v)
                        .filter(|&(u, _)| alive[u as usize])
                        .map(|(_, w)| w)
                        .sum()
                } else {
                    0.0
                }
            })
            .collect();
        let mut w_s: f64 = component.iter().map(|&v| local_w[v as usize]).sum::<f64>() / 2.0;
        let mut d_s: f64 = g.strength_sum(&component);
        let mut size = component.len();
        let w_g = g.total_weight();

        let dm = |w_s: f64, d_s: f64, size: usize| -> f64 {
            if size == 0 || w_g == 0.0 {
                f64::NEG_INFINITY
            } else {
                (w_s - d_s * d_s / (4.0 * w_g)) / size as f64
            }
        };

        let mut removed: Vec<NodeId> = Vec::new();
        let mut best = (dm(w_s, d_s, size), 0usize);
        let mut iterations = 0usize;

        // Layer buckets.
        let mut layers: Vec<Vec<NodeId>> = vec![Vec::new(); max_dist as usize + 1];
        for &v in &component {
            layers[dist[v as usize] as usize].push(v);
        }
        for d in (1..=max_dist).rev() {
            // Candidates of this layer; weighted Θ via repeated scans
            // (layers are small in small-world graphs; a lazy heap as in
            // the unweighted FPA would also work).
            let mut cand: Vec<NodeId> = layers[d as usize]
                .iter()
                .copied()
                .filter(|&v| alive[v as usize])
                .collect();
            while !cand.is_empty() {
                let (pos, _) = cand
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| {
                        let k = local_w[v as usize];
                        let theta = if k <= 0.0 {
                            f64::INFINITY
                        } else {
                            g.strength(v) / k
                        };
                        (i, theta)
                    })
                    .max_by(|a, b| a.1.partial_cmp(&b.1).expect("Θ not NaN"))
                    .expect("cand non-empty");
                let v = cand.swap_remove(pos);
                // Remove v.
                alive[v as usize] = false;
                w_s -= local_w[v as usize];
                d_s -= g.strength(v);
                size -= 1;
                for (u, w) in g.weighted_neighbors(v) {
                    if alive[u as usize] {
                        local_w[u as usize] -= w;
                    }
                }
                removed.push(v);
                iterations += 1;
                let score = dm(w_s, d_s, size);
                if score >= best.0 && size > 0 {
                    best = (score, removed.len());
                }
            }
        }

        let dead: std::collections::HashSet<NodeId> = removed[..best.1].iter().copied().collect();
        let community: Vec<NodeId> = component
            .iter()
            .copied()
            .filter(|v| !dead.contains(v))
            .collect();
        Ok(SearchResult {
            community,
            density_modularity: best.0,
            removal_order: removed,
            iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CommunitySearch, Fpa};
    use dmcs_graph::weighted::WeightedGraphBuilder;

    /// Barbell with weights: left triangle heavy, right triangle light.
    fn weighted_barbell(left: f64, right: f64) -> WeightedGraph {
        let mut b = WeightedGraphBuilder::new(6);
        b.add_edge(0, 1, left);
        b.add_edge(1, 2, left);
        b.add_edge(0, 2, left);
        b.add_edge(3, 4, right);
        b.add_edge(4, 5, right);
        b.add_edge(3, 5, right);
        b.add_edge(2, 3, 0.5);
        b.build()
    }

    #[test]
    fn finds_query_triangle() {
        let g = weighted_barbell(1.0, 1.0);
        let r = WeightedFpa.search(&g, &[0]).unwrap();
        assert_eq!(r.community, vec![0, 1, 2]);
        assert!((r.density_modularity - g.density_modularity(&[0, 1, 2])).abs() < 1e-12);
    }

    #[test]
    fn unit_weights_match_unweighted_fpa() {
        let g = weighted_barbell(1.0, 1.0);
        for q in 0..6u32 {
            let wr = WeightedFpa.search(&g, &[q]).unwrap();
            let ur = Fpa::without_pruning().search(g.topology(), &[q]).unwrap();
            assert_eq!(wr.community, ur.community, "query {q}");
        }
    }

    #[test]
    fn weights_steer_the_community() {
        // Make the *right* triangle massively heavier; from the bridge
        // node 3, the community must be its heavy triangle.
        let g = weighted_barbell(0.2, 10.0);
        let r = WeightedFpa.search(&g, &[3]).unwrap();
        assert_eq!(r.community, vec![3, 4, 5]);
        // And from node 2 (light side), peeling keeps the heavy side out.
        let r2 = WeightedFpa.search(&g, &[2]).unwrap();
        assert!(r2.community.contains(&2));
    }

    #[test]
    fn multi_query_protected() {
        let g = weighted_barbell(1.0, 1.0);
        let r = WeightedFpa.search(&g, &[0, 5]).unwrap();
        for v in [0, 2, 3, 5] {
            assert!(r.community.contains(&v));
        }
    }

    #[test]
    fn errors_propagate() {
        let g = weighted_barbell(1.0, 1.0);
        assert!(WeightedFpa.search(&g, &[]).is_err());
        assert!(WeightedFpa.search(&g, &[9]).is_err());
    }
}
