//! Incremental DMCS over a streaming graph.
//!
//! Community search is rarely one-shot: the underlying network changes
//! and the same query is asked again. [`IncrementalSearch`] wraps a
//! [`DynamicGraph`] and a query set and keeps the answer fresh with two
//! strategies:
//!
//! - **exact caching** — the result is recomputed from a CSR snapshot
//!   only when the graph's mutation counter has moved (DM depends on the
//!   *global* edge count through the `d_C²/(4m)` term, so *any* edge
//!   change can shift the optimum — there is no sound "this update is far
//!   away, skip it" rule);
//! - **localized re-search** ([`IncrementalSearch::search_local`]) — a
//!   documented approximation that runs FPA on the induced ball of radius
//!   `r` around the query. The candidate pool shrinks from `|V|` to the
//!   ball, which is what makes per-update refresh affordable on large
//!   graphs; the objective is still evaluated against the full graph's
//!   `|E|`, so scores remain comparable with the exact path.

use crate::{CommunitySearch, Fpa, SearchError, SearchResult};
use dmcs_graph::dynamic::DynamicGraph;
use dmcs_graph::{Graph, NodeId};

/// A query pinned to a mutable graph, with cached results.
///
/// ```
/// use dmcs_core::dynamic::IncrementalSearch;
/// use dmcs_core::Fpa;
/// use dmcs_graph::dynamic::DynamicGraph;
/// use dmcs_graph::GraphBuilder;
///
/// let base = GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]);
/// let mut inc = IncrementalSearch::new(DynamicGraph::from_graph(&base), vec![0], Fpa::default());
/// assert_eq!(inc.community().unwrap().community, vec![0, 1, 2]);
/// inc.remove_edge(2, 3); // the bridge dissolves
/// assert_eq!(inc.community().unwrap().community, vec![0, 1, 2]);
/// assert_eq!(inc.recomputations, 2);
/// ```
pub struct IncrementalSearch {
    graph: DynamicGraph,
    query: Vec<NodeId>,
    algo: Fpa,
    cached: Option<(u64, SearchResult)>,
    /// Number of full recomputations performed (exposed for tests and
    /// instrumentation).
    pub recomputations: usize,
}

impl IncrementalSearch {
    /// Pin `query` to `graph`, searching with `algo`.
    pub fn new(graph: DynamicGraph, query: Vec<NodeId>, algo: Fpa) -> Self {
        IncrementalSearch {
            graph,
            query,
            algo,
            cached: None,
            recomputations: 0,
        }
    }

    /// The underlying graph (read-only).
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// Mutable access to the underlying graph (e.g. for
    /// [`DynamicGraph::add_node`]). Safe with the cache: every mutation
    /// bumps the graph's version, which [`Self::community`] checks.
    pub fn graph_mut(&mut self) -> &mut DynamicGraph {
        &mut self.graph
    }

    /// Insert an edge; returns whether the graph changed.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        self.graph.insert_edge(u, v)
    }

    /// Remove an edge; returns whether the graph changed.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        self.graph.remove_edge(u, v)
    }

    /// Current community — exact w.r.t. the current graph. Recomputes
    /// only when the graph has mutated since the cached answer.
    pub fn community(&mut self) -> Result<SearchResult, SearchError> {
        let version = self.graph.version();
        if let Some((v, r)) = &self.cached {
            if *v == version {
                return Ok(r.clone());
            }
        }
        let snapshot = self.graph.snapshot();
        let result = self.algo.search(&snapshot, &self.query)?;
        self.cached = Some((version, result.clone()));
        self.recomputations += 1;
        Ok(result)
    }

    /// Localized approximate refresh: search only the radius-`r` ball
    /// around the query, scoring DM against the full graph's edge count.
    /// Much cheaper than [`Self::community`] on large graphs; may miss
    /// community members beyond the ball (choose `r` ≥ the expected
    /// community diameter — Fig 4 suggests 4 for social networks).
    pub fn search_local(&self, radius: u32) -> Result<SearchResult, SearchError> {
        let ball = self.graph.ball(&self.query, radius);
        let snapshot = self.graph.snapshot();
        search_within(&snapshot, &ball, &self.query, &self.algo)
    }
}

/// Run `algo` on the subgraph induced by `nodes`, translating node ids
/// back to the host graph's id space and re-scoring the community's DM
/// against the *full* graph (so results are comparable across pools).
pub fn search_within(
    g: &Graph,
    nodes: &[NodeId],
    query: &[NodeId],
    algo: &dyn CommunitySearch,
) -> Result<SearchResult, SearchError> {
    let (sub, back) = g.induced(nodes);
    // Map queries into the induced id space.
    let mut fwd = std::collections::HashMap::with_capacity(back.len());
    for (i, &orig) in back.iter().enumerate() {
        fwd.insert(orig, i as NodeId);
    }
    let local_query: Vec<NodeId> =
        query
            .iter()
            .map(|q| {
                fwd.get(q).copied().ok_or(SearchError::Graph(
                    dmcs_graph::GraphError::NodeOutOfRange(*q),
                ))
            })
            .collect::<Result<_, _>>()?;
    let mut r = algo.search(&sub, &local_query)?;
    r.community = r.community.iter().map(|&v| back[v as usize]).collect();
    r.community.sort_unstable();
    r.removal_order = r.removal_order.iter().map(|&v| back[v as usize]).collect();
    r.density_modularity = crate::measure::density_modularity(g, &r.community);
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmcs_graph::GraphBuilder;

    fn barbell_dynamic() -> DynamicGraph {
        let g =
            GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]);
        DynamicGraph::from_graph(&g)
    }

    #[test]
    fn cache_hits_until_mutation() {
        let mut s = IncrementalSearch::new(barbell_dynamic(), vec![0], Fpa::default());
        let a = s.community().unwrap();
        let b = s.community().unwrap();
        assert_eq!(a, b);
        assert_eq!(s.recomputations, 1, "second call served from cache");
        s.insert_edge(0, 3);
        let _ = s.community().unwrap();
        assert_eq!(s.recomputations, 2, "mutation invalidates");
        // A no-op mutation does not invalidate.
        s.insert_edge(0, 3);
        let _ = s.community().unwrap();
        assert_eq!(s.recomputations, 2);
    }

    #[test]
    fn incremental_equals_from_scratch() {
        let mut s = IncrementalSearch::new(barbell_dynamic(), vec![0], Fpa::default());
        s.insert_edge(1, 4);
        s.insert_edge(0, 5);
        s.remove_edge(2, 3);
        let inc = s.community().unwrap();
        let direct = Fpa::default().search(&s.graph().snapshot(), &[0]).unwrap();
        assert_eq!(inc.community, direct.community);
        assert_eq!(inc.density_modularity, direct.density_modularity);
    }

    #[test]
    fn densification_grows_the_community() {
        // Start with two triangles; make the right one merge-worthy by
        // heavily wiring it to the left.
        let mut s = IncrementalSearch::new(barbell_dynamic(), vec![0], Fpa::default());
        let before = s.community().unwrap();
        assert_eq!(before.community, vec![0, 1, 2]);
        for &(u, v) in &[(0u32, 3u32), (0, 4), (1, 3), (1, 5), (2, 4), (2, 5)] {
            s.insert_edge(u, v);
        }
        let after = s.community().unwrap();
        assert_eq!(after.community.len(), 6, "densified graph merges");
    }

    #[test]
    fn edge_removal_shrinks_the_community() {
        let mut s = IncrementalSearch::new(barbell_dynamic(), vec![0], Fpa::default());
        let _ = s.community().unwrap();
        // Cutting the bridge isolates the query triangle (and leaves the
        // query's component at exactly the triangle).
        s.remove_edge(2, 3);
        let after = s.community().unwrap();
        assert_eq!(after.community, vec![0, 1, 2]);
    }

    #[test]
    fn local_search_matches_global_when_ball_covers_component() {
        let s = IncrementalSearch::new(barbell_dynamic(), vec![0], Fpa::default());
        let local = s.search_local(10).unwrap();
        let global = Fpa::default().search(&s.graph().snapshot(), &[0]).unwrap();
        assert_eq!(local.community, global.community);
        assert!((local.density_modularity - global.density_modularity).abs() < 1e-12);
    }

    #[test]
    fn local_search_respects_the_ball() {
        let s = IncrementalSearch::new(barbell_dynamic(), vec![0], Fpa::default());
        let local = s.search_local(1).unwrap();
        // Ball of radius 1 around node 0 = {0, 1, 2}: the community can
        // only live there.
        assert!(local.community.iter().all(|&v| v <= 2));
        assert!(local.community.contains(&0));
    }

    #[test]
    fn search_within_rescoring_uses_full_graph_m() {
        let g =
            GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]);
        let pool: Vec<NodeId> = vec![0, 1, 2];
        let r = search_within(&g, &pool, &[0], &Fpa::default()).unwrap();
        // DM of {0,1,2} in the FULL graph: (3 - 49/28)/3.
        let expect = crate::measure::density_modularity(&g, &[0, 1, 2]);
        assert!((r.density_modularity - expect).abs() < 1e-12);
    }

    #[test]
    fn queries_outside_ball_error() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let pool: Vec<NodeId> = vec![0, 1];
        assert!(search_within(&g, &pool, &[3], &Fpa::default()).is_err());
    }
}
