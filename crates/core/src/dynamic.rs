//! Incremental DMCS over a streaming graph.
//!
//! Community search is rarely one-shot: the underlying network changes
//! and the same query is asked again. [`IncrementalSearch`] pins a query
//! to a shared [`GraphStore`] — the same store a
//! `dmcs_engine::Engine` serves batches from — and keeps the answer
//! fresh with two strategies:
//!
//! - **shard-scoped caching** — the result is recomputed only when one of
//!   the store *shards* the query's connected component intersects has
//!   moved (the searcher records them while it runs). Updates confined to
//!   other components replay the cached answer: they cannot change the
//!   component's membership, only the DM normalisation through the global
//!   `d_C²/(4m)` term — the same documented relaxation the engine's
//!   response cache makes. The snapshot rebuild itself is shared with
//!   every other consumer of the store, so a burst of queries after one
//!   update pays for one (incremental) rebuild total;
//! - **localized re-search** ([`IncrementalSearch::search_local`]) — a
//!   documented approximation that runs FPA on the induced ball of radius
//!   `r` around the query. The candidate pool shrinks from `|V|` to the
//!   ball, which is what makes per-update refresh affordable on large
//!   graphs; the objective is still evaluated against the full graph's
//!   `|E|`, so scores remain comparable with the exact path.

use crate::{CommunitySearch, Fpa, SearchError, SearchResult};
use dmcs_graph::dynamic::DynamicGraph;
use dmcs_graph::view::QueryWorkspace;
use dmcs_graph::{Graph, GraphStore, NodeId};
use std::sync::Arc;

/// A query pinned to a shared, versioned graph store, with cached
/// results.
///
/// ```
/// use dmcs_core::dynamic::IncrementalSearch;
/// use dmcs_core::Fpa;
/// use dmcs_graph::{GraphBuilder, GraphStore};
/// use std::sync::Arc;
///
/// let base = GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]);
/// let store = Arc::new(GraphStore::from_graph(base));
/// let mut inc = IncrementalSearch::new(Arc::clone(&store), vec![0], Fpa::default());
/// assert_eq!(inc.community().unwrap().community, vec![0, 1, 2]);
/// inc.remove_edge(2, 3); // the bridge dissolves
/// assert_eq!(inc.community().unwrap().community, vec![0, 1, 2]);
/// assert_eq!(inc.recomputations, 2);
/// ```
pub struct IncrementalSearch {
    store: Arc<GraphStore>,
    query: Vec<NodeId>,
    algo: Fpa,
    ws: QueryWorkspace,
    /// Shard fingerprint of the cached answer: `(shard, version)` for
    /// every shard the answering search touched. The answer stays valid
    /// while all of them still match the store.
    cached: Option<(Vec<(u32, u64)>, SearchResult)>,
    /// Number of full recomputations performed (exposed for tests and
    /// instrumentation).
    pub recomputations: usize,
}

impl IncrementalSearch {
    /// Pin `query` to the shared `store`, searching with `algo`. Other
    /// writers (an engine serving `--updates`, another tracker) may
    /// mutate the store concurrently; every [`Self::community`] call
    /// answers for the store's *current* version.
    pub fn new(store: Arc<GraphStore>, query: Vec<NodeId>, algo: Fpa) -> Self {
        IncrementalSearch {
            store,
            query,
            algo,
            ws: QueryWorkspace::new(),
            cached: None,
            recomputations: 0,
        }
    }

    /// Convenience: wrap a mutable graph in a fresh private store.
    pub fn from_dynamic(graph: DynamicGraph, query: Vec<NodeId>, algo: Fpa) -> Self {
        IncrementalSearch::new(Arc::new(GraphStore::from_dynamic(graph)), query, algo)
    }

    /// The underlying store (shareable with other consumers).
    pub fn store(&self) -> &Arc<GraphStore> {
        &self.store
    }

    /// Insert an edge; returns whether the graph changed.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        self.store.insert_edge(u, v)
    }

    /// Remove an edge; returns whether the graph changed.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        self.store.remove_edge(u, v)
    }

    /// Append a fresh isolated node to the graph; returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.store.add_node()
    }

    /// Current community — exact w.r.t. the current graph's topology.
    /// Recomputes only when a store *shard* touched by the cached
    /// answer's component has mutated; updates confined to other
    /// components replay the cached result (the documented DM
    /// normalisation relaxation — see the module docs). The CSR snapshot
    /// it searches is itself rebuilt incrementally, dirty shards only,
    /// shared with all other store consumers.
    pub fn community(&mut self) -> Result<SearchResult, SearchError> {
        let snapshot = self.store.snapshot();
        let versions = snapshot.shard_versions();
        if let Some((fp, r)) = &self.cached {
            if fp
                .iter()
                .all(|&(s, v)| versions.get(s as usize) == Some(&v))
            {
                return Ok(r.clone());
            }
        }
        self.ws.begin_shard_tracking(snapshot.shard_layout());
        let result =
            self.algo
                .search_with_workspace(snapshot.graph(), &self.query, &mut self.ws)?;
        let fp = match self.ws.take_touched_shards() {
            Some(shards) => shards
                .into_iter()
                .map(|s| (s, versions[s as usize]))
                .collect(),
            // Conservative fallback: pin every shard.
            None => versions
                .iter()
                .enumerate()
                .map(|(s, &v)| (s as u32, v))
                .collect(),
        };
        self.cached = Some((fp, result.clone()));
        self.recomputations += 1;
        Ok(result)
    }

    /// Localized approximate refresh: search only the radius-`r` ball
    /// around the query, scoring DM against the full graph's edge count.
    /// Much cheaper than [`Self::community`] on large graphs; may miss
    /// community members beyond the ball (choose `r` ≥ the expected
    /// community diameter — Fig 4 suggests 4 for social networks).
    pub fn search_local(&self, radius: u32) -> Result<SearchResult, SearchError> {
        let ball = self.store.ball(&self.query, radius);
        let snapshot = self.store.snapshot();
        search_within(snapshot.graph(), &ball, &self.query, &self.algo)
    }
}

/// Run `algo` on the subgraph induced by `nodes`, translating node ids
/// back to the host graph's id space and re-scoring the community's DM
/// against the *full* graph (so results are comparable across pools).
pub fn search_within(
    g: &Graph,
    nodes: &[NodeId],
    query: &[NodeId],
    algo: &dyn CommunitySearch,
) -> Result<SearchResult, SearchError> {
    search_within_scored(g, nodes, query, algo, false)
}

/// [`search_within`] with an explicit objective: when `weighted`, the
/// community is re-scored with the host graph's *weighted* density
/// modularity (Definition 2; unit weights when the graph carries no
/// lane), so weight-aware searchers compose with pool reduction — the
/// induced subgraph itself keeps its weights lane either way.
pub fn search_within_scored(
    g: &Graph,
    nodes: &[NodeId],
    query: &[NodeId],
    algo: &dyn CommunitySearch,
    weighted: bool,
) -> Result<SearchResult, SearchError> {
    let (sub, back) = g.induced(nodes);
    // Map queries into the induced id space.
    let mut fwd = std::collections::HashMap::with_capacity(back.len());
    for (i, &orig) in back.iter().enumerate() {
        fwd.insert(orig, i as NodeId);
    }
    let local_query: Vec<NodeId> =
        query
            .iter()
            .map(|q| {
                fwd.get(q).copied().ok_or(SearchError::Graph(
                    dmcs_graph::GraphError::NodeOutOfRange(*q),
                ))
            })
            .collect::<Result<_, _>>()?;
    let mut r = algo.search(&sub, &local_query)?;
    r.community = r.community.iter().map(|&v| back[v as usize]).collect();
    r.community.sort_unstable();
    r.removal_order = r.removal_order.iter().map(|&v| back[v as usize]).collect();
    r.density_modularity = if weighted {
        g.weighted_density_modularity(&r.community)
    } else {
        crate::measure::density_modularity(g, &r.community)
    };
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmcs_graph::GraphBuilder;

    fn barbell_store() -> Arc<GraphStore> {
        let g =
            GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]);
        Arc::new(GraphStore::from_graph(g))
    }

    fn tracker() -> IncrementalSearch {
        IncrementalSearch::new(barbell_store(), vec![0], Fpa::default())
    }

    #[test]
    fn cache_hits_until_mutation() {
        let mut s = tracker();
        let a = s.community().unwrap();
        let b = s.community().unwrap();
        assert_eq!(a, b);
        assert_eq!(s.recomputations, 1, "second call served from cache");
        s.insert_edge(0, 3);
        let _ = s.community().unwrap();
        assert_eq!(s.recomputations, 2, "mutation invalidates");
        // A no-op mutation does not invalidate.
        s.insert_edge(0, 3);
        let _ = s.community().unwrap();
        assert_eq!(s.recomputations, 2);
    }

    #[test]
    fn other_component_updates_replay_the_cached_answer() {
        // Two disjoint triangles plus two isolated nodes. The query's
        // component is {0,1,2}; wiring up 6–7 bumps only shards the
        // component never touches, so the cache must hold.
        let g = GraphBuilder::from_edges(8, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        let store = Arc::new(GraphStore::from_graph(g));
        let mut s = IncrementalSearch::new(Arc::clone(&store), vec![0], Fpa::default());
        let before = s.community().unwrap();
        assert_eq!(s.recomputations, 1);
        assert!(store.insert_edge(6, 7), "effective update elsewhere");
        let after = s.community().unwrap();
        assert_eq!(s.recomputations, 1, "far-away update does not invalidate");
        assert_eq!(before, after);
        // ... while an update inside the component still does.
        assert!(store.insert_edge(0, 6));
        let _ = s.community().unwrap();
        assert_eq!(s.recomputations, 2);
    }

    #[test]
    fn incremental_equals_from_scratch() {
        let mut s = tracker();
        s.insert_edge(1, 4);
        s.insert_edge(0, 5);
        s.remove_edge(2, 3);
        let inc = s.community().unwrap();
        let snapshot = s.store().snapshot();
        let direct = Fpa::default().search(snapshot.graph(), &[0]).unwrap();
        assert_eq!(inc.community, direct.community);
        assert_eq!(inc.density_modularity, direct.density_modularity);
    }

    #[test]
    fn densification_grows_the_community() {
        // Start with two triangles; make the right one merge-worthy by
        // heavily wiring it to the left.
        let mut s = tracker();
        let before = s.community().unwrap();
        assert_eq!(before.community, vec![0, 1, 2]);
        for &(u, v) in &[(0u32, 3u32), (0, 4), (1, 3), (1, 5), (2, 4), (2, 5)] {
            s.insert_edge(u, v);
        }
        let after = s.community().unwrap();
        assert_eq!(after.community.len(), 6, "densified graph merges");
    }

    #[test]
    fn edge_removal_shrinks_the_community() {
        let mut s = tracker();
        let _ = s.community().unwrap();
        // Cutting the bridge isolates the query triangle (and leaves the
        // query's component at exactly the triangle).
        s.remove_edge(2, 3);
        let after = s.community().unwrap();
        assert_eq!(after.community, vec![0, 1, 2]);
    }

    #[test]
    fn external_writers_through_the_shared_store_invalidate() {
        // The store is shared: a mutation by another writer (an engine
        // serving updates, say) must invalidate this tracker's cache.
        let store = barbell_store();
        let mut s = IncrementalSearch::new(Arc::clone(&store), vec![0], Fpa::default());
        let _ = s.community().unwrap();
        assert_eq!(s.recomputations, 1);
        store.remove_edge(2, 3); // not through the tracker
        let after = s.community().unwrap();
        assert_eq!(s.recomputations, 2, "shared-store mutation detected");
        assert_eq!(after.community, vec![0, 1, 2]);
    }

    #[test]
    fn node_growth_through_the_tracker() {
        let mut s = tracker();
        let v = s.add_node();
        assert_eq!(v, 6);
        assert!(s.insert_edge(0, v));
        let r = s.community().unwrap();
        assert!(r.community.contains(&0));
    }

    #[test]
    fn local_search_matches_global_when_ball_covers_component() {
        let s = tracker();
        let local = s.search_local(10).unwrap();
        let snapshot = s.store().snapshot();
        let global = Fpa::default().search(snapshot.graph(), &[0]).unwrap();
        assert_eq!(local.community, global.community);
        assert!((local.density_modularity - global.density_modularity).abs() < 1e-12);
    }

    #[test]
    fn local_search_respects_the_ball() {
        let s = tracker();
        let local = s.search_local(1).unwrap();
        // Ball of radius 1 around node 0 = {0, 1, 2}: the community can
        // only live there.
        assert!(local.community.iter().all(|&v| v <= 2));
        assert!(local.community.contains(&0));
    }

    #[test]
    fn search_within_rescoring_uses_full_graph_m() {
        let g =
            GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]);
        let pool: Vec<NodeId> = vec![0, 1, 2];
        let r = search_within(&g, &pool, &[0], &Fpa::default()).unwrap();
        // DM of {0,1,2} in the FULL graph: (3 - 49/28)/3.
        let expect = crate::measure::density_modularity(&g, &[0, 1, 2]);
        assert!((r.density_modularity - expect).abs() < 1e-12);
    }

    #[test]
    fn queries_outside_ball_error() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let pool: Vec<NodeId> = vec![0, 1];
        assert!(search_within(&g, &pool, &[3], &Fpa::default()).is_err());
    }
}
