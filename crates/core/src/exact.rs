//! Exact DMCS by exhaustive enumeration — the NP-hard ground truth.
//!
//! Theorem 3 proves DMCS NP-hard, so NCA and FPA are heuristics with no
//! approximation guarantee. This module provides the exact optimum for
//! *small* graphs (≤ 26 nodes in the query's component) by enumerating
//! every connected node subset containing the queries with a bitmask sweep
//! — which is what lets the test-suite and the `approx` experiment measure
//! how close the heuristics actually get.

use crate::measure::density_modularity_counts;
use crate::{validate_query, CommunitySearch, SearchError, SearchResult};
use dmcs_graph::traversal::component_of;
use dmcs_graph::{Graph, GraphError, NodeId};

/// Hard cap on the component size the solver accepts (2^26 masks is the
/// practical limit of the sweep).
pub const MAX_EXACT_NODES: usize = 26;

/// Exhaustive DMCS solver for small graphs.
#[derive(Debug, Clone, Copy, Default)]
pub struct Exact;

impl CommunitySearch for Exact {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn search(&self, g: &Graph, query: &[NodeId]) -> Result<SearchResult, SearchError> {
        validate_query(g, query)?;
        let comp = component_of(g, query[0]);
        let k = comp.len();
        if k > MAX_EXACT_NODES {
            return Err(SearchError::Graph(GraphError::NoFeasibleSolution(
                "component too large for exact enumeration",
            )));
        }
        // Local relabelling: component node i <-> bit i.
        let mut local = vec![usize::MAX; g.n()];
        for (i, &v) in comp.iter().enumerate() {
            local[v as usize] = i;
        }
        // Local adjacency bitmasks.
        let adj: Vec<u32> = comp
            .iter()
            .map(|&v| {
                let mut mask = 0u32;
                for &w in g.neighbors(v) {
                    if local[w as usize] != usize::MAX {
                        mask |= 1 << local[w as usize];
                    }
                }
                mask
            })
            .collect();
        let query_mask: u32 = query.iter().map(|&q| 1u32 << local[q as usize]).sum();
        let degrees: Vec<u64> = comp.iter().map(|&v| g.degree(v) as u64).collect();
        let m = g.m() as u64;

        let mut best = (f64::NEG_INFINITY, 0u32);
        for mask in 1u32..(1u32 << k) {
            if mask & query_mask != query_mask {
                continue;
            }
            if !is_connected_mask(mask, &adj) {
                continue;
            }
            let (mut l, mut d, mut size) = (0u64, 0u64, 0usize);
            let mut bits = mask;
            while bits != 0 {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                size += 1;
                d += degrees[i];
                l += (adj[i] & mask & !(u32::MAX << i)).count_ones() as u64;
            }
            let dm = density_modularity_counts(l, d, size, m);
            if dm > best.0 {
                best = (dm, mask);
            }
        }
        let community: Vec<NodeId> = (0..k)
            .filter(|&i| best.1 & (1 << i) != 0)
            .map(|i| comp[i])
            .collect();
        Ok(SearchResult {
            community,
            density_modularity: best.0,
            removal_order: Vec::new(),
            iterations: 1 << k,
        })
    }
}

/// Connectivity of the sub-bitmask via bitmask BFS.
fn is_connected_mask(mask: u32, adj: &[u32]) -> bool {
    let start = mask.trailing_zeros() as usize;
    let mut seen = 1u32 << start;
    let mut frontier = seen;
    while frontier != 0 {
        let mut next = 0u32;
        let mut bits = frontier;
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            next |= adj[i] & mask;
        }
        frontier = next & !seen;
        seen |= next;
    }
    seen & mask == mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::density_modularity;
    use crate::{Fpa, Nca};
    use dmcs_graph::GraphBuilder;

    fn barbell() -> Graph {
        GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
    }

    #[test]
    fn exact_finds_the_triangle() {
        let g = barbell();
        let r = Exact.search(&g, &[0]).unwrap();
        assert_eq!(r.community, vec![0, 1, 2]);
        assert!((r.density_modularity - density_modularity(&g, &[0, 1, 2])).abs() < 1e-12);
    }

    #[test]
    fn exact_result_dominates_heuristics() {
        let g = barbell();
        for q in 0..6u32 {
            let opt = Exact.search(&g, &[q]).unwrap().density_modularity;
            for algo in [
                &Fpa::default() as &dyn CommunitySearch,
                &Fpa::without_pruning(),
                &Nca::default(),
            ] {
                let h = algo.search(&g, &[q]).unwrap().density_modularity;
                assert!(
                    h <= opt + 1e-9,
                    "{} beat the optimum?! {h} > {opt}",
                    algo.name()
                );
            }
        }
    }

    #[test]
    fn exact_respects_multi_query() {
        let g = barbell();
        let r = Exact.search(&g, &[0, 5]).unwrap();
        assert!(r.community.contains(&0) && r.community.contains(&5));
        let view = dmcs_graph::SubgraphView::from_nodes(&g, &r.community);
        assert!(view.is_connected());
    }

    #[test]
    fn heuristics_are_often_optimal_on_small_graphs() {
        // Measured approximation quality on the ring of cliques: FPA
        // (without pruning) attains the exact optimum from any clique.
        let g = dmcs_gen::ring::ring_of_cliques(4, 5); // 20 nodes
        let opt = Exact.search(&g, &[0]).unwrap();
        let fpa = Fpa::without_pruning().search(&g, &[0]).unwrap();
        assert!((fpa.density_modularity - opt.density_modularity).abs() < 1e-9);
    }

    #[test]
    fn component_cap_enforced() {
        let g = dmcs_gen::ring::ring_of_cliques(5, 6); // 30 nodes, connected
        assert!(Exact.search(&g, &[0]).is_err());
    }

    #[test]
    fn connectivity_mask_helper() {
        // Path 0-1-2 as masks.
        let adj = vec![0b010, 0b101, 0b010];
        assert!(is_connected_mask(0b111, &adj));
        assert!(is_connected_mask(0b011, &adj));
        assert!(!is_connected_mask(0b101, &adj));
    }
}
