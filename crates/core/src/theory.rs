//! Executable forms of the paper's theoretical definitions, used to
//! validate Lemma 1 (free-rider) and Lemma 2 (resolution limit)
//! empirically: whenever density modularity suffers, classic modularity
//! must suffer too — never the reverse.

use crate::measure::{classic_modularity, density_modularity};
use dmcs_graph::{Graph, NodeId, SubgraphView};

/// A community goodness function `f(G, C)`.
pub type Goodness = fn(&Graph, &[NodeId]) -> f64;

/// Definition 3 (free-rider effect): given an identified community `s` and
/// an optimum `s_star`, the goodness function suffers if
/// `f(S ∪ S*) >= f(S)`.
pub fn suffers_free_rider(g: &Graph, f: Goodness, s: &[NodeId], s_star: &[NodeId]) -> bool {
    let mut union: Vec<NodeId> = s.iter().chain(s_star.iter()).copied().collect();
    union.sort_unstable();
    union.dedup();
    f(g, &union) >= f(g, s)
}

/// Definition 4 (resolution limit), specialised to the testable core: for
/// disjoint `h` and `h_prime` whose union induces a connected subgraph,
/// the function suffers if `f(H ∪ H') >= f(H)`.
///
/// Returns `None` when the preconditions fail (overlap, or disconnected
/// union) — such pairs simply do not witness the phenomenon.
pub fn suffers_resolution_limit(
    g: &Graph,
    f: Goodness,
    h: &[NodeId],
    h_prime: &[NodeId],
) -> Option<bool> {
    let hs: std::collections::HashSet<NodeId> = h.iter().copied().collect();
    if h_prime.iter().any(|v| hs.contains(v)) {
        return None; // must be disjoint
    }
    let union: Vec<NodeId> = h.iter().chain(h_prime.iter()).copied().collect();
    let view = SubgraphView::from_nodes(g, &union);
    if !view.is_connected() {
        return None;
    }
    Some(f(g, &union) >= f(g, h))
}

/// Lemma 1 checker for one `(s, s_star)` pair: returns `true` iff the pair
/// is consistent with the lemma — i.e. it is **not** a counterexample
/// where DM suffers from the free-rider effect while CM does not.
///
/// The lemma's proof assumes `CM(S) > 0` and `|S*| > |S ∩ S*|`; pairs that
/// violate the preconditions are vacuously consistent.
pub fn lemma1_holds(g: &Graph, s: &[NodeId], s_star: &[NodeId]) -> bool {
    if classic_modularity(g, s) <= 0.0 {
        return true;
    }
    let ss: std::collections::HashSet<NodeId> = s.iter().copied().collect();
    let intersect = s_star.iter().filter(|v| ss.contains(v)).count();
    if s_star.len() <= intersect {
        return true;
    }
    let dm_suffers = suffers_free_rider(g, density_modularity, s, s_star);
    let cm_suffers = suffers_free_rider(g, classic_modularity, s, s_star);
    // "If DM suffers, CM suffers too" — the lemma as an implication.
    !dm_suffers || cm_suffers
}

/// Lemma 2 checker for one `(h, h')` pair: `true` iff the pair is not a
/// counterexample where DM suffers from the resolution limit while CM does
/// not. Pairs failing Definition 4's preconditions are vacuously
/// consistent.
pub fn lemma2_holds(g: &Graph, h: &[NodeId], h_prime: &[NodeId]) -> bool {
    if classic_modularity(g, h) <= 0.0 {
        return true;
    }
    let (Some(dm_suffers), Some(cm_suffers)) = (
        suffers_resolution_limit(g, density_modularity, h, h_prime),
        suffers_resolution_limit(g, classic_modularity, h, h_prime),
    ) else {
        return true;
    };
    !dm_suffers || cm_suffers
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmcs_gen::{ring, toy};

    #[test]
    fn figure1_witnesses_cm_free_rider() {
        // B free-rides on A under CM but not under DM.
        let g = toy::figure1();
        let a = toy::figure1_community_a();
        let b: Vec<NodeId> = (8..16).collect();
        assert!(suffers_free_rider(&g, classic_modularity, &a, &b));
        assert!(!suffers_free_rider(&g, density_modularity, &a, &b));
        assert!(lemma1_holds(&g, &a, &b));
    }

    #[test]
    fn ring_witnesses_cm_resolution_limit() {
        let g = ring::ring_of_cliques(30, 6);
        let h = ring::split_community(0, 6);
        let h_prime = ring::clique_nodes(1, 6);
        assert_eq!(
            suffers_resolution_limit(&g, classic_modularity, &h, &h_prime),
            Some(true)
        );
        assert_eq!(
            suffers_resolution_limit(&g, density_modularity, &h, &h_prime),
            Some(false)
        );
        assert!(lemma2_holds(&g, &h, &h_prime));
    }

    #[test]
    fn preconditions_are_vacuous() {
        let g = ring::ring_of_cliques(5, 4);
        // Overlapping pair -> None.
        assert_eq!(
            suffers_resolution_limit(&g, classic_modularity, &[0, 1, 2, 3], &[3, 4]),
            None
        );
        // Disconnected union (cliques 0 and 2 are not adjacent) -> None.
        let h = ring::clique_nodes(0, 4);
        let far = ring::clique_nodes(2, 4);
        assert_eq!(
            suffers_resolution_limit(&g, classic_modularity, &h, &far),
            None
        );
    }

    #[test]
    fn lemmas_hold_on_randomized_pairs() {
        // Randomized search for counterexamples on planted partitions.
        use rand::rngs::StdRng;
        use rand::seq::SliceRandom;
        use rand::{Rng, SeedableRng};
        let (g, comms) = dmcs_gen::sbm::planted_partition(&[15, 15, 15], 0.5, 0.05, 17);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            // Random S around community 0, random S* around community 1.
            let mut s = comms[0].clone();
            s.shuffle(&mut rng);
            s.truncate(rng.gen_range(3..12));
            let mut s_star = comms[1].clone();
            s_star.shuffle(&mut rng);
            s_star.truncate(rng.gen_range(3..12));
            assert!(lemma1_holds(&g, &s, &s_star), "Lemma 1 counterexample");
            assert!(lemma2_holds(&g, &s, &s_star), "Lemma 2 counterexample");
        }
    }
}
