//! # dmcs-core — Density-Modularity based Community Search
//!
//! The primary contribution of the DMCS paper (SIGMOD 2022):
//!
//! - [`measure`] — the density modularity `DM` (Definition 2), the classic
//!   Newman modularity `CM` (Definition 1), the generalized modularity
//!   density (Guo et al. 2020, the Fig 12 comparator), the density-
//!   modularity gain `Λ` (Definition 6) and the density ratio `Θ`
//!   (Definition 7).
//! - [`peel`] — shared state for the top-down greedy framework
//!   (Algorithm 1): a [`dmcs_graph::SubgraphView`] plus incrementally
//!   maintained `l_S`, `d_S`, `|S|` and best-snapshot tracking.
//! - [`nca`] — the Non-articulation Cancellation Algorithm (§5.4) and its
//!   `NCA-DR` ablation variant ((a)+(d) in Figure 3).
//! - [`fpa`] — the Fast Peeling Algorithm (§5.5) with the layer-based
//!   pruning strategy (§5.7), multi-query handling via the Steiner seed
//!   (§5.6), and its `FPA-DMG` ablation variant ((b)+(c)).
//! - [`theory`] — executable versions of Definition 3 (free-rider effect)
//!   and Definition 4 (resolution-limit), used to validate Lemmas 1–2
//!   empirically.
//! - [`weighted`] / [`weighted_nca`] — `W-FPA` and `W-NCA`, the two
//!   searchers maximising the *weighted* form of Definition 2. Both
//!   implement [`CommunitySearch`] over any [`dmcs_graph::Graph`]
//!   (graphs without a weights lane fall back to unit weights) and are
//!   registered as `fpa-w` / `nca-w` in the engine's registry, so they
//!   serve through sessions, batches and the result cache.
//!
//! ## Quick start
//!
//! ```
//! use dmcs_core::{CommunitySearch, Fpa};
//! use dmcs_graph::GraphBuilder;
//!
//! // Two triangles joined by one edge; search from node 0.
//! let g = GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)]);
//! let result = Fpa::default().search(&g, &[0]).unwrap();
//! assert!(result.community.contains(&0));
//! ```

#![warn(missing_docs)]

pub mod bnb;
pub mod detect;
pub mod dynamic;
pub mod exact;
pub mod fpa;
pub mod framework;
pub mod measure;
pub mod nca;
pub mod peel;
pub mod theory;
pub mod topk;
pub mod weighted;
pub mod weighted_nca;

pub use bnb::BranchAndBound;
pub use exact::Exact;
pub use fpa::{Fpa, FpaDmg};
pub use nca::{Nca, NcaDr};
pub use weighted::WeightedFpa;
pub use weighted_nca::WeightedNca;

use dmcs_graph::view::QueryWorkspace;
use dmcs_graph::{Graph, GraphError, NodeId};

/// Error type of the search algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchError {
    /// Structural failure from the graph substrate (query out of range,
    /// queries disconnected, ...).
    Graph(GraphError),
    /// The query set is empty.
    EmptyQuery,
    /// The best community found exceeds the caller's size cap (the
    /// `max_community_size` of an engine `QueryRequest`).
    CommunityTooLarge {
        /// Size of the community the search produced.
        size: usize,
        /// The cap the request asked for.
        cap: usize,
    },
}

impl From<GraphError> for SearchError {
    fn from(e: GraphError) -> Self {
        SearchError::Graph(e)
    }
}

impl std::fmt::Display for SearchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchError::Graph(e) => write!(f, "{e}"),
            SearchError::EmptyQuery => write!(f, "query set is empty"),
            SearchError::CommunityTooLarge { size, cap } => {
                write!(f, "community has {size} nodes, exceeding the cap of {cap}")
            }
        }
    }
}

impl std::error::Error for SearchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SearchError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

/// Outcome of a community search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// The community: sorted node ids; connected; contains every query.
    pub community: Vec<NodeId>,
    /// Density modularity of `community` (the objective of DMCS).
    pub density_modularity: f64,
    /// Nodes in the order the algorithm removed them (the Fig 5
    /// removal-order study reads this). Nodes never removed are absent.
    pub removal_order: Vec<NodeId>,
    /// Number of peeling iterations executed.
    pub iterations: usize,
}

/// Common interface of every community-search algorithm in this workspace
/// (the two DMCS algorithms here and all baselines in `dmcs-baselines`).
///
/// `Send + Sync` is a supertrait so evaluation harnesses can fan a shared
/// `&dyn CommunitySearch` out across threads; every implementor is a
/// plain configuration struct, so this costs nothing.
pub trait CommunitySearch: Send + Sync {
    /// Short stable identifier, e.g. `"FPA"`, `"kc"` — matches the paper's
    /// legend labels.
    fn name(&self) -> &'static str;

    /// Find a connected community containing all of `query`.
    fn search(&self, g: &Graph, query: &[NodeId]) -> Result<SearchResult, SearchError>;

    /// [`CommunitySearch::search`] with recyclable per-query buffers.
    ///
    /// Batched engines keep one [`QueryWorkspace`] per worker thread and
    /// call this for every query, so the `O(n)` alive-mask / degree /
    /// distance arrays are allocated once per worker instead of once per
    /// query. **Must return exactly what `search` returns** — the batch
    /// determinism tests enforce this for every registered algorithm.
    /// The default implementation ignores the workspace; the peeling
    /// algorithms (FPA, NCA and variants) override it.
    fn search_with_workspace(
        &self,
        g: &Graph,
        query: &[NodeId],
        ws: &mut QueryWorkspace,
    ) -> Result<SearchResult, SearchError> {
        let _ = ws;
        self.search(g, query)
    }
}

pub(crate) fn validate_query(g: &Graph, query: &[NodeId]) -> Result<(), SearchError> {
    validate_query_nodes(g, query)?;
    if !dmcs_graph::traversal::same_component(g, query) {
        return Err(SearchError::Graph(GraphError::QueryDisconnected));
    }
    Ok(())
}

/// [`validate_query`] over the workspace's pooled visit buffers: same
/// checks, zero allocations once the workspace is warm (see
/// [`dmcs_graph::traversal::same_component_with_workspace`]).
pub(crate) fn validate_query_in(
    g: &Graph,
    query: &[NodeId],
    ws: &mut QueryWorkspace,
) -> Result<(), SearchError> {
    validate_query_nodes(g, query)?;
    if !dmcs_graph::traversal::same_component_with_workspace(g, query, ws) {
        return Err(SearchError::Graph(GraphError::QueryDisconnected));
    }
    Ok(())
}

/// The allocation-free half of [`validate_query`]: empty and bounds
/// checks only. Callers that can prove connectivity another way (e.g.
/// every query node is a member of one memoized connected component)
/// use this to skip the validation BFS.
pub(crate) fn validate_query_nodes(g: &Graph, query: &[NodeId]) -> Result<(), SearchError> {
    if query.is_empty() {
        return Err(SearchError::EmptyQuery);
    }
    for &q in query {
        if q as usize >= g.n() {
            return Err(SearchError::Graph(GraphError::NodeOutOfRange(q)));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmcs_graph::GraphBuilder;

    #[test]
    fn validate_rejects_empty_and_out_of_range() {
        let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(validate_query(&g, &[]), Err(SearchError::EmptyQuery));
        assert!(matches!(
            validate_query(&g, &[7]),
            Err(SearchError::Graph(GraphError::NodeOutOfRange(7)))
        ));
        assert!(validate_query(&g, &[0, 2]).is_ok());
    }

    #[test]
    fn validate_rejects_disconnected_queries() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(
            validate_query(&g, &[0, 3]),
            Err(SearchError::Graph(GraphError::QueryDisconnected))
        );
    }
}
