//! Shared state for the top-down greedy peeling framework (Algorithm 1).
//!
//! Both NCA and FPA repeatedly remove one node and ask "what is the
//! density modularity now?". [`PeelState`] maintains `l_S` (via the view),
//! `d_S` (sum of full-graph degrees of alive nodes) and `|S|`
//! incrementally, tracks the best intermediate subgraph seen so far, and
//! reconstructs it at the end from the removal order — `O(1)` per removal
//! instead of cloning node sets.

use crate::measure::density_modularity_counts;
use dmcs_graph::view::QueryWorkspace;
use dmcs_graph::{Graph, NodeId, SubgraphView};

/// Tie behaviour when a new snapshot equals the best density modularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TieRule {
    /// Keep the earlier (larger) subgraph on ties (`>` update).
    KeepEarlier,
    /// Prefer the later (smaller) subgraph on ties (`>=` update, the rule
    /// in Algorithm 2 line 13).
    PreferLater,
}

/// Incremental peeling state over a query-containing component.
pub struct PeelState<'g> {
    view: SubgraphView<'g>,
    /// Sum of full-graph degrees of alive nodes (`d_S` of the measures).
    d_s: u64,
    /// Total edges of the full graph (`m`).
    m: u64,
    /// Node set at the start (before any removal), sorted.
    initial: Vec<NodeId>,
    /// Removal order.
    removed: Vec<NodeId>,
    /// Best DM seen and the number of removals at which it occurred.
    best_dm: f64,
    best_prefix: usize,
    tie: TieRule,
}

impl<'g> PeelState<'g> {
    /// Start peeling from the induced subgraph on `nodes` (usually the
    /// connected component containing the queries).
    pub fn new(graph: &'g Graph, nodes: &[NodeId], tie: TieRule) -> Self {
        Self::with_view(SubgraphView::from_nodes(graph, nodes), graph, nodes, tie)
    }

    /// [`PeelState::new`] reusing the buffers pooled in `ws` — pair with
    /// [`PeelState::finish_in`] to return them after the query.
    pub fn new_in(
        graph: &'g Graph,
        nodes: &[NodeId],
        tie: TieRule,
        ws: &mut QueryWorkspace,
    ) -> Self {
        Self::with_view(ws.view(graph, nodes), graph, nodes, tie)
    }

    /// [`PeelState::new_in`] for the case where `nodes` is a **closed
    /// component** (every neighbour of a member is a member — exactly
    /// what FPA peels after restricting to the query's connected
    /// component). Builds the view in `O(|nodes|)` via
    /// [`QueryWorkspace::view_component`] instead of scanning every
    /// incident edge.
    pub fn new_in_component(
        graph: &'g Graph,
        nodes: &[NodeId],
        tie: TieRule,
        ws: &mut QueryWorkspace,
    ) -> Self {
        Self::with_view(ws.view_component(graph, nodes), graph, nodes, tie)
    }

    fn with_view(view: SubgraphView<'g>, graph: &'g Graph, nodes: &[NodeId], tie: TieRule) -> Self {
        let d_s = graph.degree_sum(nodes);
        let m = graph.m() as u64;
        let mut initial = nodes.to_vec();
        initial.sort_unstable();
        let best_dm = density_modularity_counts(view.m_alive(), d_s, view.n_alive(), m);
        PeelState {
            view,
            d_s,
            m,
            initial,
            removed: Vec::new(),
            best_dm,
            best_prefix: 0,
            tie,
        }
    }

    /// The underlying view (read access for the algorithms).
    pub fn view(&self) -> &SubgraphView<'g> {
        &self.view
    }

    /// `d_S`: sum of full-graph degrees of alive nodes.
    #[inline]
    pub fn d_s(&self) -> u64 {
        self.d_s
    }

    /// `m`: edge count of the whole graph.
    #[inline]
    pub fn m(&self) -> u64 {
        self.m
    }

    /// `l_S`: edges alive in the current subgraph.
    #[inline]
    pub fn l_s(&self) -> u64 {
        self.view.m_alive()
    }

    /// `|S|`: alive node count.
    #[inline]
    pub fn size(&self) -> usize {
        self.view.n_alive()
    }

    /// Density modularity of the current subgraph.
    #[inline]
    pub fn current_dm(&self) -> f64 {
        density_modularity_counts(self.l_s(), self.d_s, self.size(), self.m)
    }

    /// Best density modularity seen so far (including the initial state).
    #[inline]
    pub fn best_dm(&self) -> f64 {
        self.best_dm
    }

    /// Remove `v`, update the incremental state and the best snapshot.
    /// Returns the new current DM.
    pub fn remove(&mut self, v: NodeId) -> f64 {
        debug_assert!(self.view.contains(v));
        self.view.remove(v);
        self.d_s -= self.view.graph().degree(v) as u64;
        self.removed.push(v);
        let dm = self.current_dm();
        let better = match self.tie {
            TieRule::KeepEarlier => dm > self.best_dm,
            TieRule::PreferLater => dm >= self.best_dm,
        };
        if better && self.size() > 0 {
            self.best_dm = dm;
            self.best_prefix = self.removed.len();
        }
        dm
    }

    /// Remove `v` *without* entering the snapshot competition — used by
    /// the layer-based pruning strategy (§5.7), which only evaluates whole
    /// layer prefixes during its bulk phase. Pair with
    /// [`PeelState::consider_snapshot`] at the states that do compete.
    pub fn remove_untracked(&mut self, v: NodeId) {
        debug_assert!(self.view.contains(v));
        self.view.remove(v);
        self.d_s -= self.view.graph().degree(v) as u64;
        self.removed.push(v);
    }

    /// Offer the current subgraph as a snapshot candidate under the tie
    /// rule. Returns the current DM.
    pub fn consider_snapshot(&mut self) -> f64 {
        let dm = self.current_dm();
        let better = match self.tie {
            TieRule::KeepEarlier => dm > self.best_dm,
            TieRule::PreferLater => dm >= self.best_dm,
        };
        if better && self.size() > 0 {
            self.best_dm = dm;
            self.best_prefix = self.removed.len();
        }
        dm
    }

    /// Number of removals so far.
    pub fn removals(&self) -> usize {
        self.removed.len()
    }

    /// Finish: reconstruct the best snapshot (initial set minus the first
    /// `best_prefix` removals) and return `(community, best_dm,
    /// removal_order)`.
    pub fn finish(self) -> (Vec<NodeId>, f64, Vec<NodeId>) {
        let community = subtract_sorted(&self.initial, &self.removed[..self.best_prefix]);
        (community, self.best_dm, self.removed)
    }

    /// [`PeelState::finish`] that also recycles the view's buffers into
    /// `ws` for the next query. Identical return value.
    pub fn finish_in(self, ws: &mut QueryWorkspace) -> (Vec<NodeId>, f64, Vec<NodeId>) {
        let PeelState {
            view,
            initial,
            removed,
            best_dm,
            best_prefix,
            ..
        } = self;
        ws.recycle(view, &initial);
        let community = subtract_sorted(&initial, &removed[..best_prefix]);
        (community, best_dm, removed)
    }
}

/// `initial \ dead` preserving `initial`'s (sorted) order. Sorting a
/// scratch copy of `dead` and merge-subtracting beats hashed membership
/// on every peel finish — this runs once per query, over the whole
/// component.
fn subtract_sorted(initial: &[NodeId], dead: &[NodeId]) -> Vec<NodeId> {
    let mut dead: Vec<NodeId> = dead.to_vec();
    dead.sort_unstable();
    let mut di = 0usize;
    initial
        .iter()
        .copied()
        .filter(|&v| {
            while di < dead.len() && dead[di] < v {
                di += 1;
            }
            di >= dead.len() || dead[di] != v
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::density_modularity;
    use dmcs_graph::GraphBuilder;

    /// Two triangles joined by a bridge 2-3; peeling away the right
    /// triangle improves DM of the left one.
    fn barbell() -> dmcs_graph::Graph {
        GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
    }

    #[test]
    fn incremental_dm_matches_recomputation() {
        let g = barbell();
        let nodes: Vec<NodeId> = g.nodes().collect();
        let mut st = PeelState::new(&g, &nodes, TieRule::PreferLater);
        let order = [5, 4, 3, 0];
        let mut alive: Vec<NodeId> = nodes.clone();
        for &v in &order {
            let dm = st.remove(v);
            alive.retain(|&u| u != v);
            let expect = density_modularity(&g, &alive);
            assert!(
                (dm - expect).abs() < 1e-12,
                "incremental {dm} vs recomputed {expect} after removing {v}"
            );
        }
    }

    #[test]
    fn best_snapshot_reconstructed() {
        let g = barbell();
        let nodes: Vec<NodeId> = g.nodes().collect();
        let mut st = PeelState::new(&g, &nodes, TieRule::PreferLater);
        // Peel the right triangle then one left node; best should be the
        // left triangle {0,1,2}.
        for v in [5, 4, 3, 1] {
            st.remove(v);
        }
        let (community, best, order) = st.finish();
        assert_eq!(community, vec![0, 1, 2]);
        let expect = density_modularity(&g, &[0, 1, 2]);
        assert!((best - expect).abs() < 1e-12);
        assert_eq!(order, vec![5, 4, 3, 1]);
    }

    #[test]
    fn initial_state_counts_as_snapshot() {
        // If every removal makes things worse, the initial set wins.
        let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let nodes: Vec<NodeId> = g.nodes().collect();
        let mut st = PeelState::new(&g, &nodes, TieRule::KeepEarlier);
        st.remove(2);
        let (community, best, _) = st.finish();
        assert_eq!(community, vec![0, 1, 2]);
        assert!((best - density_modularity(&g, &[0, 1, 2])).abs() < 1e-12);
    }

    #[test]
    fn tie_rules_differ() {
        // Construct a case with an exact DM tie: a 4-cycle — removing one
        // node of a path… easier: two disjoint edges inside the component?
        // Use equality via symmetric structure: on a 4-cycle, DM after
        // removing any one node is identical whichever node goes; force a
        // tie between prefix 0 and prefix 0 is trivial. Instead verify the
        // rules on an explicit equal-DM sequence: a 6-cycle where DM(all)
        // happens to equal DM(after two removals) is fiddly — assert the
        // mechanism directly.
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let nodes: Vec<NodeId> = g.nodes().collect();
        let mut a = PeelState::new(&g, &nodes, TieRule::PreferLater);
        let before = a.best_dm();
        // Removing from a 4-cycle strictly lowers DM, so best stays put.
        a.remove(3);
        assert_eq!(a.best_dm(), before);
        let (community, _, _) = a.finish();
        assert_eq!(community.len(), 4);
    }
}
