//! Non-articulation Cancellation Algorithm (NCA, §5.4) and its ablation
//! variant NCA-DR (§6.2.5).
//!
//! Per iteration: compute all articulation nodes of the current subgraph
//! (Hopcroft–Tarjan, `O(|V|+|E|)`); among alive non-query non-articulation
//! nodes pick the one maximising the score — the density-modularity gain
//! `Λ` for NCA, the density ratio `Θ` for NCA-DR. On score ties the paper
//! "keeps the node that is closely located to the query nodes", i.e. the
//! *removed* node is the tied candidate farthest from the queries. Total
//! complexity `O(|V|(|V|+|E|))` — the articulation recomputation is the
//! bottleneck FPA exists to avoid.

use crate::measure::{density_ratio, dm_gain};
use crate::peel::{PeelState, TieRule};
use crate::{validate_query_in, CommunitySearch, SearchError, SearchResult};
use dmcs_graph::articulation::articulation_nodes;
use dmcs_graph::traversal::multi_source_bfs_collect;
use dmcs_graph::view::QueryWorkspace;
use dmcs_graph::{Graph, NodeId};

/// Scoring rule for choosing the best removable node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Score {
    /// Density-modularity gain `Λ` (Definition 6) — the NCA rule (c).
    Gain,
    /// Density ratio `Θ` (Definition 7) — rule (d), giving NCA-DR.
    Ratio,
}

/// The Non-articulation Cancellation Algorithm: removable nodes via
/// articulation tests, best node via the density-modularity gain.
#[derive(Debug, Clone, Copy, Default)]
pub struct Nca {
    /// Optional hard cap on peeling iterations (a safety valve for very
    /// large inputs; `None` = peel to the end as the paper does).
    pub max_iterations: Option<usize>,
}

/// NCA-DR: NCA's removable-node rule with FPA's density-ratio scorer
/// ((a)+(d) in Figure 3) — faster to score, same articulation bottleneck.
#[derive(Debug, Clone, Copy, Default)]
pub struct NcaDr {
    /// See [`Nca::max_iterations`].
    pub max_iterations: Option<usize>,
}

impl CommunitySearch for Nca {
    fn name(&self) -> &'static str {
        "NCA"
    }

    fn search(&self, g: &Graph, query: &[NodeId]) -> Result<SearchResult, SearchError> {
        run_nca(
            g,
            query,
            Score::Gain,
            self.max_iterations,
            &mut QueryWorkspace::new(),
        )
    }

    fn search_with_workspace(
        &self,
        g: &Graph,
        query: &[NodeId],
        ws: &mut QueryWorkspace,
    ) -> Result<SearchResult, SearchError> {
        run_nca(g, query, Score::Gain, self.max_iterations, ws)
    }
}

impl CommunitySearch for NcaDr {
    fn name(&self) -> &'static str {
        "NCA-DR"
    }

    fn search(&self, g: &Graph, query: &[NodeId]) -> Result<SearchResult, SearchError> {
        run_nca(
            g,
            query,
            Score::Ratio,
            self.max_iterations,
            &mut QueryWorkspace::new(),
        )
    }

    fn search_with_workspace(
        &self,
        g: &Graph,
        query: &[NodeId],
        ws: &mut QueryWorkspace,
    ) -> Result<SearchResult, SearchError> {
        run_nca(g, query, Score::Ratio, self.max_iterations, ws)
    }
}

fn run_nca(
    g: &Graph,
    query: &[NodeId],
    score: Score,
    max_iterations: Option<usize>,
    ws: &mut QueryWorkspace,
) -> Result<SearchResult, SearchError> {
    validate_query_in(g, query, ws)?;
    // One BFS from the query set yields everything the loop needs: the
    // connected component containing the queries (the reached set), the
    // tie-break distances ("keep the node that is closely located to the
    // query nodes" = remove the farthest of the tied candidates), and the
    // query marks themselves (`dist == 0` exactly on query nodes).
    let mut dist = ws.take_dist(g.n());
    let comp = multi_source_bfs_collect(g, query, &mut dist);
    // Canonical ordering for full-tie resolution: on the identity layout
    // the ascending `iter_alive` scan with strict `better` already keeps
    // the smallest id, so the extra clause is inert there; on a mirror it
    // restores exactly that canonical winner.
    let canon = ws.canon().clone();

    let mut st = PeelState::new_in(g, &comp, TieRule::KeepEarlier, ws);
    let cap = max_iterations.unwrap_or(usize::MAX);
    let mut iterations = 0usize;
    while iterations < cap {
        let art = articulation_nodes(st.view());
        let mut best: Option<(NodeId, i128, f64, u32)> = None;
        for v in st.view().iter_alive() {
            if dist[v as usize] == 0 || art[v as usize] {
                continue;
            }
            let k_vs = st.view().local_degree(v) as u64;
            let d_v = g.degree(v) as u64;
            let (gain, ratio) = match score {
                Score::Gain => (dm_gain(st.m(), k_vs, st.d_s(), d_v), 0.0),
                Score::Ratio => (0, density_ratio(d_v, k_vs)),
            };
            let d = dist[v as usize];
            let better = match (&best, score) {
                (None, _) => true,
                (Some((bv, bg, _, bd)), Score::Gain) => {
                    gain > *bg
                        || (gain == *bg && d > *bd)
                        || (gain == *bg
                            && d == *bd
                            && canon.to_external(v) < canon.to_external(*bv))
                }
                (Some((bv, _, br, bd)), Score::Ratio) => {
                    ratio > *br
                        || (ratio == *br && d > *bd)
                        || (ratio == *br
                            && d == *bd
                            && canon.to_external(v) < canon.to_external(*bv))
                }
            };
            if better {
                best = Some((v, gain, ratio, d));
            }
        }
        let Some((v, _, _, _)) = best else {
            break; // no removable node left
        };
        // Never peel below the query set itself.
        if st.size() <= query.len() {
            break;
        }
        st.remove(v);
        iterations += 1;
    }
    let (community, dm, removal_order) = st.finish_in(ws);
    ws.put_dist(dist, &comp);
    Ok(SearchResult {
        community,
        density_modularity: dm,
        removal_order,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::density_modularity;
    use dmcs_graph::GraphBuilder;

    /// Two triangles joined by a bridge 2-3.
    fn barbell() -> Graph {
        GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
    }

    #[test]
    fn finds_query_triangle_in_barbell() {
        let g = barbell();
        let r = Nca::default().search(&g, &[0]).unwrap();
        assert_eq!(r.community, vec![0, 1, 2]);
        assert!((r.density_modularity - density_modularity(&g, &[0, 1, 2])).abs() < 1e-12);
    }

    #[test]
    fn result_always_contains_queries_and_is_connected() {
        let g = barbell();
        for q in 0..6u32 {
            let r = Nca::default().search(&g, &[q]).unwrap();
            assert!(r.community.contains(&q), "query {q} missing");
            let view = dmcs_graph::SubgraphView::from_nodes(&g, &r.community);
            assert!(view.is_connected(), "community for {q} disconnected");
        }
    }

    #[test]
    fn multi_query_protects_both() {
        let g = barbell();
        let r = Nca::default().search(&g, &[0, 5]).unwrap();
        assert!(r.community.contains(&0));
        assert!(r.community.contains(&5));
        let view = dmcs_graph::SubgraphView::from_nodes(&g, &r.community);
        assert!(view.is_connected());
    }

    #[test]
    fn nca_dr_also_finds_triangle() {
        let g = barbell();
        let r = NcaDr::default().search(&g, &[4]).unwrap();
        assert_eq!(r.community, vec![3, 4, 5]);
    }

    #[test]
    fn ignores_other_components() {
        // Barbell plus a far-away clique in another component.
        let mut b = GraphBuilder::new(10);
        for &(u, v) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)] {
            b.add_edge(u, v);
        }
        for &(u, v) in &[(6, 7), (7, 8), (6, 8), (8, 9)] {
            b.add_edge(u, v);
        }
        let g = b.build();
        let r = Nca::default().search(&g, &[0]).unwrap();
        assert!(r.community.iter().all(|&v| v < 6));
    }

    #[test]
    fn workspace_reuse_is_bit_identical() {
        let g = barbell();
        let mut ws = QueryWorkspace::new();
        for q in 0..6u32 {
            let fresh = Nca::default().search(&g, &[q]).unwrap();
            let reused = Nca::default()
                .search_with_workspace(&g, &[q], &mut ws)
                .unwrap();
            assert_eq!(fresh, reused, "NCA query {q}");
            let fresh = NcaDr::default().search(&g, &[q]).unwrap();
            let reused = NcaDr::default()
                .search_with_workspace(&g, &[q], &mut ws)
                .unwrap();
            assert_eq!(fresh, reused, "NCA-DR query {q}");
        }
    }

    #[test]
    fn errors_propagate() {
        let g = barbell();
        assert!(Nca::default().search(&g, &[]).is_err());
        assert!(Nca::default().search(&g, &[99]).is_err());
    }

    #[test]
    fn iteration_cap_respected() {
        let g = barbell();
        let r = Nca {
            max_iterations: Some(1),
        }
        .search(&g, &[0])
        .unwrap();
        assert!(r.iterations <= 1);
    }

    #[test]
    fn removal_order_covers_component_with_community() {
        // Every component node is either in the final community or was
        // removed at some point (possibly both, when the best snapshot
        // predates later removals).
        let g = barbell();
        let r = Nca::default().search(&g, &[0]).unwrap();
        let comp = dmcs_graph::traversal::component_of(&g, 0);
        for &v in &comp {
            assert!(
                r.community.contains(&v) || r.removal_order.contains(&v),
                "node {v} unaccounted for"
            );
        }
    }
}
