//! Exact DMCS by branch-and-bound — scales past the bitmask enumerator.
//!
//! [`crate::Exact`] enumerates all `2^k` node subsets and is hard-capped at
//! 26-node components. This solver enumerates only the *connected* subsets
//! containing the queries (each exactly once, via the classic
//! include/forbid expansion over a growing frontier) and prunes subtrees
//! whose best attainable density modularity cannot beat the incumbent. The
//! incumbent is seeded with FPA's heuristic answer, so on community-like
//! inputs large parts of the tree are cut immediately. In practice this
//! solves sparse components of 40–60 nodes where the bitmask sweep is
//! hopeless, which widens the graphs on which the `approx` experiment can
//! report true optimality gaps.
//!
//! ## The bound
//!
//! For the current connected set `S` (internal edges `l_S`, degree sum
//! `d_S`) let `A` be `S` plus everything still reachable from `S` through
//! non-forbidden nodes, and let `U` be the number of edges inside `A`. Any
//! completion `C` satisfies `S ⊆ C ⊆ A`, so with `t = |C| − |S|` added
//! nodes:
//!
//! - `l_C ≤ min(U, l_S + top_t)` where `top_t` is the sum of the `t`
//!   largest within-`A` degrees among `A \ S` (every added internal edge
//!   has an added endpoint, so it is counted at least once in that sum);
//! - `d_C ≥ d_S + req + bot_t'` where `req` is the degree sum of the
//!   queries still missing from `S` (they *must* be added) and `bot_t'`
//!   the `t' = t − #missing` smallest original degrees of the remaining
//!   candidates.
//!
//! Maximising `(l_C − d_C²/(4m)) / (|S|+t)` over `t` with those two
//! monotone prefix arrays gives an admissible upper bound in
//! `O(|A| log |A|)` per tree node.

use crate::measure::density_modularity_counts;
use crate::{validate_query, CommunitySearch, Fpa, SearchError, SearchResult};
use dmcs_graph::traversal::component_of;
use dmcs_graph::{Graph, GraphError, NodeId};

/// Exact DMCS via branch-and-bound over connected subsets.
///
/// ```
/// use dmcs_core::{BranchAndBound, CommunitySearch, Fpa};
/// use dmcs_graph::GraphBuilder;
///
/// // Two triangles joined by a bridge; the optimum from node 0 is its
/// // own triangle, and FPA happens to find it — now certified.
/// let g = GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]);
/// let opt = BranchAndBound::default().search(&g, &[0]).unwrap();
/// assert_eq!(opt.community, vec![0, 1, 2]);
/// let h = Fpa::default().search(&g, &[0]).unwrap();
/// assert!((h.density_modularity - opt.density_modularity).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BranchAndBound {
    /// Hard cap on the component size accepted (default 64). The solver is
    /// still exponential in the worst case; the cap keeps misuse from
    /// hanging a test run.
    pub max_nodes: usize,
    /// Budget on branch-tree nodes expanded (default 50 million). When
    /// exhausted the solver aborts with
    /// [`GraphError::NoFeasibleSolution`] rather than silently returning a
    /// non-optimal answer.
    pub node_budget: u64,
}

impl Default for BranchAndBound {
    fn default() -> Self {
        BranchAndBound {
            max_nodes: 64,
            node_budget: 50_000_000,
        }
    }
}

impl CommunitySearch for BranchAndBound {
    fn name(&self) -> &'static str {
        "exact-bnb"
    }

    fn search(&self, g: &Graph, query: &[NodeId]) -> Result<SearchResult, SearchError> {
        validate_query(g, query)?;
        let comp = component_of(g, query[0]);
        if comp.len() > self.max_nodes {
            return Err(SearchError::Graph(GraphError::NoFeasibleSolution(
                "component exceeds the branch-and-bound node cap",
            )));
        }

        // Seed the incumbent with the FPA heuristic (never worse than no
        // incumbent; usually close to the optimum).
        let mut best_dm = f64::NEG_INFINITY;
        let mut best: Vec<NodeId> = Vec::new();
        if let Ok(h) = Fpa::default().search(g, query) {
            best_dm = h.density_modularity;
            best = h.community;
        }

        let mut solver = Solver::new(g, &comp, query, best_dm, best, self.node_budget);
        solver.seed_and_run()?;

        let mut community = solver.best;
        community.sort_unstable();
        Ok(SearchResult {
            community,
            density_modularity: solver.best_dm,
            removal_order: Vec::new(),
            iterations: solver.expanded as usize,
        })
    }
}

struct Solver<'g> {
    g: &'g Graph,
    /// Nodes of the query's component (the search universe).
    in_comp: Vec<bool>,
    query: Vec<NodeId>,
    /// Current connected set, as a stack plus membership flags.
    s: Vec<NodeId>,
    in_s: Vec<bool>,
    /// Nodes excluded for the rest of the current subtree.
    forbidden: Vec<bool>,
    /// Frontier-membership flags (candidates already queued for expansion).
    in_cand: Vec<bool>,
    /// Incremental counts for the current set.
    l_s: u64,
    d_s: u64,
    m: u64,
    missing_queries: usize,
    is_query: Vec<bool>,
    best_dm: f64,
    best: Vec<NodeId>,
    expanded: u64,
    budget: u64,
    /// Scratch buffers reused across bound computations.
    scratch_reach: Vec<NodeId>,
    scratch_seen: Vec<bool>,
}

impl<'g> Solver<'g> {
    fn new(
        g: &'g Graph,
        comp: &[NodeId],
        query: &[NodeId],
        best_dm: f64,
        best: Vec<NodeId>,
        budget: u64,
    ) -> Self {
        let n = g.n();
        let mut in_comp = vec![false; n];
        for &v in comp {
            in_comp[v as usize] = true;
        }
        let mut is_query = vec![false; n];
        for &q in query {
            is_query[q as usize] = true;
        }
        Solver {
            g,
            in_comp,
            query: query.to_vec(),
            s: Vec::new(),
            in_s: vec![false; n],
            forbidden: vec![false; n],
            in_cand: vec![false; n],
            l_s: 0,
            d_s: 0,
            m: g.m() as u64,
            missing_queries: query.len(),
            is_query,
            best_dm,
            best,
            expanded: 0,
            budget,
            scratch_reach: Vec::new(),
            scratch_seen: vec![false; n],
        }
    }

    fn seed_and_run(&mut self) -> Result<(), SearchError> {
        // Root: S = {q0}; the frontier is q0's neighbourhood.
        let q0 = self.query[0];
        self.include(q0);
        let ext: Vec<NodeId> = self
            .g
            .neighbors(q0)
            .iter()
            .copied()
            .filter(|&w| self.in_comp[w as usize] && !self.in_s[w as usize])
            .collect();
        for &w in &ext {
            self.in_cand[w as usize] = true;
        }
        let out = self.recurse(&ext);
        for &w in &ext {
            self.in_cand[w as usize] = false;
        }
        self.exclude(q0);
        out
    }

    fn include(&mut self, v: NodeId) {
        let k_vs = self
            .g
            .neighbors(v)
            .iter()
            .filter(|&&w| self.in_s[w as usize])
            .count() as u64;
        self.l_s += k_vs;
        self.d_s += self.g.degree(v) as u64;
        self.in_s[v as usize] = true;
        self.s.push(v);
        if self.is_query[v as usize] {
            self.missing_queries -= 1;
        }
    }

    fn exclude(&mut self, v: NodeId) {
        debug_assert_eq!(self.s.last(), Some(&v));
        self.s.pop();
        self.in_s[v as usize] = false;
        if self.is_query[v as usize] {
            self.missing_queries += 1;
        }
        let k_vs = self
            .g
            .neighbors(v)
            .iter()
            .filter(|&&w| self.in_s[w as usize])
            .count() as u64;
        self.l_s -= k_vs;
        self.d_s -= self.g.degree(v) as u64;
    }

    fn recurse(&mut self, ext: &[NodeId]) -> Result<(), SearchError> {
        self.expanded += 1;
        if self.expanded > self.budget {
            return Err(SearchError::Graph(GraphError::NoFeasibleSolution(
                "branch-and-bound node budget exhausted",
            )));
        }
        // Feasible leaf value: S itself, when it already holds every query.
        if self.missing_queries == 0 {
            let dm = density_modularity_counts(self.l_s, self.d_s, self.s.len(), self.m);
            if dm > self.best_dm {
                self.best_dm = dm;
                self.best = self.s.clone();
            }
        }
        if !self.bound_beats_incumbent() {
            return Ok(());
        }

        let mut newly_forbidden: Vec<NodeId> = Vec::with_capacity(ext.len());
        let mut result = Ok(());
        for (i, &v) in ext.iter().enumerate() {
            // Branch 1: include v. The frontier keeps the not-yet-tried
            // candidates and gains v's fresh neighbours.
            self.include(v);
            let mut next: Vec<NodeId> = ext[i + 1..].to_vec();
            let mut added: Vec<NodeId> = Vec::new();
            for &w in self.g.neighbors(v) {
                let wi = w as usize;
                if self.in_comp[wi] && !self.in_s[wi] && !self.forbidden[wi] && !self.in_cand[wi] {
                    self.in_cand[wi] = true;
                    added.push(w);
                    next.push(w);
                }
            }
            result = self.recurse(&next);
            for &w in &added {
                self.in_cand[w as usize] = false;
            }
            self.exclude(v);
            if result.is_err() {
                break;
            }
            // Branch 2 (implicit): v is forbidden for the remaining
            // candidates of this level.
            self.forbidden[v as usize] = true;
            newly_forbidden.push(v);
        }
        for &v in &newly_forbidden {
            self.forbidden[v as usize] = false;
        }
        result
    }

    /// Admissible upper bound on the DM of any connected completion of the
    /// current `S`; returns `false` when the subtree cannot beat the
    /// incumbent (or cannot reach a missing query at all).
    fn bound_beats_incumbent(&mut self) -> bool {
        // Reachable closure A of S through non-forbidden nodes.
        self.scratch_reach.clear();
        for &v in &self.s {
            self.scratch_seen[v as usize] = true;
            self.scratch_reach.push(v);
        }
        let mut head = 0;
        while head < self.scratch_reach.len() {
            let v = self.scratch_reach[head];
            head += 1;
            for &w in self.g.neighbors(v) {
                let wi = w as usize;
                if self.in_comp[wi] && !self.scratch_seen[wi] && !self.forbidden[wi] {
                    self.scratch_seen[wi] = true;
                    self.scratch_reach.push(w);
                }
            }
        }

        // Infeasible: some query can no longer be connected to S.
        let feasible = self.query.iter().all(|&q| self.scratch_seen[q as usize]);

        let mut ok = false;
        if feasible {
            // U: edges inside A; candidate degree lists.
            let mut u_edges = 0u64;
            let mut cand_deg_a: Vec<u64> = Vec::new(); // within-A degree, for the edge bound
            let mut cand_deg_g: Vec<u64> = Vec::new(); // original degree, for the d_C bound
            let mut required_deg = 0u64; // original degrees of missing queries
            for &v in &self.scratch_reach {
                let deg_a = self
                    .g
                    .neighbors(v)
                    .iter()
                    .filter(|&&w| self.scratch_seen[w as usize])
                    .count() as u64;
                u_edges += deg_a;
                if !self.in_s[v as usize] {
                    if self.is_query[v as usize] {
                        required_deg += self.g.degree(v) as u64;
                    } else {
                        cand_deg_a.push(deg_a);
                        cand_deg_g.push(self.g.degree(v) as u64);
                    }
                }
            }
            u_edges /= 2;
            // Missing queries also contribute to the optimistic edge bound.
            for &q in &self.query {
                if !self.in_s[q as usize] {
                    let deg_a = self
                        .g
                        .neighbors(q)
                        .iter()
                        .filter(|&&w| self.scratch_seen[w as usize])
                        .count() as u64;
                    cand_deg_a.push(deg_a);
                }
            }
            cand_deg_a.sort_unstable_by(|a, b| b.cmp(a)); // descending: optimistic edges
            cand_deg_g.sort_unstable(); // ascending: optimistic (small) degrees
            let n_missing = self.missing_queries;

            // Sweep t = number of added nodes, t >= n_missing.
            let mut add_edges = 0u64;
            let mut add_deg = required_deg;
            let mut bound = f64::NEG_INFINITY;
            let max_t = cand_deg_a.len();
            for t in n_missing..=max_t {
                if t > n_missing {
                    // t-th added node: best-case edges from the t-th largest
                    // within-A degree, best-case degree from the
                    // (t-n_missing)-th smallest candidate degree.
                    add_edges += cand_deg_a[t - 1];
                    add_deg += cand_deg_g[t - 1 - n_missing];
                } else {
                    // The mandatory query additions still bring their edges.
                    add_edges = cand_deg_a.iter().take(n_missing).sum();
                }
                let l_max = (self.l_s + add_edges).min(u_edges);
                let dm =
                    density_modularity_counts(l_max, self.d_s + add_deg, self.s.len() + t, self.m);
                if dm > bound {
                    bound = dm;
                }
            }
            ok = bound > self.best_dm + 1e-12;
        }

        for &v in &self.scratch_reach {
            self.scratch_seen[v as usize] = false;
        }
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Exact;
    use dmcs_gen::random::erdos_renyi;
    use dmcs_graph::GraphBuilder;

    fn barbell() -> Graph {
        GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
    }

    #[test]
    fn finds_the_triangle() {
        let g = barbell();
        let r = BranchAndBound::default().search(&g, &[0]).unwrap();
        assert_eq!(r.community, vec![0, 1, 2]);
    }

    #[test]
    fn agrees_with_bitmask_enumeration_on_random_graphs() {
        for seed in 0..25u64 {
            let g = erdos_renyi(14, 0.25, seed);
            for q in [0u32, 7] {
                let (Ok(a), Ok(b)) = (
                    Exact.search(&g, &[q]),
                    BranchAndBound::default().search(&g, &[q]),
                ) else {
                    continue;
                };
                assert!(
                    (a.density_modularity - b.density_modularity).abs() < 1e-9,
                    "seed {seed} q {q}: bitmask {} vs bnb {}",
                    a.density_modularity,
                    b.density_modularity
                );
            }
        }
    }

    #[test]
    fn agrees_with_bitmask_on_multi_query() {
        for seed in 0..12u64 {
            let g = erdos_renyi(12, 0.3, seed);
            let query = [0u32, 5, 9];
            let (Ok(a), Ok(b)) = (
                Exact.search(&g, &query),
                BranchAndBound::default().search(&g, &query),
            ) else {
                continue;
            };
            assert!((a.density_modularity - b.density_modularity).abs() < 1e-9);
            for q in query {
                assert!(b.community.contains(&q));
            }
        }
    }

    #[test]
    fn handles_components_beyond_the_bitmask_cap() {
        // 5 cliques of 6 = 30 nodes: over Exact's 26-node cap.
        let g = dmcs_gen::ring::ring_of_cliques(5, 6);
        assert!(Exact.search(&g, &[0]).is_err());
        let r = BranchAndBound::default().search(&g, &[0]).unwrap();
        // The optimum on the ring is the query's own clique (Example 3).
        assert_eq!(r.community.len(), 6);
        let view = dmcs_graph::SubgraphView::from_nodes(&g, &r.community);
        assert!(view.is_connected());
    }

    #[test]
    fn dominates_heuristics() {
        for seed in 0..8u64 {
            let g = erdos_renyi(20, 0.2, seed);
            let Ok(opt) = BranchAndBound::default().search(&g, &[0]) else {
                continue;
            };
            let h = Fpa::default().search(&g, &[0]).unwrap();
            assert!(h.density_modularity <= opt.density_modularity + 1e-9);
        }
    }

    #[test]
    fn node_cap_and_budget_are_enforced() {
        let g = dmcs_gen::ring::ring_of_cliques(12, 6); // 72 nodes
        assert!(BranchAndBound::default().search(&g, &[0]).is_err());
        let tiny_budget = BranchAndBound {
            max_nodes: 64,
            node_budget: 3,
        };
        let g2 = erdos_renyi(20, 0.3, 1);
        assert!(tiny_budget.search(&g2, &[0]).is_err());
    }

    #[test]
    fn result_is_connected_and_contains_queries() {
        for seed in 0..6u64 {
            let g = erdos_renyi(18, 0.2, seed);
            let Ok(r) = BranchAndBound::default().search(&g, &[0, 3]) else {
                continue;
            };
            assert!(r.community.contains(&0) && r.community.contains(&3));
            let view = dmcs_graph::SubgraphView::from_nodes(&g, &r.community);
            assert!(view.is_connected());
        }
    }
}
