//! Fast Peeling Algorithm (FPA, §5.5 / Algorithm 2), the layer-based
//! pruning strategy (§5.7), multi-query handling (§5.6), and the FPA-DMG
//! ablation variant (§6.2.5).
//!
//! Removable nodes: the farthest BFS layer from the query seed — always
//! safe to remove, because every node at distance `d` keeps a BFS parent
//! at distance `d − 1` (§5.2.2). Best node within the layer: maximum
//! density ratio `Θ_v = d_v / k_{v,S}` (Definition 7). Θ is *stable*
//! (Lemma 5): removing `u` only changes Θ of `u`'s neighbours, so a lazy
//! max-heap per layer gives `O((|E|+|V|) log |V|)` total.
//!
//! With multiple query nodes the algorithm first materialises a Steiner
//! seed (shortest-path union) and protects it throughout, exactly as §5.6
//! prescribes.

use crate::measure::{density_ratio, dm_gain};
use crate::peel::{PeelState, TieRule};
use crate::{validate_query_nodes, CommunitySearch, SearchError, SearchResult};
use dmcs_graph::layout::NodeMap;
use dmcs_graph::steiner::steiner_seed_with_workspace;
use dmcs_graph::traversal::{
    multi_source_bfs_collect, multi_source_bfs_preset, same_component_with_workspace, UNREACHABLE,
};
use dmcs_graph::view::QueryWorkspace;
use dmcs_graph::{Graph, GraphError, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// The Fast Peeling Algorithm.
#[derive(Debug, Clone, Copy)]
pub struct Fpa {
    /// Apply the layer-based pruning strategy of §5.7 (the paper's default
    /// FPA; Fig 13 measures the difference). When enabled, whole outer
    /// layers are bulk-removed first, the best layer prefix is selected,
    /// and node-level peeling runs only on the outermost layer of the
    /// selected subgraph.
    pub layer_pruning: bool,
}

impl Default for Fpa {
    fn default() -> Self {
        Fpa {
            layer_pruning: true,
        }
    }
}

impl Fpa {
    /// FPA without the layer-pruning strategy (the "FPA without
    /// layer-based pruning approach" arm of Fig 13).
    pub fn without_pruning() -> Self {
        Fpa {
            layer_pruning: false,
        }
    }
}

/// FPA-DMG: FPA's distance-layer removable rule scored by the *unstable*
/// density-modularity gain Λ ((b)+(c) in Figure 3). Because Λ of every
/// candidate changes whenever `d_S` changes, each removal rescans the
/// whole layer — the paper measures it ~150× slower than FPA at equal
/// accuracy (Fig 14).
#[derive(Debug, Clone, Copy, Default)]
pub struct FpaDmg;

impl CommunitySearch for Fpa {
    fn name(&self) -> &'static str {
        "FPA"
    }

    fn search(&self, g: &Graph, query: &[NodeId]) -> Result<SearchResult, SearchError> {
        self.search_with_workspace(g, query, &mut QueryWorkspace::new())
    }

    fn search_with_workspace(
        &self,
        g: &Graph,
        query: &[NodeId],
        ws: &mut QueryWorkspace,
    ) -> Result<SearchResult, SearchError> {
        let mut setup = FpaSetup::prepare(g, query, ws)?;
        let mut st = PeelState::new_in_component(g, &setup.component, TieRule::PreferLater, ws);
        let mut iterations = 0usize;

        let start_layer = if self.layer_pruning {
            let target = prune_layers(&mut st, &mut setup);
            iterations += 1; // the bulk phase counts as one pass
            target
        } else {
            setup.max_dist
        };

        // Node-level peeling, outermost layer first.
        for d in (1..=start_layer).rev() {
            peel_layer_by_ratio(g, &mut st, &mut setup, d, &mut iterations);
            if self.layer_pruning {
                // §5.7: node-level peeling applies only to the outermost
                // layer of the selected subgraph.
                break;
            }
        }
        let result = finish(st, iterations, ws);
        ws.put_dist(setup.dist, &setup.component);
        result
    }
}

impl CommunitySearch for FpaDmg {
    fn name(&self) -> &'static str {
        "FPA-DMG"
    }

    fn search(&self, g: &Graph, query: &[NodeId]) -> Result<SearchResult, SearchError> {
        self.search_with_workspace(g, query, &mut QueryWorkspace::new())
    }

    fn search_with_workspace(
        &self,
        g: &Graph,
        query: &[NodeId],
        ws: &mut QueryWorkspace,
    ) -> Result<SearchResult, SearchError> {
        let setup = FpaSetup::prepare(g, query, ws)?;
        let mut st = PeelState::new_in_component(g, &setup.component, TieRule::PreferLater, ws);
        let mut iterations = 0usize;
        for d in (1..=setup.max_dist).rev() {
            // Candidates: alive nodes at distance d. Λ is unstable, so we
            // rescan for the maximum after every removal.
            let mut cand: Vec<NodeId> = setup.layers[d as usize]
                .iter()
                .copied()
                .filter(|&v| st.view().contains(v))
                .collect();
            while !cand.is_empty() {
                let (pos, _) = cand
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| {
                        let k = st.view().local_degree(v) as u64;
                        let dv = g.degree(v) as u64;
                        // Tie-break towards the smallest *canonical* node
                        // id, matching FPA's heap order and keeping the
                        // removal sequence layout-invariant.
                        (
                            i,
                            (
                                dm_gain(st.m(), k, st.d_s(), dv),
                                std::cmp::Reverse(setup.canon.to_external(v)),
                            ),
                        )
                    })
                    .max_by_key(|&(_, key)| key)
                    .expect("cand non-empty");
                let v = cand.swap_remove(pos);
                st.remove(v);
                iterations += 1;
            }
        }
        let result = finish(st, iterations, ws);
        ws.put_dist(setup.dist, &setup.component);
        result
    }
}

/// Shared preparation: validation, Steiner seed, component restriction,
/// distance layers.
struct FpaSetup {
    /// Nodes of the connected component containing the seed, sorted
    /// ascending (shared with the workspace's last-component memo, so a
    /// repeat query in the same component clones an `Arc`, not a `Vec`).
    component: Arc<[NodeId]>,
    /// `dist[v]` = BFS distance from the seed (UNREACHABLE outside the
    /// component).
    dist: Vec<u32>,
    /// `layers[d]` = nodes at BFS distance `d` from the seed.
    layers: Vec<Vec<NodeId>>,
    /// Largest non-empty layer index.
    max_dist: u32,
    /// Canonical external ordering for id tie-breaks (identity unless
    /// the workspace serves from a renumbered mirror — then every tie
    /// compares external ids so the removal sequence stays byte-
    /// identical to canonical-order execution).
    canon: NodeMap,
}

impl FpaSetup {
    fn prepare(g: &Graph, query: &[NodeId], ws: &mut QueryWorkspace) -> Result<Self, SearchError> {
        validate_query_nodes(g, query)?;
        // Last-component memo: when every query node is a member of the
        // component the previous query explored (same graph epoch — the
        // session layer arms the memo), that membership already proves
        // the query connected, so the validation BFS is skipped and the
        // memoized component replaces the collection pass below.
        let memo = ws.memoized_component(query);
        if memo.is_none() && !same_component_with_workspace(g, query, ws) {
            return Err(SearchError::Graph(GraphError::QueryDisconnected));
        }
        // §5.6: merge multiple queries into a protected connected seed.
        let seed = steiner_seed_with_workspace(g, query, ws)?;
        let mut dist = ws.take_dist(g.n());
        let component = match memo {
            Some(component) => {
                // The component is known; one BFS layers it by seed
                // distance without the visited-collection and sort that
                // `multi_source_bfs_collect` pays.
                multi_source_bfs_preset(g, &seed, &mut dist);
                component
            }
            None => {
                // One BFS both layers the component by seed distance and
                // collects it — the component of the (connected) seed is
                // exactly the reached set, so no separate `component_of`
                // pass is needed.
                let component: Arc<[NodeId]> =
                    Arc::from(multi_source_bfs_collect(g, &seed, &mut dist));
                ws.memoize_component(&component, g.n());
                component
            }
        };
        // Shard-scoped caching: the answer depends only on this component
        // (plus the global edge count, handled by the caller's fingerprint
        // semantics) — record which shards it intersects.
        ws.note_component(&component);
        let mut max_dist = 0u32;
        for &v in component.iter() {
            let d = dist[v as usize];
            debug_assert_ne!(d, UNREACHABLE);
            max_dist = max_dist.max(d);
        }
        let mut layers: Vec<Vec<NodeId>> = vec![Vec::new(); max_dist as usize + 1];
        for &v in component.iter() {
            layers[dist[v as usize] as usize].push(v);
        }
        Ok(FpaSetup {
            component,
            dist,
            layers,
            max_dist,
            canon: ws.canon().clone(),
        })
    }
}

/// §5.7 bulk phase: simulate stripping whole outermost layers on the
/// `(l, d, |S|)` counts, pick the prefix with the largest DM (ties prefer
/// the smaller subgraph, matching [`TieRule::PreferLater`]), apply the
/// winning strip to the peel state and register the snapshot. Returns the
/// index of the outermost remaining layer — the one node-level peeling
/// processes next.
fn prune_layers(st: &mut PeelState<'_>, setup: &mut FpaSetup) -> u32 {
    let g = st.view().graph();
    let m = st.m();
    let nl = setup.max_dist as usize + 1;
    // Per-layer contributions: an edge belongs to the layer of its deeper
    // endpoint (that is when stripping removes it); a node to its own.
    let mut layer_l = vec![0u64; nl];
    let mut layer_d = vec![0u64; nl];
    let mut layer_n = vec![0usize; nl];
    for &v in setup.component.iter() {
        let dv = setup.dist[v as usize];
        layer_n[dv as usize] += 1;
        layer_d[dv as usize] += g.degree(v) as u64;
        for &w in g.neighbors(v) {
            if v < w && setup.dist[w as usize] != UNREACHABLE {
                let dw = setup.dist[w as usize];
                layer_l[dv.max(dw) as usize] += 1;
            }
        }
    }
    let (mut l, mut dsum, mut size) = (st.l_s(), st.d_s(), st.size());
    let mut best_dm = crate::measure::density_modularity_counts(l, dsum, size, m);
    let mut target = setup.max_dist; // strip nothing
    for dd in (1..=setup.max_dist).rev() {
        l -= layer_l[dd as usize];
        dsum -= layer_d[dd as usize];
        size -= layer_n[dd as usize];
        let dm = crate::measure::density_modularity_counts(l, dsum, size, m);
        if dm >= best_dm {
            best_dm = dm;
            target = dd - 1;
        }
    }
    // Apply the winning strip, outermost layer first, each layer in
    // ascending canonical id order. Layers are ascending by internal id
    // (the component list is sorted), which *is* canonical order on the
    // canonical substrate — a mirror-serving workspace re-sorts in
    // place (the stripped layers are never read again) so the recorded
    // removal sequence stays byte-identical across layouts.
    let ext = setup.canon.external_ids();
    for dd in ((target + 1)..=setup.max_dist).rev() {
        let layer = &mut setup.layers[dd as usize];
        if let Some(ext) = ext {
            layer.sort_unstable_by_key(|&v| ext[v as usize]);
        }
        for &v in layer.iter() {
            st.remove_untracked(v);
        }
    }
    st.consider_snapshot();
    target
}

/// Peel one distance layer with the stable density-ratio scorer and a
/// lazy max-heap, snapshotting after every removal (Algorithm 2 lines
/// 7–14).
fn peel_layer_by_ratio(
    g: &Graph,
    st: &mut PeelState<'_>,
    setup: &mut FpaSetup,
    d: u32,
    iterations: &mut usize,
) {
    let layer = &setup.layers[d as usize];
    // Canonical tie-break key, hoisted to a plain slice read (identity
    // maps translate for free).
    let ext = setup.canon.external_ids();
    let canon_key = |v: NodeId| match ext {
        Some(e) => e[v as usize],
        None => v,
    };
    // Layer membership rides the distance array instead of a hash set:
    // `dist[v] == d` means "still in the layer" (every layer-`d` node is
    // alive when its layer comes up — removals so far were in deeper
    // layers), and an accepted removal retires the entry to UNREACHABLE.
    // The layers above `d` were already stripped or peeled and `dist` is
    // sparse-reset wholesale on `put_dist`, so the mutation is private
    // to this pass.
    let dist = &mut setup.dist;
    // Heap entries order by (Θ, canonical external id descending-Reverse);
    // the trailing internal id is the node to operate on and never decides
    // the order (canonical ids are unique), so pop order — and therefore
    // the removal sequence — is identical across layout policies.
    let mut heap: BinaryHeap<(OrdF64, Reverse<NodeId>, NodeId)> =
        BinaryHeap::with_capacity(layer.len());
    for &v in layer {
        if st.view().contains(v) {
            let theta = density_ratio(g.degree(v) as u64, st.view().local_degree(v) as u64);
            heap.push((OrdF64(theta), Reverse(canon_key(v)), v));
        } else {
            dist[v as usize] = UNREACHABLE;
        }
    }
    let mut neighbors: Vec<NodeId> = Vec::new();
    while let Some((OrdF64(theta), _, v)) = heap.pop() {
        if dist[v as usize] != d {
            continue; // already removed
        }
        let current = density_ratio(g.degree(v) as u64, st.view().local_degree(v) as u64);
        if theta != current && !(theta.is_infinite() && current.is_infinite()) {
            heap.push((OrdF64(current), Reverse(canon_key(v)), v));
            continue; // stale entry; re-queue with the fresh Θ
        }
        dist[v as usize] = UNREACHABLE;
        // Stability (Lemma 5): only neighbours' Θ changed; re-queue the
        // same-layer ones. The scratch vec is reused across removals —
        // the borrow on the view ends before `remove` needs it mutably.
        neighbors.clear();
        neighbors.extend(st.view().alive_neighbors(v));
        st.remove(v);
        *iterations += 1;
        for &w in &neighbors {
            if dist[w as usize] == d {
                let t = density_ratio(g.degree(w) as u64, st.view().local_degree(w) as u64);
                heap.push((OrdF64(t), Reverse(canon_key(w)), w));
            }
        }
    }
}

fn finish(
    st: PeelState<'_>,
    iterations: usize,
    ws: &mut QueryWorkspace,
) -> Result<SearchResult, SearchError> {
    let (community, dm, removal_order) = st.finish_in(ws);
    Ok(SearchResult {
        community,
        density_modularity: dm,
        removal_order,
        iterations,
    })
}

/// Total-ordered f64 for the Θ heap (Θ is never NaN: degrees are finite
/// and `k = 0` maps to +∞). Shared with the weighted FPA's layer scans.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OrdF64(pub(crate) f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("Θ is never NaN")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::density_modularity;
    use dmcs_graph::{GraphBuilder, SubgraphView};

    fn barbell() -> Graph {
        GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
    }

    #[test]
    fn fpa_finds_query_triangle() {
        let g = barbell();
        for fpa in [Fpa::default(), Fpa::without_pruning()] {
            let r = fpa.search(&g, &[0]).unwrap();
            assert_eq!(r.community, vec![0, 1, 2], "pruning={}", fpa.layer_pruning);
            assert!((r.density_modularity - density_modularity(&g, &[0, 1, 2])).abs() < 1e-12);
        }
    }

    #[test]
    fn fpa_dmg_finds_query_triangle() {
        let g = barbell();
        let r = FpaDmg.search(&g, &[5]).unwrap();
        assert_eq!(r.community, vec![3, 4, 5]);
    }

    #[test]
    fn results_are_connected_and_contain_queries() {
        let g = barbell();
        for q in 0..6u32 {
            for alg in [
                &Fpa::default() as &dyn CommunitySearch,
                &Fpa::without_pruning(),
                &FpaDmg,
            ] {
                let r = alg.search(&g, &[q]).unwrap();
                assert!(r.community.contains(&q), "{} lost query {q}", alg.name());
                let view = SubgraphView::from_nodes(&g, &r.community);
                assert!(view.is_connected(), "{} disconnected for {q}", alg.name());
            }
        }
    }

    #[test]
    fn multi_query_seed_is_protected() {
        let g = barbell();
        let r = Fpa::default().search(&g, &[0, 5]).unwrap();
        // The Steiner path 0..5 passes through 2 and 3: all must survive.
        for v in [0, 2, 3, 5] {
            assert!(r.community.contains(&v), "seed node {v} was peeled");
        }
        let view = SubgraphView::from_nodes(&g, &r.community);
        assert!(view.is_connected());
    }

    #[test]
    fn whole_component_when_query_spans_it() {
        let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let r = Fpa::default().search(&g, &[0, 1, 2]).unwrap();
        assert_eq!(r.community, vec![0, 1, 2]);
    }

    #[test]
    fn other_components_excluded() {
        let mut b = GraphBuilder::new(9);
        for &(u, v) in &[(0, 1), (1, 2), (0, 2)] {
            b.add_edge(u, v);
        }
        for &(u, v) in &[(4, 5), (5, 6), (4, 6), (6, 7), (7, 8)] {
            b.add_edge(u, v);
        }
        let g = b.build();
        let r = Fpa::default().search(&g, &[5]).unwrap();
        assert!(r.community.iter().all(|&v| (4..9).contains(&v)));
    }

    #[test]
    fn pruning_and_nonpruning_agree_on_small_graphs() {
        // On the barbell both find the exact triangle; pruning only
        // changes *which* snapshots are examined.
        let g = barbell();
        let a = Fpa::default().search(&g, &[1]).unwrap();
        let b = Fpa::without_pruning().search(&g, &[1]).unwrap();
        assert_eq!(a.community, b.community);
    }

    #[test]
    fn workspace_reuse_is_bit_identical() {
        let g = barbell();
        let mut ws = QueryWorkspace::new();
        for alg in [
            &Fpa::default() as &dyn CommunitySearch,
            &Fpa::without_pruning(),
            &FpaDmg,
        ] {
            for q in 0..6u32 {
                let fresh = alg.search(&g, &[q]).unwrap();
                let reused = alg.search_with_workspace(&g, &[q], &mut ws).unwrap();
                assert_eq!(fresh, reused, "{} query {q}", alg.name());
            }
        }
    }

    #[test]
    fn component_memo_reuse_is_bit_identical() {
        // Two disjoint triangles with tails: consecutive same-component
        // queries hit the memo; a query in the other component replaces
        // it. Results must match a memo-free workspace bit for bit.
        let g = GraphBuilder::from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (0, 2),
                (2, 3),
                (4, 5),
                (5, 6),
                (4, 6),
                (6, 7),
            ],
        );
        let queries: &[&[NodeId]] = &[&[0], &[1], &[0, 3], &[4], &[7, 5], &[6], &[2], &[0, 1, 2]];
        for alg in [
            &Fpa::default() as &dyn CommunitySearch,
            &Fpa::without_pruning(),
            &FpaDmg,
        ] {
            let mut plain = QueryWorkspace::new();
            let mut memoed = QueryWorkspace::new();
            memoed.arm_component_memo((u64::MAX, 0));
            for q in queries {
                let want = alg.search_with_workspace(&g, q, &mut plain).unwrap();
                let got = alg.search_with_workspace(&g, q, &mut memoed).unwrap();
                assert_eq!(want, got, "{} query {q:?}", alg.name());
            }
            assert!(
                memoed.memo_hits() >= 4,
                "{}: consecutive same-component queries must hit, got {}",
                alg.name(),
                memoed.memo_hits()
            );
            // Disconnected queries still error with the memo armed.
            assert!(alg.search_with_workspace(&g, &[0, 4], &mut memoed).is_err());
        }
    }

    #[test]
    fn errors_propagate() {
        let g = barbell();
        assert!(Fpa::default().search(&g, &[]).is_err());
        assert!(Fpa::default().search(&g, &[42]).is_err());
        let disconnected = GraphBuilder::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(Fpa::default().search(&disconnected, &[0, 3]).is_err());
    }

    #[test]
    fn removal_order_nonempty_when_peeling_happens() {
        let g = barbell();
        let r = Fpa::without_pruning().search(&g, &[0]).unwrap();
        assert!(!r.removal_order.is_empty());
        assert!(r.iterations >= r.removal_order.len());
    }
}
