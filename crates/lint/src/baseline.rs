//! The baseline ratchet: pre-existing violations are frozen in a
//! checked-in `lint-baseline.txt`, keyed by `(rule, file)` with a
//! count, and may only shrink.
//!
//! Semantics per key:
//!
//! - current count > baseline count → **fail** (new violations);
//! - current count < baseline count → **fail** with a "stale baseline"
//!   message (run `--update-baseline` to lock in the progress — the
//!   ratchet only turns one way);
//! - equal → pass, findings reported as `baselined`.
//!
//! Keys absent from the baseline allow zero findings, so every new rule
//! and every consistency check is enforced at full strength from day
//! one.

use crate::Finding;
use std::collections::BTreeMap;
use std::path::Path;

/// Baseline counts keyed by `(rule, file)`.
pub type Baseline = BTreeMap<(String, String), usize>;

/// Parse a baseline file: one `<count>\t<rule>\t<file>` triple per
/// line, `#` comments and blank lines ignored.
pub fn parse(text: &str) -> Result<Baseline, String> {
    let mut map = Baseline::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, '\t');
        let (Some(count), Some(rule), Some(file)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "baseline line {}: expected <count>\\t<rule>\\t<file>",
                i + 1
            ));
        };
        let count: usize = count
            .parse()
            .map_err(|_| format!("baseline line {}: bad count {count:?}", i + 1))?;
        map.insert((rule.to_string(), file.to_string()), count);
    }
    Ok(map)
}

/// Load the baseline at `path`; a missing file is an empty baseline.
pub fn load(path: &Path) -> Result<Baseline, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::new()),
        Err(e) => Err(format!("cannot read {}: {e}", path.display())),
    }
}

/// Render `findings` as baseline text (sorted, commented header).
pub fn render(findings: &[Finding]) -> String {
    let mut counts = Baseline::new();
    for f in findings {
        *counts
            .entry((f.rule.to_string(), f.file.clone()))
            .or_default() += 1;
    }
    let mut out = String::from(
        "# dmcs-lint baseline: frozen pre-existing violations, one\n\
         # `<count>\\t<rule>\\t<file>` per line. The ratchet only turns one\n\
         # way: counts may shrink (then run `cargo run -p dmcs-lint --\n\
         # --update-baseline`), never grow.\n",
    );
    for ((rule, file), count) in &counts {
        out.push_str(&format!("{count}\t{rule}\t{file}\n"));
    }
    out
}

/// The verdict of applying the ratchet to a lint run.
#[derive(Debug, Default)]
pub struct Verdict {
    /// Findings not covered by the baseline (fail).
    pub new: Vec<Finding>,
    /// Findings absorbed by the baseline (pass, reported with `--all`).
    pub baselined: Vec<Finding>,
    /// `(rule, file)` keys whose count shrank or vanished (fail until
    /// the baseline is regenerated).
    pub stale: Vec<(String, String, usize, usize)>,
}

impl Verdict {
    /// Whether the run passes the gate.
    pub fn ok(&self) -> bool {
        self.new.is_empty() && self.stale.is_empty()
    }
}

/// Apply the ratchet: per `(rule, file)` key, the first `baseline`
/// findings (in report order) are absorbed, the rest are new; keys
/// whose live count dropped below the baseline are stale.
pub fn apply(findings: &[Finding], baseline: &Baseline) -> Verdict {
    let mut verdict = Verdict::default();
    let mut seen: BTreeMap<(String, String), usize> = BTreeMap::new();
    for f in findings {
        let key = (f.rule.to_string(), f.file.clone());
        let n = seen.entry(key.clone()).or_default();
        *n += 1;
        if *n <= baseline.get(&key).copied().unwrap_or(0) {
            verdict.baselined.push(f.clone());
        } else {
            verdict.new.push(f.clone());
        }
    }
    for (key, &frozen) in baseline {
        let live = seen.get(key).copied().unwrap_or(0);
        if live < frozen {
            verdict
                .stale
                .push((key.0.clone(), key.1.clone(), frozen, live));
        }
    }
    verdict
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str) -> Finding {
        Finding::new(rule, file, 1, "x".to_string())
    }

    #[test]
    fn parse_render_roundtrip() {
        let findings = vec![
            finding("serving-panic", "a.rs"),
            finding("serving-panic", "a.rs"),
            finding("process-exit", "b.rs"),
        ];
        let text = render(&findings);
        let parsed = parse(&text).unwrap();
        assert_eq!(
            parsed.get(&("serving-panic".to_string(), "a.rs".to_string())),
            Some(&2)
        );
        assert_eq!(
            parsed.get(&("process-exit".to_string(), "b.rs".to_string())),
            Some(&1)
        );
    }

    #[test]
    fn ratchet_absorbs_exact_counts_only() {
        let baseline = parse("1\tserving-panic\ta.rs\n").unwrap();
        let v = apply(
            &[
                finding("serving-panic", "a.rs"),
                finding("serving-panic", "a.rs"),
            ],
            &baseline,
        );
        assert_eq!(v.baselined.len(), 1);
        assert_eq!(v.new.len(), 1);
        assert!(!v.ok());
    }

    #[test]
    fn shrunk_count_is_stale() {
        let baseline = parse("2\tserving-panic\ta.rs\n").unwrap();
        let v = apply(&[finding("serving-panic", "a.rs")], &baseline);
        assert!(v.new.is_empty());
        assert_eq!(v.stale.len(), 1);
        assert!(!v.ok(), "ratchet must be re-tightened explicitly");
    }

    #[test]
    fn unknown_key_allows_nothing() {
        let v = apply(&[finding("json-schema", "README.md")], &Baseline::new());
        assert_eq!(v.new.len(), 1);
        assert!(!v.ok());
    }
}
