//! Cross-artifact consistency: the hand-maintained facts that live in
//! more than one place must agree, and the lint parses the **real
//! sources of truth** — the Rust sources, the README, the golden file —
//! not copies of them.
//!
//! Three families:
//!
//! 1. **Exit codes** — the canonical map is the match in
//!    `EngineError::exit_code` (`crates/engine/src/error.rs`). The
//!    error.rs module-doc table, the CLI `--help` EXIT CODES text, the
//!    README error table and the `server.rs` wire-code doc must all
//!    agree with it (and `server.rs` must derive wire codes from
//!    `exit_code()` rather than re-hardcoding them).
//! 2. **Registry labels** — every algorithm label registered in
//!    `registry.rs` must be documented (appear as a backticked span) in
//!    the README.
//! 3. **JSON schema** — the `summary` field list written by
//!    `output.rs::summary_json` must match the checked-in golden file
//!    byte-for-byte (same keys, same order), and every key the
//!    `json_smoke` validator requires must be written somewhere
//!    (summary keys by `summary_json`/the CLI's `--updates` summary,
//!    stats keys by the serve daemon's `stats` arm).

use crate::Finding;
use std::path::Path;

/// Rule id for every exit-code disagreement.
pub const RULE_EXIT_CODES: &str = "exit-code-map";
/// Rule id for registry labels missing from the README.
pub const RULE_REGISTRY_README: &str = "registry-readme";
/// Rule id for JSON schema drift (writer vs golden vs validator).
pub const RULE_JSON_SCHEMA: &str = "json-schema";

/// What each canonical error variant means, as a lowercase keyword that
/// must appear in human-facing descriptions of its code. This table is
/// the lint's own contribution: the *codes* are proven identical across
/// artifacts, the keywords pin each code to the right meaning.
const VARIANT_KEYWORDS: &[(&str, &str)] = &[
    ("BadParam", "bad flags"),
    ("UnknownAlgo", "unknown algorithm"),
    ("Io", "i/o"),
    ("UnknownNode", "unknown query node"),
    ("Search", "search"),
    ("BadUpdate", "update"),
    ("Overloaded", "overloaded"),
    ("BadRequest", "wire request"),
];

/// Phrases the `server.rs` wire-code doc uses, mapped to variants.
const WIRE_PHRASES: &[(&str, &str)] = &[
    ("unknown node", "UnknownNode"),
    ("bad update", "BadUpdate"),
    ("overloaded", "Overloaded"),
    ("bad request", "BadRequest"),
];

/// Run every cross-artifact check against the repo at `root`.
pub fn check_all(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut read = |rel: &str| -> Option<String> {
        match std::fs::read_to_string(root.join(rel)) {
            Ok(text) => Some(text),
            Err(e) => {
                findings.push(Finding::new(
                    RULE_EXIT_CODES,
                    rel,
                    0,
                    format!("source of truth unreadable: {e}"),
                ));
                None
            }
        }
    };
    let error_rs = read("crates/engine/src/error.rs");
    let cli_rs = read("src/cli.rs");
    let readme = read("README.md");
    let server_rs = read("crates/engine/src/server.rs");
    let registry_rs = read("crates/engine/src/registry.rs");
    let output_rs = read("crates/engine/src/output.rs");
    let golden = read("crates/engine/tests/golden/batch_report.jsonl");
    let validator_rs = read("tests/cli_binary.rs");
    let (Some(error_rs), Some(cli_rs), Some(readme), Some(server_rs)) =
        (error_rs, cli_rs, readme, server_rs)
    else {
        return findings;
    };
    let (Some(registry_rs), Some(output_rs), Some(golden), Some(validator_rs)) =
        (registry_rs, output_rs, golden, validator_rs)
    else {
        return findings;
    };

    let canonical = canonical_exit_codes(&error_rs, &mut findings);
    if !canonical.is_empty() {
        check_error_doc_table(&error_rs, &canonical, &mut findings);
        check_readme_table(&readme, &canonical, &mut findings);
        check_cli_help(&cli_rs, &canonical, &mut findings);
        check_wire_codes(&server_rs, &canonical, &mut findings);
    }
    check_registry_labels(&registry_rs, &readme, &mut findings);
    check_json_schema(
        &output_rs,
        &golden,
        &validator_rs,
        &cli_rs,
        &server_rs,
        &mut findings,
    );
    findings
}

/// The canonical variant → exit-code map, parsed from the match arms of
/// `EngineError::exit_code`.
pub fn canonical_exit_codes(error_rs: &str, findings: &mut Vec<Finding>) -> Vec<(String, u32)> {
    let file = "crates/engine/src/error.rs";
    let Some(body) = fn_body(error_rs, "fn exit_code") else {
        findings.push(Finding::new(
            RULE_EXIT_CODES,
            file,
            0,
            "cannot locate fn exit_code in error.rs".to_string(),
        ));
        return Vec::new();
    };
    let mut map = Vec::new();
    for line in body.lines() {
        let Some(rest) = line.trim().strip_prefix("EngineError::") else {
            continue;
        };
        let variant: String = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        let Some(arrow) = rest.find("=>") else {
            continue;
        };
        let code: String = rest[arrow + 2..]
            .chars()
            .skip_while(|c| c.is_whitespace())
            .take_while(char::is_ascii_digit)
            .collect();
        if let Ok(code) = code.parse::<u32>() {
            map.push((variant, code));
        }
    }
    if map.is_empty() {
        findings.push(Finding::new(
            RULE_EXIT_CODES,
            file,
            0,
            "no match arms parsed from fn exit_code".to_string(),
        ));
    }
    map
}

/// The error.rs module-doc table must list exactly the canonical pairs.
fn check_error_doc_table(error_rs: &str, canonical: &[(String, u32)], out: &mut Vec<Finding>) {
    let file = "crates/engine/src/error.rs";
    let mut documented = Vec::new();
    for (i, line) in error_rs.lines().enumerate() {
        // `//! | [`BadParam`] | 2 | ... |`
        let t = line.trim();
        let Some(row) = t.strip_prefix("//! |") else {
            continue;
        };
        let cells: Vec<&str> = row.split('|').map(str::trim).collect();
        if cells.len() < 2 {
            continue;
        }
        let name = cells[0].trim_matches(['[', ']', '`'].as_slice());
        if let Ok(code) = cells[1].parse::<u32>() {
            if !name.is_empty() && name.chars().next().is_some_and(char::is_uppercase) {
                documented.push((name.to_string(), code, i + 1));
            }
        }
    }
    compare_tables(
        file,
        "error.rs module-doc table",
        canonical,
        &documented,
        out,
    );
}

/// The README error table must list exactly the canonical pairs.
fn check_readme_table(readme: &str, canonical: &[(String, u32)], out: &mut Vec<Finding>) {
    let file = "README.md";
    let canon_names: Vec<&str> = canonical.iter().map(|(n, _)| n.as_str()).collect();
    let mut documented = Vec::new();
    for (i, line) in readme.lines().enumerate() {
        let t = line.trim();
        if !t.starts_with("| `") {
            continue;
        }
        let cells: Vec<&str> = t.trim_matches('|').split('|').map(str::trim).collect();
        if cells.len() < 2 {
            continue;
        }
        let name = cells[0].trim_matches('`');
        if !canon_names.contains(&name) {
            continue; // some other table (flags, crate map, ...)
        }
        if let Ok(code) = cells[1].parse::<u32>() {
            documented.push((name.to_string(), code, i + 1));
        } else {
            out.push(Finding::new(
                RULE_EXIT_CODES,
                file,
                i + 1,
                format!("README error-table row for `{name}` has no numeric exit code"),
            ));
        }
    }
    compare_tables(file, "README error table", canonical, &documented, out);
}

/// Shared table comparison: same variants, same codes, no extras.
fn compare_tables(
    file: &str,
    what: &str,
    canonical: &[(String, u32)],
    documented: &[(String, u32, usize)],
    out: &mut Vec<Finding>,
) {
    for (name, code) in canonical {
        match documented.iter().find(|(n, _, _)| n == name) {
            None => out.push(Finding::new(
                RULE_EXIT_CODES,
                file,
                0,
                format!("{what}: variant `{name}` (exit code {code}) is missing"),
            )),
            Some((_, doc_code, line)) if doc_code != code => out.push(Finding::new(
                RULE_EXIT_CODES,
                file,
                *line,
                format!("{what}: `{name}` documented as {doc_code}, exit_code() says {code}"),
            )),
            Some(_) => {}
        }
    }
    for (name, _, line) in documented {
        if !canonical.iter().any(|(n, _)| n == name) {
            out.push(Finding::new(
                RULE_EXIT_CODES,
                file,
                *line,
                format!("{what}: `{name}` is not an EngineError variant"),
            ));
        }
    }
}

/// The first EXIT CODES block of `usage()` must mention every canonical
/// code exactly once, with the right meaning (keyword match), plus the
/// `0 success` convention.
fn check_cli_help(cli_rs: &str, canonical: &[(String, u32)], out: &mut Vec<Finding>) {
    let file = "src/cli.rs";
    let Some(start) = cli_rs.find("EXIT CODES:") else {
        out.push(Finding::new(
            RULE_EXIT_CODES,
            file,
            0,
            "usage() has no EXIT CODES block".to_string(),
        ));
        return;
    };
    let line_no = cli_rs[..start].lines().count();
    let block = &cli_rs[start + "EXIT CODES:".len()..];
    // The block ends where the usage format string does.
    let block = &block[..block.find('"').unwrap_or(block.len())];
    let entries: Vec<(u32, String)> = block
        .split(',')
        .filter_map(|entry| {
            let entry = entry.trim();
            let digits: String = entry.chars().take_while(char::is_ascii_digit).collect();
            let code = digits.parse::<u32>().ok()?;
            Some((code, entry[digits.len()..].trim().to_lowercase()))
        })
        .collect();
    for (count, (code, desc)) in
        [(1u32, (0u32, "success".to_string()))]
            .into_iter()
            .chain(canonical.iter().map(|(name, code)| {
                let keyword = VARIANT_KEYWORDS
                    .iter()
                    .find(|(n, _)| n == name)
                    .map_or("", |(_, k)| *k);
                (1, (*code, keyword.to_string()))
            }))
    {
        let hits: Vec<&(u32, String)> = entries.iter().filter(|(c, _)| *c == code).collect();
        if hits.len() != count as usize {
            out.push(Finding::new(
                RULE_EXIT_CODES,
                file,
                line_no,
                format!(
                    "--help EXIT CODES mentions code {code} {} time(s), expected {count}",
                    hits.len()
                ),
            ));
        } else if !desc.is_empty() && !hits[0].1.contains(&desc) {
            out.push(Finding::new(
                RULE_EXIT_CODES,
                file,
                line_no,
                format!(
                    "--help EXIT CODES describes code {code} as {:?}, expected it to mention {desc:?}",
                    hits[0].1
                ),
            ));
        }
    }
}

/// The server.rs wire-code doc (`code` is the exit-code analog ...) must
/// cite codes that agree with the canonical map, and `error_json` must
/// derive codes from `exit_code()` instead of re-hardcoding them.
fn check_wire_codes(server_rs: &str, canonical: &[(String, u32)], out: &mut Vec<Finding>) {
    let file = "crates/engine/src/server.rs";
    let Some(anchor) = server_rs.find("exit-code analog") else {
        out.push(Finding::new(
            RULE_EXIT_CODES,
            file,
            0,
            "module doc no longer explains the wire codes (\"exit-code analog\")".to_string(),
        ));
        return;
    };
    let line_no = server_rs[..anchor].lines().count();
    let tail = &server_rs[anchor..];
    let Some(open) = tail.find('(') else { return };
    let Some(close) = tail.find(')') else { return };
    let listing: String = tail[open + 1..close]
        .lines()
        .map(|l| l.trim().trim_start_matches("//!").trim())
        .collect::<Vec<_>>()
        .join(" ");
    let mut cited = 0usize;
    for entry in listing.split(',') {
        let entry = entry.trim().to_lowercase();
        let digits: String = entry.chars().take_while(char::is_ascii_digit).collect();
        let Ok(code) = digits.parse::<u32>() else {
            continue;
        };
        cited += 1;
        let phrase = entry[digits.len()..].trim();
        let Some((_, variant)) = WIRE_PHRASES.iter().find(|(p, _)| phrase.contains(p)) else {
            out.push(Finding::new(
                RULE_EXIT_CODES,
                file,
                line_no,
                format!("wire-code doc cites code {code} with unrecognized meaning {phrase:?}"),
            ));
            continue;
        };
        match canonical.iter().find(|(n, _)| n == variant) {
            Some((_, canon)) if *canon == code => {}
            Some((_, canon)) => out.push(Finding::new(
                RULE_EXIT_CODES,
                file,
                line_no,
                format!("wire-code doc cites {code} for {variant}, exit_code() says {canon}"),
            )),
            None => out.push(Finding::new(
                RULE_EXIT_CODES,
                file,
                line_no,
                format!("wire-code doc cites {variant}, which exit_code() does not map"),
            )),
        }
    }
    if cited == 0 {
        out.push(Finding::new(
            RULE_EXIT_CODES,
            file,
            line_no,
            "wire-code doc lists no codes".to_string(),
        ));
    }
    match fn_body(server_rs, "fn error_json") {
        Some(body) if body.contains("exit_code()") => {}
        Some(_) => out.push(Finding::new(
            RULE_EXIT_CODES,
            file,
            0,
            "error_json no longer derives wire codes from EngineError::exit_code()".to_string(),
        )),
        None => out.push(Finding::new(
            RULE_EXIT_CODES,
            file,
            0,
            "cannot locate fn error_json in server.rs".to_string(),
        )),
    }
}

/// Every label in the `REGISTRY` table must appear as a backticked span
/// somewhere in the README.
fn check_registry_labels(registry_rs: &str, readme: &str, out: &mut Vec<Finding>) {
    let labels = registry_labels(registry_rs);
    if labels.is_empty() {
        out.push(Finding::new(
            RULE_REGISTRY_README,
            "crates/engine/src/registry.rs",
            0,
            "no labels parsed from REGISTRY".to_string(),
        ));
        return;
    }
    for (label, line) in labels {
        if !readme.contains(&format!("`{label}`")) {
            out.push(Finding::new(
                RULE_REGISTRY_README,
                "crates/engine/src/registry.rs",
                line,
                format!("registry label `{label}` is not documented in README.md"),
            ));
        }
    }
}

/// `(label, line)` pairs parsed from the `REGISTRY` table's
/// `name: "..."` fields.
pub fn registry_labels(registry_rs: &str) -> Vec<(String, usize)> {
    let Some(start) = registry_rs.find("REGISTRY") else {
        return Vec::new();
    };
    let end = registry_rs[start..]
        .find("\n];")
        .map_or(registry_rs.len(), |p| start + p);
    let offset_line = registry_rs[..start].lines().count();
    let mut labels = Vec::new();
    for (i, line) in registry_rs[start..end].lines().enumerate() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("name: \"") {
            if let Some(q) = rest.find('"') {
                labels.push((rest[..q].to_string(), offset_line + i));
            }
        }
    }
    labels
}

/// Summary/stats field-list agreement: writer vs golden vs validator.
fn check_json_schema(
    output_rs: &str,
    golden: &str,
    validator_rs: &str,
    cli_rs: &str,
    server_rs: &str,
    out: &mut Vec<Finding>,
) {
    let writer_file = "crates/engine/src/output.rs";
    // Writer key order: typed_obj prefix (type + protocol fields), then
    // summary_json's own members.
    let prefix: Vec<String> = [
        fn_body(output_rs, "fn typed_obj"),
        fn_body(output_rs, "fn protocol_members"),
    ]
    .into_iter()
    .flatten()
    .flat_map(|body| string_keys(&body))
    .collect();
    let Some(summary_body) = fn_body(output_rs, "fn summary_json") else {
        out.push(Finding::new(
            RULE_JSON_SCHEMA,
            writer_file,
            0,
            "cannot locate fn summary_json in output.rs".to_string(),
        ));
        return;
    };
    let mut writer_keys = prefix;
    writer_keys.extend(string_keys(&summary_body));
    if writer_keys.len() < 4 {
        out.push(Finding::new(
            RULE_JSON_SCHEMA,
            writer_file,
            0,
            format!("summary writer keys parsed implausibly: {writer_keys:?}"),
        ));
        return;
    }

    // Golden file: the summary line's top-level keys, in order.
    let golden_file = "crates/engine/tests/golden/batch_report.jsonl";
    let summary_line = golden
        .lines()
        .enumerate()
        .find(|(_, l)| l.contains("\"type\":\"summary\""));
    match summary_line {
        None => out.push(Finding::new(
            RULE_JSON_SCHEMA,
            golden_file,
            0,
            "golden file has no summary line".to_string(),
        )),
        Some((i, line)) => {
            let golden_keys = top_level_keys(line);
            if golden_keys != writer_keys {
                out.push(Finding::new(
                    RULE_JSON_SCHEMA,
                    golden_file,
                    i + 1,
                    format!(
                        "golden summary keys {golden_keys:?} != summary_json writer keys {writer_keys:?}"
                    ),
                ));
            }
        }
    }

    // Validator: every key the summary arm requires must be written by
    // summary_json or by the CLI's `--updates` summary augmentation.
    let validator_file = "tests/cli_binary.rs";
    let cli_keys = string_keys(cli_rs);
    match match_arm_body(validator_rs, "Some(\"summary\")") {
        None => out.push(Finding::new(
            RULE_JSON_SCHEMA,
            validator_file,
            0,
            "validate_jsonl has no summary arm".to_string(),
        )),
        Some(arm) => {
            for key in get_keys(&arm) {
                let written = writer_keys.contains(&key) || cli_keys.contains(&key);
                if !written {
                    out.push(Finding::new(
                        RULE_JSON_SCHEMA,
                        validator_file,
                        0,
                        format!("validator requires summary key {key:?}, which nothing writes"),
                    ));
                }
            }
        }
    }
    // Stats: the validator's stats arm vs the serve daemon's stats arm.
    match (
        match_arm_body(validator_rs, "Some(\"stats\")"),
        match_arm_body(server_rs, "\"stats\" =>"),
    ) {
        (Some(arm), Some(writer)) => {
            let written = string_keys(&writer);
            for key in get_keys(&arm) {
                if !written.contains(&key) {
                    out.push(Finding::new(
                        RULE_JSON_SCHEMA,
                        validator_file,
                        0,
                        format!("validator requires stats key {key:?}, which the serve daemon does not write"),
                    ));
                }
            }
        }
        _ => out.push(Finding::new(
            RULE_JSON_SCHEMA,
            validator_file,
            0,
            "cannot pair the validator's stats arm with the daemon's stats writer".to_string(),
        )),
    }
}

/// The body (between the outermost braces) of the first function whose
/// signature contains `needle`.
fn fn_body(text: &str, needle: &str) -> Option<String> {
    let start = text.find(needle)?;
    let open = start + text[start..].find('{')?;
    let bytes = text.as_bytes();
    let mut depth = 0usize;
    for (i, &c) in bytes.iter().enumerate().skip(open) {
        match c {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(text[open + 1..i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// Same brace-matching, but anchored at a match arm `needle ... => {`.
fn match_arm_body(text: &str, needle: &str) -> Option<String> {
    fn_body(text, needle)
}

/// JSON member keys written as `("key".to_string(), ...)`, in order.
/// Tolerates rustfmt's multi-line layout: the `(` may be separated from
/// the key by whitespace/newlines.
fn string_keys(body: &str) -> Vec<String> {
    let mut keys = Vec::new();
    let mut from = 0usize;
    while let Some(p) = body[from..].find("\".to_string()") {
        let close = from + p;
        from = close + 1;
        let Some(open) = body[..close].rfind('"') else {
            continue;
        };
        let before = body[..open].trim_end();
        if before.ends_with('(') {
            keys.push(body[open + 1..close].to_string());
        }
    }
    keys
}

/// Keys required via `v.get("key")` (or `.get("key")`), in order of
/// first appearance, deduplicated.
fn get_keys(body: &str) -> Vec<String> {
    let mut keys: Vec<String> = Vec::new();
    let mut from = 0usize;
    while let Some(p) = body[from..].find(".get(\"") {
        let at = from + p + ".get(\"".len();
        from = at;
        let Some(q) = body[at..].find('"') else { break };
        let key = body[at..at + q].to_string();
        if !keys.contains(&key) {
            keys.push(key);
        }
    }
    keys
}

/// Top-level member keys of one JSON object line, in order (tracks
/// string state and nesting, so values never masquerade as keys).
pub fn top_level_keys(line: &str) -> Vec<String> {
    let bytes = line.as_bytes();
    let mut keys = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;
    let mut expecting_key = false;
    while i < bytes.len() {
        match bytes[i] {
            b'{' | b'[' => {
                depth += 1;
                if depth == 1 {
                    expecting_key = true;
                }
                i += 1;
            }
            b'}' | b']' => {
                depth = depth.saturating_sub(1);
                i += 1;
            }
            b',' if depth == 1 => {
                expecting_key = true;
                i += 1;
            }
            b'"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() {
                    match bytes[j] {
                        b'\\' => j += 2,
                        b'"' => break,
                        _ => j += 1,
                    }
                }
                if depth == 1 && expecting_key && bytes.get(j + 1) == Some(&b':') {
                    keys.push(line[start..j].to_string());
                    expecting_key = false;
                }
                i = j + 1;
            }
            _ => i += 1,
        }
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_exit_code_arms() {
        let src = "impl E {\n pub fn exit_code(&self) -> i32 {\n match self {\n\
                   EngineError::BadParam { .. } => 2,\n\
                   EngineError::Io { .. } => 4,\n } } }";
        let mut f = Vec::new();
        let map = canonical_exit_codes(src, &mut f);
        assert_eq!(
            map,
            vec![("BadParam".to_string(), 2), ("Io".to_string(), 4)]
        );
        assert!(f.is_empty());
    }

    #[test]
    fn top_level_keys_skip_nested_and_values() {
        let keys = top_level_keys(
            r#"{"type":"summary","algo":"a:b","query":[1,2],"meta":{"inner":1},"ok":true}"#,
        );
        assert_eq!(keys, vec!["type", "algo", "query", "meta", "ok"]);
    }

    #[test]
    fn string_keys_in_order() {
        let body = r#"vec![("algo".to_string(), x), ("ok".to_string(), y), (not_a_key, z)]"#;
        assert_eq!(string_keys(body), vec!["algo", "ok"]);
    }

    #[test]
    fn get_keys_dedup() {
        let body = r#"v.get("a").x; v.get("b"); v.get("a");"#;
        assert_eq!(get_keys(body), vec!["a", "b"]);
    }
}
