//! The source rules: panic/lock discipline in serving paths, process
//! exits, and rustdoc coverage. Each rule is a pure function from a
//! [`ScannedFile`] to [`Finding`]s so the fixture tests can drive them
//! file by file.

use crate::scan::ScannedFile;
use crate::Finding;

/// Files on the serving path: code that runs between a request arriving
/// and a response leaving. Panics here tear down connection or worker
/// threads, so the panic and lock rules apply (outside test regions).
pub const SERVING_PATHS: &[&str] = &[
    "crates/engine/src/server.rs",
    "crates/engine/src/session.rs",
    "crates/engine/src/cache.rs",
    "crates/engine/src/batch.rs",
    "crates/engine/src/plan.rs",
    "crates/graph/src/store.rs",
    "crates/graph/src/dynamic.rs",
    "crates/graph/src/layout.rs",
];

/// Directory whose `pub` items must all carry rustdoc (the serving API
/// surface; `#![warn(missing_docs)]` covers the library targets, this
/// rule keeps the gate in the same report as everything else).
pub const DOC_SURFACE: &str = "crates/engine/src/";

/// Rule id: `unwrap`/`expect`/`panic!`/`unreachable!` on the serving
/// path outside tests.
pub const RULE_SERVING_PANIC: &str = "serving-panic";
/// Rule id: a `RwLock`/`Mutex` guard bound across a `snapshot()` or
/// CSR-rebuild call in the same scope.
pub const RULE_GUARD_ACROSS_SNAPSHOT: &str = "guard-across-snapshot";
/// Rule id: `std::process::exit` outside a `main.rs`.
pub const RULE_PROCESS_EXIT: &str = "process-exit";
/// Rule id: an undocumented `pub` item in the engine crate.
pub const RULE_PUB_UNDOCUMENTED: &str = "pub-undocumented";

/// Whether `rel_path` is one of the serving-path files.
pub fn is_serving_path(rel_path: &str) -> bool {
    SERVING_PATHS.contains(&rel_path)
}

/// Run every source rule that applies to `file` given its repo-relative
/// path. `force_all` (the fixture/`--serving-file` mode) applies all
/// rules regardless of path.
pub fn check_file(file: &ScannedFile, force_all: bool) -> Vec<Finding> {
    let mut findings = Vec::new();
    let serving = force_all || is_serving_path(&file.rel_path);
    if serving {
        findings.extend(no_panics(file));
        findings.extend(no_guard_across_snapshot(file));
    }
    let basename = file.rel_path.rsplit('/').next().unwrap_or(&file.rel_path);
    if force_all || basename != "main.rs" {
        findings.extend(no_process_exit(file));
    }
    if force_all || file.rel_path.starts_with(DOC_SURFACE) {
        findings.extend(pub_items_documented(file));
    }
    findings
}

/// `serving-panic`: no `.unwrap(` / `.expect(` / `panic!` /
/// `unreachable!` outside test regions. `unwrap_or*` / `expect_err`
/// deliberately do not match (the `(` is part of the pattern).
fn no_panics(file: &ScannedFile) -> Vec<Finding> {
    const PATTERNS: &[&str] = &[".unwrap(", ".expect(", "panic!", "unreachable!"];
    let mut findings = Vec::new();
    for (i, code) in file.code_lines.iter().enumerate() {
        if file.test_lines[i] {
            continue;
        }
        for pat in PATTERNS {
            if code.contains(pat) {
                let label = pat.trim_start_matches('.').trim_end_matches('(');
                findings.push(Finding::new(
                    RULE_SERVING_PANIC,
                    &file.rel_path,
                    i + 1,
                    format!("`{label}` on the serving path (outside tests)"),
                ));
            }
        }
    }
    findings
}

/// `guard-across-snapshot`: a `let` binding whose initializer is a bare
/// `.read()` / `.write()` / `.lock()` call (optionally chained through
/// `?`, `unwrap`, `expect` or `unwrap_or_else` — i.e. still a lock
/// guard) must not remain in scope across a `.snapshot(` or
/// `rebuild_csr(` call: the rebuild takes the store's own lock, so the
/// combination risks deadlock (and at best serializes serving threads
/// behind an `O(dirty shards)` rebuild).
///
/// A statement that *projects* through the guard in the same expression
/// (`self.read().dynamic.version()`) drops the guard immediately and is
/// not a binding.
fn no_guard_across_snapshot(file: &ScannedFile) -> Vec<Finding> {
    let text = file.code_text();
    let bytes = text.as_bytes();
    let mut line_starts = vec![0usize];
    for (i, &c) in bytes.iter().enumerate() {
        if c == b'\n' {
            line_starts.push(i + 1);
        }
    }
    let line_of = |pos: usize| match line_starts.binary_search(&pos) {
        Ok(l) => l,
        Err(l) => l - 1,
    };

    let mut findings = Vec::new();
    for lock_call in [".read()", ".write()", ".lock()"] {
        let mut from = 0usize;
        while let Some(p) = text[from..].find(lock_call) {
            let at = from + p;
            from = at + lock_call.len();
            // Statement start: after the previous `;`, `{` or `}`.
            let stmt_start = text[..at].rfind([';', '{', '}']).map_or(0, |q| q + 1);
            if !text[stmt_start..at].trim_start().starts_with("let ") {
                continue; // temporary guard, dropped at end of statement
            }
            // Everything between the lock call and the `;` must be a
            // guard-preserving chain, else the statement projects
            // through the guard and binds no lock.
            let stmt_end = match text[at..].find(';') {
                Some(q) => at + q,
                None => continue,
            };
            if !is_guard_chain(&text[at + lock_call.len()..stmt_end]) {
                continue;
            }
            // The guard lives until its enclosing scope closes: walk
            // forward tracking depth.
            let mut depth = 0i64;
            let mut k = stmt_end;
            let mut scope_end = bytes.len();
            while k < bytes.len() {
                match bytes[k] {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth < 0 {
                            scope_end = k;
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            let scope = &text[stmt_end..scope_end];
            for call in [".snapshot(", "rebuild_csr("] {
                if let Some(q) = scope.find(call) {
                    let line = line_of(stmt_end + q);
                    if !file.test_lines.get(line).copied().unwrap_or(false) {
                        findings.push(Finding::new(
                            RULE_GUARD_ACROSS_SNAPSHOT,
                            &file.rel_path,
                            line + 1,
                            format!(
                                "`{call}..)` while the lock guard bound on line {} is still live",
                                line_of(at) + 1
                            ),
                        ));
                    }
                }
            }
        }
    }
    findings.sort_by_key(|f| f.line);
    findings.dedup_by(|a, b| a.line == b.line && a.msg == b.msg);
    findings
}

/// Whether `tail` (statement text after a lock call, up to `;`) only
/// chains guard-preserving calls: `?`, `.unwrap()`, `.expect(..)`,
/// `.unwrap_or_else(..)`.
fn is_guard_chain(tail: &str) -> bool {
    let mut rest = tail.trim();
    while !rest.is_empty() {
        if let Some(r) = rest.strip_prefix('?') {
            rest = r.trim_start();
            continue;
        }
        let Some(r) = rest.strip_prefix('.') else {
            return false;
        };
        let r = r.trim_start();
        let method: String = r
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !matches!(method.as_str(), "unwrap" | "expect" | "unwrap_or_else") {
            return false;
        }
        let after = &r[method.len()..];
        let after = after.trim_start();
        if !after.starts_with('(') {
            return false;
        }
        // Skip the balanced argument list.
        let mut depth = 0usize;
        let mut consumed = None;
        for (i, c) in after.char_indices() {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        consumed = Some(i + 1);
                        break;
                    }
                }
                _ => {}
            }
        }
        match consumed {
            Some(i) => rest = after[i..].trim_start(),
            None => return false,
        }
    }
    true
}

/// `process-exit`: `process::exit` belongs in `main.rs` files only —
/// everywhere else a typed error must propagate so library callers (and
/// the daemon's connection threads) stay alive.
fn no_process_exit(file: &ScannedFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, code) in file.code_lines.iter().enumerate() {
        if file.test_lines[i] {
            continue;
        }
        if code.contains("process::exit") {
            findings.push(Finding::new(
                RULE_PROCESS_EXIT,
                &file.rel_path,
                i + 1,
                "`std::process::exit` outside a main.rs".to_string(),
            ));
        }
    }
    findings
}

/// `pub-undocumented`: every `pub` item (fn, struct, enum, trait, const,
/// static, type, mod) must be preceded by a `///` doc comment, possibly
/// with `#[...]` attribute lines in between. `pub(crate)`/`pub(super)`
/// items are internal and exempt; so are `pub use` re-exports (rustdoc
/// inlines the target's docs) and out-of-line `pub mod name;`
/// declarations, which are documented by their file's `//!` inner docs
/// (outer docs there would re-scope the inner docs' intra-doc links to
/// the parent module and dangle them).
fn pub_items_documented(file: &ScannedFile) -> Vec<Finding> {
    const ITEMS: &[&str] = &[
        "pub fn ",
        "pub struct ",
        "pub enum ",
        "pub trait ",
        "pub const ",
        "pub static ",
        "pub type ",
        "pub mod ",
        "pub unsafe fn ",
    ];
    let mut findings = Vec::new();
    for (i, code) in file.code_lines.iter().enumerate() {
        if file.test_lines[i] {
            continue;
        }
        let trimmed = code.trim_start();
        if !ITEMS.iter().any(|p| trimmed.starts_with(p)) {
            continue;
        }
        if trimmed.starts_with("pub mod ") && trimmed.trim_end().ends_with(';') {
            continue; // out-of-line module: documented by its `//!` docs
        }
        // Walk upward over attributes and derive lines to the nearest
        // prose; it must be a `///` doc (raw lines: comments were
        // blanked in code_lines).
        let mut j = i;
        let mut documented = false;
        while j > 0 {
            j -= 1;
            let above = file.raw_lines[j].trim_start();
            if above.starts_with("#[") || above.starts_with("#![") || above.ends_with(']') {
                // Attribute (possibly the tail of a multi-line one).
                continue;
            }
            documented = above.starts_with("///") || above.starts_with("#[doc");
            break;
        }
        if !documented {
            let name: String = trimmed
                .split_whitespace()
                .take(3)
                .collect::<Vec<_>>()
                .join(" ");
            findings.push(Finding::new(
                RULE_PUB_UNDOCUMENTED,
                &file.rel_path,
                i + 1,
                format!("undocumented public item `{name}`"),
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scanned(path: &str, src: &str) -> ScannedFile {
        ScannedFile::new(path, src)
    }

    #[test]
    fn panic_rule_fires_outside_tests_only() {
        let src = "fn f() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests { fn t() { y.expect(\"ok\"); } }\n";
        let f = scanned("crates/engine/src/cache.rs", src);
        let found = check_file(&f, false);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, RULE_SERVING_PANIC);
        assert_eq!(found[0].line, 1);
    }

    #[test]
    fn unwrap_or_variants_do_not_match() {
        let src = "fn f() { x.unwrap_or(0); y.unwrap_or_else(|| 0); z.unwrap_or_default(); }\n";
        let f = scanned("crates/engine/src/cache.rs", src);
        assert!(check_file(&f, false).is_empty());
    }

    #[test]
    fn guard_across_snapshot_fires() {
        let src = "fn f(&self) {\n\
                       let g = self.inner.read().unwrap_or_else(std::sync::PoisonError::into_inner);\n\
                       let s = store.snapshot();\n\
                       drop(g);\n\
                   }\n";
        let f = scanned("crates/engine/src/session.rs", src);
        let found: Vec<_> = check_file(&f, false)
            .into_iter()
            .filter(|x| x.rule == RULE_GUARD_ACROSS_SNAPSHOT)
            .collect();
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].line, 3);
    }

    #[test]
    fn projected_temporary_is_not_a_guard() {
        let src = "fn f(&self) {\n\
                       let v = self.inner.read().unwrap_or_else(std::sync::PoisonError::into_inner).version();\n\
                       let s = store.snapshot();\n\
                   }\n";
        let f = scanned("crates/engine/src/session.rs", src);
        assert!(
            check_file(&f, false)
                .iter()
                .all(|x| x.rule != RULE_GUARD_ACROSS_SNAPSHOT),
            "projection drops the guard at end of statement"
        );
    }

    #[test]
    fn guard_released_by_scope_is_fine() {
        let src = "fn f(&self) {\n\
                       {\n\
                           let g = self.inner.read();\n\
                       }\n\
                       let s = store.snapshot();\n\
                   }\n";
        let f = scanned("crates/engine/src/session.rs", src);
        assert!(check_file(&f, false)
            .iter()
            .all(|x| x.rule != RULE_GUARD_ACROSS_SNAPSHOT));
    }

    #[test]
    fn process_exit_rule_spares_main() {
        let bad = scanned(
            "crates/engine/src/server.rs",
            "fn f() { std::process::exit(1); }\n",
        );
        assert!(check_file(&bad, false)
            .iter()
            .any(|x| x.rule == RULE_PROCESS_EXIT));
        let ok = scanned("src/main.rs", "fn main() { std::process::exit(0); }\n");
        assert!(check_file(&ok, false).is_empty());
    }

    #[test]
    fn pub_doc_rule_accepts_docs_and_attributes() {
        let src = "/// Documented.\n\
                   #[derive(Debug)]\n\
                   pub struct A;\n\
                   pub fn b() {}\n\
                   pub(crate) fn c() {}\n\
                   pub use other::Thing;\n";
        let f = scanned("crates/engine/src/error.rs", src);
        let found = check_file(&f, false);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, RULE_PUB_UNDOCUMENTED);
        assert_eq!(found[0].line, 4);
    }

    #[test]
    fn out_of_line_mod_is_exempt_but_inline_mod_is_not() {
        let src = "pub mod batch;\n\
                   pub mod helpers {\n}\n";
        let f = scanned("crates/engine/src/lib.rs", src);
        let found = check_file(&f, false);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, RULE_PUB_UNDOCUMENTED);
        assert_eq!(found[0].line, 2);
    }
}
