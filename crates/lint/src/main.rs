//! `dmcs-lint` binary: lint the repo (or specific files), stream
//! findings as JSON lines, and gate on the baseline ratchet.
//!
//! ```text
//! cargo run -p dmcs-lint                      # full repo, gated by lint-baseline.txt
//! cargo run -p dmcs-lint -- --all             # also print baselined findings
//! cargo run -p dmcs-lint -- --update-baseline # regenerate the ratchet file
//! cargo run -p dmcs-lint -- --serving-file F  # fixture mode: all rules on F, no baseline
//! ```
//!
//! Exit codes: 0 clean, 1 findings (or stale baseline), 2 usage or I/O
//! error.

use dmcs_lint::{baseline, json_escape, lint_repo, rules, scan};
use std::path::PathBuf;

const USAGE: &str = "usage: dmcs-lint [--root PATH] [--baseline PATH] [--update-baseline] \
                     [--all] [--serving-file PATH]...
  --root PATH           repo root (default: the workspace this binary was built from)
  --baseline PATH       ratchet file (default: <root>/lint-baseline.txt)
  --update-baseline     rewrite the ratchet file from the current findings and exit 0
  --all                 print baselined findings too (default: only new ones)
  --serving-file PATH   fixture mode: apply every source rule to PATH (repeatable);
                        skips the repo walk, consistency checks and baseline
exit codes: 0 clean, 1 findings or stale baseline, 2 usage or I/O error";

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut update_baseline = false;
    let mut show_all = false;
    let mut serving_files: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage_error("--root needs a value"),
            },
            "--baseline" => match args.next() {
                Some(v) => baseline_path = Some(PathBuf::from(v)),
                None => return usage_error("--baseline needs a value"),
            },
            "--update-baseline" => update_baseline = true,
            "--all" => show_all = true,
            "--serving-file" => match args.next() {
                Some(v) => serving_files.push(PathBuf::from(v)),
                None => return usage_error("--serving-file needs a value"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return 0;
            }
            other => return usage_error(&format!("unknown flag {other:?}")),
        }
    }

    // Fixture mode: every rule, given files only, no baseline.
    if !serving_files.is_empty() {
        let mut findings = Vec::new();
        for path in &serving_files {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("dmcs-lint: cannot read {}: {e}", path.display());
                    return 2;
                }
            };
            let scanned = scan::ScannedFile::new(path.to_string_lossy().replace('\\', "/"), &text);
            findings.extend(rules::check_file(&scanned, true));
        }
        for f in &findings {
            println!("{}", f.to_json_line());
        }
        print_summary(findings.len(), findings.len(), 0, 0, findings.is_empty());
        return i32::from(!findings.is_empty());
    }

    let root = root.unwrap_or_else(|| {
        // crates/lint/ → workspace root, two levels up from this
        // crate's manifest.
        let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        manifest
            .parent()
            .and_then(|p| p.parent())
            .map(PathBuf::from)
            .unwrap_or(manifest)
    });
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint-baseline.txt"));

    let findings = match lint_repo(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("dmcs-lint: {e}");
            return 2;
        }
    };

    if update_baseline {
        if let Err(e) = std::fs::write(&baseline_path, baseline::render(&findings)) {
            eprintln!("dmcs-lint: cannot write {}: {e}", baseline_path.display());
            return 2;
        }
        eprintln!(
            "dmcs-lint: wrote {} ({} findings frozen)",
            baseline_path.display(),
            findings.len()
        );
        return 0;
    }

    let frozen = match baseline::load(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("dmcs-lint: {e}");
            return 2;
        }
    };
    let verdict = baseline::apply(&findings, &frozen);
    for f in &verdict.new {
        println!("{}", f.to_json_line());
    }
    if show_all {
        for f in &verdict.baselined {
            println!("{}", f.to_json_line());
        }
    }
    for (rule, file, frozen, live) in &verdict.stale {
        println!(
            "{{\"type\":\"stale-baseline\",\"rule\":\"{}\",\"file\":\"{}\",\"frozen\":{frozen},\"live\":{live}}}",
            json_escape(rule),
            json_escape(file)
        );
        eprintln!(
            "dmcs-lint: baseline is stale for ({rule}, {file}): frozen {frozen}, live {live} — \
             run `cargo run -p dmcs-lint -- --update-baseline` to tighten the ratchet"
        );
    }
    print_summary(
        findings.len(),
        verdict.new.len(),
        verdict.baselined.len(),
        verdict.stale.len(),
        verdict.ok(),
    );
    i32::from(!verdict.ok())
}

fn print_summary(total: usize, new: usize, baselined: usize, stale: usize, ok: bool) {
    println!(
        "{{\"type\":\"lint-summary\",\"tool\":\"dmcs-lint/{}\",\"findings\":{total},\"new\":{new},\
         \"baselined\":{baselined},\"stale\":{stale},\"ok\":{ok}}}",
        env!("CARGO_PKG_VERSION")
    );
}

fn usage_error(msg: &str) -> i32 {
    eprintln!("dmcs-lint: {msg}\n{USAGE}");
    2
}
