//! `dmcs-lint` — repo-native static analysis for the dmcs workspace.
//!
//! Two halves, one report:
//!
//! - **Source rules** ([`rules`], driven by the [`scan`] model): panic
//!   and lock discipline on the serving path, `process::exit`
//!   confinement, rustdoc coverage of the engine's public surface.
//! - **Cross-artifact consistency** ([`consistency`]): the exit-code
//!   map, registry labels, and JSON field lists are each maintained by
//!   hand in several artifacts; the lint parses the real sources of
//!   truth and proves they agree.
//!
//! Findings stream as JSON lines (the house wire style) and are gated
//! by a checked-in ratchet ([`baseline`]): pre-existing violations are
//! frozen per `(rule, file)` and may only shrink.
//!
//! The crate is deliberately dependency-free — not even the internal
//! crates — so the lint keeps working (and keeps failing loudly) even
//! when the code it checks does not compile.

pub mod baseline;
pub mod consistency;
pub mod rules;
pub mod scan;

use std::path::{Path, PathBuf};

/// One lint finding: a rule id, a repo-relative file, a 1-based line
/// (0 when the finding is about a whole artifact), and a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule id (e.g. `serving-panic`), the baseline key's first
    /// half.
    pub rule: &'static str,
    /// Repo-relative path of the offending file, the key's second half.
    pub file: String,
    /// 1-based line number; 0 for whole-artifact findings.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl Finding {
    /// Construct a finding.
    pub fn new(rule: &'static str, file: impl Into<String>, line: usize, msg: String) -> Finding {
        Finding {
            rule,
            file: file.into(),
            line,
            msg,
        }
    }

    /// The finding as one JSON line in the house wire style.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"type\":\"finding\",\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"msg\":\"{}\"}}",
            json_escape(self.rule),
            json_escape(&self.file),
            self.line,
            json_escape(&self.msg)
        )
    }
}

/// Escape a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Repo-relative paths of every first-party Rust source file: `src/`
/// and `crates/*/src/`, recursively. `vendor/` (offline shims),
/// `target/` and per-crate `tests/` are out of scope — the rules govern
/// shipping code.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<String>> {
    let mut files = Vec::new();
    let mut roots: Vec<PathBuf> = vec![root.join("src")];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                roots.push(src);
            }
        }
    }
    for dir in roots {
        walk(&dir, &mut |path| {
            if path.extension().is_some_and(|e| e == "rs") {
                if let Ok(rel) = path.strip_prefix(root) {
                    files.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        })?;
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, visit: &mut impl FnMut(&Path)) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk(&path, visit)?;
        } else {
            visit(&path);
        }
    }
    Ok(())
}

/// Lint the whole repo at `root`: source rules over every workspace
/// source file, plus the cross-artifact consistency checks.
pub fn lint_repo(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for rel in workspace_sources(root)? {
        let text = std::fs::read_to_string(root.join(&rel))?;
        let scanned = scan::ScannedFile::new(rel, &text);
        findings.extend(rules::check_file(&scanned, false));
    }
    findings.extend(consistency::check_all(root));
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(findings)
}
