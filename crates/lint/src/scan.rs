//! Minimal Rust source model for the lint rules: strip comments and
//! string literals (so rule patterns never match prose), and mark the
//! `#[cfg(test)]` / `#[test]` regions (so test code is exempt from the
//! serving-path rules).
//!
//! This is deliberately **not** a Rust parser. The rules only need three
//! facts per source position — "is this code?", "is this inside a test
//! region?", "what brace depth is this?" — and a character-level state
//! machine answers all three without a syntax tree. The trade-off is
//! documented per rule: matching is conservative and textual, and the
//! baseline ratchet (see [`crate::baseline`]) absorbs any pre-existing
//! site a rule is too blunt about.

/// One scanned source file: the raw text, the comment/string-stripped
/// text (same length, same line structure), and the per-line test mask.
#[derive(Debug)]
pub struct ScannedFile {
    /// Path as reported in findings (repo-relative when scanned via
    /// [`crate::rules`]' repo walk).
    pub rel_path: String,
    /// Original lines, used only where prose matters (doc-comment
    /// detection).
    pub raw_lines: Vec<String>,
    /// Lines with comments and string/char literals blanked to spaces.
    /// Byte offsets line up with `raw_lines`.
    pub code_lines: Vec<String>,
    /// `true` for every line inside a `#[cfg(test)]` or `#[test]` item.
    pub test_lines: Vec<bool>,
}

impl ScannedFile {
    /// Scan `text` into the stripped + test-masked model.
    pub fn new(rel_path: impl Into<String>, text: &str) -> ScannedFile {
        let stripped = strip(text);
        let test_mask = test_regions(&stripped, text.lines().count());
        ScannedFile {
            rel_path: rel_path.into(),
            raw_lines: text.lines().map(str::to_string).collect(),
            code_lines: stripped.lines().map(str::to_string).collect(),
            test_lines: test_mask,
        }
    }

    /// The stripped text re-joined (used by scope-aware rules that need
    /// to see across lines).
    pub fn code_text(&self) -> String {
        self.code_lines.join("\n")
    }
}

/// Replace every comment and string/character literal in `text` with
/// spaces, preserving length and newlines so byte offsets and line
/// numbers survive. Handles nested block comments, raw strings with any
/// number of `#`s, byte/raw-byte strings, char literals, and leaves
/// lifetimes (`'a`) alone.
pub fn strip(text: &str) -> String {
    let b = text.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(b.len());
    let mut i = 0;
    // Push `n` blanks, preserving newlines from the source range.
    let blank = |out: &mut Vec<u8>, src: &[u8]| {
        for &c in src {
            out.push(if c == b'\n' { b'\n' } else { b' ' });
        }
    };
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let end = text[i..].find('\n').map_or(b.len(), |p| i + p);
                blank(&mut out, &b[i..end]);
                i = end;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < b.len() && depth > 0 {
                    if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                blank(&mut out, &b[i..j]);
                i = j;
            }
            b'"' => {
                let j = skip_string(b, i);
                blank(&mut out, &b[i..j]);
                i = j;
            }
            b'r' | b'b' if starts_raw_or_byte_string(b, i) => {
                let j = skip_raw_or_byte_string(b, i);
                blank(&mut out, &b[i..j]);
                i = j;
            }
            b'\'' => {
                // Char literal vs lifetime: a char literal closes with a
                // `'` within a few bytes; a lifetime never does.
                if let Some(j) = char_literal_end(b, i) {
                    blank(&mut out, &b[i..j]);
                    i = j;
                } else {
                    out.push(b'\'');
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    // Only ASCII is ever replaced, so the output is valid UTF-8.
    String::from_utf8(out).unwrap_or_default()
}

/// End (exclusive) of the plain string literal starting at `i` (which
/// must be `"`), honouring backslash escapes.
fn skip_string(b: &[u8], i: usize) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Whether position `i` starts one of `r"`, `r#"`, `b"`, `br"`, `br#"`
/// (a raw or byte string prefix rather than an identifier).
fn starts_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    // Reject when the r/b is the tail of an identifier (e.g. `var"`
    // cannot happen, but `attr` followed by `"`... guard anyway).
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        return false;
    }
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j < b.len() && b[j] == b'r' {
        j += 1;
        while j < b.len() && b[j] == b'#' {
            j += 1;
        }
    }
    j < b.len() && b[j] == b'"' && j > i
}

/// End (exclusive) of the raw/byte string starting at `i`.
fn skip_raw_or_byte_string(b: &[u8], i: usize) -> usize {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    let raw = j < b.len() && b[j] == b'r';
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    debug_assert!(j < b.len() && b[j] == b'"');
    j += 1; // opening quote
    if !raw {
        // Plain byte string: same escape rules as a normal string.
        while j < b.len() {
            match b[j] {
                b'\\' => j += 2,
                b'"' => return j + 1,
                _ => j += 1,
            }
        }
        return j;
    }
    // Raw: ends at `"` followed by `hashes` hashes, no escapes.
    while j < b.len() {
        if b[j] == b'"'
            && b[j + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == b'#')
                .count()
                == hashes
        {
            return j + 1 + hashes;
        }
        j += 1;
    }
    j
}

/// If a char literal starts at `i` (a `'`), its end (exclusive);
/// `None` when this is a lifetime.
fn char_literal_end(b: &[u8], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if j >= b.len() {
        return None;
    }
    if b[j] == b'\\' {
        // Escape: consume up to the closing quote (handles \n, \u{...}).
        j += 1;
        while j < b.len() && b[j] != b'\'' {
            j += 1;
        }
        return (j < b.len()).then_some(j + 1);
    }
    // Unescaped: exactly one scalar then a quote ⇒ char literal.
    // (Multi-byte UTF-8 scalars are fine: skip continuation bytes.)
    j += 1;
    while j < b.len() && (b[j] & 0xC0) == 0x80 {
        j += 1;
    }
    (j < b.len() && b[j] == b'\'').then_some(j + 1)
}

/// Per-line test mask: `true` inside any item introduced by
/// `#[cfg(test)]` or `#[test]` (the attribute line itself included).
/// Works on the *stripped* text so string contents can't fake an
/// attribute.
fn test_regions(stripped: &str, line_count: usize) -> Vec<bool> {
    let mut mask = vec![false; line_count];
    let bytes = stripped.as_bytes();
    // Byte offset → line number.
    let mut line_starts = vec![0usize];
    for (i, &c) in bytes.iter().enumerate() {
        if c == b'\n' {
            line_starts.push(i + 1);
        }
    }
    let line_of = |pos: usize| -> usize {
        match line_starts.binary_search(&pos) {
            Ok(l) => l,
            Err(l) => l - 1,
        }
    };
    for attr in ["#[cfg(test)]", "#[test]"] {
        let mut from = 0usize;
        while let Some(p) = stripped[from..].find(attr) {
            let start = from + p;
            from = start + attr.len();
            // Find the start of the item body: the first `{` after the
            // attribute — or stop at a `;` (e.g. `mod tests;`) first.
            let mut j = start + attr.len();
            let mut open = None;
            while j < bytes.len() {
                match bytes[j] {
                    b'{' => {
                        open = Some(j);
                        break;
                    }
                    b';' => break,
                    _ => j += 1,
                }
            }
            let Some(open) = open else { continue };
            // Matching close brace.
            let mut depth = 0usize;
            let mut k = open;
            let mut close = bytes.len().saturating_sub(1);
            while k < bytes.len() {
                match bytes[k] {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            close = k;
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            let (a, b) = (line_of(start), line_of(close));
            for l in mask.iter_mut().take(b + 1).skip(a) {
                *l = true;
            }
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_and_strings() {
        let src = r#"let x = "panic!(\"no\")"; // .unwrap()
/* block .expect( */ let y = 'a'; let z: &'static str = r#inner;"#
            .replace("r#inner", "r#\".unwrap()\"#");
        let out = strip(&src);
        assert!(!out.contains("panic!"), "{out}");
        assert!(!out.contains(".unwrap("), "{out}");
        assert!(!out.contains(".expect("), "{out}");
        assert!(out.contains("let x ="), "{out}");
        assert!(out.contains("&'static str"), "lifetime survives: {out}");
        assert_eq!(out.len(), src.len(), "length-preserving");
    }

    #[test]
    fn marks_test_regions() {
        let src = "fn live() { a.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { b.unwrap(); }\n\
                   }\n\
                   fn live2() {}\n";
        let f = ScannedFile::new("x.rs", src);
        assert!(!f.test_lines[0]);
        assert!(f.test_lines[1] && f.test_lines[2] && f.test_lines[3] && f.test_lines[4]);
        assert!(!f.test_lines[5]);
    }

    #[test]
    fn test_attribute_marks_single_fn() {
        let src = "#[test]\nfn t() {\n    x.unwrap();\n}\nfn live() {}\n";
        let f = ScannedFile::new("x.rs", src);
        assert!(f.test_lines[0] && f.test_lines[1] && f.test_lines[2] && f.test_lines[3]);
        assert!(!f.test_lines[4]);
    }

    #[test]
    fn external_test_mod_declaration_has_no_region() {
        let f = ScannedFile::new(
            "x.rs",
            "#[cfg(test)]\nmod tests;\nfn live() { a.unwrap(); }\n",
        );
        assert!(!f.test_lines[2]);
    }
}
