// Fixture: fires `serving-panic` (unreachable!) and nothing else.
fn serve(x: u32) -> u32 {
    match x {
        0 => 1,
        _ => unreachable!(),
    }
}
