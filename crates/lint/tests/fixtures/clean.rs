// Fixture: passes every rule. The strings and comments below contain
// every banned pattern to prove the scanner strips them, and the test
// region at the bottom may panic freely.

/// Documented public item.
pub fn serve(x: Option<u32>) -> u32 {
    // prose mentions .unwrap( and panic! and std::process::exit
    let msg = "strings mention .expect( and unreachable! too";
    let fallback = msg.len() as u32;
    x.unwrap_or(fallback)
}

fn scoped_guard(store: &Store) {
    {
        let guard = store.inner.read().unwrap_or_else(std::sync::PoisonError::into_inner);
        drop(guard);
    }
    let snap = store.snapshot();
    drop(snap);
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
