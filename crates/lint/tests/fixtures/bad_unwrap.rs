// Fixture: fires `serving-panic` (unwrap) and nothing else.
fn serve(x: Option<u32>) -> u32 {
    x.unwrap()
}
