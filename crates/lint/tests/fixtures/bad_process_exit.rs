// Fixture: fires `process-exit` and nothing else.
fn serve(code: i32) {
    std::process::exit(code);
}
