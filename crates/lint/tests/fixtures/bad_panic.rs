// Fixture: fires `serving-panic` (panic!) and nothing else.
fn serve(x: u32) -> u32 {
    if x > 9 {
        panic!("fixture");
    }
    x
}
