// Fixture: fires `serving-panic` (expect) and nothing else.
fn serve(x: Option<u32>) -> u32 {
    x.expect("fixture")
}
