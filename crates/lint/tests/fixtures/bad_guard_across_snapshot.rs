// Fixture: fires `guard-across-snapshot` and nothing else.
fn serve(store: &Store) {
    let guard = store.inner.read().unwrap_or_else(std::sync::PoisonError::into_inner);
    let snap = store.snapshot();
    drop((guard, snap));
}
