// Fixture: fires `pub-undocumented` and nothing else.
pub fn serve() {}
