//! Rule coverage via fixtures: every known-bad file under
//! `tests/fixtures/` must fire exactly its rule, the clean file must
//! pass everything, and the live repo must be clean modulo the
//! committed baseline.

use dmcs_lint::rules::{
    check_file, RULE_GUARD_ACROSS_SNAPSHOT, RULE_PROCESS_EXIT, RULE_PUB_UNDOCUMENTED,
    RULE_SERVING_PANIC,
};
use dmcs_lint::scan::ScannedFile;
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> ScannedFile {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"));
    ScannedFile::new(name, &text)
}

/// The bad fixture must produce at least one finding, every finding
/// must be of the expected rule, and no other rule may fire.
fn assert_fires_exactly(name: &str, rule: &str) {
    let findings = check_file(&fixture(name), true);
    assert!(
        !findings.is_empty(),
        "{name}: expected `{rule}` findings, got none"
    );
    for f in &findings {
        assert_eq!(
            f.rule, rule,
            "{name}: expected only `{rule}`, also fired `{}` at line {}: {}",
            f.rule, f.line, f.msg
        );
    }
}

#[test]
fn bad_unwrap_fires_serving_panic() {
    assert_fires_exactly("bad_unwrap.rs", RULE_SERVING_PANIC);
}

#[test]
fn bad_expect_fires_serving_panic() {
    assert_fires_exactly("bad_expect.rs", RULE_SERVING_PANIC);
}

#[test]
fn bad_panic_fires_serving_panic() {
    assert_fires_exactly("bad_panic.rs", RULE_SERVING_PANIC);
}

#[test]
fn bad_unreachable_fires_serving_panic() {
    assert_fires_exactly("bad_unreachable.rs", RULE_SERVING_PANIC);
}

#[test]
fn bad_guard_fires_guard_across_snapshot() {
    assert_fires_exactly("bad_guard_across_snapshot.rs", RULE_GUARD_ACROSS_SNAPSHOT);
}

#[test]
fn bad_process_exit_fires_process_exit() {
    assert_fires_exactly("bad_process_exit.rs", RULE_PROCESS_EXIT);
}

#[test]
fn bad_missing_doc_fires_pub_undocumented() {
    assert_fires_exactly("bad_missing_doc.rs", RULE_PUB_UNDOCUMENTED);
}

#[test]
fn clean_fixture_passes_every_rule() {
    let findings = check_file(&fixture("clean.rs"), true);
    assert!(findings.is_empty(), "clean.rs must pass: {findings:?}");
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels under the repo root")
        .to_path_buf()
}

/// The live repo is clean modulo `lint-baseline.txt` — the same gate CI
/// applies, run in-process.
#[test]
fn repo_self_check_modulo_baseline() {
    let root = repo_root();
    let findings = dmcs_lint::lint_repo(&root).expect("repo walk");
    let frozen =
        dmcs_lint::baseline::load(&root.join("lint-baseline.txt")).expect("baseline parses");
    let verdict = dmcs_lint::baseline::apply(&findings, &frozen);
    assert!(
        verdict.ok(),
        "repo lint failed:\nnew: {:#?}\nstale: {:?}",
        verdict.new,
        verdict.stale
    );
}

/// The gate itself gates: the binary exits nonzero on a seeded
/// violation and reports it as a JSON finding line.
#[test]
fn binary_flags_seeded_violation() {
    let bad = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bad_unwrap.rs");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_dmcs-lint"))
        .arg("--serving-file")
        .arg(&bad)
        .output()
        .expect("spawn dmcs-lint");
    assert_eq!(
        out.status.code(),
        Some(1),
        "seeded violation must fail the gate"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"rule\":\"serving-panic\""),
        "findings must stream as JSON lines: {stdout}"
    );
    assert!(
        stdout.contains("\"type\":\"lint-summary\""),
        "a summary line closes the report: {stdout}"
    );
}
