//! Maximal clique enumeration (Bron–Kerbosch with pivoting) and k-clique
//! percolation — the substrate of the `clique` baseline (index-based densest
//! clique percolation community search, Yuan et al. 2017).
//!
//! A *k-clique percolation community* is a union of k-cliques chained by
//! adjacency (two k-cliques are adjacent when they share k−1 nodes). We
//! follow the standard reduction: enumerate maximal cliques of size ≥ k,
//! connect two maximal cliques when they share ≥ k−1 nodes, and take
//! connected components of that overlap graph. The paper only runs `clique`
//! on the small datasets (it is the slowest baseline in Fig 16); the same
//! holds here.

use crate::{Graph, NodeId};

/// All maximal cliques of `g`, each sorted ascending.
/// Classic Bron–Kerbosch with greedy pivoting; exponential in the worst
/// case, fine on the sparse social graphs the baseline targets.
pub fn maximal_cliques(g: &Graph) -> Vec<Vec<NodeId>> {
    let mut out = Vec::new();
    let mut r: Vec<NodeId> = Vec::new();
    let p: Vec<NodeId> = g.nodes().collect();
    let x: Vec<NodeId> = Vec::new();
    bron_kerbosch(g, &mut r, p, x, &mut out);
    out
}

fn bron_kerbosch(
    g: &Graph,
    r: &mut Vec<NodeId>,
    p: Vec<NodeId>,
    x: Vec<NodeId>,
    out: &mut Vec<Vec<NodeId>>,
) {
    if p.is_empty() && x.is_empty() {
        let mut clique = r.clone();
        clique.sort_unstable();
        out.push(clique);
        return;
    }
    // Pivot: the P∪X node with the most neighbours in P minimises branching.
    let pivot = p
        .iter()
        .chain(x.iter())
        .copied()
        .max_by_key(|&u| p.iter().filter(|&&v| g.has_edge(u, v)).count())
        .expect("P or X non-empty");
    let candidates: Vec<NodeId> = p
        .iter()
        .copied()
        .filter(|&v| !g.has_edge(pivot, v))
        .collect();
    let mut p = p;
    let mut x = x;
    for v in candidates {
        let np: Vec<NodeId> = p.iter().copied().filter(|&u| g.has_edge(u, v)).collect();
        let nx: Vec<NodeId> = x.iter().copied().filter(|&u| g.has_edge(u, v)).collect();
        r.push(v);
        bron_kerbosch(g, r, np, nx, out);
        r.pop();
        p.retain(|&u| u != v);
        x.push(v);
    }
}

/// k-clique percolation communities containing the query node `q`:
/// the union of nodes of every chain of (≥ k)-cliques overlapping in ≥ k−1
/// nodes that reaches a clique containing `q`. Returns `None` if `q` is in
/// no clique of size ≥ k.
pub fn clique_percolation_community(g: &Graph, k: usize, q: NodeId) -> Option<Vec<NodeId>> {
    let cliques: Vec<Vec<NodeId>> = maximal_cliques(g)
        .into_iter()
        .filter(|c| c.len() >= k)
        .collect();
    if cliques.is_empty() {
        return None;
    }
    // Union-find over cliques sharing >= k-1 nodes.
    let mut parent: Vec<usize> = (0..cliques.len()).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    for i in 0..cliques.len() {
        for j in (i + 1)..cliques.len() {
            if sorted_overlap(&cliques[i], &cliques[j]) >= k - 1 {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }
    // Collect nodes of all cliques whose class contains a clique with q.
    let q_classes: std::collections::HashSet<usize> = (0..cliques.len())
        .filter(|&i| cliques[i].binary_search(&q).is_ok())
        .map(|i| find(&mut parent, i))
        .collect();
    if q_classes.is_empty() {
        return None;
    }
    let mut nodes: Vec<NodeId> = (0..cliques.len())
        .filter(|&i| q_classes.contains(&find(&mut parent, i)))
        .flat_map(|i| cliques[i].iter().copied())
        .collect();
    nodes.sort_unstable();
    nodes.dedup();
    Some(nodes)
}

fn sorted_overlap(a: &[NodeId], b: &[NodeId]) -> usize {
    let (mut i, mut j, mut c) = (0, 0, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn triangle_is_one_clique() {
        let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let cs = maximal_cliques(&g);
        assert_eq!(cs, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn path_cliques_are_edges() {
        let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 2)]);
        let mut cs = maximal_cliques(&g);
        cs.sort();
        assert_eq!(cs, vec![vec![0, 1], vec![1, 2]]);
    }

    #[test]
    fn k4_with_pendant() {
        let g =
            GraphBuilder::from_edges(5, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)]);
        let mut cs = maximal_cliques(&g);
        cs.sort();
        assert_eq!(cs, vec![vec![0, 1, 2, 3], vec![3, 4]]);
    }

    #[test]
    fn clique_count_matches_known_formula_for_complete_bipartite() {
        // K_{2,3}: maximal cliques are exactly the 6 edges.
        let g = GraphBuilder::from_edges(5, &[(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)]);
        assert_eq!(maximal_cliques(&g).len(), 6);
    }

    #[test]
    fn percolation_chains_overlapping_triangles() {
        // Triangles {0,1,2} and {1,2,3} share an edge -> one 3-clique
        // community {0,1,2,3}; triangle {5,6,7} is separate.
        let g = GraphBuilder::from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (0, 2),
                (1, 3),
                (2, 3),
                (3, 4), // pendant edge, not in any triangle
                (5, 6),
                (6, 7),
                (5, 7),
            ],
        );
        let c = clique_percolation_community(&g, 3, 0).unwrap();
        assert_eq!(c, vec![0, 1, 2, 3]);
        let c5 = clique_percolation_community(&g, 3, 5).unwrap();
        assert_eq!(c5, vec![5, 6, 7]);
        assert_eq!(clique_percolation_community(&g, 3, 4), None);
    }

    #[test]
    fn percolation_does_not_leak_through_single_shared_node() {
        // Two triangles sharing only node 2: share 1 < k-1 = 2 nodes.
        let g = GraphBuilder::from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]);
        let c = clique_percolation_community(&g, 3, 0).unwrap();
        assert_eq!(c, vec![0, 1, 2]);
    }
}
