//! Local clustering coefficients and transitivity.
//!
//! §6.3 of the paper explains NCA's dataset-dependent accuracy through the
//! *difference of the average local clustering coefficients* of the two
//! ground-truth communities ("around 10% in Karate and Mexican, 20–50% in
//! Dolphin and Polblogs"). This module provides exactly that diagnostic,
//! and the experiment harness reports it for the Fig 15 datasets.

use crate::{Graph, NodeId};

/// Local clustering coefficient of `v`: the fraction of its neighbour
/// pairs that are themselves adjacent. 0 for degree < 2.
pub fn local_clustering(g: &Graph, v: NodeId) -> f64 {
    let nbrs = g.neighbors(v);
    let d = nbrs.len();
    if d < 2 {
        return 0.0;
    }
    let mut links = 0u64;
    for (i, &a) in nbrs.iter().enumerate() {
        for &b in &nbrs[i + 1..] {
            if g.has_edge(a, b) {
                links += 1;
            }
        }
    }
    2.0 * links as f64 / (d as f64 * (d as f64 - 1.0))
}

/// Average local clustering coefficient over `nodes` (0 for an empty set).
pub fn average_clustering(g: &Graph, nodes: &[NodeId]) -> f64 {
    if nodes.is_empty() {
        return 0.0;
    }
    nodes.iter().map(|&v| local_clustering(g, v)).sum::<f64>() / nodes.len() as f64
}

/// Global transitivity: `3 × triangles / connected triples`.
pub fn transitivity(g: &Graph) -> f64 {
    let triangles = crate::truss::triangle_count(g);
    let triples: u64 = g
        .nodes()
        .map(|v| {
            let d = g.degree(v) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum();
    if triples == 0 {
        0.0
    } else {
        3.0 * triangles as f64 / triples as f64
    }
}

/// The §6.3 diagnostic: the absolute difference of the average local
/// clustering coefficients of two communities, relative to their mean.
/// Large values predict trouble for NCA.
pub fn clustering_imbalance(g: &Graph, a: &[NodeId], b: &[NodeId]) -> f64 {
    let (ca, cb) = (average_clustering(g, a), average_clustering(g, b));
    let mean = 0.5 * (ca + cb);
    if mean == 0.0 {
        0.0
    } else {
        (ca - cb).abs() / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn clique_has_coefficient_one() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        for v in 0..4 {
            assert!((local_clustering(&g, v) - 1.0).abs() < 1e-12);
        }
        assert!((transitivity(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn star_has_coefficient_zero() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(local_clustering(&g, 0), 0.0);
        assert_eq!(local_clustering(&g, 1), 0.0);
        assert_eq!(transitivity(&g), 0.0);
    }

    #[test]
    fn triangle_with_tail() {
        // Node 2 has neighbours {0, 1, 3}: one of three pairs adjacent.
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        assert!((local_clustering(&g, 2) - 1.0 / 3.0).abs() < 1e-12);
        assert!((local_clustering(&g, 0) - 1.0).abs() < 1e-12);
        assert_eq!(local_clustering(&g, 3), 0.0);
    }

    #[test]
    fn imbalance_detects_asymmetry() {
        // Block A: a clique (clustering 1); block B: a star (clustering 0).
        let g = GraphBuilder::from_edges(
            8,
            &[
                (0, 1),
                (0, 2),
                (1, 2),
                (3, 4),
                (4, 5),
                (4, 6),
                (4, 7),
                (2, 4),
            ],
        );
        let a = vec![0, 1, 2];
        let b = vec![3, 4, 5, 6, 7];
        assert!(clustering_imbalance(&g, &a, &b) > 1.0);
        assert!(clustering_imbalance(&g, &a, &a) < 1e-12);
    }

    #[test]
    fn average_over_empty_is_zero() {
        let g = GraphBuilder::from_edges(2, &[(0, 1)]);
        assert_eq!(average_clustering(&g, &[]), 0.0);
    }
}
