//! Whole-graph summary statistics — the numbers a Table-1-style dataset
//! description reports (size, density, degree distribution, clustering,
//! assortativity, component structure).

use crate::clustering::{average_clustering, transitivity};
use crate::traversal::connected_components;
use crate::{Graph, NodeId};

/// Summary statistics of one graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub n: usize,
    /// Number of edges.
    pub m: usize,
    /// Minimum degree.
    pub min_degree: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Mean degree `2m/n`.
    pub mean_degree: f64,
    /// Edge density `m / (n(n−1)/2)`.
    pub density: f64,
    /// Global clustering coefficient (transitivity).
    pub transitivity: f64,
    /// Mean local clustering coefficient.
    pub average_clustering: f64,
    /// Degree assortativity (Pearson correlation of endpoint degrees);
    /// 0 for degenerate graphs (no edges or constant degree).
    pub assortativity: f64,
    /// Number of connected components.
    pub components: usize,
    /// Node count of the largest component.
    pub largest_component: usize,
}

impl GraphStats {
    /// Compute every statistic. `O(n·d_max²)` from the clustering terms.
    ///
    /// ```
    /// use dmcs_graph::stats::GraphStats;
    /// use dmcs_graph::GraphBuilder;
    ///
    /// let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
    /// let s = GraphStats::compute(&g);
    /// assert_eq!((s.n, s.m, s.components), (4, 4, 1));
    /// assert_eq!(s.max_degree, 3);
    /// assert!(s.transitivity > 0.0, "one triangle present");
    /// ```
    pub fn compute(g: &Graph) -> Self {
        let n = g.n();
        let m = g.m();
        let degrees: Vec<usize> = (0..n as NodeId).map(|v| g.degree(v)).collect();
        let (labels, components) = connected_components(g);
        let mut comp_sizes = vec![0usize; components];
        for &l in &labels {
            comp_sizes[l as usize] += 1;
        }
        GraphStats {
            n,
            m,
            min_degree: degrees.iter().copied().min().unwrap_or(0),
            max_degree: degrees.iter().copied().max().unwrap_or(0),
            mean_degree: if n == 0 {
                0.0
            } else {
                2.0 * m as f64 / n as f64
            },
            density: if n < 2 {
                0.0
            } else {
                m as f64 / (n as f64 * (n as f64 - 1.0) / 2.0)
            },
            transitivity: transitivity(g),
            average_clustering: {
                let all: Vec<NodeId> = g.nodes().collect();
                average_clustering(g, &all)
            },
            assortativity: degree_assortativity(g),
            components,
            largest_component: comp_sizes.iter().copied().max().unwrap_or(0),
        }
    }
}

/// Degree assortativity: the Pearson correlation of the degrees at the two
/// ends of an edge, over all edges counted in both directions (Newman
/// 2002). Returns 0 when undefined (no edges, or all degrees equal).
pub fn degree_assortativity(g: &Graph) -> f64 {
    if g.m() == 0 {
        return 0.0;
    }
    // Sums over directed edge endpoints (each undirected edge twice).
    let (mut sx, mut sxx, mut sxy) = (0.0f64, 0.0f64, 0.0f64);
    let mut cnt = 0.0f64;
    for u in 0..g.n() as NodeId {
        let du = g.degree(u) as f64;
        for &v in g.neighbors(u) {
            let dv = g.degree(v) as f64;
            sx += du;
            sxx += du * du;
            sxy += du * dv;
            cnt += 1.0;
        }
    }
    // Symmetric, so mean/variance of both endpoint sequences coincide.
    let mean = sx / cnt;
    let var = sxx / cnt - mean * mean;
    if var <= 1e-15 {
        return 0.0;
    }
    let cov = sxy / cnt - mean * mean;
    cov / var
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn path_graph_stats() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let s = GraphStats::compute(&g);
        assert_eq!((s.n, s.m), (4, 3));
        assert_eq!((s.min_degree, s.max_degree), (1, 2));
        assert!((s.mean_degree - 1.5).abs() < 1e-12);
        assert!((s.density - 0.5).abs() < 1e-12);
        assert_eq!(s.transitivity, 0.0, "paths have no triangles");
        assert_eq!(s.components, 1);
        assert_eq!(s.largest_component, 4);
    }

    #[test]
    fn complete_graph_is_maximally_clustered() {
        let mut b = GraphBuilder::new(5);
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                b.add_edge(u, v);
            }
        }
        let s = GraphStats::compute(&b.build());
        assert!((s.density - 1.0).abs() < 1e-12);
        assert!((s.transitivity - 1.0).abs() < 1e-12);
        assert!((s.average_clustering - 1.0).abs() < 1e-12);
        // Regular graph: assortativity undefined -> 0 by convention.
        assert_eq!(s.assortativity, 0.0);
    }

    #[test]
    fn components_counted() {
        let g = GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let s = GraphStats::compute(&g);
        assert_eq!(s.components, 3); // {0,1,2}, {3,4}, {5}
        assert_eq!(s.largest_component, 3);
        assert_eq!(s.min_degree, 0);
    }

    #[test]
    fn star_graph_is_disassortative() {
        let edges: Vec<(u32, u32)> = (1..8).map(|i| (0, i)).collect();
        let g = GraphBuilder::from_edges(8, &edges);
        let r = degree_assortativity(&g);
        assert!(r < -0.9, "stars are maximally disassortative, got {r}");
    }

    #[test]
    fn empty_graph_degenerate_zeros() {
        let s = GraphStats::compute(&GraphBuilder::new(0).build());
        assert_eq!((s.n, s.m, s.components), (0, 0, 0));
        assert_eq!(s.mean_degree, 0.0);
        assert_eq!(s.assortativity, 0.0);
    }

    #[test]
    fn assortativity_bounds() {
        // Any graph: r in [-1, 1].
        for seed in 0..5u64 {
            let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D).max(1);
            let mut b = GraphBuilder::new(12);
            for u in 0..12u32 {
                for v in (u + 1)..12 {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    if state % 4 == 0 {
                        b.add_edge(u, v);
                    }
                }
            }
            let r = degree_assortativity(&b.build());
            assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "seed {seed}: {r}");
        }
    }
}
