//! Locality-aware CSR node renumbering.
//!
//! The CSR substrate serves queries whose working set is one connected
//! component, but nothing guarantees that a component's rows sit near
//! each other in the neighbour array — real edge lists arrive in
//! arbitrary id order, and a BFS over a scattered component touches one
//! cache line per node. This module renumbers nodes so that topological
//! neighbours become memory neighbours:
//!
//! - [`LayoutPolicy::Degree`] — hubs first (descending degree). Groups
//!   the high-traffic rows at the front of the array, the classic
//!   push/pull layout for power-law graphs.
//! - [`LayoutPolicy::Bfs`] — breadth-first visitation order per
//!   component. Frontier neighbours land in adjacent rows, so the BFS
//!   and peeling loops stream the neighbour array nearly sequentially.
//! - [`LayoutPolicy::Rcm`] — reverse Cuthill–McKee: BFS from a minimum
//!   degree seed expanding cheapest-first, then reversed; the standard
//!   bandwidth-minimising ordering from sparse linear algebra.
//!
//! A renumbered graph is **internal only**. Every public surface of the
//! engine — queries, updates, shard assignment, JSON output, cache keys
//! — speaks stable *external* ids; the [`NodeMap`] carried by a
//! [`ComputeGraph`] translates in both directions and is
//! identity-optimized so stores that never opt in pay nothing.
//!
//! How the serving search path runs on the permuted graph without
//! changing a byte of output: the peeling algorithms break density
//! ties by node id, so executing naively on permuted ids could select
//! a *different* equally-dense community. Instead, the kernels carry
//! the mirror's [`NodeMap`] as a **canonical tie-break shim** — every
//! id-based tie compares *canonical external ids*
//! ([`NodeMap::to_external`]) even while the traversal streams the
//! renumbered CSR, and results are translated back to external ids at
//! the session boundary. Density values themselves are derived from
//! integer edge/degree counts, which are isomorphism-invariant, so the
//! full removal sequence (and therefore the response JSON) is
//! byte-identical under every layout policy. The planner
//! (`dmcs-engine`'s `QueryPlan`) decides per snapshot whether serving
//! uses the mirror; weighted kernels accumulate floating-point sums in
//! traversal order and stay on the canonical CSR.

use crate::bits::BitMask;
use crate::traversal::connected_components;
use crate::{Graph, NodeId};
use std::sync::Arc;

/// Node renumbering policy of a store or snapshot. `Identity` is the
/// default and costs nothing; the other policies build a permuted
/// compute mirror at snapshot-build time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LayoutPolicy {
    /// Keep external ids as internal ids (no mirror is built).
    #[default]
    Identity,
    /// Descending-degree order (hubs first), ties broken by id.
    Degree,
    /// Per-component breadth-first visitation order.
    Bfs,
    /// Reverse Cuthill–McKee (bandwidth-minimising) order.
    Rcm,
}

impl LayoutPolicy {
    /// All policies, in the order the CLI documents them.
    pub const ALL: [LayoutPolicy; 4] = [
        LayoutPolicy::Identity,
        LayoutPolicy::Degree,
        LayoutPolicy::Bfs,
        LayoutPolicy::Rcm,
    ];

    /// The canonical lowercase name (`identity`, `degree`, `bfs`, `rcm`).
    pub fn as_str(self) -> &'static str {
        match self {
            LayoutPolicy::Identity => "identity",
            LayoutPolicy::Degree => "degree",
            LayoutPolicy::Bfs => "bfs",
            LayoutPolicy::Rcm => "rcm",
        }
    }
}

impl std::str::FromStr for LayoutPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "identity" => Ok(LayoutPolicy::Identity),
            "degree" => Ok(LayoutPolicy::Degree),
            "bfs" => Ok(LayoutPolicy::Bfs),
            "rcm" => Ok(LayoutPolicy::Rcm),
            other => Err(format!(
                "unknown layout policy '{other}' (expected identity, degree, bfs or rcm)"
            )),
        }
    }
}

impl std::fmt::Display for LayoutPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Bidirectional external↔internal id translation for one renumbered
/// graph. Identity maps carry no allocation and translate in `O(1)`
/// with no memory traffic, so un-renumbered stores pay nothing.
#[derive(Debug, Clone, Default)]
pub struct NodeMap {
    inner: Option<Arc<MapInner>>,
}

#[derive(Debug)]
struct MapInner {
    /// `to_internal[external] = internal`.
    to_internal: Vec<NodeId>,
    /// `to_external[internal] = external`.
    to_external: Vec<NodeId>,
}

impl NodeMap {
    /// The identity map (every id maps to itself).
    pub fn identity() -> NodeMap {
        NodeMap { inner: None }
    }

    /// Build a map from an ordering where `order[internal] = external`.
    /// `order` must be a permutation of `0..order.len()`.
    pub fn from_order(order: &[NodeId]) -> NodeMap {
        let mut to_internal = vec![0 as NodeId; order.len()];
        for (internal, &external) in order.iter().enumerate() {
            to_internal[external as usize] = internal as NodeId;
        }
        NodeMap {
            inner: Some(Arc::new(MapInner {
                to_internal,
                to_external: order.to_vec(),
            })),
        }
    }

    /// Whether this is the allocation-free identity map.
    pub fn is_identity(&self) -> bool {
        self.inner.is_none()
    }

    /// Translate an external (public, stable) id to the internal
    /// (permuted CSR) id.
    #[inline]
    pub fn to_internal(&self, external: NodeId) -> NodeId {
        match &self.inner {
            Some(m) => m.to_internal[external as usize],
            None => external,
        }
    }

    /// Translate an internal (permuted CSR) id back to the external id.
    #[inline]
    pub fn to_external(&self, internal: NodeId) -> NodeId {
        match &self.inner {
            Some(m) => m.to_external[internal as usize],
            None => internal,
        }
    }

    /// The raw internal→external table, or `None` for the identity map.
    /// Hot loops that consult the canonical order per comparison (the
    /// peeling tie-break shim) hoist this slice once instead of paying
    /// `to_external`'s `Option` + `Arc` indirection on every call.
    #[inline]
    pub fn external_ids(&self) -> Option<&[NodeId]> {
        self.inner.as_ref().map(|m| m.to_external.as_slice())
    }
}

/// A permuted compute mirror of a canonical graph: the renumbered CSR,
/// the [`NodeMap`] that translates ids, and the policy that produced
/// it. Built behind a store's layout policy at snapshot-build time;
/// see the module docs for why serving searches stay on the canonical
/// graph.
#[derive(Debug)]
pub struct ComputeGraph {
    graph: Graph,
    map: NodeMap,
    policy: LayoutPolicy,
    ext_rank: Vec<NodeId>,
}

impl ComputeGraph {
    /// Build the mirror for `policy`. Returns `None` for
    /// [`LayoutPolicy::Identity`] (the canonical graph *is* the mirror;
    /// nothing to build or store).
    pub fn build(g: &Graph, policy: LayoutPolicy) -> Option<ComputeGraph> {
        let order = compute_order(g, policy)?;
        let graph = apply_order(g, &order);
        let map = NodeMap::from_order(&order);
        let ext_rank = build_ext_rank(&graph, &map);
        Some(ComputeGraph {
            graph,
            map,
            policy,
            ext_rank,
        })
    }

    /// The renumbered CSR graph (internal ids).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The external↔internal translation map.
    pub fn map(&self) -> &NodeMap {
        &self.map
    }

    /// The policy that produced this mirror.
    pub fn policy(&self) -> LayoutPolicy {
        self.policy
    }

    /// Canonical-order rank of each internal node *within its connected
    /// component's band*: ranks group nodes by component and ascend by
    /// external id inside each group. A community always lives in one
    /// component, so a serving layer can emit it in canonical sorted
    /// order with a linear bucket-place-and-compact over the band —
    /// replacing the `O(k log k)` sort it would otherwise pay per query
    /// to undo the mirror's permutation. Built once per mirror.
    pub fn ext_rank(&self) -> &[NodeId] {
        &self.ext_rank
    }
}

/// See [`ComputeGraph::ext_rank`]: argsort internal ids by
/// `(component, external id)` and invert.
fn build_ext_rank(mirror: &Graph, map: &NodeMap) -> Vec<NodeId> {
    let (comp, _) = connected_components(mirror);
    let mut order: Vec<NodeId> = (0..mirror.n() as NodeId).collect();
    match map.external_ids() {
        Some(ext) => order.sort_unstable_by_key(|&v| (comp[v as usize], ext[v as usize])),
        None => order.sort_unstable_by_key(|&v| (comp[v as usize], v)),
    }
    let mut rank = vec![0 as NodeId; mirror.n()];
    for (r, &v) in order.iter().enumerate() {
        rank[v as usize] = r as NodeId;
    }
    rank
}

/// Compute the node ordering for `policy`: `order[internal] = external`.
/// Returns `None` for [`LayoutPolicy::Identity`].
pub fn compute_order(g: &Graph, policy: LayoutPolicy) -> Option<Vec<NodeId>> {
    match policy {
        LayoutPolicy::Identity => None,
        LayoutPolicy::Degree => Some(degree_order(g)),
        LayoutPolicy::Bfs => Some(bfs_order(g)),
        LayoutPolicy::Rcm => Some(rcm_order(g)),
    }
}

/// Renumber `g` by an explicit ordering (`order[internal] = external`;
/// must be a permutation of `0..g.n()`). The result is isomorphic to
/// `g` — same degrees, same edges up to relabeling — with the weights
/// lane, when present, permuted alongside the neighbour array. Public
/// so benchmarks and tests can apply custom (e.g. scrambling)
/// permutations through the same code path the store uses.
pub fn apply_order(g: &Graph, order: &[NodeId]) -> Graph {
    let n = g.n();
    assert_eq!(order.len(), n, "order must cover every node");
    let map = NodeMap::from_order(order);
    debug_assert!(
        {
            let mut seen = vec![false; n];
            order.iter().all(|&v| {
                let fresh = !seen[v as usize];
                seen[v as usize] = true;
                fresh
            })
        },
        "order must be a permutation"
    );

    let weighted = g.is_weighted();
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0usize);
    let mut acc = 0usize;
    for &external in order {
        acc += g.degree(external);
        offsets.push(acc);
    }
    let mut neighbors = Vec::with_capacity(acc);
    let mut slot_weight: Option<Vec<f64>> = weighted.then(|| Vec::with_capacity(acc));
    // Per-row scratch: translate, then sort so adjacency stays sorted
    // (the CSR invariant `has_edge` and the views binary-search on).
    let mut row: Vec<(NodeId, f64)> = Vec::new();
    for &external in order {
        row.clear();
        for (u, w) in g.weighted_neighbors(external) {
            row.push((map.to_internal(u), w));
        }
        row.sort_unstable_by_key(|&(v, _)| v);
        neighbors.extend(row.iter().map(|&(v, _)| v));
        if let Some(sw) = &mut slot_weight {
            sw.extend(row.iter().map(|&(_, w)| w));
        }
    }
    let graph = Graph::from_csr(offsets, neighbors);
    match slot_weight {
        Some(sw) => graph.attach_weights(sw),
        None => graph,
    }
}

/// Descending-degree order, ties broken by ascending external id.
fn degree_order(g: &Graph) -> Vec<NodeId> {
    let mut order: Vec<NodeId> = (0..g.n() as NodeId).collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
    order
}

/// Per-component BFS visitation order: components in ascending order of
/// their smallest node id, frontier expanded in sorted-adjacency order.
fn bfs_order(g: &Graph) -> Vec<NodeId> {
    let n = g.n();
    let mut order = Vec::with_capacity(n);
    let mut visited = BitMask::with_len(n);
    let mut queue = std::collections::VecDeque::new();
    for root in 0..n as NodeId {
        if visited.get(root as usize) {
            continue;
        }
        visited.set(root as usize);
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &u in g.neighbors(v) {
                if !visited.get(u as usize) {
                    visited.set(u as usize);
                    queue.push_back(u);
                }
            }
        }
    }
    order
}

/// Reverse Cuthill–McKee: per component, BFS from a minimum-degree seed
/// expanding neighbours cheapest-degree-first, with the full visitation
/// order reversed at the end (components stay contiguous).
fn rcm_order(g: &Graph) -> Vec<NodeId> {
    let n = g.n();
    let (labels, count) = connected_components(g);
    // Minimum-degree seed per component (ties: smallest id — the scan
    // order guarantees it).
    let mut seed: Vec<Option<NodeId>> = vec![None; count];
    for v in 0..n as NodeId {
        let c = labels[v as usize] as usize;
        match seed[c] {
            Some(s) if g.degree(s) <= g.degree(v) => {}
            _ => seed[c] = Some(v),
        }
    }
    let mut order = Vec::with_capacity(n);
    let mut visited = BitMask::with_len(n);
    let mut queue = std::collections::VecDeque::new();
    let mut nbrs: Vec<NodeId> = Vec::new();
    for root in seed.into_iter().flatten() {
        if visited.get(root as usize) {
            continue;
        }
        visited.set(root as usize);
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            nbrs.clear();
            nbrs.extend(
                g.neighbors(v)
                    .iter()
                    .copied()
                    .filter(|&u| !visited.get(u as usize)),
            );
            nbrs.sort_unstable_by_key(|&u| (g.degree(u), u));
            for &u in &nbrs {
                visited.set(u as usize);
                queue.push_back(u);
            }
        }
    }
    order.reverse();
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weighted::WeightedGraphBuilder;
    use crate::GraphBuilder;

    fn two_triangles() -> Graph {
        GraphBuilder::from_edges(7, &[(0, 1), (1, 2), (0, 2), (4, 5), (5, 6), (4, 6), (2, 4)])
    }

    /// Every edge of `g` must appear, relabeled, in `p` and vice versa.
    fn assert_isomorphic(g: &Graph, p: &Graph, map: &NodeMap) {
        assert_eq!(g.n(), p.n());
        assert_eq!(g.m(), p.m());
        for v in 0..g.n() as NodeId {
            let pv = map.to_internal(v);
            assert_eq!(g.degree(v), p.degree(pv), "degree of {v}");
            let mut want: Vec<NodeId> =
                g.neighbors(v).iter().map(|&u| map.to_internal(u)).collect();
            want.sort_unstable();
            assert_eq!(p.neighbors(pv), want.as_slice(), "row of {v}");
        }
    }

    #[test]
    fn identity_policy_builds_no_mirror() {
        let g = two_triangles();
        assert!(ComputeGraph::build(&g, LayoutPolicy::Identity).is_none());
        assert!(compute_order(&g, LayoutPolicy::Identity).is_none());
        let map = NodeMap::identity();
        assert!(map.is_identity());
        assert_eq!(map.to_internal(5), 5);
        assert_eq!(map.to_external(5), 5);
    }

    #[test]
    fn all_policies_produce_isomorphic_graphs() {
        let g = two_triangles();
        for policy in [LayoutPolicy::Degree, LayoutPolicy::Bfs, LayoutPolicy::Rcm] {
            let mirror = ComputeGraph::build(&g, policy).expect("non-identity builds");
            assert_eq!(mirror.policy(), policy);
            assert_isomorphic(&g, mirror.graph(), mirror.map());
        }
    }

    #[test]
    fn node_map_round_trips() {
        let g = two_triangles();
        for policy in [LayoutPolicy::Degree, LayoutPolicy::Bfs, LayoutPolicy::Rcm] {
            let mirror = ComputeGraph::build(&g, policy).unwrap();
            for v in 0..g.n() as NodeId {
                assert_eq!(mirror.map().to_external(mirror.map().to_internal(v)), v);
            }
        }
    }

    #[test]
    fn degree_order_puts_hubs_first() {
        let g = two_triangles();
        let order = compute_order(&g, LayoutPolicy::Degree).unwrap();
        // Node 2 and 4 have degree 3; 2 < 4 breaks the tie.
        assert_eq!(&order[..2], &[2, 4]);
        // Isolated node 3 (degree 0) lands last.
        assert_eq!(order[g.n() - 1], 3);
    }

    #[test]
    fn bfs_order_keeps_components_contiguous() {
        let g = GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let order = compute_order(&g, LayoutPolicy::Bfs).unwrap();
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn rcm_reduces_bandwidth_on_a_path() {
        // A path labeled in scrambled order has bandwidth > 1; RCM
        // restores the chain layout (bandwidth exactly 1).
        let g = GraphBuilder::from_edges(6, &[(0, 3), (3, 1), (1, 5), (5, 2), (2, 4)]);
        let order = compute_order(&g, LayoutPolicy::Rcm).unwrap();
        let p = apply_order(&g, &order);
        let map = NodeMap::from_order(&order);
        assert_isomorphic(&g, &p, &map);
        let bandwidth = (0..p.n() as NodeId)
            .flat_map(|v| p.neighbors(v).iter().map(move |&u| v.abs_diff(u)))
            .max()
            .unwrap();
        assert_eq!(bandwidth, 1, "RCM must recover the chain layout");
    }

    #[test]
    fn apply_order_carries_weights() {
        let mut b = WeightedGraphBuilder::new(4);
        b.add_edge(0, 1, 2.0);
        b.add_edge(1, 2, 3.0);
        b.add_edge(2, 3, 0.5);
        let g = b.build().into_graph();
        let order = vec![3, 2, 1, 0];
        let p = apply_order(&g, &order);
        let map = NodeMap::from_order(&order);
        assert!(p.is_weighted());
        assert_eq!(
            p.edge_weight(map.to_internal(1), map.to_internal(2)),
            Some(3.0)
        );
        assert!((p.total_weight() - g.total_weight()).abs() < 1e-12);
        for v in 0..4 {
            assert!((p.strength(map.to_internal(v)) - g.strength(v)).abs() < 1e-12);
        }
    }

    #[test]
    fn policy_names_round_trip() {
        for policy in LayoutPolicy::ALL {
            assert_eq!(policy.as_str().parse::<LayoutPolicy>(), Ok(policy));
            assert_eq!(format!("{policy}"), policy.as_str());
        }
        assert!("zcurve".parse::<LayoutPolicy>().is_err());
    }
}
