//! Whole-graph diameter: double-sweep bounds and the iFUB exact
//! algorithm.
//!
//! [`crate::traversal::diameter_within`] runs a BFS per node — fine for
//! the paper's small ground-truth communities (Fig 4) but hopeless on the
//! full graph. The FPA design leans on the small-world premise (§5.5:
//! "real-world social networks ... lead to communities with small
//! diameters"), and verifying that premise on a generated benchmark graph
//! needs the *graph* diameter. The iFUB algorithm (Crescenzi et al. 2013)
//! computes it exactly with, in practice, a handful of BFS runs on
//! small-world inputs:
//!
//! 1. double sweep — BFS from a seed, then from the farthest node found:
//!    the second BFS's depth is a lower bound `lb`, its midpoint a good
//!    root;
//! 2. from the root `r`, process nodes level by level, farthest first.
//!    Every node at level `i` has eccentricity ≤ `2i`; so once
//!    `lb ≥ 2(i−1)` nothing below level `i` can improve it, and `lb` is
//!    the diameter.
//!
//! All functions treat the graph as a whole and return `None` when it is
//! disconnected (diameter undefined / infinite).

use crate::traversal::{bfs_distances, UNREACHABLE};
use crate::{Graph, NodeId};

/// Farthest node from `source` and its distance, or `None` if some node
/// is unreachable (graph disconnected).
fn farthest(g: &Graph, source: NodeId) -> Option<(NodeId, u32, Vec<u32>)> {
    let dist = bfs_distances(g, source);
    let mut best = (source, 0u32);
    for (v, &d) in dist.iter().enumerate() {
        if d == UNREACHABLE {
            return None;
        }
        if d > best.1 {
            best = (v as NodeId, d);
        }
    }
    Some((best.0, best.1, dist))
}

/// Double-sweep lower bound on the diameter, plus a root node suited for
/// [`ifub_diameter`] (the midpoint of the second sweep's longest path,
/// approximated by the node whose distance is half the depth).
pub fn double_sweep(g: &Graph, seed: NodeId) -> Option<(u32, NodeId)> {
    if g.n() == 0 {
        return None;
    }
    if g.n() == 1 {
        return Some((0, 0));
    }
    let (a, _, _) = farthest(g, seed)?;
    let (b, depth, dist_a) = farthest(g, a)?;
    // Walk back from b towards a, stopping halfway.
    let mut mid = b;
    let mut d = depth;
    while d > depth / 2 {
        let next = g
            .neighbors(mid)
            .iter()
            .copied()
            .find(|&w| dist_a[w as usize] + 1 == d)
            .expect("BFS parent exists on a shortest path");
        mid = next;
        d -= 1;
    }
    Some((depth, mid))
}

/// Exact graph diameter via iFUB. Returns `None` on disconnected or
/// empty graphs. `O(n·m)` worst case but typically a few dozen BFS runs
/// on small-world graphs.
///
/// ```
/// use dmcs_graph::diameter::ifub_diameter;
/// use dmcs_graph::GraphBuilder;
///
/// let path = GraphBuilder::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
/// assert_eq!(ifub_diameter(&path), Some(4));
/// let split = GraphBuilder::from_edges(4, &[(0, 1), (2, 3)]);
/// assert_eq!(ifub_diameter(&split), None);
/// ```
pub fn ifub_diameter(g: &Graph) -> Option<u32> {
    if g.n() == 0 {
        return None;
    }
    if g.n() == 1 {
        return Some(0);
    }
    let (mut lb, root) = double_sweep(g, 0)?;
    let dist_root = bfs_distances(g, root);
    // Bucket nodes by distance from the root.
    let max_level = *dist_root.iter().max().expect("non-empty") as usize;
    let mut levels: Vec<Vec<NodeId>> = vec![Vec::new(); max_level + 1];
    for (v, &d) in dist_root.iter().enumerate() {
        levels[d as usize].push(v as NodeId);
    }
    for i in (1..=max_level).rev() {
        // Everything at level ≤ i has eccentricity ≤ 2i; if the lower
        // bound already meets that ceiling, it is the diameter.
        if lb >= 2 * i as u32 {
            return Some(lb);
        }
        for &v in &levels[i] {
            let (_, ecc, _) = farthest(g, v)?;
            lb = lb.max(ecc);
        }
    }
    Some(lb)
}

/// Brute-force exact diameter (a BFS per node) — the test oracle.
pub fn brute_force_diameter(g: &Graph) -> Option<u32> {
    if g.n() == 0 {
        return None;
    }
    let mut diam = 0u32;
    for v in 0..g.n() as NodeId {
        let (_, ecc, _) = farthest(g, v)?;
        diam = diam.max(ecc);
    }
    Some(diam)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn path_graph_diameter() {
        let edges: Vec<(u32, u32)> = (0..9).map(|i| (i, i + 1)).collect();
        let g = GraphBuilder::from_edges(10, &edges);
        assert_eq!(ifub_diameter(&g), Some(9));
        assert_eq!(brute_force_diameter(&g), Some(9));
        let (lb, _) = double_sweep(&g, 5).unwrap();
        assert_eq!(lb, 9, "double sweep is exact on trees");
    }

    #[test]
    fn cycle_graph_diameter() {
        let n = 12u32;
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = GraphBuilder::from_edges(n as usize, &edges);
        assert_eq!(ifub_diameter(&g), Some(6));
    }

    #[test]
    fn complete_graph_diameter_is_one() {
        let mut b = GraphBuilder::new(6);
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                b.add_edge(u, v);
            }
        }
        assert_eq!(ifub_diameter(&b.build()), Some(1));
    }

    #[test]
    fn disconnected_returns_none() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(ifub_diameter(&g), None);
        assert_eq!(brute_force_diameter(&g), None);
        assert_eq!(double_sweep(&g, 0), None);
    }

    #[test]
    fn trivial_sizes() {
        assert_eq!(ifub_diameter(&GraphBuilder::new(0).build()), None);
        assert_eq!(ifub_diameter(&GraphBuilder::new(1).build()), Some(0));
    }

    #[test]
    fn agrees_with_brute_force_on_random_graphs() {
        for seed in 0..30u64 {
            let g = dmcs_gen_free_er(24, 0.12, seed);
            assert_eq!(ifub_diameter(&g), brute_force_diameter(&g), "seed {seed}");
        }
    }

    #[test]
    fn four_cycle_diameter_is_two() {
        let g = crate::GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(ifub_diameter(&g), Some(2));
        assert_eq!(double_sweep(&g, 0).unwrap().0, 2);
    }

    /// Local ER generator (dmcs-gen depends on dmcs-graph, so the graph
    /// crate cannot use it; this keeps the oracle test self-contained).
    fn dmcs_gen_free_er(n: usize, p: f64, seed: u64) -> Graph {
        // xorshift: deterministic, no rand dependency in this crate.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = GraphBuilder::new(n);
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                if (next() as f64 / u64::MAX as f64) < p {
                    b.add_edge(u, v);
                }
            }
        }
        b.build()
    }
}
