//! The versioned graph store: one mutable [`DynamicGraph`] of record
//! plus epoch-versioned, immutable CSR [`Snapshot`]s for the search
//! algorithms.
//!
//! The serving problem this solves: community search is rarely one-shot
//! — the network gains edges while queries keep arriving. Peeling
//! algorithms need the immutable CSR [`Graph`], mutations need the
//! adjacency-vector [`DynamicGraph`]; [`GraphStore`] owns both and keeps
//! them consistent:
//!
//! ```text
//!            writes                         reads
//!   insert_edge / remove_edge        snapshot() ── Snapshot (pinned)
//!            │                               │
//!            ▼                               ▼
//!      DynamicGraph ──(lazy rebuild on ──▶ Arc<Graph> @ version v
//!      version v       first read after
//!                      a mutation)
//! ```
//!
//! - **Mutations** land in the `DynamicGraph` and bump its monotonic
//!   [`version`](DynamicGraph::version); the cached CSR is *not* rebuilt
//!   eagerly, so a burst of updates costs `O(deg)` each, not
//!   `O(|V| + |E|)` each.
//! - **Reads** call [`GraphStore::snapshot`], which rebuilds the CSR at
//!   most once per version (on the first read after a mutation) and
//!   hands out cheap [`Snapshot`] clones after that.
//! - A [`Snapshot`] **pins** its epoch: an in-flight batch keeps the
//!   graph it started with while later updates land in the store, so
//!   concurrent serve-and-mutate never tears a query. The carried
//!   [`Snapshot::version`] is what version-keyed result caches key on.

use crate::dynamic::DynamicGraph;
use crate::{Graph, NodeId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Process-unique store ids: versions only order mutations *within* one
/// store, so caches keyed by version alone could confuse two different
/// graphs at the same version. Every [`GraphStore`] (and every
/// standalone [`Snapshot::freeze`]) draws a fresh id; the id travels on
/// each [`Snapshot`] for cache keys to include.
static NEXT_STORE_ID: AtomicU64 = AtomicU64::new(0);

fn next_store_id() -> u64 {
    NEXT_STORE_ID.fetch_add(1, Ordering::Relaxed)
}

/// An immutable view of the graph at one store epoch: a shared CSR
/// [`Graph`] plus the store version it was built from. Clones share the
/// underlying graph (an [`Arc`]), so pinning a snapshot per worker or
/// per batch is free.
///
/// Dereferences to [`Graph`], so a `&Snapshot` goes anywhere a `&Graph`
/// does:
///
/// ```
/// use dmcs_graph::{GraphBuilder, Snapshot};
///
/// let snap = Snapshot::freeze(GraphBuilder::from_edges(3, &[(0, 1), (1, 2)]));
/// assert_eq!(snap.version(), 0);
/// assert_eq!(snap.n(), 3); // Deref to Graph
/// ```
#[derive(Debug, Clone)]
pub struct Snapshot {
    graph: Arc<Graph>,
    store_id: u64,
    version: u64,
}

impl Snapshot {
    /// Freeze a standalone graph as a version-0 snapshot — the bridge
    /// for static workloads (benchmark line-ups, examples) that have a
    /// [`Graph`] and no store.
    pub fn freeze(graph: Graph) -> Snapshot {
        Snapshot {
            graph: Arc::new(graph),
            store_id: next_store_id(),
            version: 0,
        }
    }

    /// The CSR graph this snapshot pins.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The store version this snapshot was built from. Version-keyed
    /// caches use this (together with [`Snapshot::store_id`]) as the
    /// staleness discriminator.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Process-unique id of the store (or `freeze` call) this snapshot
    /// came from. Cache keys include it so snapshots of *different*
    /// graphs that happen to share a version can never collide.
    pub fn store_id(&self) -> u64 {
        self.store_id
    }

    /// Whether two snapshots share the same underlying graph allocation
    /// (i.e. one is a clone of the other, not a rebuild).
    pub fn shares_graph(&self, other: &Snapshot) -> bool {
        Arc::ptr_eq(&self.graph, &other.graph)
    }
}

impl std::ops::Deref for Snapshot {
    type Target = Graph;

    fn deref(&self) -> &Graph {
        &self.graph
    }
}

impl AsRef<Graph> for Snapshot {
    fn as_ref(&self) -> &Graph {
        &self.graph
    }
}

struct Inner {
    dynamic: DynamicGraph,
    /// CSR rebuilt lazily: valid iff `cached.version == dynamic.version()`.
    cached: Option<Snapshot>,
}

// The id lives outside `Inner` so reads need not take the lock for it.

/// The engine's storage layer: a mutable [`DynamicGraph`] of record and
/// a lazily rebuilt, epoch-versioned CSR snapshot, safe to share across
/// serving threads (`&self` mutators; interior `RwLock`).
///
/// ```
/// use dmcs_graph::{GraphBuilder, GraphStore};
///
/// let store = GraphStore::from_graph(GraphBuilder::from_edges(4, &[(0, 1), (1, 2)]));
/// let pinned = store.snapshot(); // version 0
///
/// store.insert_edge(2, 3); // lands in the DynamicGraph only
/// assert_eq!(pinned.m(), 2, "pinned snapshot is immutable");
///
/// let fresh = store.snapshot(); // first read after the mutation: rebuild
/// assert_eq!(fresh.m(), 3);
/// assert_eq!(fresh.version(), 1);
/// assert_eq!(store.snapshot().version(), 1, "no mutation, no rebuild");
/// ```
pub struct GraphStore {
    id: u64,
    inner: RwLock<Inner>,
}

impl GraphStore {
    /// An empty store on `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        GraphStore::from_dynamic(DynamicGraph::new(n))
    }

    /// Adopt a mutable graph as the store's graph of record.
    pub fn from_dynamic(dynamic: DynamicGraph) -> Self {
        GraphStore {
            id: next_store_id(),
            inner: RwLock::new(Inner {
                dynamic,
                cached: None,
            }),
        }
    }

    /// Seed the store from an immutable graph. The given CSR is adopted
    /// as the cached snapshot for the store's initial version, so reads
    /// before the first mutation cost nothing.
    pub fn from_graph(graph: Graph) -> Self {
        let dynamic = DynamicGraph::from_graph(&graph);
        let version = dynamic.version();
        let id = next_store_id();
        GraphStore {
            id,
            inner: RwLock::new(Inner {
                dynamic,
                cached: Some(Snapshot {
                    graph: Arc::new(graph),
                    store_id: id,
                    version,
                }),
            }),
        }
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, Inner> {
        self.inner.read().expect("graph store lock poisoned")
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, Inner> {
        self.inner.write().expect("graph store lock poisoned")
    }

    /// Process-unique identity of this store (carried by its snapshots;
    /// see [`Snapshot::store_id`]).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The store's mutation counter (monotonically nondecreasing; bumped
    /// by every effective mutation, exactly as
    /// [`DynamicGraph::version`]).
    pub fn version(&self) -> u64 {
        self.read().dynamic.version()
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.read().dynamic.n()
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.read().dynamic.m()
    }

    /// Edge test on the *live* graph (`O(log deg)`).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.read().dynamic.has_edge(u, v)
    }

    /// Whether the live graph carries per-edge weights (see
    /// [`DynamicGraph::is_weighted`]). Weighted mutators only succeed on
    /// weighted stores.
    pub fn is_weighted(&self) -> bool {
        self.read().dynamic.is_weighted()
    }

    /// Weight of edge `(u, v)` on the *live* graph (`Some(1.0)` per edge
    /// when the store is unweighted, `None` when the edge is absent).
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<f64> {
        self.read().dynamic.edge_weight(u, v)
    }

    /// Insert the undirected edge `{u, v}` into the live graph. Returns
    /// `false` (and changes nothing, including the version) for
    /// self-loops, out-of-range endpoints, or existing edges. Existing
    /// snapshots are unaffected; the next [`snapshot`](Self::snapshot)
    /// call rebuilds. On a weighted store the edge gets weight 1.0.
    pub fn insert_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.write().dynamic.insert_edge(u, v)
    }

    /// Insert the undirected edge `{u, v}` with weight `w` into the live
    /// (weighted) graph — see [`DynamicGraph::insert_edge_w`] for the
    /// refusal rules. Bumps the version on success, so version-keyed
    /// caches invalidate exactly as for a plain insert.
    pub fn insert_edge_w(&self, u: NodeId, v: NodeId, w: f64) -> bool {
        self.write().dynamic.insert_edge_w(u, v, w)
    }

    /// Update the weight of the existing edge `{u, v}` on the live
    /// (weighted) graph, returning the previous weight — see
    /// [`DynamicGraph::set_weight`]. A weight *change* bumps the store
    /// version (the next snapshot rebuilds and cached answers for the
    /// old epoch stop matching); re-setting the current weight is a
    /// version-preserving no-op.
    pub fn set_weight(&self, u: NodeId, v: NodeId, w: f64) -> Option<f64> {
        self.write().dynamic.set_weight(u, v, w)
    }

    /// Remove the undirected edge `{u, v}` from the live graph. Returns
    /// `false` when absent.
    pub fn remove_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.write().dynamic.remove_edge(u, v)
    }

    /// Append a fresh isolated node to the live graph; returns its id.
    pub fn add_node(&self) -> NodeId {
        self.write().dynamic.add_node()
    }

    /// A snapshot of the current epoch. Rebuilds the CSR at most once
    /// per version — the first read after a mutation pays
    /// `O(|V| + |E|)`, every other call is an `Arc` clone.
    pub fn snapshot(&self) -> Snapshot {
        {
            let inner = self.read();
            let version = inner.dynamic.version();
            if let Some(s) = &inner.cached {
                if s.version == version {
                    return s.clone();
                }
            }
        }
        let mut inner = self.write();
        let version = inner.dynamic.version();
        // Double-checked: another writer may have rebuilt between locks.
        if let Some(s) = &inner.cached {
            if s.version == version {
                return s.clone();
            }
        }
        let snap = Snapshot {
            graph: Arc::new(inner.dynamic.snapshot()),
            store_id: self.id,
            version,
        };
        inner.cached = Some(snap.clone());
        snap
    }

    /// Run `f` against the live [`DynamicGraph`] under the read lock —
    /// for read-only inspections that have no dedicated accessor.
    pub fn with_dynamic<R>(&self, f: impl FnOnce(&DynamicGraph) -> R) -> R {
        f(&self.read().dynamic)
    }

    /// Nodes within `radius` hops of any node in `seeds` on the *live*
    /// graph (see [`DynamicGraph::ball`]) — the locality set used by
    /// localized re-search after an update.
    pub fn ball(&self, seeds: &[NodeId], radius: u32) -> Vec<NodeId> {
        self.read().dynamic.ball(seeds, radius)
    }
}

impl std::fmt::Debug for GraphStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.read();
        f.debug_struct("GraphStore")
            .field("n", &inner.dynamic.n())
            .field("m", &inner.dynamic.m())
            .field("version", &inner.dynamic.version())
            .field("snapshot_cached", &inner.cached.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn barbell() -> Graph {
        GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
    }

    #[test]
    fn from_graph_serves_the_seed_without_a_rebuild() {
        let store = GraphStore::from_graph(barbell());
        let a = store.snapshot();
        let b = store.snapshot();
        assert_eq!(a.version(), 0);
        assert!(a.shares_graph(&b), "no mutation: same Arc, no rebuild");
        assert_eq!(a.n(), 6);
        assert_eq!(a.m(), 7);
    }

    #[test]
    fn snapshots_pin_their_epoch() {
        let store = GraphStore::from_graph(barbell());
        let pinned = store.snapshot();
        assert!(store.insert_edge(0, 3));
        assert!(store.remove_edge(2, 3));
        assert_eq!(pinned.m(), 7, "pinned snapshot never changes");
        assert_eq!(pinned.version(), 0);

        let fresh = store.snapshot();
        assert_eq!(fresh.version(), 2);
        assert_eq!(fresh.m(), 7 + 1 - 1);
        assert!(fresh.has_edge(0, 3));
        assert!(!fresh.has_edge(2, 3));
        assert!(!pinned.shares_graph(&fresh));
    }

    #[test]
    fn rebuild_happens_once_per_version() {
        let store = GraphStore::from_graph(barbell());
        store.insert_edge(1, 4);
        let a = store.snapshot();
        let b = store.snapshot();
        assert!(a.shares_graph(&b), "second read reuses the rebuild");
        // An ineffective mutation does not move the version.
        assert!(!store.insert_edge(1, 4));
        assert!(store.snapshot().shares_graph(&a));
    }

    #[test]
    fn node_growth_flows_into_snapshots() {
        let store = GraphStore::new(2);
        assert!(store.insert_edge(0, 1));
        let v = store.add_node();
        assert_eq!(v, 2);
        assert!(store.insert_edge(1, v));
        let snap = store.snapshot();
        assert_eq!(snap.n(), 3);
        assert_eq!(snap.m(), 2);
        assert_eq!(store.version(), 3);
        assert_eq!(snap.version(), 3);
    }

    #[test]
    fn ball_and_with_dynamic_see_the_live_graph() {
        let store = GraphStore::from_graph(barbell());
        assert_eq!(store.ball(&[0], 1), vec![0, 1, 2]);
        store.insert_edge(0, 5);
        assert_eq!(store.ball(&[0], 1), vec![0, 1, 2, 5]);
        assert_eq!(store.with_dynamic(|d| d.degree(0)), 3);
        assert!(store.has_edge(0, 5));
    }

    #[test]
    fn concurrent_readers_and_writers_converge() {
        let store = GraphStore::new(64);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let store = &store;
                s.spawn(move || {
                    for i in 0..15u32 {
                        store.insert_edge(t * 16 + i, t * 16 + i + 1);
                        let snap = store.snapshot();
                        assert!(snap.m() > 0);
                        assert!(snap.version() <= store.version());
                    }
                });
            }
        });
        assert_eq!(store.m(), 60);
        let snap = store.snapshot();
        assert_eq!(snap.m(), 60);
        assert_eq!(snap.version(), 60);
    }

    #[test]
    fn weighted_store_serves_lane_carrying_snapshots() {
        let mut b = crate::weighted::WeightedGraphBuilder::new(4);
        b.add_edge(0, 1, 2.0);
        b.add_edge(1, 2, 3.0);
        let store = GraphStore::from_graph(b.build().into_graph());
        assert!(store.is_weighted());
        let v0 = store.snapshot();
        assert!(v0.is_weighted());
        assert_eq!(v0.edge_weight(0, 1), Some(2.0));

        // A weight-only update bumps the version and re-snapshots.
        assert_eq!(store.set_weight(0, 1, 5.0), Some(2.0));
        assert_eq!(store.version(), 1);
        let v1 = store.snapshot();
        assert_eq!(v1.version(), 1);
        assert_eq!(v1.edge_weight(0, 1), Some(5.0));
        assert_eq!(v0.edge_weight(0, 1), Some(2.0), "pinned epoch unchanged");

        // Same-value re-set: no version move, snapshot reused.
        assert_eq!(store.set_weight(0, 1, 5.0), Some(5.0));
        assert!(store.snapshot().shares_graph(&v1));

        // Weighted insert flows through too.
        assert!(store.insert_edge_w(2, 3, 0.25));
        assert_eq!(store.snapshot().edge_weight(2, 3), Some(0.25));
        assert_eq!(store.edge_weight(2, 3), Some(0.25));
    }

    #[test]
    fn weighted_mutators_refuse_on_unweighted_stores() {
        let store = GraphStore::from_graph(barbell());
        assert!(!store.is_weighted());
        assert!(!store.insert_edge_w(0, 4, 2.0));
        assert_eq!(store.set_weight(0, 1, 2.0), None);
        assert_eq!(store.version(), 0, "refused ops never bump");
        assert_eq!(store.edge_weight(0, 1), Some(1.0), "unweighted edge = 1");
    }

    #[test]
    fn freeze_is_version_zero_and_derefs() {
        let snap = Snapshot::freeze(barbell());
        assert_eq!(snap.version(), 0);
        assert_eq!(snap.graph().m(), 7);
        // Deref and AsRef both reach the Graph API.
        assert_eq!(snap.neighbors(0), &[1, 2]);
        let as_graph: &Graph = snap.as_ref();
        assert_eq!(as_graph.n(), 6);
    }
}
