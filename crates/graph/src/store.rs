//! The versioned graph store: one mutable [`DynamicGraph`] of record
//! plus epoch-versioned, immutable CSR [`Snapshot`]s for the search
//! algorithms.
//!
//! The serving problem this solves: community search is rarely one-shot
//! — the network gains edges while queries keep arriving. Peeling
//! algorithms need the immutable CSR [`Graph`], mutations need the
//! adjacency-vector [`DynamicGraph`]; [`GraphStore`] owns both and keeps
//! them consistent:
//!
//! ```text
//!            writes                         reads
//!   insert_edge / remove_edge        snapshot() ── Snapshot (pinned)
//!            │                               │
//!            ▼                               ▼
//!      DynamicGraph ──(lazy rebuild on ──▶ Arc<Graph> @ version v
//!      version v       first read after
//!                      a mutation)
//! ```
//!
//! - **Mutations** land in the `DynamicGraph` and bump its monotonic
//!   [`version`](DynamicGraph::version) plus the counters of the shards
//!   they touch; the cached CSR is *not* rebuilt eagerly, so a burst of
//!   updates costs `O(deg)` each, not `O(|V| + |E|)` each.
//! - **Reads** call [`GraphStore::snapshot`], which rebuilds the CSR at
//!   most once per version (on the first read after a mutation) and
//!   hands out cheap [`Snapshot`] clones after that. The rebuild is
//!   **incremental**: the node-id space is partitioned into `P` shards
//!   (see [`ShardLayout`]), only shards whose counter moved since the
//!   previous snapshot have their CSR segments re-serialized (fanned out
//!   across a `std::thread::scope` pool when there is enough dirty
//!   work), and clean shards' neighbour/weight segments are copied
//!   verbatim from the previous snapshot's arrays — so post-update
//!   snapshot cost scales with the write footprint, not the graph.
//!   Better still, the store keeps the snapshot displaced two epochs ago
//!   and, when nothing outside the store still pins it and slot counts
//!   line up, *patches its buffers in place* — the steady mutate→read
//!   loop then pays `O(dirty rows)` per snapshot with no allocation or
//!   copy-forward at all (see `rebuild_csr` for the tier rules).
//! - A [`Snapshot`] **pins** its epoch: an in-flight batch keeps the
//!   graph it started with while later updates land in the store, so
//!   concurrent serve-and-mutate never tears a query. The carried
//!   [`Snapshot::version`] orders epochs, and the carried
//!   [`Snapshot::shard_versions`] vector is what shard-scoped result
//!   caches validate their fingerprints against.

use crate::dynamic::{DynamicGraph, ShardLayout};
use crate::layout::{ComputeGraph, LayoutPolicy};
use crate::traversal::ComponentIndex;
use crate::{Graph, NodeId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Process-unique store ids: versions only order mutations *within* one
/// store, so caches keyed by version alone could confuse two different
/// graphs at the same version. Every [`GraphStore`] (and every
/// standalone [`Snapshot::freeze`]) draws a fresh id; the id travels on
/// each [`Snapshot`] for cache keys to include.
static NEXT_STORE_ID: AtomicU64 = AtomicU64::new(0);

fn next_store_id() -> u64 {
    NEXT_STORE_ID.fetch_add(1, Ordering::Relaxed)
}

/// An immutable view of the graph at one store epoch: a shared CSR
/// [`Graph`] plus the store version it was built from. Clones share the
/// underlying graph (an [`Arc`]), so pinning a snapshot per worker or
/// per batch is free.
///
/// Dereferences to [`Graph`], so a `&Snapshot` goes anywhere a `&Graph`
/// does:
///
/// ```
/// use dmcs_graph::{GraphBuilder, Snapshot};
///
/// let snap = Snapshot::freeze(GraphBuilder::from_edges(3, &[(0, 1), (1, 2)]));
/// assert_eq!(snap.version(), 0);
/// assert_eq!(snap.n(), 3); // Deref to Graph
/// ```
#[derive(Debug, Clone)]
pub struct Snapshot {
    graph: Arc<Graph>,
    store_id: u64,
    version: u64,
    layout: ShardLayout,
    /// Per-shard counters at the epoch this snapshot was built (shared;
    /// snapshots are cloned per worker/batch).
    shard_versions: Arc<[u64]>,
    /// Locality-renumbered compute mirror, built when the store's
    /// [`LayoutPolicy`] is non-identity (see [`Snapshot::compute`]).
    compute: Option<Arc<ComputeGraph>>,
    /// Lazily computed connected-component index, shared by all clones
    /// of this epoch (see [`Snapshot::component_index`]).
    components: Arc<OnceLock<ComponentIndex>>,
}

impl Snapshot {
    /// Freeze a standalone graph as a version-0 snapshot — the bridge
    /// for static workloads (benchmark line-ups, examples) that have a
    /// [`Graph`] and no store. Frozen snapshots use the trivial
    /// one-shard layout.
    pub fn freeze(graph: Graph) -> Snapshot {
        Snapshot::freeze_with_layout(graph, LayoutPolicy::Identity)
    }

    /// [`Snapshot::freeze`] with an explicit layout policy: a
    /// non-identity policy builds the renumbered compute mirror
    /// up front.
    pub fn freeze_with_layout(graph: Graph, policy: LayoutPolicy) -> Snapshot {
        let compute = ComputeGraph::build(&graph, policy).map(Arc::new);
        Snapshot {
            graph: Arc::new(graph),
            store_id: next_store_id(),
            version: 0,
            layout: ShardLayout::single(),
            shard_versions: Arc::from(vec![0u64]),
            compute,
            components: Arc::new(OnceLock::new()),
        }
    }

    /// The CSR graph this snapshot pins.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The store version this snapshot was built from. Version-keyed
    /// caches use this (together with [`Snapshot::store_id`]) as the
    /// staleness discriminator.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Process-unique id of the store (or `freeze` call) this snapshot
    /// came from. Cache keys include it so snapshots of *different*
    /// graphs that happen to share a version can never collide.
    pub fn store_id(&self) -> u64 {
        self.store_id
    }

    /// Whether two snapshots share the same underlying graph allocation
    /// (i.e. one is a clone of the other, not a rebuild).
    pub fn shares_graph(&self, other: &Snapshot) -> bool {
        Arc::ptr_eq(&self.graph, &other.graph)
    }

    /// The node-id-range shard layout of the store this snapshot came
    /// from (the trivial single shard for [`Snapshot::freeze`]).
    pub fn shard_layout(&self) -> ShardLayout {
        self.layout
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.layout.shards()
    }

    /// Per-shard mutation counters at this snapshot's epoch.
    /// Shard-scoped caches record, per answer, the counters of the
    /// shards the answer's community touched, and replay the answer only
    /// while those counters still match the serving snapshot's.
    pub fn shard_versions(&self) -> &[u64] {
        &self.shard_versions
    }

    /// The locality-renumbered compute mirror, when the snapshot was
    /// built under a non-identity [`LayoutPolicy`]. `None` under the
    /// identity policy — the canonical graph *is* the layout, and
    /// identity stores pay neither build time nor memory for a mirror.
    ///
    /// The serving search path deliberately does **not** run on the
    /// mirror: peeling breaks density ties by node id, so permuted ids
    /// could select a different (equally valid) community and break the
    /// byte-identical-across-layouts results contract. The mirror
    /// accelerates id-insensitive work — BFS sweeps, stats, bulk scans
    /// — and is the substrate of the layout benchmarks (see
    /// [`crate::layout`] for the full argument).
    pub fn compute(&self) -> Option<&ComputeGraph> {
        self.compute.as_deref()
    }

    /// The layout policy this snapshot was built under.
    pub fn layout_policy(&self) -> LayoutPolicy {
        self.compute
            .as_deref()
            .map_or(LayoutPolicy::Identity, ComputeGraph::policy)
    }

    /// The connected-component index of this epoch's graph, computed on
    /// first use and shared by every clone of the snapshot — the batch
    /// scheduler's grouping labels and the planner's skew statistics
    /// both read from here, so the union-find runs at most once per
    /// store epoch.
    pub fn component_index(&self) -> &ComponentIndex {
        self.components
            .get_or_init(|| ComponentIndex::compute(&self.graph))
    }

    /// A process-unique key identifying this snapshot's (store, epoch)
    /// pair — what workspace-level memoization uses to prove that two
    /// consecutive queries saw the same graph. Distinct stores never
    /// share a key (store ids are process-unique), and within a store
    /// the version moves on every effective mutation.
    pub fn epoch_key(&self) -> (u64, u64) {
        (self.store_id, self.version)
    }
}

impl std::ops::Deref for Snapshot {
    type Target = Graph;

    fn deref(&self) -> &Graph {
        &self.graph
    }
}

impl AsRef<Graph> for Snapshot {
    fn as_ref(&self) -> &Graph {
        &self.graph
    }
}

/// Counters describing the store's incremental snapshot rebuilds —
/// surfaced by `--stats` and the serve daemon's `stats` op so operators
/// can see how much of each rebuild the sharding actually saved.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RebuildStats {
    /// Number of shards in the store's layout.
    pub shards: usize,
    /// Snapshot rebuilds performed so far (reads served from the cached
    /// snapshot do not count).
    pub rebuilds: u64,
    /// Total dirty shards re-serialized across all rebuilds.
    pub shards_rebuilt: u64,
    /// Total clean shards whose CSR segments were copied forward.
    pub shards_reused: u64,
    /// Dirty-shard count of the most recent rebuild.
    pub last_dirty_shards: usize,
    /// Wall-clock seconds of the most recent rebuild.
    pub last_rebuild_seconds: f64,
}

struct Inner {
    dynamic: DynamicGraph,
    /// CSR rebuilt lazily: valid iff `cached.version == dynamic.version()`.
    cached: Option<Snapshot>,
    /// The snapshot displaced by `cached` — kept one extra generation so
    /// a rebuild can recycle its buffers *in place* when nothing outside
    /// the store still pins them (see `patch_in_place`). In the
    /// steady-state mutate→snapshot serving loop this turns the rebuild
    /// into a pure `O(dirty rows)` patch with no allocation or
    /// copy-forward at all.
    retired: Option<Snapshot>,
    stats: RebuildStats,
    /// Node renumbering policy applied to every snapshot built from
    /// here on (identity by default: no mirror, no cost).
    layout_policy: LayoutPolicy,
}

// The id lives outside `Inner` so reads need not take the lock for it.

/// The engine's storage layer: a mutable [`DynamicGraph`] of record and
/// a lazily rebuilt, epoch-versioned CSR snapshot, safe to share across
/// serving threads (`&self` mutators; interior `RwLock`).
///
/// ```
/// use dmcs_graph::{GraphBuilder, GraphStore};
///
/// let store = GraphStore::from_graph(GraphBuilder::from_edges(4, &[(0, 1), (1, 2)]));
/// let pinned = store.snapshot(); // version 0
///
/// store.insert_edge(2, 3); // lands in the DynamicGraph only
/// assert_eq!(pinned.m(), 2, "pinned snapshot is immutable");
///
/// let fresh = store.snapshot(); // first read after the mutation: rebuild
/// assert_eq!(fresh.m(), 3);
/// assert_eq!(fresh.version(), 1);
/// assert_eq!(store.snapshot().version(), 1, "no mutation, no rebuild");
/// ```
pub struct GraphStore {
    id: u64,
    inner: RwLock<Inner>,
}

impl GraphStore {
    /// An empty store on `n` isolated nodes (default shard layout).
    pub fn new(n: usize) -> Self {
        GraphStore::from_dynamic(DynamicGraph::new(n))
    }

    /// An empty store on `n` isolated nodes partitioned into `shards`
    /// node-id-range shards.
    pub fn with_shards(n: usize, shards: usize) -> Self {
        GraphStore::from_dynamic(DynamicGraph::with_shards(n, shards))
    }

    /// Adopt a mutable graph as the store's graph of record (keeping its
    /// shard layout).
    pub fn from_dynamic(dynamic: DynamicGraph) -> Self {
        let stats = RebuildStats {
            shards: dynamic.shard_layout().shards(),
            ..RebuildStats::default()
        };
        GraphStore {
            id: next_store_id(),
            inner: RwLock::new(Inner {
                dynamic,
                cached: None,
                retired: None,
                stats,
                layout_policy: LayoutPolicy::Identity,
            }),
        }
    }

    /// Seed the store from an immutable graph (default shard layout).
    /// The given CSR is adopted as the cached snapshot for the store's
    /// initial version, so reads before the first mutation cost nothing.
    pub fn from_graph(graph: Graph) -> Self {
        GraphStore::from_graph_sharded(graph, crate::dynamic::DEFAULT_SHARD_COUNT)
    }

    /// Seed the store from an immutable graph with an explicit shard
    /// count (see [`ShardLayout`]); the CSR is adopted as the initial
    /// cached snapshot exactly as in [`GraphStore::from_graph`].
    pub fn from_graph_sharded(graph: Graph, shards: usize) -> Self {
        let dynamic = DynamicGraph::from_graph_with_shards(&graph, shards);
        let version = dynamic.version();
        let id = next_store_id();
        let stats = RebuildStats {
            shards: dynamic.shard_layout().shards(),
            ..RebuildStats::default()
        };
        let cached = Some(Snapshot {
            graph: Arc::new(graph),
            store_id: id,
            version,
            layout: dynamic.shard_layout(),
            shard_versions: Arc::from(dynamic.shard_versions().to_vec()),
            compute: None,
            components: Arc::new(OnceLock::new()),
        });
        GraphStore {
            id,
            inner: RwLock::new(Inner {
                dynamic,
                cached,
                retired: None,
                stats,
                layout_policy: LayoutPolicy::Identity,
            }),
        }
    }

    /// Set the layout policy at construction time (builder-style):
    /// `GraphStore::from_graph(g).with_layout(LayoutPolicy::Bfs)`.
    /// See [`GraphStore::set_layout_policy`].
    pub fn with_layout(self, policy: LayoutPolicy) -> Self {
        self.set_layout_policy(policy);
        self
    }

    /// The layout policy snapshots are currently built under.
    pub fn layout_policy(&self) -> LayoutPolicy {
        self.read().layout_policy
    }

    /// Change the node renumbering policy. Takes effect immediately: if
    /// a snapshot is cached for the current version, its compute mirror
    /// is rebuilt under the new policy (the canonical graph, version
    /// and component index are untouched — external ids never move, so
    /// already-pinned snapshots and caches stay valid).
    pub fn set_layout_policy(&self, policy: LayoutPolicy) {
        let mut inner = self.write();
        if inner.layout_policy == policy {
            return;
        }
        inner.layout_policy = policy;
        if let Some(s) = &inner.cached {
            let compute = ComputeGraph::build(&s.graph, policy).map(Arc::new);
            inner.cached = Some(Snapshot {
                graph: Arc::clone(&s.graph),
                store_id: s.store_id,
                version: s.version,
                layout: s.layout,
                shard_versions: Arc::clone(&s.shard_versions),
                compute,
                components: Arc::clone(&s.components),
            });
        }
    }

    // Poison recovery: a reader panicking mid-snapshot cannot corrupt
    // `Inner` (readers never mutate), and the write path replaces
    // `cached`/`retired` wholesale rather than editing in place, so a
    // poisoned guard still sees a coherent store. Serving threads keep
    // serving instead of inheriting another thread's panic.
    fn read(&self) -> std::sync::RwLockReadGuard<'_, Inner> {
        self.inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, Inner> {
        self.inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Process-unique identity of this store (carried by its snapshots;
    /// see [`Snapshot::store_id`]).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The store's mutation counter (monotonically nondecreasing; bumped
    /// by every effective mutation, exactly as
    /// [`DynamicGraph::version`]).
    pub fn version(&self) -> u64 {
        self.read().dynamic.version()
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.read().dynamic.n()
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.read().dynamic.m()
    }

    /// Edge test on the *live* graph (`O(log deg)`).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.read().dynamic.has_edge(u, v)
    }

    /// Whether the live graph carries per-edge weights (see
    /// [`DynamicGraph::is_weighted`]). Weighted mutators only succeed on
    /// weighted stores.
    pub fn is_weighted(&self) -> bool {
        self.read().dynamic.is_weighted()
    }

    /// Weight of edge `(u, v)` on the *live* graph (`Some(1.0)` per edge
    /// when the store is unweighted, `None` when the edge is absent).
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<f64> {
        self.read().dynamic.edge_weight(u, v)
    }

    /// Insert the undirected edge `{u, v}` into the live graph. Returns
    /// `false` (and changes nothing, including the version) for
    /// self-loops, out-of-range endpoints, or existing edges. Existing
    /// snapshots are unaffected; the next [`snapshot`](Self::snapshot)
    /// call rebuilds. On a weighted store the edge gets weight 1.0.
    pub fn insert_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.write().dynamic.insert_edge(u, v)
    }

    /// Insert the undirected edge `{u, v}` with weight `w` into the live
    /// (weighted) graph — see [`DynamicGraph::insert_edge_w`] for the
    /// refusal rules. Bumps the version on success, so version-keyed
    /// caches invalidate exactly as for a plain insert.
    pub fn insert_edge_w(&self, u: NodeId, v: NodeId, w: f64) -> bool {
        self.write().dynamic.insert_edge_w(u, v, w)
    }

    /// Update the weight of the existing edge `{u, v}` on the live
    /// (weighted) graph, returning the previous weight — see
    /// [`DynamicGraph::set_weight`]. A weight *change* bumps the store
    /// version (the next snapshot rebuilds and cached answers for the
    /// old epoch stop matching); re-setting the current weight is a
    /// version-preserving no-op.
    pub fn set_weight(&self, u: NodeId, v: NodeId, w: f64) -> Option<f64> {
        self.write().dynamic.set_weight(u, v, w)
    }

    /// Remove the undirected edge `{u, v}` from the live graph. Returns
    /// `false` when absent.
    pub fn remove_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.write().dynamic.remove_edge(u, v)
    }

    /// Append a fresh isolated node to the live graph; returns its id.
    pub fn add_node(&self) -> NodeId {
        self.write().dynamic.add_node()
    }

    /// A snapshot of the current epoch. Rebuilds the CSR at most once
    /// per version — the first read after a mutation pays an
    /// *incremental* rebuild (only dirty shards' segments are
    /// re-serialized; clean shards are copied forward from the previous
    /// snapshot), every other call is an `Arc` clone.
    pub fn snapshot(&self) -> Snapshot {
        {
            let inner = self.read();
            let version = inner.dynamic.version();
            if let Some(s) = &inner.cached {
                if s.version == version {
                    return s.clone();
                }
            }
        }
        let mut inner = self.write();
        let inner = &mut *inner;
        let version = inner.dynamic.version();
        // Double-checked: another writer may have rebuilt between locks.
        if let Some(s) = &inner.cached {
            if s.version == version {
                return s.clone();
            }
        }
        let started = std::time::Instant::now();
        let recycle = inner.retired.take();
        let (graph, dirty) = rebuild_csr(&inner.dynamic, inner.cached.as_ref(), recycle);
        let compute = ComputeGraph::build(&graph, inner.layout_policy).map(Arc::new);
        let snap = Snapshot {
            graph: Arc::new(graph),
            store_id: self.id,
            version,
            layout: inner.dynamic.shard_layout(),
            shard_versions: Arc::from(inner.dynamic.shard_versions().to_vec()),
            compute,
            components: Arc::new(OnceLock::new()),
        };
        // Shard counters only ever advance, so under an unchanged layout
        // the new epoch's version vector dominates the displaced one —
        // the invariant cache staleness checks rely on.
        debug_assert!(
            inner.cached.as_ref().is_none_or(|prev| {
                prev.layout != snap.layout
                    || prev
                        .shard_versions
                        .iter()
                        .zip(snap.shard_versions.iter())
                        .all(|(old, new)| old <= new)
            }),
            "per-shard versions must be monotone across epochs"
        );
        let shards = inner.dynamic.shard_layout().shards();
        inner.stats.rebuilds += 1;
        inner.stats.shards_rebuilt += dirty as u64;
        inner.stats.shards_reused += (shards - dirty) as u64;
        inner.stats.last_dirty_shards = dirty;
        inner.stats.last_rebuild_seconds = started.elapsed().as_secs_f64();
        // The displaced snapshot becomes the recycling candidate for the
        // *next* rebuild (once every outside clone of it is dropped).
        inner.retired = inner.cached.replace(snap.clone());
        snap
    }

    /// Rebuild counters (shard count, dirty-shard counts, timings) —
    /// see [`RebuildStats`].
    pub fn rebuild_stats(&self) -> RebuildStats {
        self.read().stats
    }

    /// Number of node-id-range shards in the store's layout.
    pub fn shard_count(&self) -> usize {
        self.read().dynamic.shard_layout().shards()
    }

    /// The store's shard layout.
    pub fn shard_layout(&self) -> ShardLayout {
        self.read().dynamic.shard_layout()
    }

    /// The live per-shard mutation counters (see
    /// [`DynamicGraph::shard_versions`]).
    pub fn shard_versions(&self) -> Vec<u64> {
        self.read().dynamic.shard_versions().to_vec()
    }

    /// Number of shards the *next* [`snapshot`](Self::snapshot) call
    /// would re-serialize: shards whose counter moved since the cached
    /// snapshot (all of them when no snapshot is cached yet). Zero means
    /// the next read is a free `Arc` clone.
    pub fn dirty_shards(&self) -> usize {
        let inner = self.read();
        match &inner.cached {
            Some(s) => inner
                .dynamic
                .shard_versions()
                .iter()
                .zip(s.shard_versions.iter())
                .filter(|(live, snap)| live != snap)
                .count(),
            None => inner.dynamic.shard_layout().shards(),
        }
    }

    /// Run `f` against the live [`DynamicGraph`] under the read lock —
    /// for read-only inspections that have no dedicated accessor.
    pub fn with_dynamic<R>(&self, f: impl FnOnce(&DynamicGraph) -> R) -> R {
        f(&self.read().dynamic)
    }

    /// Nodes within `radius` hops of any node in `seeds` on the *live*
    /// graph (see [`DynamicGraph::ball`]) — the locality set used by
    /// localized re-search after an update.
    pub fn ball(&self, seeds: &[NodeId], radius: u32) -> Vec<NodeId> {
        self.read().dynamic.ball(seeds, radius)
    }
}

/// Below this many total CSR slots a rebuild always runs sequentially —
/// thread spawn/join overhead dwarfs the serialization work.
const PARALLEL_REBUILD_MIN_SLOTS: usize = 1 << 16;

/// One shard's slice of the flat CSR arrays being filled.
struct ShardFill<'a> {
    shard: usize,
    /// Node-id range `[start, end)` of the shard.
    start: usize,
    end: usize,
    nbrs: &'a mut [NodeId],
    wts: Option<&'a mut [f64]>,
}

/// Recompile the CSR from the live adjacency, re-serializing only dirty
/// shards. Returns the graph and the number of dirty shards (relative to
/// `prev`, the snapshot the store currently caches).
///
/// Three tiers, fastest applicable wins:
///
/// 1. **In-place patch** — when `recycle` (the snapshot displaced two
///    epochs ago) is held by nobody else and every stale shard kept its
///    slot count, its buffers are patched in place: `O(stale rows)` with
///    zero allocation or copy-forward (see [`patch_in_place`]).
/// 2. **Copy-forward** — fresh arrays; dirty shards re-serialize their
///    live rows, clean shards' offset/neighbour/weight segments are
///    copied verbatim from `prev` (offsets shifted by a constant), fanned
///    out across a `std::thread::scope` pool when there is enough dirty
///    work.
/// 3. **Full rebuild** — no usable `prev` (layout or weightedness
///    changed, or first snapshot): every shard is dirty under tier 2.
///
/// Soundness of reusing a clean shard (tiers 1 and 2): every effective
/// mutation bumps the shard counters of *both* endpoints (and `add_node`
/// the shard of the new node, the only shard whose node range changes),
/// so a shard whose counter matches the reference snapshot's has
/// bitwise-identical adjacency rows, weight rows, and node range — its
/// segments differ from that snapshot's only by their base offset.
fn rebuild_csr(
    dynamic: &DynamicGraph,
    prev: Option<&Snapshot>,
    recycle: Option<Snapshot>,
) -> (Graph, usize) {
    let n = dynamic.n();
    let layout = dynamic.shard_layout();
    let shards = layout.shards();
    let adj = dynamic.adj_rows();
    let wadj = dynamic.weight_rows();

    let reusable = prev.filter(|s| s.layout == layout && s.graph.is_weighted() == wadj.is_some());
    let dirty: Vec<bool> = match reusable {
        Some(prev) => dynamic
            .shard_versions()
            .iter()
            .zip(prev.shard_versions.iter())
            .map(|(live, snap)| live != snap)
            .collect(),
        None => vec![true; shards],
    };
    let dirty_count = dirty.iter().filter(|&&d| d).count();

    // Tier 1: patch the retired snapshot's buffers in place.
    if let Some(retired) = recycle {
        if let Ok(graph) = patch_in_place(dynamic, retired) {
            return (graph, dirty_count);
        }
    }

    // Tiers 2/3. Offsets: a clean shard's segment is the previous
    // snapshot's shifted by a constant, so only dirty shards scan their
    // live row lengths. (Empty shards contribute nothing; skipping them
    // also keeps a clamped `start` beyond the previous snapshot's node
    // count from being consulted.)
    let mut offsets: Vec<usize> = Vec::with_capacity(n + 1);
    offsets.push(0);
    for (shard, &shard_dirty) in dirty.iter().enumerate() {
        let (start, end) = layout.node_range(shard, n);
        if start == end {
            continue;
        }
        let base = offsets.last().copied().unwrap_or(0);
        // A shard can only be clean when a reusable snapshot exists (all
        // shards are dirty otherwise), but scanning the live rows is
        // correct either way — so the unreachable arm serializes rather
        // than panicking a serving thread.
        let reuse = if shard_dirty { None } else { reusable };
        match reuse {
            Some(prev) => {
                // Clean and non-empty: the node range is identical in
                // `prev` (see the soundness note above), so its offsets
                // are too, up to the base shift.
                let seg = &prev.graph.offsets[start..=end];
                let prev_base = seg[0];
                offsets.extend(seg[1..].iter().map(|&o| o - prev_base + base));
            }
            None => {
                let mut acc = base;
                for row in &adj[start..end] {
                    acc += row.len();
                    offsets.push(acc);
                }
            }
        }
    }
    debug_assert_eq!(offsets.len(), n + 1);
    debug_assert!(
        offsets.windows(2).all(|w| w[0] <= w[1]),
        "CSR offsets must be monotone"
    );
    let total = offsets.last().copied().unwrap_or(0);

    let workers = if dirty_count > 1 && total >= PARALLEL_REBUILD_MIN_SLOTS {
        std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1)
            .min(dirty_count)
    } else {
        1
    };

    let (neighbors, slot_weight) = if workers <= 1 {
        fill_sequential(adj, wadj, layout, n, total, &dirty, reusable)
    } else {
        fill_parallel(adj, wadj, layout, n, &offsets, &dirty, reusable, workers)
    };

    let graph = Graph::from_csr(offsets, neighbors);
    let graph = match slot_weight {
        Some(sw) => graph.attach_weights(sw),
        None => graph,
    };
    (graph, dirty_count)
}

/// Sequential CSR fill: append shard segments in node-id order — dirty
/// shards serialize their live rows, clean shards memcpy the previous
/// snapshot's segments. Appending into `with_capacity` buffers skips the
/// zero-initialization a carve-into-segments fill would pay.
fn fill_sequential(
    adj: &[Vec<NodeId>],
    wadj: Option<&[Vec<f64>]>,
    layout: ShardLayout,
    n: usize,
    total: usize,
    dirty: &[bool],
    reusable: Option<&Snapshot>,
) -> (Vec<NodeId>, Option<Vec<f64>>) {
    let mut neighbors: Vec<NodeId> = Vec::with_capacity(total);
    let mut slot_weight: Option<Vec<f64>> = wadj.map(|_| Vec::with_capacity(total));
    for (shard, &shard_dirty) in dirty.iter().enumerate() {
        let (start, end) = layout.node_range(shard, n);
        if start == end {
            continue;
        }
        // Clean shards only exist when a reusable snapshot does; the
        // unreachable clean-without-prev arm re-serializes (always
        // correct) instead of panicking.
        let reuse = if shard_dirty { None } else { reusable };
        match reuse {
            Some(prev) => {
                let base = prev.graph.offsets[start];
                let stop = prev.graph.offsets[end];
                neighbors.extend_from_slice(&prev.graph.neighbors[base..stop]);
                if let (Some(w), Some(lane)) = (&mut slot_weight, prev.graph.weights.as_deref()) {
                    w.extend_from_slice(&lane.slot_weight[base..stop]);
                }
            }
            None => match (&mut slot_weight, wadj) {
                (Some(w), Some(wrows)) => {
                    for (row, wrow) in adj[start..end].iter().zip(&wrows[start..end]) {
                        neighbors.extend_from_slice(row);
                        w.extend_from_slice(wrow);
                    }
                }
                _ => {
                    for row in &adj[start..end] {
                        neighbors.extend_from_slice(row);
                    }
                }
            },
        }
    }
    (neighbors, slot_weight)
}

/// Parallel CSR fill: carve zero-initialized flat arrays into disjoint
/// per-shard segments and round-robin them over a scoped thread pool.
fn fill_parallel(
    adj: &[Vec<NodeId>],
    wadj: Option<&[Vec<f64>]>,
    layout: ShardLayout,
    n: usize,
    offsets: &[usize],
    dirty: &[bool],
    reusable: Option<&Snapshot>,
    workers: usize,
) -> (Vec<NodeId>, Option<Vec<f64>>) {
    let total = offsets.last().copied().unwrap_or(0);
    let mut neighbors = vec![0 as NodeId; total];
    let mut slot_weight = wadj.map(|_| vec![0.0f64; total]);

    // Carve the flat arrays into disjoint per-shard segments (shards are
    // contiguous node-id ranges, so segments tile the arrays in order).
    let shards = layout.shards();
    let mut jobs = Vec::with_capacity(shards);
    {
        let mut rest_n: &mut [NodeId] = &mut neighbors;
        let mut rest_w: Option<&mut [f64]> = slot_weight.as_deref_mut();
        for shard in 0..shards {
            let (start, end) = layout.node_range(shard, n);
            let len = offsets[end] - offsets[start];
            let (seg_n, tail) = rest_n.split_at_mut(len);
            rest_n = tail;
            let wts = rest_w.take().map(|rw| {
                let (seg_w, tail) = rw.split_at_mut(len);
                rest_w = Some(tail);
                seg_w
            });
            jobs.push(ShardFill {
                shard,
                start,
                end,
                nbrs: seg_n,
                wts,
            });
        }
    }

    let fill = |job: &mut ShardFill<'_>| {
        // As in the sequential fill: a clean shard implies a reusable
        // snapshot, and the unreachable clean-without-prev arm falls
        // back to serializing the live rows rather than panicking a
        // pool thread.
        let reuse = if dirty[job.shard] { None } else { reusable };
        match reuse {
            Some(prev) if !job.nbrs.is_empty() => {
                // Clean shard: memcpy the previous snapshot's segments.
                let base = prev.graph.offsets[job.start];
                job.nbrs
                    .copy_from_slice(&prev.graph.neighbors[base..base + job.nbrs.len()]);
                if let (Some(w), Some(lane)) = (&mut job.wts, prev.graph.weights.as_deref()) {
                    w.copy_from_slice(&lane.slot_weight[base..base + w.len()]);
                }
            }
            // Clean but empty segment: nothing to copy — and an empty
            // shard's clamped `start` may lie beyond the previous
            // snapshot's node count, so its offsets must not be
            // consulted.
            Some(_) => {}
            None => {
                // Serialize the live rows (already sorted and deduped).
                let mut cursor = 0usize;
                for v in job.start..job.end {
                    let row = &adj[v];
                    job.nbrs[cursor..cursor + row.len()].copy_from_slice(row);
                    if let (Some(w), Some(wrows)) = (&mut job.wts, wadj) {
                        w[cursor..cursor + row.len()].copy_from_slice(&wrows[v]);
                    }
                    cursor += row.len();
                }
            }
        }
    };

    // Round-robin the shard jobs over the workers; each worker owns
    // disjoint segments, so a scoped spawn per worker suffices.
    let mut buckets: Vec<Vec<ShardFill<'_>>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, job) in jobs.into_iter().enumerate() {
        buckets[i % workers].push(job);
    }
    let fill = &fill;
    std::thread::scope(|scope| {
        for mut bucket in buckets {
            scope.spawn(move || {
                for job in &mut bucket {
                    fill(job);
                }
            });
        }
    });

    (neighbors, slot_weight)
}

/// Try to rebuild by patching `retired`'s CSR buffers in place.
///
/// Applicable when the store holds the only reference to the retired
/// graph, the layout / weightedness / node count are unchanged, and every
/// *stale* shard (counter moved since the retired epoch) kept its total
/// slot count — then no offset outside the stale shards shifts, and the
/// rebuild degenerates to rewriting the stale shards' offset, neighbour,
/// and weight segments from the live rows. Shards whose counter still
/// matches the retired epoch have bitwise-identical rows (same argument
/// as the copy-forward tier), so their segments are already correct.
///
/// On any precondition failure the retired snapshot is simply dropped and
/// the caller falls back to the copy-forward tier.
fn patch_in_place(dynamic: &DynamicGraph, retired: Snapshot) -> Result<Graph, ()> {
    let n = dynamic.n();
    let layout = dynamic.shard_layout();
    let adj = dynamic.adj_rows();
    let wadj = dynamic.weight_rows();
    if retired.layout != layout
        || retired.graph.n() != n
        || retired.graph.is_weighted() != wadj.is_some()
    {
        return Err(());
    }
    let live = dynamic.shard_versions();
    let stale: Vec<usize> = (0..layout.shards())
        .filter(|&s| retired.shard_versions[s] != live[s])
        .collect();
    // Every stale shard must keep its slot count, or offsets past it
    // would shift and the whole tail would need rewriting anyway.
    for &s in &stale {
        let (start, end) = layout.node_range(s, n);
        let new_len: usize = adj[start..end].iter().map(Vec::len).sum();
        if new_len != retired.graph.offsets[end] - retired.graph.offsets[start] {
            return Err(());
        }
    }
    // Nobody else may observe the mutation: the store's retired slot must
    // hold the only strong reference.
    let mut graph = Arc::try_unwrap(retired.graph).map_err(|_| ())?;
    for &s in &stale {
        let (start, end) = layout.node_range(s, n);
        let mut cursor = graph.offsets[start];
        let boundary = graph.offsets[end];
        for v in start..end {
            let row = &adj[v];
            graph.neighbors[cursor..cursor + row.len()].copy_from_slice(row);
            if let (Some(lane), Some(wrows)) = (graph.weights.as_deref_mut(), wadj) {
                lane.slot_weight[cursor..cursor + row.len()].copy_from_slice(&wrows[v]);
            }
            cursor += row.len();
            graph.offsets[v + 1] = cursor;
        }
        // Slot conservation was verified before the patch began; the
        // rewrite must land exactly on the shard's pre-patch boundary.
        debug_assert_eq!(
            cursor, boundary,
            "in-place patch must conserve shard slot counts"
        );
    }
    debug_assert_eq!(
        graph.offsets.last().copied().unwrap_or(0),
        graph.neighbors.len(),
        "patched offsets must still span the slot array"
    );
    if let Some(lane) = graph.weights.as_deref_mut() {
        // Re-derive the aggregates exactly as `attach_weights` does, so a
        // patched graph is bit-identical to a from-scratch build: stale
        // nodes' strengths from their new slots, then the total from all
        // strengths.
        for &s in &stale {
            let (start, end) = layout.node_range(s, n);
            for v in start..end {
                lane.strength[v] = lane.slot_weight[graph.offsets[v]..graph.offsets[v + 1]]
                    .iter()
                    .sum();
            }
        }
        lane.total_weight = lane.strength.iter().sum::<f64>() / 2.0;
    }
    Ok(graph)
}

impl std::fmt::Debug for GraphStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.read();
        f.debug_struct("GraphStore")
            .field("n", &inner.dynamic.n())
            .field("m", &inner.dynamic.m())
            .field("version", &inner.dynamic.version())
            .field("shards", &inner.dynamic.shard_layout().shards())
            .field("snapshot_cached", &inner.cached.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn barbell() -> Graph {
        GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
    }

    #[test]
    fn from_graph_serves_the_seed_without_a_rebuild() {
        let store = GraphStore::from_graph(barbell());
        let a = store.snapshot();
        let b = store.snapshot();
        assert_eq!(a.version(), 0);
        assert!(a.shares_graph(&b), "no mutation: same Arc, no rebuild");
        assert_eq!(a.n(), 6);
        assert_eq!(a.m(), 7);
    }

    #[test]
    fn snapshots_pin_their_epoch() {
        let store = GraphStore::from_graph(barbell());
        let pinned = store.snapshot();
        assert!(store.insert_edge(0, 3));
        assert!(store.remove_edge(2, 3));
        assert_eq!(pinned.m(), 7, "pinned snapshot never changes");
        assert_eq!(pinned.version(), 0);

        let fresh = store.snapshot();
        assert_eq!(fresh.version(), 2);
        assert_eq!(fresh.m(), 7 + 1 - 1);
        assert!(fresh.has_edge(0, 3));
        assert!(!fresh.has_edge(2, 3));
        assert!(!pinned.shares_graph(&fresh));
    }

    #[test]
    fn rebuild_happens_once_per_version() {
        let store = GraphStore::from_graph(barbell());
        store.insert_edge(1, 4);
        let a = store.snapshot();
        let b = store.snapshot();
        assert!(a.shares_graph(&b), "second read reuses the rebuild");
        // An ineffective mutation does not move the version.
        assert!(!store.insert_edge(1, 4));
        assert!(store.snapshot().shares_graph(&a));
    }

    #[test]
    fn node_growth_flows_into_snapshots() {
        let store = GraphStore::new(2);
        assert!(store.insert_edge(0, 1));
        let v = store.add_node();
        assert_eq!(v, 2);
        assert!(store.insert_edge(1, v));
        let snap = store.snapshot();
        assert_eq!(snap.n(), 3);
        assert_eq!(snap.m(), 2);
        assert_eq!(store.version(), 3);
        assert_eq!(snap.version(), 3);
    }

    #[test]
    fn ball_and_with_dynamic_see_the_live_graph() {
        let store = GraphStore::from_graph(barbell());
        assert_eq!(store.ball(&[0], 1), vec![0, 1, 2]);
        store.insert_edge(0, 5);
        assert_eq!(store.ball(&[0], 1), vec![0, 1, 2, 5]);
        assert_eq!(store.with_dynamic(|d| d.degree(0)), 3);
        assert!(store.has_edge(0, 5));
    }

    #[test]
    fn concurrent_readers_and_writers_converge() {
        let store = GraphStore::new(64);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let store = &store;
                s.spawn(move || {
                    for i in 0..15u32 {
                        store.insert_edge(t * 16 + i, t * 16 + i + 1);
                        let snap = store.snapshot();
                        assert!(snap.m() > 0);
                        assert!(snap.version() <= store.version());
                    }
                });
            }
        });
        assert_eq!(store.m(), 60);
        let snap = store.snapshot();
        assert_eq!(snap.m(), 60);
        assert_eq!(snap.version(), 60);
    }

    #[test]
    fn weighted_store_serves_lane_carrying_snapshots() {
        let mut b = crate::weighted::WeightedGraphBuilder::new(4);
        b.add_edge(0, 1, 2.0);
        b.add_edge(1, 2, 3.0);
        let store = GraphStore::from_graph(b.build().into_graph());
        assert!(store.is_weighted());
        let v0 = store.snapshot();
        assert!(v0.is_weighted());
        assert_eq!(v0.edge_weight(0, 1), Some(2.0));

        // A weight-only update bumps the version and re-snapshots.
        assert_eq!(store.set_weight(0, 1, 5.0), Some(2.0));
        assert_eq!(store.version(), 1);
        let v1 = store.snapshot();
        assert_eq!(v1.version(), 1);
        assert_eq!(v1.edge_weight(0, 1), Some(5.0));
        assert_eq!(v0.edge_weight(0, 1), Some(2.0), "pinned epoch unchanged");

        // Same-value re-set: no version move, snapshot reused.
        assert_eq!(store.set_weight(0, 1, 5.0), Some(5.0));
        assert!(store.snapshot().shares_graph(&v1));

        // Weighted insert flows through too.
        assert!(store.insert_edge_w(2, 3, 0.25));
        assert_eq!(store.snapshot().edge_weight(2, 3), Some(0.25));
        assert_eq!(store.edge_weight(2, 3), Some(0.25));
    }

    #[test]
    fn weighted_mutators_refuse_on_unweighted_stores() {
        let store = GraphStore::from_graph(barbell());
        assert!(!store.is_weighted());
        assert!(!store.insert_edge_w(0, 4, 2.0));
        assert_eq!(store.set_weight(0, 1, 2.0), None);
        assert_eq!(store.version(), 0, "refused ops never bump");
        assert_eq!(store.edge_weight(0, 1), Some(1.0), "unweighted edge = 1");
    }

    #[test]
    fn incremental_rebuild_matches_from_scratch() {
        // Ring + chords across 64 nodes, 8 shards of 8.
        let store = GraphStore::with_shards(64, 8);
        for v in 0..64u32 {
            store.insert_edge(v, (v + 1) % 64);
        }
        let first = store.snapshot(); // full rebuild (no cached snapshot)
        assert_eq!(store.rebuild_stats().last_dirty_shards, 8);

        // One edge inside shard 2 ({16..24}): only shard 2 is dirty.
        assert!(store.insert_edge(17, 20));
        assert_eq!(store.dirty_shards(), 1);
        let second = store.snapshot();
        assert_eq!(store.rebuild_stats().last_dirty_shards, 1);
        assert_eq!(store.rebuild_stats().shards_reused, 7);

        // The incremental result must equal a from-scratch build.
        let scratch = store.with_dynamic(|d| d.snapshot());
        assert_eq!(second.n(), scratch.n());
        assert_eq!(second.m(), scratch.m());
        for v in 0..64u32 {
            assert_eq!(second.neighbors(v), scratch.neighbors(v), "node {v}");
        }
        assert!(!first.shares_graph(&second));

        // Cross-shard edge dirties both endpoint shards.
        assert!(store.insert_edge(1, 62));
        assert_eq!(store.dirty_shards(), 2);
        let third = store.snapshot();
        assert!(third.has_edge(1, 62));
        assert_eq!(store.rebuild_stats().last_dirty_shards, 2);
        assert_eq!(store.dirty_shards(), 0, "fresh snapshot: nothing dirty");
    }

    #[test]
    fn incremental_rebuild_carries_weights() {
        let store = GraphStore::from_dynamic(
            crate::dynamic::DynamicGraph::new_weighted_with_shards(16, 4),
        );
        for v in 0..15u32 {
            assert!(store.insert_edge_w(v, v + 1, f64::from(v) + 0.5));
        }
        let _first = store.snapshot();
        // Touch only shard 0 ({0..4}) with a weight change.
        assert_eq!(store.set_weight(1, 2, 9.0), Some(1.5));
        let snap = store.snapshot();
        assert_eq!(store.rebuild_stats().last_dirty_shards, 1);
        assert_eq!(snap.edge_weight(1, 2), Some(9.0));
        // Clean shards' weights copied forward intact.
        assert_eq!(snap.edge_weight(10, 11), Some(10.5));
        let scratch = store.with_dynamic(|d| d.snapshot());
        for v in 0..16u32 {
            assert_eq!(snap.neighbors(v), scratch.neighbors(v));
        }
        assert!((snap.total_weight() - scratch.total_weight()).abs() < 1e-12);
        assert!((snap.strength(11) - scratch.strength(11)).abs() < 1e-12);
    }

    #[test]
    fn node_growth_rebuilds_incrementally() {
        let store = GraphStore::with_shards(8, 4); // shard_size 2
        store.insert_edge(0, 1);
        let _ = store.snapshot();
        let v = store.add_node(); // id 8 clamps into the last shard
        assert_eq!(store.dirty_shards(), 1);
        store.insert_edge(7, v); // still only the last shard
        assert_eq!(store.dirty_shards(), 1);
        let snap = store.snapshot();
        assert_eq!(snap.n(), 9);
        assert!(snap.has_edge(7, 8));
        assert_eq!(snap.neighbors(0), &[1]);
        assert_eq!(store.rebuild_stats().last_dirty_shards, 1);
    }

    #[test]
    fn node_growth_past_prior_range_skips_empty_clean_shards() {
        // shard_size 1: shards 4..7 are empty at n = 4. Growing to n = 5
        // dirties only shard 4; shard 5's clamped start (5) now lies
        // beyond the previous snapshot's offsets — the rebuild must not
        // consult them for a zero-length segment.
        let store = GraphStore::with_shards(4, 8);
        store.insert_edge(0, 1);
        let _ = store.snapshot();
        let v = store.add_node();
        assert_eq!(v, 4);
        assert_eq!(store.dirty_shards(), 1);
        let snap = store.snapshot();
        assert_eq!(snap.n(), 5);
        assert_eq!(snap.neighbors(0), &[1]);
        assert_eq!(store.rebuild_stats().last_dirty_shards, 1);
    }

    #[test]
    fn steady_churn_recycles_the_retired_snapshot_in_place() {
        // A mutate→snapshot loop that keeps no outside snapshot alive:
        // from the third rebuild on, the store recycles the snapshot
        // displaced two epochs ago and patches only the stale shard — the
        // result must still match a from-scratch build every time.
        let store = GraphStore::with_shards(32, 8); // shard_size 4
        for v in 0..31u32 {
            store.insert_edge(v, v + 1);
        }
        for round in 0..5 {
            // Toggle an edge inside shard 1 ({4..8}): slot counts are
            // restored, so the patch tier applies once a retired buffer
            // exists.
            assert!(store.remove_edge(5, 6));
            assert!(store.insert_edge(5, 6));
            let snap = store.snapshot();
            let scratch = store.with_dynamic(|d| d.snapshot());
            for v in 0..32u32 {
                assert_eq!(
                    snap.neighbors(v),
                    scratch.neighbors(v),
                    "round {round} node {v}"
                );
            }
            assert_eq!(
                store.rebuild_stats().last_dirty_shards,
                if round == 0 { 8 } else { 1 }
            );
        }
        // A slot-count-changing update in the same shard still lands
        // correctly (the patch tier refuses; copy-forward takes over).
        assert!(store.insert_edge(4, 6));
        let snap = store.snapshot();
        assert_eq!(snap.neighbors(4), &[3, 5, 6]);
        let scratch = store.with_dynamic(|d| d.snapshot());
        for v in 0..32u32 {
            assert_eq!(snap.neighbors(v), scratch.neighbors(v));
        }
        assert_eq!(store.rebuild_stats().last_dirty_shards, 1);
    }

    #[test]
    fn weighted_churn_patches_strengths_and_totals_exactly() {
        // Weight toggles keep slot counts, so the patch tier engages;
        // strengths and the total must re-derive exactly as a scratch
        // build computes them.
        let store = GraphStore::from_dynamic(
            crate::dynamic::DynamicGraph::new_weighted_with_shards(16, 4),
        );
        for v in 0..15u32 {
            assert!(store.insert_edge_w(v, v + 1, 1.0));
        }
        let _ = store.snapshot();
        for round in 0..4 {
            let w = f64::from(round) + 2.0;
            assert_ne!(store.set_weight(5, 6, w), None); // shard 1
            let snap = store.snapshot();
            let scratch = store.with_dynamic(|d| d.snapshot());
            assert_eq!(snap.edge_weight(5, 6), Some(w));
            assert_eq!(snap.total_weight(), scratch.total_weight(), "round {round}");
            for v in 0..16u32 {
                assert_eq!(
                    snap.strength(v),
                    scratch.strength(v),
                    "round {round} node {v}"
                );
            }
        }
    }

    #[test]
    fn a_pinned_retired_snapshot_is_never_patched() {
        // Hold every snapshot: the store can never recycle buffers, and
        // pinned epochs stay immutable through arbitrary churn.
        let store = GraphStore::with_shards(16, 4);
        store.insert_edge(0, 1);
        let mut pinned = vec![store.snapshot()];
        for _ in 0..4 {
            assert!(store.remove_edge(0, 1));
            assert!(store.insert_edge(0, 1));
            pinned.push(store.snapshot());
        }
        for snap in &pinned {
            assert_eq!(snap.neighbors(0), &[1], "epoch {} torn", snap.version());
            assert_eq!(snap.m(), 1);
        }
    }

    #[test]
    fn snapshots_carry_shard_versions() {
        let store = GraphStore::with_shards(8, 2); // {0..4} | {4..8}
        let a = store.snapshot();
        assert_eq!(a.shards(), 2);
        assert_eq!(a.shard_versions(), &[0, 0]);
        store.insert_edge(0, 7);
        let b = store.snapshot();
        assert_eq!(b.shard_versions(), &[1, 1]);
        assert_eq!(a.shard_versions(), &[0, 0], "pinned epoch unchanged");
        store.insert_edge(5, 6);
        let c = store.snapshot();
        assert_eq!(c.shard_versions(), &[1, 2]);
        assert_eq!(store.shard_versions(), vec![1, 2]);
    }

    #[test]
    fn rebuild_stats_accumulate() {
        let store = GraphStore::from_graph_sharded(barbell(), 3);
        assert_eq!(store.shard_count(), 3);
        let stats = store.rebuild_stats();
        assert_eq!(stats.shards, 3);
        assert_eq!(stats.rebuilds, 0, "adopted seed is not a rebuild");
        store.insert_edge(0, 4);
        let _ = store.snapshot();
        let _ = store.snapshot(); // cached: no second rebuild
        let stats = store.rebuild_stats();
        assert_eq!(stats.rebuilds, 1);
        assert_eq!(stats.shards_rebuilt, stats.last_dirty_shards as u64);
        assert!(stats.last_rebuild_seconds >= 0.0);
    }

    #[test]
    fn layout_policy_builds_and_rebuilds_the_mirror() {
        let store = GraphStore::from_graph(barbell()).with_layout(LayoutPolicy::Bfs);
        assert_eq!(store.layout_policy(), LayoutPolicy::Bfs);
        let snap = store.snapshot();
        assert_eq!(snap.layout_policy(), LayoutPolicy::Bfs);
        let mirror = snap.compute().expect("non-identity policy has a mirror");
        assert_eq!(mirror.graph().n(), snap.n());
        assert_eq!(mirror.graph().m(), snap.m());
        // The canonical graph still speaks external ids.
        assert_eq!(snap.neighbors(0), &[1, 2]);

        // Mutations flow through: the next snapshot rebuilds the mirror.
        store.insert_edge(0, 5);
        let fresh = store.snapshot();
        assert_eq!(fresh.compute().unwrap().graph().m(), 8);

        // Switching back to identity drops the mirror without moving
        // the version.
        store.set_layout_policy(LayoutPolicy::Identity);
        let plain = store.snapshot();
        assert!(plain.compute().is_none());
        assert_eq!(plain.version(), fresh.version());
        assert!(plain.shares_graph(&fresh));
    }

    #[test]
    fn identity_stores_build_no_mirror() {
        let store = GraphStore::from_graph(barbell());
        assert_eq!(store.layout_policy(), LayoutPolicy::Identity);
        let snap = store.snapshot();
        assert!(snap.compute().is_none());
        assert_eq!(snap.layout_policy(), LayoutPolicy::Identity);
    }

    #[test]
    fn component_index_is_shared_per_epoch() {
        let store = GraphStore::from_graph(barbell());
        let a = store.snapshot();
        let b = store.snapshot();
        assert_eq!(a.component_index().count(), 1);
        // Clones of one epoch share the lazily computed index.
        assert!(std::ptr::eq(a.component_index(), b.component_index()));
        store.remove_edge(2, 3);
        let c = store.snapshot();
        assert_eq!(c.component_index().count(), 2);
        assert_eq!(c.component_index().largest(), 3);
        assert_eq!(a.component_index().count(), 1, "pinned epoch unchanged");
    }

    #[test]
    fn epoch_keys_distinguish_stores_and_versions() {
        let a = GraphStore::from_graph(barbell());
        let b = GraphStore::from_graph(barbell());
        assert_ne!(a.snapshot().epoch_key(), b.snapshot().epoch_key());
        let before = a.snapshot().epoch_key();
        a.insert_edge(0, 4);
        assert_ne!(a.snapshot().epoch_key(), before);
        assert_eq!(a.snapshot().epoch_key(), a.snapshot().epoch_key());
    }

    #[test]
    fn freeze_is_version_zero_and_derefs() {
        let snap = Snapshot::freeze(barbell());
        assert_eq!(snap.version(), 0);
        assert_eq!(snap.graph().m(), 7);
        // Deref and AsRef both reach the Graph API.
        assert_eq!(snap.neighbors(0), &[1, 2]);
        let as_graph: &Graph = snap.as_ref();
        assert_eq!(as_graph.n(), 6);
    }
}
