//! Breadth-first traversals: distances, multi-source BFS (FPA's distance
//! layers, §5.2.2), connected components, eccentricity and diameter
//! (community-diameter study, Fig 4).

use crate::view::QueryWorkspace;
use crate::{Graph, NodeId, SubgraphView};
use std::collections::VecDeque;

/// Sentinel distance for unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

/// Single-source BFS distances over the full graph.
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<u32> {
    multi_source_bfs(g, std::slice::from_ref(&source))
}

/// Multi-source BFS over the full graph: `dist(v) = min_{q in sources}
/// dist(q, v)` — exactly the §5.6 distance used by FPA for multiple query
/// nodes. Unreachable nodes get [`UNREACHABLE`].
pub fn multi_source_bfs(g: &Graph, sources: &[NodeId]) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.n()];
    multi_source_bfs_preset(g, sources, &mut dist);
    dist
}

/// [`multi_source_bfs`] into a caller-provided buffer that is already
/// sized to `g.n()` and reset to [`UNREACHABLE`] — the
/// [`crate::view::QueryWorkspace::take_dist`] contract. Skips the `O(n)`
/// re-initialisation, so batched query loops only pay for the component
/// they actually traverse.
pub fn multi_source_bfs_preset(g: &Graph, sources: &[NodeId], dist: &mut [u32]) {
    debug_assert_eq!(dist.len(), g.n());
    debug_assert!(dist.iter().all(|&d| d == UNREACHABLE), "buffer not reset");
    let mut queue = VecDeque::with_capacity(sources.len());
    for &s in sources {
        if dist[s as usize] != 0 {
            dist[s as usize] = 0;
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &w in g.neighbors(u) {
            if dist[w as usize] == UNREACHABLE {
                dist[w as usize] = du + 1;
                queue.push_back(w);
            }
        }
    }
}

/// [`multi_source_bfs_preset`] that also returns every reached node in
/// ascending id order — when `sources` lie in one component this *is*
/// that component, saving batched query loops a separate `O(n)`
/// [`component_of`] pass.
pub fn multi_source_bfs_collect(g: &Graph, sources: &[NodeId], dist: &mut [u32]) -> Vec<NodeId> {
    debug_assert_eq!(dist.len(), g.n());
    debug_assert!(dist.iter().all(|&d| d == UNREACHABLE), "buffer not reset");
    let mut queue = VecDeque::with_capacity(sources.len());
    let mut visited = Vec::new();
    for &s in sources {
        if dist[s as usize] != 0 {
            dist[s as usize] = 0;
            visited.push(s);
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &w in g.neighbors(u) {
            if dist[w as usize] == UNREACHABLE {
                dist[w as usize] = du + 1;
                visited.push(w);
                queue.push_back(w);
            }
        }
    }
    visited.sort_unstable();
    visited
}

/// Multi-source BFS restricted to the alive nodes of a view. Dead nodes get
/// [`UNREACHABLE`]; sources that are not alive are ignored.
pub fn multi_source_bfs_view(view: &SubgraphView<'_>, sources: &[NodeId]) -> Vec<u32> {
    let g = view.graph();
    let mut dist = vec![UNREACHABLE; g.n()];
    let mut queue = VecDeque::with_capacity(sources.len());
    for &s in sources {
        if view.contains(s) && dist[s as usize] != 0 {
            dist[s as usize] = 0;
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for w in view.alive_neighbors(u) {
            if dist[w as usize] == UNREACHABLE {
                dist[w as usize] = du + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Connected-component labelling. Returns `(labels, component_count)`;
/// labels are dense in `0..count`.
pub fn connected_components(g: &Graph) -> (Vec<u32>, usize) {
    let n = g.n();
    let mut label = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut stack = Vec::new();
    for v in 0..n as NodeId {
        if label[v as usize] != u32::MAX {
            continue;
        }
        label[v as usize] = count;
        stack.push(v);
        while let Some(u) = stack.pop() {
            for &w in g.neighbors(u) {
                if label[w as usize] == u32::MAX {
                    label[w as usize] = count;
                    stack.push(w);
                }
            }
        }
        count += 1;
    }
    (label, count as usize)
}

/// Nodes of the connected component containing `seed`.
pub fn component_of(g: &Graph, seed: NodeId) -> Vec<NodeId> {
    let mut seen = crate::bits::BitMask::with_len(g.n());
    let mut stack = vec![seed];
    seen.set(seed as usize);
    let mut comp = vec![seed];
    while let Some(u) = stack.pop() {
        for &w in g.neighbors(u) {
            if !seen.get(w as usize) {
                seen.set(w as usize);
                comp.push(w);
                stack.push(w);
            }
        }
    }
    comp.sort_unstable();
    comp
}

/// True if all of `nodes` lie in one connected component of `g`.
pub fn same_component(g: &Graph, nodes: &[NodeId]) -> bool {
    match nodes {
        // Trivial sets skip the BFS — single-query community searches hit
        // this on every call, and the BFS would cost O(n + m) each.
        [] | [_] => true,
        [first, rest @ ..] => {
            let dist = bfs_distances(g, *first);
            rest.iter().all(|&v| dist[v as usize] != UNREACHABLE)
        }
    }
}

/// [`same_component`] over the workspace's pooled bitset frontier: the
/// visited mask is a `u64`-word [`crate::bits::BitMask`] and the
/// frontier vector doubles as the visited list for the sparse reset, so
/// the steady-state connectivity check performs **zero allocations** —
/// previously every first-in-component multi-node query paid a fresh
/// `O(n)` distance array here even when a component memo was armed.
pub fn same_component_with_workspace(g: &Graph, nodes: &[NodeId], ws: &mut QueryWorkspace) -> bool {
    let (first, rest) = match nodes {
        [] | [_] => return true,
        [first, rest @ ..] => (*first, rest),
    };
    let (mut visited, mut queue) = ws.take_visit(g.n());
    visited.set(first as usize);
    queue.push(first);
    let mut head = 0usize;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        for &w in g.neighbors(u) {
            if !visited.get(w as usize) {
                visited.set(w as usize);
                queue.push(w);
            }
        }
    }
    let connected = rest.iter().all(|&v| visited.get(v as usize));
    ws.put_visit(visited, queue);
    connected
}

/// Eccentricity of `source` within the induced subgraph on `nodes`
/// (maximum finite BFS distance). Returns `None` when the induced subgraph
/// is disconnected from `source`'s side — callers treat that as "no valid
/// diameter".
pub fn eccentricity_within(g: &Graph, nodes: &[NodeId], source: NodeId) -> Option<u32> {
    let view = SubgraphView::from_nodes(g, nodes);
    let dist = multi_source_bfs_view(&view, &[source]);
    let mut ecc = 0u32;
    for &v in nodes {
        let d = dist[v as usize];
        if d == UNREACHABLE {
            return None;
        }
        ecc = ecc.max(d);
    }
    Some(ecc)
}

/// Exact diameter of the induced subgraph on `nodes` (max eccentricity over
/// all its nodes). `O(|nodes| * (|nodes| + edges))` — ground-truth
/// communities in the paper's Fig 4 study are small, so the exact
/// computation is affordable.
///
/// Returns `None` if the induced subgraph is disconnected.
pub fn diameter_within(g: &Graph, nodes: &[NodeId]) -> Option<u32> {
    if nodes.is_empty() {
        return Some(0);
    }
    let view = SubgraphView::from_nodes(g, nodes);
    let mut diam = 0u32;
    for &s in nodes {
        let dist = multi_source_bfs_view(&view, &[s]);
        for &v in nodes {
            let d = dist[v as usize];
            if d == UNREACHABLE {
                return None;
            }
            diam = diam.max(d);
        }
    }
    Some(diam)
}

/// Dense connected-component labels plus per-component sizes — the
/// cheap per-snapshot structure the batch scheduler groups queries by
/// and the query planner reads its skew statistics from.
///
/// Built by union-find (union by size, path halving) over the edge
/// list: `O(m α(n))` with no queue allocation, then relabeled densely
/// so that label `k` is the component whose smallest node id is the
/// `k`-th smallest among component minima (matching
/// [`connected_components`]' labeling order).
#[derive(Debug, Clone)]
pub struct ComponentIndex {
    labels: Vec<u32>,
    sizes: Vec<u32>,
}

impl ComponentIndex {
    /// Compute the index for `g`.
    pub fn compute(g: &Graph) -> ComponentIndex {
        let n = g.n();
        let mut parent: Vec<u32> = (0..n as u32).collect();
        let mut rank: Vec<u32> = vec![1; n];

        fn find(parent: &mut [u32], mut v: u32) -> u32 {
            while parent[v as usize] != v {
                // Path halving: point v at its grandparent as we climb.
                let grand = parent[parent[v as usize] as usize];
                parent[v as usize] = grand;
                v = grand;
            }
            v
        }

        for (u, v) in g.edges() {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru == rv {
                continue;
            }
            // Union by size.
            let (big, small) = if rank[ru as usize] >= rank[rv as usize] {
                (ru, rv)
            } else {
                (rv, ru)
            };
            parent[small as usize] = big;
            rank[big as usize] += rank[small as usize];
        }

        // Dense relabel in ascending order of each root's smallest
        // member — node 0's component gets label 0, and so on.
        let mut labels = vec![0u32; n];
        let mut dense: Vec<u32> = vec![u32::MAX; n];
        let mut sizes: Vec<u32> = Vec::new();
        for v in 0..n as u32 {
            let root = find(&mut parent, v);
            let label = if dense[root as usize] == u32::MAX {
                let l = sizes.len() as u32;
                dense[root as usize] = l;
                sizes.push(rank[root as usize]);
                l
            } else {
                dense[root as usize]
            };
            labels[v as usize] = label;
        }
        ComponentIndex { labels, sizes }
    }

    /// Number of connected components.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// The dense component label of node `v` (`v` must be in range).
    #[inline]
    pub fn label(&self, v: NodeId) -> u32 {
        self.labels[v as usize]
    }

    /// Per-node labels, indexed by node id.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Per-component node counts, indexed by label.
    pub fn sizes(&self) -> &[u32] {
        &self.sizes
    }

    /// Node count of the largest component (0 on the empty graph).
    pub fn largest(&self) -> usize {
        self.sizes.iter().copied().max().unwrap_or(0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path5() -> Graph {
        GraphBuilder::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn bfs_on_path() {
        let g = path5();
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn multi_source_takes_minimum() {
        let g = path5();
        assert_eq!(multi_source_bfs(&g, &[0, 4]), vec![0, 1, 2, 1, 0]);
    }

    #[test]
    fn unreachable_marked() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (2, 3)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn components_counted() {
        let g = GraphBuilder::from_edges(6, &[(0, 1), (2, 3), (3, 4)]);
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 3); // {0,1}, {2,3,4}, {5}
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert_ne!(labels[5], labels[0]);
    }

    #[test]
    fn component_of_collects_sorted() {
        let g = GraphBuilder::from_edges(6, &[(0, 1), (2, 3), (3, 4)]);
        assert_eq!(component_of(&g, 4), vec![2, 3, 4]);
    }

    #[test]
    fn same_component_checks() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(same_component(&g, &[0, 1]));
        assert!(!same_component(&g, &[0, 2]));
        assert!(same_component(&g, &[]));
    }

    #[test]
    fn bfs_respects_view() {
        let g = path5();
        let mut view = crate::SubgraphView::full(&g);
        view.remove(2);
        let d = multi_source_bfs_view(&view, &[0]);
        assert_eq!(d[1], 1);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn diameter_of_path_and_cycle() {
        let g = path5();
        assert_eq!(diameter_within(&g, &[0, 1, 2, 3, 4]), Some(4));
        assert_eq!(diameter_within(&g, &[1, 2, 3]), Some(2));
        let c = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(diameter_within(&c, &[0, 1, 2, 3]), Some(2));
    }

    #[test]
    fn diameter_none_when_disconnected() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(diameter_within(&g, &[0, 2]), None);
    }

    #[test]
    fn eccentricity_within_subgraph() {
        let g = path5();
        assert_eq!(eccentricity_within(&g, &[0, 1, 2], 0), Some(2));
        assert_eq!(eccentricity_within(&g, &[0, 1, 2], 1), Some(1));
    }

    #[test]
    fn component_index_matches_bfs_labeling() {
        let g = GraphBuilder::from_edges(7, &[(0, 1), (1, 2), (4, 3), (5, 6)]);
        let idx = ComponentIndex::compute(&g);
        let (labels, count) = connected_components(&g);
        assert_eq!(idx.count(), count);
        assert_eq!(idx.labels(), labels.as_slice());
        assert_eq!(idx.sizes(), &[3, 2, 2]);
        assert_eq!(idx.largest(), 3);
        assert_eq!(idx.label(3), idx.label(4));
        assert_ne!(idx.label(0), idx.label(6));
    }

    #[test]
    fn component_index_on_degenerate_graphs() {
        let empty = GraphBuilder::new(0).build();
        let idx = ComponentIndex::compute(&empty);
        assert_eq!(idx.count(), 0);
        assert_eq!(idx.largest(), 0);
        let isolated = GraphBuilder::new(3).build();
        let idx = ComponentIndex::compute(&isolated);
        assert_eq!(idx.count(), 3);
        assert_eq!(idx.sizes(), &[1, 1, 1]);
    }
}
