//! Mutable *alive-mask* views over an immutable [`Graph`].
//!
//! The DMCS peeling framework (Algorithm 1) removes one node per iteration.
//! Rebuilding a graph per removal would cost `O(n + m)` each time; a
//! [`SubgraphView`] instead keeps a boolean alive-mask plus per-node *local
//! degree* `k_{v,S}` (the number of alive neighbours — exactly the `k_{v,S}`
//! of Definitions 5–7), so removal is `O(deg(v))` and all peeling state the
//! measures need is maintained incrementally.

use crate::bits::BitMask;
use crate::dynamic::ShardLayout;
use crate::layout::NodeMap;
use crate::{Graph, NodeId};
use std::sync::Arc;

/// A node-induced subgraph of a [`Graph`] supporting cheap node removal.
#[derive(Debug, Clone)]
pub struct SubgraphView<'g> {
    graph: &'g Graph,
    /// Alive mask, one bit per node (see [`BitMask`]).
    alive: BitMask,
    /// `k_{v,S}`: number of alive neighbours of `v` (meaningful only while
    /// `alive[v]`, but kept consistent for dead nodes too).
    local_deg: Vec<u32>,
    n_alive: usize,
    /// Number of edges with both endpoints alive (`l_S`).
    m_alive: u64,
}

impl<'g> SubgraphView<'g> {
    /// View containing every node of `graph`.
    pub fn full(graph: &'g Graph) -> Self {
        let n = graph.n();
        let local_deg = (0..n as NodeId).map(|v| graph.degree(v) as u32).collect();
        let mut alive = BitMask::with_len(n);
        for v in 0..n {
            alive.set(v);
        }
        SubgraphView {
            graph,
            alive,
            local_deg,
            n_alive: n,
            m_alive: graph.m() as u64,
        }
    }

    /// View containing exactly `nodes`.
    pub fn from_nodes(graph: &'g Graph, nodes: &[NodeId]) -> Self {
        let n = graph.n();
        let mut alive = BitMask::with_len(n);
        for &v in nodes {
            alive.set(v as usize);
        }
        let mut local_deg = vec![0u32; n];
        let mut m_alive = 0u64;
        for &v in nodes {
            let mut d = 0u32;
            for &w in graph.neighbors(v) {
                if alive.get(w as usize) {
                    d += 1;
                    if v < w {
                        m_alive += 1;
                    }
                }
            }
            local_deg[v as usize] = d;
        }
        SubgraphView {
            graph,
            alive,
            local_deg,
            n_alive: nodes.len(),
            m_alive,
        }
    }

    /// The underlying immutable graph.
    #[inline]
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Is `v` in the view?
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        self.alive.get(v as usize)
    }

    /// Number of alive nodes (`|S|`).
    #[inline]
    pub fn n_alive(&self) -> usize {
        self.n_alive
    }

    /// Number of alive edges (`l_S`).
    #[inline]
    pub fn m_alive(&self) -> u64 {
        self.m_alive
    }

    /// `k_{v,S}`: degree of `v` counting only alive neighbours.
    #[inline]
    pub fn local_degree(&self, v: NodeId) -> u32 {
        self.local_deg[v as usize]
    }

    /// Remove `v` from the view. Returns the number of alive edges that were
    /// incident to `v` (i.e. `k_{v,S}` at removal time).
    ///
    /// Panics in debug builds if `v` is already removed.
    pub fn remove(&mut self, v: NodeId) -> u32 {
        debug_assert!(self.alive.get(v as usize), "removing dead node {v}");
        self.alive.clear(v as usize);
        let k = self.local_deg[v as usize];
        for &w in self.graph.neighbors(v) {
            if self.alive.get(w as usize) {
                self.local_deg[w as usize] -= 1;
            }
        }
        self.n_alive -= 1;
        self.m_alive -= k as u64;
        k
    }

    /// Re-insert a previously removed node (used by algorithms that undo
    /// speculative removals). `O(deg(v))`.
    pub fn restore(&mut self, v: NodeId) {
        debug_assert!(!self.alive.get(v as usize), "restoring alive node {v}");
        self.alive.set(v as usize);
        let mut k = 0u32;
        for &w in self.graph.neighbors(v) {
            if self.alive.get(w as usize) {
                self.local_deg[w as usize] += 1;
                k += 1;
            }
        }
        self.local_deg[v as usize] = k;
        self.n_alive += 1;
        self.m_alive += k as u64;
    }

    /// Iterate alive nodes in ascending id order. `O(n/64 + |S|)` per
    /// full pass — the bitset skips dead regions a word at a time.
    pub fn iter_alive(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.alive.iter_ones().map(|v| v as NodeId)
    }

    /// Collect alive nodes into a vector.
    pub fn alive_nodes(&self) -> Vec<NodeId> {
        self.iter_alive().collect()
    }

    /// Iterate alive neighbours of `v`.
    #[inline]
    pub fn alive_neighbors<'a>(&'a self, v: NodeId) -> impl Iterator<Item = NodeId> + 'a {
        self.graph
            .neighbors(v)
            .iter()
            .copied()
            .filter(move |&w| self.alive.get(w as usize))
    }

    /// Restrict the view to the connected component containing `seed`,
    /// removing all other alive nodes. Returns the component size, or 0 if
    /// `seed` itself is not alive.
    pub fn retain_component(&mut self, seed: NodeId) -> usize {
        if !self.contains(seed) {
            return 0;
        }
        let n = self.graph.n();
        let mut in_comp = BitMask::with_len(n);
        let mut queue = std::collections::VecDeque::new();
        in_comp.set(seed as usize);
        queue.push_back(seed);
        let mut size = 1usize;
        while let Some(u) = queue.pop_front() {
            for w in self.alive_neighbors(u).collect::<Vec<_>>() {
                if !in_comp.get(w as usize) {
                    in_comp.set(w as usize);
                    size += 1;
                    queue.push_back(w);
                }
            }
        }
        let to_remove: Vec<NodeId> = self
            .iter_alive()
            .filter(|&v| !in_comp.get(v as usize))
            .collect();
        for v in to_remove {
            self.remove(v);
        }
        size
    }

    /// True if the alive subgraph is connected (an empty view counts as
    /// connected).
    pub fn is_connected(&self) -> bool {
        let Some(seed) = self.iter_alive().next() else {
            return true;
        };
        let mut seen = BitMask::with_len(self.graph.n());
        let mut stack = vec![seed];
        seen.set(seed as usize);
        let mut count = 1usize;
        while let Some(u) = stack.pop() {
            for w in self.alive_neighbors(u) {
                if !seen.get(w as usize) {
                    seen.set(w as usize);
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == self.n_alive
    }
}

/// Recyclable per-query allocations for repeated community searches.
///
/// Building a [`SubgraphView`] costs two `O(n)` allocations (alive mask +
/// local degrees), and distance-layered algorithms add an `O(n)` BFS
/// array. A serving workload runs thousands of queries over one shared
/// graph, so a `QueryWorkspace` pools those buffers: take them with
/// [`QueryWorkspace::view`] / [`QueryWorkspace::take_dist`], give them
/// back with [`QueryWorkspace::recycle`] / [`QueryWorkspace::put_dist`],
/// and the next query reuses the capacity instead of re-allocating.
///
/// The alive mask is reset *sparsely* (only the entries the previous
/// query touched), so recycling costs `O(|component|)`, not `O(n)`.
/// Workspaces are plain owned state: keep one per worker thread.
///
/// A workspace can additionally **track the shards a query touches**
/// (see [`QueryWorkspace::begin_shard_tracking`]): the search algorithms
/// call [`note_component`](QueryWorkspace::note_component) on the
/// component they actually explore, and the caller collects the touched
/// shard set afterwards — the ingredient of shard-scoped cache
/// fingerprints.
///
/// When a workspace serves queries **on a renumbered compute mirror**
/// (see [`crate::layout::ComputeGraph`]), the session installs the
/// mirror's [`NodeMap`] as the workspace's *canonical order* via
/// [`QueryWorkspace::set_canon`]. The peeling kernels then break every
/// node-id tie by canonical external id, and
/// [`note_component`](QueryWorkspace::note_component) translates the
/// internal component back to external ids before mapping shard indices
/// — so shard fingerprints keep external semantics whatever substrate
/// executed the query. The default canon is the identity map, which
/// costs nothing and leaves canonical-substrate behaviour untouched.
#[derive(Debug, Default)]
pub struct QueryWorkspace {
    alive: Option<BitMask>,
    local_deg: Option<Vec<u32>>,
    dist: Option<Vec<u32>>,
    /// Canonical external ordering of the graph this workspace queries
    /// (identity unless serving from a renumbered mirror).
    canon: NodeMap,
    /// Pooled visited mask for validation BFS
    /// ([`crate::traversal::same_component_with_workspace`]).
    visited: Option<BitMask>,
    /// Pooled BFS frontier/visited-list paired with `visited` (doubles
    /// as the sparse-reset list, so recycling is `O(|reached|)`).
    visit_queue: Option<Vec<NodeId>>,
    /// Pooled `f64` per-node scratch (the weighted algorithms' local
    /// incident-weight array `w_{v,S}`).
    weights: Option<Vec<f64>>,
    /// Pooled shortest-path-tree distances (`INFINITY`-clean) for the
    /// Steiner-seed pass of multi-node queries.
    path_dist: Option<Vec<f64>>,
    /// Pooled shortest-path-tree parents (`NodeId::MAX`-clean), paired
    /// with `path_dist`.
    path_parent: Option<Vec<NodeId>>,
    /// Present between `begin_shard_tracking` and `take_touched_shards`.
    shard_tracking: Option<ShardTracker>,
    /// Last-component memo (present iff armed; see
    /// [`QueryWorkspace::arm_component_memo`]).
    memo: Option<ComponentMemo>,
}

/// The workspace's last-component memo: consecutive queries landing in
/// the same connected component of the same graph epoch skip the
/// connectivity-validation BFS and the visited-set collection — the
/// memoized sorted component *is* that result. Armed per graph epoch by
/// the session layer; a query against a different epoch can never hit.
#[derive(Debug)]
struct ComponentMemo {
    /// The `(store_id, version)` pair of the snapshot the memo is valid
    /// for (see `Snapshot::epoch_key`): store ids are process-unique and
    /// versions move on every effective mutation, so a stale hit is
    /// impossible — unlike pointer-keying, which an allocator reusing a
    /// freed graph's address would defeat.
    epoch: (u64, u64),
    /// The memoized component, sorted ascending (shared, so repeat
    /// queries clone an `Arc`, not the node vector).
    nodes: Option<Arc<[NodeId]>>,
    /// Membership mask over the memoized component.
    member: BitMask,
    /// Number of queries that reused the memoized component.
    hits: u64,
}

/// Shards touched by the current query (installed by
/// [`QueryWorkspace::begin_shard_tracking`]).
#[derive(Debug)]
struct ShardTracker {
    layout: ShardLayout,
    touched: Vec<bool>,
    /// Whether any component was noted — distinguishes "query touched
    /// no shards" (impossible for a served answer) from "the algorithm
    /// never reported", so error paths fall back to conservative
    /// all-shard fingerprints.
    noted: bool,
}

impl QueryWorkspace {
    /// An empty workspace; buffers are allocated lazily on first use.
    pub fn new() -> Self {
        QueryWorkspace::default()
    }

    /// Build a view containing exactly `nodes`, reusing pooled buffers
    /// when available. Semantically identical to
    /// [`SubgraphView::from_nodes`].
    pub fn view<'g>(&mut self, graph: &'g Graph, nodes: &[NodeId]) -> SubgraphView<'g> {
        let n = graph.n();
        let mut alive = self.alive.take().unwrap_or_default();
        let mut local_deg = self.local_deg.take().unwrap_or_default();
        debug_assert!(alive.is_clear(), "recycled mask not clean");
        debug_assert!(
            local_deg.iter().all(|&d| d == 0),
            "recycled degrees not clean"
        );
        alive.resize(n);
        local_deg.resize(n, 0);
        for &v in nodes {
            alive.set(v as usize);
        }
        let mut m_alive = 0u64;
        for &v in nodes {
            let mut d = 0u32;
            for &w in graph.neighbors(v) {
                if alive.get(w as usize) {
                    d += 1;
                    if v < w {
                        m_alive += 1;
                    }
                }
            }
            local_deg[v as usize] = d;
        }
        SubgraphView {
            graph,
            alive,
            local_deg,
            n_alive: nodes.len(),
            m_alive,
        }
    }

    /// Return a view's buffers to the pool. `nodes` must be the node set
    /// the view was built from; only those entries are reset, so the
    /// clean-buffer invariant holds in `O(|nodes|)`.
    pub fn recycle(&mut self, view: SubgraphView<'_>, nodes: &[NodeId]) {
        let SubgraphView {
            mut alive,
            mut local_deg,
            ..
        } = view;
        for &v in nodes {
            alive.clear(v as usize);
            local_deg[v as usize] = 0;
        }
        self.alive = Some(alive);
        self.local_deg = Some(local_deg);
    }

    /// Start recording which shards of `layout` the next query touches.
    /// Any previous tracking state is discarded.
    pub fn begin_shard_tracking(&mut self, layout: ShardLayout) {
        self.shard_tracking = Some(ShardTracker {
            touched: vec![false; layout.shards()],
            layout,
            noted: false,
        });
    }

    /// Install the canonical external ordering the search kernels break
    /// node-id ties by. Sessions serving from a renumbered compute
    /// mirror pass the mirror's map; the default identity map keeps
    /// canonical-substrate execution bit-for-bit unchanged.
    pub fn set_canon(&mut self, canon: NodeMap) {
        self.canon = canon;
    }

    /// The canonical ordering installed by [`QueryWorkspace::set_canon`]
    /// (identity by default). Kernels clone it at query entry — a cheap
    /// `Arc` bump, or free for the identity map.
    pub fn canon(&self) -> &NodeMap {
        &self.canon
    }

    /// Record that the query explored `nodes` (typically the connected
    /// component a community search peels). `O(|nodes|)`; a no-op when
    /// tracking is not active. Node ids are translated through the
    /// workspace's canonical map first, so mirror-served queries note
    /// the *external* shards their component lives in.
    pub fn note_component(&mut self, nodes: &[NodeId]) {
        if let Some(t) = &mut self.shard_tracking {
            t.noted = true;
            for &v in nodes {
                t.touched[t.layout.shard_of(self.canon.to_external(v))] = true;
            }
        }
    }

    /// Take the pooled validation-BFS buffers: a visited [`BitMask`]
    /// covering `0..n` (all clear) and an empty frontier vector that
    /// doubles as the visited list. Pair with
    /// [`QueryWorkspace::put_visit`]; the same sparse-reset contract as
    /// every other pooled buffer, so steady-state connectivity checks
    /// allocate nothing.
    pub fn take_visit(&mut self, n: usize) -> (BitMask, Vec<NodeId>) {
        let mut visited = self.visited.take().unwrap_or_default();
        debug_assert!(visited.is_clear(), "recycled visited mask not clean");
        visited.resize(n);
        let mut queue = self.visit_queue.take().unwrap_or_default();
        queue.clear();
        (visited, queue)
    }

    /// Return the validation-BFS buffers to the pool, clearing exactly
    /// the bits of the nodes recorded in `queue` (every node the BFS
    /// visited — the frontier vector is never drained).
    pub fn put_visit(&mut self, mut visited: BitMask, mut queue: Vec<NodeId>) {
        for &v in &queue {
            visited.clear(v as usize);
        }
        queue.clear();
        self.visited = Some(visited);
        self.visit_queue = Some(queue);
    }

    /// Finish tracking and return the sorted shard indices the query
    /// touched, or `None` when tracking was never started or the
    /// algorithm never reported a component (callers then fall back to
    /// an all-shards fingerprint).
    pub fn take_touched_shards(&mut self) -> Option<Vec<u32>> {
        let t = self.shard_tracking.take()?;
        if !t.noted {
            return None;
        }
        Some(
            t.touched
                .iter()
                .enumerate()
                .filter(|&(_, &b)| b)
                .map(|(s, _)| s as u32)
                .collect(),
        )
    }

    /// Take the pooled BFS-distance buffer, sized to `n` with **every
    /// entry equal to [`UNREACHABLE`](crate::traversal::UNREACHABLE)** —
    /// the same sparse-reset contract as the alive mask, so steady-state
    /// queries skip the `O(n)` re-initialisation entirely. Pair with
    /// [`QueryWorkspace::put_dist`], listing the nodes the query wrote.
    pub fn take_dist(&mut self, n: usize) -> Vec<u32> {
        let mut dist = self.dist.take().unwrap_or_default();
        if dist.len() != n {
            dist.clear();
            dist.resize(n, crate::traversal::UNREACHABLE);
        }
        debug_assert!(
            dist.iter().all(|&d| d == crate::traversal::UNREACHABLE),
            "recycled distance buffer not clean"
        );
        dist
    }

    /// Return the distance buffer to the pool, resetting exactly the
    /// entries the query wrote (`written` — typically the nodes of the
    /// searched component) back to `UNREACHABLE`.
    pub fn put_dist(&mut self, mut dist: Vec<u32>, written: &[NodeId]) {
        for &v in written {
            dist[v as usize] = crate::traversal::UNREACHABLE;
        }
        self.dist = Some(dist);
    }

    /// Take the pooled per-node `f64` scratch buffer, sized to `n` with
    /// every entry 0.0 — the weighted algorithms' local incident-weight
    /// array. Same sparse-reset contract as the other buffers: pair with
    /// [`QueryWorkspace::put_weights`], listing the nodes written.
    pub fn take_weights(&mut self, n: usize) -> Vec<f64> {
        let mut weights = self.weights.take().unwrap_or_default();
        if weights.len() != n {
            weights.clear();
            weights.resize(n, 0.0);
        }
        debug_assert!(
            weights.iter().all(|&w| w == 0.0),
            "recycled weight buffer not clean"
        );
        weights
    }

    /// Return the weight buffer to the pool, resetting exactly the
    /// entries the query wrote back to 0.0.
    pub fn put_weights(&mut self, mut weights: Vec<f64>, written: &[NodeId]) {
        for &v in written {
            weights[v as usize] = 0.0;
        }
        self.weights = Some(weights);
    }

    /// Take the pooled shortest-path-tree buffers — `f64` distances (all
    /// `INFINITY`) and parent pointers (all `NodeId::MAX`), sized to `n`.
    /// Multi-node queries grow a Steiner seed from a shortest-path tree
    /// before peeling; without pooling those two `O(n)` arrays were
    /// allocated and zeroed per query, which dominated the per-query
    /// constant on fragmented graphs. Same sparse-reset contract as the
    /// other buffers: pair with [`QueryWorkspace::put_path_tree`],
    /// listing the nodes the traversal reached.
    pub fn take_path_tree(&mut self, n: usize) -> (Vec<f64>, Vec<NodeId>) {
        let mut dist = self.path_dist.take().unwrap_or_default();
        if dist.len() != n {
            dist.clear();
            dist.resize(n, f64::INFINITY);
        }
        let mut parent = self.path_parent.take().unwrap_or_default();
        if parent.len() != n {
            parent.clear();
            parent.resize(n, NodeId::MAX);
        }
        debug_assert!(
            dist.iter().all(|&d| d == f64::INFINITY) && parent.iter().all(|&p| p == NodeId::MAX),
            "recycled path-tree buffers not clean"
        );
        (dist, parent)
    }

    /// Return the shortest-path-tree buffers to the pool, resetting
    /// exactly the entries the traversal reached.
    pub fn put_path_tree(
        &mut self,
        mut dist: Vec<f64>,
        mut parent: Vec<NodeId>,
        reached: &[NodeId],
    ) {
        for &v in reached {
            dist[v as usize] = f64::INFINITY;
            parent[v as usize] = NodeId::MAX;
        }
        self.path_dist = Some(dist);
        self.path_parent = Some(parent);
    }

    /// Build a view over `nodes` when `nodes` is known to be a **closed
    /// component** — every neighbour of a member is a member (e.g. a
    /// full connected component). Then each node's local degree is its
    /// full degree and the edge count is half the degree sum, so the
    /// view costs `O(|nodes|)` instead of the `O(Σ deg)` edge scan of
    /// [`QueryWorkspace::view`]. Recycle with
    /// [`QueryWorkspace::recycle`] as usual.
    pub fn view_component<'g>(&mut self, graph: &'g Graph, nodes: &[NodeId]) -> SubgraphView<'g> {
        let n = graph.n();
        let mut alive = self.alive.take().unwrap_or_default();
        let mut local_deg = self.local_deg.take().unwrap_or_default();
        debug_assert!(alive.is_clear(), "recycled mask not clean");
        debug_assert!(
            local_deg.iter().all(|&d| d == 0),
            "recycled degrees not clean"
        );
        alive.resize(n);
        local_deg.resize(n, 0);
        let mut degree_sum = 0u64;
        for &v in nodes {
            alive.set(v as usize);
            let d = graph.degree(v) as u32;
            local_deg[v as usize] = d;
            degree_sum += u64::from(d);
        }
        debug_assert!(
            nodes
                .iter()
                .flat_map(|&v| graph.neighbors(v))
                .all(|&u| alive.get(u as usize)),
            "view_component requires a neighbour-closed node set"
        );
        SubgraphView {
            graph,
            alive,
            local_deg,
            n_alive: nodes.len(),
            m_alive: degree_sum / 2,
        }
    }

    /// Enable the last-component memo for the graph epoch identified by
    /// `epoch` (a `Snapshot::epoch_key`). Arming a different epoch
    /// clears any memoized component; arming the same epoch again is a
    /// no-op, so sessions call this unconditionally per query.
    pub fn arm_component_memo(&mut self, epoch: (u64, u64)) {
        match &mut self.memo {
            Some(m) if m.epoch == epoch => {}
            Some(m) => {
                if let Some(nodes) = m.nodes.take() {
                    for &v in nodes.iter() {
                        m.member.clear(v as usize);
                    }
                }
                m.epoch = epoch;
            }
            None => {
                self.memo = Some(ComponentMemo {
                    epoch,
                    nodes: None,
                    member: BitMask::new(),
                    hits: 0,
                });
            }
        }
    }

    /// Disable the memo (plan `off`): probes miss and stores are
    /// dropped until re-armed. The hit counter is discarded too.
    pub fn disarm_component_memo(&mut self) {
        self.memo = None;
    }

    /// If the memo is armed and every node of `query` lies in the
    /// memoized component, return that component (sorted ascending) and
    /// count a hit. Membership of every query node in one connected
    /// component also proves the query is connected, so callers skip
    /// their validation BFS on a hit. Query nodes must already be
    /// bounds-checked against the graph.
    pub fn memoized_component(&mut self, query: &[NodeId]) -> Option<Arc<[NodeId]>> {
        let m = self.memo.as_mut()?;
        let nodes = m.nodes.as_ref()?;
        if query.is_empty()
            || !query
                .iter()
                .all(|&q| (q as usize) < m.member.capacity() && m.member.get(q as usize))
        {
            return None;
        }
        m.hits += 1;
        Some(Arc::clone(nodes))
    }

    /// Memoize `component` (the sorted connected component the current
    /// query explored) for subsequent [`memoized_component`] probes.
    /// Replaces any previously memoized component. A no-op when the
    /// memo is not armed.
    ///
    /// [`memoized_component`]: QueryWorkspace::memoized_component
    pub fn memoize_component(&mut self, component: &Arc<[NodeId]>, n: usize) {
        let Some(m) = self.memo.as_mut() else {
            return;
        };
        if let Some(old) = m.nodes.take() {
            for &v in old.iter() {
                m.member.clear(v as usize);
            }
        }
        m.member.resize(n);
        for &v in component.iter() {
            m.member.set(v as usize);
        }
        m.nodes = Some(Arc::clone(component));
    }

    /// Number of queries that reused the memoized component since the
    /// memo was (last) armed — the `shared_bfs_reuses` observability
    /// counter. Zero while disarmed.
    pub fn memo_hits(&self) -> u64 {
        self.memo.as_ref().map_or(0, |m| m.hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle_plus_tail() -> Graph {
        // 0-1-2 triangle, 2-3 tail.
        GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)])
    }

    #[test]
    fn full_view_matches_graph() {
        let g = triangle_plus_tail();
        let v = SubgraphView::full(&g);
        assert_eq!(v.n_alive(), 4);
        assert_eq!(v.m_alive(), 4);
        assert_eq!(v.local_degree(2), 3);
    }

    #[test]
    fn remove_updates_local_state() {
        let g = triangle_plus_tail();
        let mut v = SubgraphView::full(&g);
        let k = v.remove(3);
        assert_eq!(k, 1);
        assert_eq!(v.n_alive(), 3);
        assert_eq!(v.m_alive(), 3);
        assert_eq!(v.local_degree(2), 2);
        let k = v.remove(0);
        assert_eq!(k, 2);
        assert_eq!(v.m_alive(), 1);
        assert_eq!(v.local_degree(1), 1);
        assert_eq!(v.local_degree(2), 1);
    }

    #[test]
    fn restore_round_trips() {
        let g = triangle_plus_tail();
        let mut v = SubgraphView::full(&g);
        v.remove(2);
        v.restore(2);
        assert_eq!(v.n_alive(), 4);
        assert_eq!(v.m_alive(), 4);
        assert_eq!(v.local_degree(2), 3);
        assert_eq!(v.local_degree(1), 2);
    }

    #[test]
    fn from_nodes_counts_internal_edges_only() {
        let g = triangle_plus_tail();
        let v = SubgraphView::from_nodes(&g, &[0, 1, 3]);
        assert_eq!(v.n_alive(), 3);
        assert_eq!(v.m_alive(), 1); // only (0,1)
        assert_eq!(v.local_degree(3), 0);
    }

    #[test]
    fn retain_component_drops_disconnected() {
        let g = GraphBuilder::from_edges(5, &[(0, 1), (2, 3), (3, 4)]);
        let mut v = SubgraphView::full(&g);
        let size = v.retain_component(3);
        assert_eq!(size, 3);
        assert!(!v.contains(0));
        assert!(!v.contains(1));
        assert!(v.contains(2) && v.contains(3) && v.contains(4));
    }

    #[test]
    fn workspace_view_matches_from_nodes() {
        let g = triangle_plus_tail();
        let mut ws = QueryWorkspace::new();
        let nodes = [0u32, 1, 2, 3];
        let fresh = SubgraphView::from_nodes(&g, &nodes);
        let reused = ws.view(&g, &nodes);
        assert_eq!(reused.n_alive(), fresh.n_alive());
        assert_eq!(reused.m_alive(), fresh.m_alive());
        for v in 0..4u32 {
            assert_eq!(reused.local_degree(v), fresh.local_degree(v));
        }
        ws.recycle(reused, &nodes);
        // Second use over a different node set must be equally clean.
        let sub = [0u32, 1, 3];
        let again = ws.view(&g, &sub);
        let expect = SubgraphView::from_nodes(&g, &sub);
        assert_eq!(again.n_alive(), expect.n_alive());
        assert_eq!(again.m_alive(), expect.m_alive());
        assert!(!again.contains(2));
        ws.recycle(again, &sub);
    }

    #[test]
    fn workspace_recycle_resets_after_mutation() {
        let g = triangle_plus_tail();
        let mut ws = QueryWorkspace::new();
        let nodes = [0u32, 1, 2, 3];
        let mut v = ws.view(&g, &nodes);
        v.remove(3);
        v.remove(0);
        ws.recycle(v, &nodes);
        // The debug_assert inside view() verifies the clean invariant.
        let v2 = ws.view(&g, &[1, 2]);
        assert_eq!(v2.n_alive(), 2);
        assert_eq!(v2.m_alive(), 1);
        ws.recycle(v2, &[1, 2]);
    }

    #[test]
    fn workspace_dist_buffer_round_trips() {
        use crate::traversal::UNREACHABLE;
        let mut ws = QueryWorkspace::new();
        let mut d = ws.take_dist(5);
        assert_eq!(d, vec![UNREACHABLE; 5]);
        d[1] = 7;
        d[3] = 2;
        ws.put_dist(d, &[1, 3]);
        // Same size: handed back clean without a full refill.
        let d2 = ws.take_dist(5);
        assert_eq!(d2, vec![UNREACHABLE; 5]);
        ws.put_dist(d2, &[]);
        // Size change: re-initialised from scratch.
        let d3 = ws.take_dist(3);
        assert_eq!(d3, vec![UNREACHABLE; 3]);
    }

    #[test]
    fn workspace_weight_buffer_round_trips() {
        let mut ws = QueryWorkspace::new();
        let mut w = ws.take_weights(4);
        assert_eq!(w, vec![0.0; 4]);
        w[1] = 2.5;
        w[3] = 0.125;
        ws.put_weights(w, &[1, 3]);
        // Same size: handed back clean without a full refill.
        let w2 = ws.take_weights(4);
        assert_eq!(w2, vec![0.0; 4]);
        ws.put_weights(w2, &[]);
        // Size change: re-initialised from scratch.
        assert_eq!(ws.take_weights(2), vec![0.0; 2]);
    }

    #[test]
    fn shard_tracking_records_touched_shards() {
        let mut ws = QueryWorkspace::new();
        // Not started: noting is a no-op and take yields None.
        ws.note_component(&[1, 2]);
        assert_eq!(ws.take_touched_shards(), None);

        let layout = ShardLayout::new(8, 4); // shard_size 2
        ws.begin_shard_tracking(layout);
        ws.note_component(&[0, 1, 5]); // shards 0 and 2
        ws.note_component(&[7]); // shard 3
        assert_eq!(ws.take_touched_shards(), Some(vec![0, 2, 3]));
        // Tracking is consumed.
        ws.note_component(&[2]);
        assert_eq!(ws.take_touched_shards(), None);

        // Started but never noted (error path): conservative None.
        ws.begin_shard_tracking(layout);
        assert_eq!(ws.take_touched_shards(), None);
    }

    #[test]
    fn shard_noting_translates_through_the_canon_map() {
        // Reversal map: internal v ↔ external 7-v over 8 nodes.
        let order: Vec<NodeId> = (0..8u32).rev().collect();
        let mut ws = QueryWorkspace::new();
        assert!(ws.canon().is_identity());
        ws.set_canon(NodeMap::from_order(&order));
        let layout = ShardLayout::new(8, 4); // shard_size 2
        ws.begin_shard_tracking(layout);
        // Internal 0 and 1 are external 7 and 6 → shard 3.
        ws.note_component(&[0, 1]);
        assert_eq!(ws.take_touched_shards(), Some(vec![3]));
        ws.set_canon(NodeMap::identity());
        ws.begin_shard_tracking(layout);
        ws.note_component(&[0, 1]);
        assert_eq!(ws.take_touched_shards(), Some(vec![0]));
    }

    #[test]
    fn visit_buffers_round_trip_clean() {
        let mut ws = QueryWorkspace::new();
        let (mut visited, mut queue) = ws.take_visit(70);
        assert!(visited.is_clear() && queue.is_empty());
        for v in [0u32, 65] {
            visited.set(v as usize);
            queue.push(v);
        }
        ws.put_visit(visited, queue);
        let (visited, queue) = ws.take_visit(70);
        assert!(visited.is_clear(), "sparse reset restored the mask");
        assert!(queue.is_empty());
        ws.put_visit(visited, queue);
    }

    #[test]
    fn view_component_matches_edge_scan_view() {
        // Two components; {0,1,2} is neighbour-closed in this graph.
        let g = GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5)]);
        let mut ws = QueryWorkspace::new();
        let comp = [0u32, 1, 2];
        let fast = ws.view_component(&g, &comp);
        let slow = SubgraphView::from_nodes(&g, &comp);
        assert_eq!(fast.n_alive(), slow.n_alive());
        assert_eq!(fast.m_alive(), slow.m_alive());
        for &v in &comp {
            assert_eq!(fast.local_degree(v), slow.local_degree(v));
        }
        assert!(!fast.contains(3));
        ws.recycle(fast, &comp);
        // Recycled buffers stay clean for the other component.
        let other = [3u32, 4, 5];
        let again = ws.view_component(&g, &other);
        assert_eq!(again.n_alive(), 3);
        assert_eq!(again.m_alive(), 2);
        ws.recycle(again, &other);
    }

    #[test]
    fn component_memo_hits_and_epoch_invalidation() {
        let mut ws = QueryWorkspace::new();
        // Disarmed: probes miss, stores drop, counter reads zero.
        assert!(ws.memoized_component(&[0]).is_none());
        let comp: Arc<[NodeId]> = Arc::from(vec![0u32, 1, 2]);
        ws.memoize_component(&comp, 6);
        assert!(ws.memoized_component(&[0]).is_none());
        assert_eq!(ws.memo_hits(), 0);

        ws.arm_component_memo((7, 0));
        assert!(ws.memoized_component(&[0]).is_none(), "nothing stored yet");
        ws.memoize_component(&comp, 6);
        let hit = ws.memoized_component(&[2, 0]).expect("members hit");
        assert_eq!(hit.as_ref(), &[0, 1, 2]);
        assert!(ws.memoized_component(&[1, 3]).is_none(), "3 not a member");
        assert!(ws.memoized_component(&[9]).is_none(), "out of mask range");
        assert!(ws.memoized_component(&[]).is_none(), "empty never hits");
        assert_eq!(ws.memo_hits(), 1);

        // Same epoch re-arm keeps the memo; new epoch clears it.
        ws.arm_component_memo((7, 0));
        assert!(ws.memoized_component(&[1]).is_some());
        ws.arm_component_memo((7, 1));
        assert!(ws.memoized_component(&[1]).is_none());

        // Replacing the memo clears the old membership sparsely.
        let other: Arc<[NodeId]> = Arc::from(vec![3u32, 4]);
        ws.memoize_component(&comp, 6);
        ws.memoize_component(&other, 6);
        assert!(ws.memoized_component(&[0]).is_none(), "old component gone");
        assert!(ws.memoized_component(&[3, 4]).is_some());

        ws.disarm_component_memo();
        assert_eq!(ws.memo_hits(), 0);
        assert!(ws.memoized_component(&[3]).is_none());
    }

    #[test]
    fn connectivity_check() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut v = SubgraphView::full(&g);
        assert!(v.is_connected());
        v.remove(1);
        assert!(!v.is_connected());
        v.remove(0);
        assert!(v.is_connected());
    }
}
