//! Incremental construction of [`Graph`]s.
//!
//! The builder accepts edges in any order, tolerates duplicates and
//! self-loops (both are dropped — the paper's model is an undirected
//! *simple* graph, §3), and produces sorted CSR adjacency in
//! `O(n + m log deg_max)`.

use crate::{Graph, NodeId};

/// Builder for [`Graph`]. See the crate-level docs for an example.
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    /// Edge list as (u, v) pairs; normalised to u < v on insert.
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Create a builder for a graph with at least `n` nodes. Adding an edge
    /// with a larger endpoint grows the node count automatically.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Create a builder pre-sized for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Number of nodes currently declared.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of (possibly duplicate) edges added so far.
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Add an undirected edge. Self-loops are ignored. Duplicates are
    /// de-duplicated at `build` time.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        if u == v {
            return;
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.n = self.n.max(b as usize + 1);
        self.edges.push((a, b));
    }

    /// Add every edge from an iterator of pairs.
    pub fn extend_edges<I: IntoIterator<Item = (NodeId, NodeId)>>(&mut self, it: I) {
        for (u, v) in it {
            self.add_edge(u, v);
        }
    }

    /// Consume the builder and produce the CSR graph.
    pub fn build(mut self) -> Graph {
        // Sort + dedup the normalised edge list, then do a counting pass.
        self.edges.sort_unstable();
        self.edges.dedup();

        let n = self.n;
        let mut deg = vec![0usize; n];
        for &(u, v) in &self.edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut acc = 0usize;
        for d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0 as NodeId; acc];
        for &(u, v) in &self.edges {
            neighbors[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Each adjacency list is already sorted: edges were globally sorted
        // by (u, v), so positions written for a fixed u ascend in v; for the
        // reverse direction v receives u values in ascending u order, but
        // interleaved with forward writes — sort defensively per list.
        for v in 0..n {
            neighbors[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Graph::from_csr(offsets, neighbors)
    }

    /// Build directly from an edge list.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Graph {
        let mut b = GraphBuilder::with_capacity(n, edges.len());
        b.extend_edges(edges.iter().copied());
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_and_drops_self_loops() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 0); // duplicate, reversed
        b.add_edge(0, 1); // duplicate
        b.add_edge(2, 2); // self loop
        let g = b.build();
        assert_eq!(g.m(), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn grows_node_count() {
        let mut b = GraphBuilder::new(0);
        b.add_edge(5, 2);
        let g = b.build();
        assert_eq!(g.n(), 6);
        assert!(g.has_edge(2, 5));
    }

    #[test]
    fn adjacency_is_sorted() {
        let g = GraphBuilder::from_edges(6, &[(3, 1), (3, 5), (3, 0), (3, 4), (3, 2)]);
        assert_eq!(g.neighbors(3), &[0, 1, 2, 4, 5]);
    }

    #[test]
    fn from_edges_roundtrip() {
        let edges = vec![(0, 1), (1, 2), (0, 2), (2, 3)];
        let g = GraphBuilder::from_edges(4, &edges);
        assert_eq!(g.m(), 4);
        let mut got: Vec<_> = g.edges().collect();
        got.sort_unstable();
        let mut want = edges;
        want.sort_unstable();
        assert_eq!(got, want);
    }
}
