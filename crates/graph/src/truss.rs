//! Triangle support, truss decomposition and triangle-connected k-truss
//! communities.
//!
//! Substrate for the `kt` (Huang et al. 2014), `hightruss` and `huang2015`
//! baselines and for the paper's query-selection protocol ("query nodes are
//! picked from the result of (k+1)-truss", §6.1).
//!
//! A *k-truss* is the maximal subgraph in which every edge participates in
//! at least `k − 2` triangles. The decomposition peels edges in order of
//! support (Wang & Cheng style bucket peeling); `trussness(e)` is the
//! largest `k` such that `e` survives in the k-truss.

use crate::{Graph, NodeId};

/// Edge-indexed graph overlay: every undirected edge gets a dense id shared
/// by both CSR directions, enabling per-edge state (support, trussness).
#[derive(Debug, Clone)]
pub struct EdgeIndex {
    /// `eid[i]` is the edge id of CSR slot `i` (parallel to the graph's
    /// neighbour array).
    eid: Vec<u32>,
    /// `endpoints[e] = (u, v)` with `u < v`.
    endpoints: Vec<(NodeId, NodeId)>,
}

impl EdgeIndex {
    /// Build the edge index in `O(n + m)`.
    pub fn new(g: &Graph) -> Self {
        let mut eid = vec![u32::MAX; 2 * g.m()];
        let mut endpoints = Vec::with_capacity(g.m());
        let mut slot = 0usize; // running CSR slot while scanning nodes in order
                               // First pass: assign ids to forward slots (u < v).
        let mut forward_start = vec![0usize; g.n() + 1];
        for u in g.nodes() {
            forward_start[u as usize] = slot;
            for &v in g.neighbors(u) {
                if u < v {
                    eid[slot] = endpoints.len() as u32;
                    endpoints.push((u, v));
                }
                slot += 1;
            }
        }
        forward_start[g.n()] = slot;
        // Second pass: fill reverse slots by binary searching u in v's list.
        for (e, &(u, v)) in endpoints.iter().enumerate() {
            let nbrs = g.neighbors(v);
            let pos = nbrs.binary_search(&u).expect("edge must exist both ways");
            eid[forward_start[v as usize] + pos] = e as u32;
        }
        debug_assert!(eid.iter().all(|&x| x != u32::MAX));
        EdgeIndex { eid, endpoints }
    }

    /// Number of edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.endpoints.len()
    }

    /// Endpoints of edge `e` as `(u, v)` with `u < v`.
    #[inline]
    pub fn endpoints(&self, e: u32) -> (NodeId, NodeId) {
        self.endpoints[e as usize]
    }

    /// Edge id of the CSR slot `i` (callers iterate a node's neighbour range
    /// and index this in lock-step). Exposed for the peeling loops.
    #[inline]
    pub fn eid_of_slot(&self, i: usize) -> u32 {
        self.eid[i]
    }

    /// Find the edge id of `(u, v)`, if the edge exists.
    pub fn edge_id(&self, g: &Graph, u: NodeId, v: NodeId) -> Option<u32> {
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        let off = self.slot_base(g, a);
        let pos = g.neighbors(a).binary_search(&b).ok()?;
        Some(self.eid[off + pos])
    }

    #[inline]
    fn slot_base(&self, g: &Graph, v: NodeId) -> usize {
        g.csr_offset(v)
    }
}

/// Number of triangles through each edge ("support"), `O(sum_e (deg(u) +
/// deg(v)))` via sorted-list intersection.
pub fn edge_support(g: &Graph, idx: &EdgeIndex) -> Vec<u32> {
    let mut support = vec![0u32; idx.m()];
    for e in 0..idx.m() as u32 {
        let (u, v) = idx.endpoints(e);
        support[e as usize] = count_common(g.neighbors(u), g.neighbors(v));
    }
    support
}

fn count_common(a: &[NodeId], b: &[NodeId]) -> u32 {
    let (mut i, mut j, mut c) = (0usize, 0usize, 0u32);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

/// Total number of triangles in the graph (each counted once).
pub fn triangle_count(g: &Graph) -> u64 {
    let idx = EdgeIndex::new(g);
    edge_support(g, &idx).iter().map(|&s| s as u64).sum::<u64>() / 3
}

/// Trussness of every edge: the largest `k` such that the edge is in the
/// k-truss. Edges in no triangle get trussness 2.
pub fn truss_decomposition(g: &Graph, idx: &EdgeIndex) -> Vec<u32> {
    let m = idx.m();
    let mut sup = edge_support(g, idx);
    let mut truss = vec![2u32; m];
    let mut alive = vec![true; m];

    // Bucket queue over support values.
    let max_sup = sup.iter().copied().max().unwrap_or(0) as usize;
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_sup + 1];
    for (e, &s) in sup.iter().enumerate() {
        buckets[s as usize].push(e as u32);
    }
    let mut removed = 0usize;
    let mut cur = 0usize;
    while removed < m {
        // Find next non-empty bucket at or below the current level; support
        // only decreases, so entries may be stale (lazily validated).
        while cur <= max_sup && buckets[cur].is_empty() {
            cur += 1;
        }
        if cur > max_sup {
            break;
        }
        let e = buckets[cur].pop().unwrap();
        if !alive[e as usize] || sup[e as usize] as usize != cur {
            continue; // stale entry
        }
        // Peel e at level cur: trussness = cur + 2.
        alive[e as usize] = false;
        truss[e as usize] = cur as u32 + 2;
        removed += 1;
        let (u, v) = idx.endpoints(e);
        // Decrement support of the other two edges of every triangle (u,v,w).
        let (nu, nv) = (g.neighbors(u), g.neighbors(v));
        let (mut i, mut j) = (0usize, 0usize);
        while i < nu.len() && j < nv.len() {
            match nu[i].cmp(&nv[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let w = nu[i];
                    let e1 = idx.edge_id(g, u, w).expect("triangle edge");
                    let e2 = idx.edge_id(g, v, w).expect("triangle edge");
                    if alive[e1 as usize] && alive[e2 as usize] {
                        for &ex in &[e1, e2] {
                            let s = sup[ex as usize];
                            // Support cannot drop below the current peel
                            // level (standard truss peeling invariant).
                            if s as usize > cur {
                                sup[ex as usize] = s - 1;
                                buckets[(s - 1) as usize].push(ex);
                                if ((s - 1) as usize) < cur {
                                    // cannot happen, guarded above
                                }
                            }
                        }
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        // Support may have been pushed into buckets below `cur`; reset the
        // scan level accordingly (clamped by the invariant above, but keep
        // the defensive min for clarity).
        // cur stays: sup never drops below cur by the guard.
    }
    truss
}

/// Maximum trussness over edges incident to `v` (0 if `v` has no edges) —
/// the node-level "trussness" used by the query-selection protocol and the
/// `hightruss` baseline.
pub fn node_trussness(g: &Graph, idx: &EdgeIndex, truss: &[u32], v: NodeId) -> u32 {
    let base = slot_base_of(g, v);
    g.neighbors(v)
        .iter()
        .enumerate()
        .map(|(i, _)| truss[idx.eid_of_slot(base + i) as usize])
        .max()
        .unwrap_or(0)
}

fn slot_base_of(g: &Graph, v: NodeId) -> usize {
    g.csr_offset(v)
}

/// Triangle-connected k-truss communities containing the query node `q`
/// (Huang et al. 2014 model): starting from each k-truss edge incident to
/// `q`, expand over edges sharing a triangle whose three edges all lie in
/// the k-truss. Returns the node sets of all such communities (possibly
/// several, disjoint in edges but possibly overlapping in nodes).
pub fn k_truss_communities(g: &Graph, k: u32, q: NodeId) -> Vec<Vec<NodeId>> {
    let idx = EdgeIndex::new(g);
    let truss = truss_decomposition(g, &idx);
    let in_truss = |e: u32| truss[e as usize] >= k;

    let mut visited = vec![false; idx.m()];
    let mut communities = Vec::new();
    let base = slot_base_of(g, q);
    for (i, _) in g.neighbors(q).iter().enumerate() {
        let e0 = idx.eid_of_slot(base + i);
        if visited[e0 as usize] || !in_truss(e0) {
            continue;
        }
        // BFS over triangle-adjacent truss edges.
        let mut nodes = std::collections::BTreeSet::new();
        let mut queue = std::collections::VecDeque::new();
        visited[e0 as usize] = true;
        queue.push_back(e0);
        while let Some(e) = queue.pop_front() {
            let (u, v) = idx.endpoints(e);
            nodes.insert(u);
            nodes.insert(v);
            let (nu, nv) = (g.neighbors(u), g.neighbors(v));
            let (mut a, mut b) = (0usize, 0usize);
            while a < nu.len() && b < nv.len() {
                match nu[a].cmp(&nv[b]) {
                    std::cmp::Ordering::Less => a += 1,
                    std::cmp::Ordering::Greater => b += 1,
                    std::cmp::Ordering::Equal => {
                        let w = nu[a];
                        let e1 = idx.edge_id(g, u, w).unwrap();
                        let e2 = idx.edge_id(g, v, w).unwrap();
                        if in_truss(e1) && in_truss(e2) {
                            for &ex in &[e1, e2] {
                                if !visited[ex as usize] {
                                    visited[ex as usize] = true;
                                    queue.push_back(ex);
                                }
                            }
                        }
                        a += 1;
                        b += 1;
                    }
                }
            }
        }
        communities.push(nodes.into_iter().collect());
    }
    communities
}

/// The `kt` baseline community: union of all triangle-connected k-truss
/// communities containing `q`. `None` if `q` touches no k-truss edge.
pub fn k_truss_community(g: &Graph, k: u32, q: NodeId) -> Option<Vec<NodeId>> {
    let comms = k_truss_communities(g, k, q);
    if comms.is_empty() {
        return None;
    }
    let mut nodes: Vec<NodeId> = comms.into_iter().flatten().collect();
    nodes.sort_unstable();
    nodes.dedup();
    Some(nodes)
}

/// The `hightruss` baseline: k-truss community with `k` maximised.
pub fn highest_truss_community(g: &Graph, q: NodeId) -> Option<(Vec<NodeId>, u32)> {
    let idx = EdgeIndex::new(g);
    let truss = truss_decomposition(g, &idx);
    let k_max = node_trussness(g, &idx, &truss, q);
    for k in (3..=k_max).rev() {
        if let Some(c) = k_truss_community(g, k, q) {
            return Some((c, k));
        }
    }
    // Fall back to the 2-truss (= connected component of q's edges).
    k_truss_community(g, 2, q).map(|c| (c, 2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// Two K4s sharing node 3: {0,1,2,3} and {3,4,5,6}.
    fn two_k4() -> Graph {
        GraphBuilder::from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (3, 5),
                (3, 6),
                (4, 5),
                (4, 6),
                (5, 6),
            ],
        )
    }

    #[test]
    fn edge_index_roundtrip() {
        let g = two_k4();
        let idx = EdgeIndex::new(&g);
        assert_eq!(idx.m(), 12);
        for e in 0..idx.m() as u32 {
            let (u, v) = idx.endpoints(e);
            assert_eq!(idx.edge_id(&g, u, v), Some(e));
            assert_eq!(idx.edge_id(&g, v, u), Some(e));
        }
        assert_eq!(idx.edge_id(&g, 0, 6), None);
    }

    #[test]
    fn support_of_k4_edges() {
        let g = two_k4();
        let idx = EdgeIndex::new(&g);
        let sup = edge_support(&g, &idx);
        // Every edge inside a K4 (not touching both cliques) has support 2.
        let e01 = idx.edge_id(&g, 0, 1).unwrap();
        assert_eq!(sup[e01 as usize], 2);
    }

    #[test]
    fn triangle_count_k4() {
        let g = two_k4();
        assert_eq!(triangle_count(&g), 8); // 4 triangles per K4
    }

    #[test]
    fn truss_decomposition_k4() {
        let g = two_k4();
        let idx = EdgeIndex::new(&g);
        let truss = truss_decomposition(&g, &idx);
        for e in 0..idx.m() as u32 {
            assert_eq!(truss[e as usize], 4, "edge {:?}", idx.endpoints(e));
        }
    }

    #[test]
    fn truss_of_triangle_with_tail() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let idx = EdgeIndex::new(&g);
        let truss = truss_decomposition(&g, &idx);
        let e_tail = idx.edge_id(&g, 2, 3).unwrap();
        let e_tri = idx.edge_id(&g, 0, 1).unwrap();
        assert_eq!(truss[e_tail as usize], 2);
        assert_eq!(truss[e_tri as usize], 3);
    }

    #[test]
    fn truss_satisfies_support_invariant() {
        // In the k-truss (edges with trussness >= k), every edge has
        // support >= k - 2 within that subgraph.
        let g = two_k4();
        let idx = EdgeIndex::new(&g);
        let truss = truss_decomposition(&g, &idx);
        let kmax = *truss.iter().max().unwrap();
        for k in 3..=kmax {
            let keep: Vec<(NodeId, NodeId)> = (0..idx.m() as u32)
                .filter(|&e| truss[e as usize] >= k)
                .map(|e| idx.endpoints(e))
                .collect();
            if keep.is_empty() {
                continue;
            }
            let sub = GraphBuilder::from_edges(g.n(), &keep);
            let sub_idx = EdgeIndex::new(&sub);
            let sup = edge_support(&sub, &sub_idx);
            for (e, &s) in sup.iter().enumerate() {
                assert!(
                    s + 2 >= k,
                    "edge {:?} support {s} below {k}-truss bound",
                    sub_idx.endpoints(e as u32)
                );
            }
        }
    }

    #[test]
    fn triangle_connected_communities_are_separate() {
        // The two K4s share node 3 but no triangle, so 4-truss communities
        // through node 3 are two separate node sets.
        let g = two_k4();
        let comms = k_truss_communities(&g, 4, 3);
        assert_eq!(comms.len(), 2);
        let mut sizes: Vec<usize> = comms.iter().map(|c| c.len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![4, 4]);
        // From node 0 there is a single community.
        let comms0 = k_truss_communities(&g, 4, 0);
        assert_eq!(comms0.len(), 1);
        assert_eq!(comms0[0], vec![0, 1, 2, 3]);
    }

    #[test]
    fn kt_community_union() {
        let g = two_k4();
        let c = k_truss_community(&g, 4, 3).unwrap();
        assert_eq!(c.len(), 7);
    }

    #[test]
    fn highest_truss_finds_k4() {
        let g = two_k4();
        let (c, k) = highest_truss_community(&g, 0).unwrap();
        assert_eq!(k, 4);
        assert_eq!(c, vec![0, 1, 2, 3]);
    }

    #[test]
    fn no_truss_for_isolated_query() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        let g = b.build();
        assert!(k_truss_community(&g, 3, 4).is_none());
        assert!(highest_truss_community(&g, 4).is_none());
    }
}
