//! # dmcs-graph — graph substrate for the DMCS reproduction
//!
//! A self-contained, allocation-conscious graph library providing every
//! graph primitive the DMCS paper (SIGMOD 2022) relies on:
//!
//! - [`Graph`] — an immutable, undirected, simple graph in compressed
//!   sparse row (CSR) form with sorted adjacency, built via
//!   [`GraphBuilder`].
//! - [`SubgraphView`] — a mutable *alive-mask* over a [`Graph`] supporting
//!   `O(deg)` node removal, the workhorse of the top-down peeling framework.
//! - [`traversal`] — BFS (single- and multi-source), connected components,
//!   eccentricity and diameter.
//! - [`dijkstra`] — weighted shortest paths (the paper's §5.5 complexity
//!   analysis assumes Dijkstra; social graphs here are unweighted so BFS is
//!   used in practice, but the weighted form backs the weighted
//!   density-modularity definition).
//! - [`articulation`] — iterative Hopcroft–Tarjan articulation points over a
//!   view (NCA's removable-node test, §5.2.1).
//! - [`cores`] — k-core peeling and core decomposition (kc / highcore
//!   baselines).
//! - [`truss`] — triangle support, truss decomposition and
//!   triangle-connected k-truss communities (kt / hightruss / huang2015).
//! - [`betweenness`] — Brandes betweenness centrality (GN baseline, Fig 20
//!   case study).
//! - [`eigen`] — eigenvector centrality by power iteration (Fig 20).
//! - [`mincut`] — Stoer–Wagner global min-cut with early cut splitting and
//!   the k-edge-connected-component extraction used by the kecc baseline.
//! - [`cliques`] — Bron–Kerbosch maximal cliques and k-clique percolation
//!   (clique baseline).
//! - [`steiner`] — shortest-path-union Steiner approximation (§5.6).
//!
//! The representation follows the Rust Performance Book guidance used across
//! this workspace: flat `Vec` storage, `u32` node ids, no per-node
//! allocations, and iterative (non-recursive) DFS so multi-million-node
//! graphs cannot overflow the stack.

#![warn(missing_docs)]

pub mod articulation;
pub mod betweenness;
pub mod bits;
pub mod builder;
pub mod cliques;
pub mod clustering;
pub mod cores;
pub mod diameter;
pub mod dijkstra;
pub mod dot;
pub mod dynamic;
pub mod eigen;
pub mod io;
pub mod layout;
pub mod mincut;
pub mod pagerank;
pub mod stats;
pub mod steiner;
pub mod store;
pub mod traversal;
pub mod truss;
pub mod view;
pub mod weighted;

pub use builder::GraphBuilder;
pub use dynamic::{ShardLayout, DEFAULT_SHARD_COUNT};
pub use layout::{ComputeGraph, LayoutPolicy, NodeMap};
pub use store::{GraphStore, RebuildStats, Snapshot};
pub use traversal::ComponentIndex;
pub use view::SubgraphView;

/// Node identifier. `u32` keeps adjacency arrays half the size of `usize`
/// indices and comfortably covers the paper's largest graph (LiveJournal,
/// ~4M nodes).
pub type NodeId = u32;

/// An immutable, undirected, simple graph in compressed sparse row form.
///
/// Each undirected edge `{u, v}` is stored twice (once per endpoint), so
/// `neighbors.len() == 2 * m`. Adjacency lists are sorted, enabling
/// `O(log deg)` membership tests via [`Graph::has_edge`].
///
/// A graph optionally carries a **weights lane** — one `f64` per CSR
/// slot, plus precomputed node strengths and the total edge weight (see
/// the [`weighted`] module). Unweighted graphs pay nothing for the lane
/// (a single `None` pointer), and the unweighted accessors never consult
/// it; the weighted accessors fall back to unit weights when it is
/// absent, so weight-aware algorithms run on any graph.
///
/// Build one with [`GraphBuilder`]:
///
/// ```
/// use dmcs_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// b.add_edge(2, 3);
/// let g = b.build();
/// assert_eq!(g.n(), 4);
/// assert_eq!(g.m(), 3);
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// assert!(!g.is_weighted());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    /// `offsets[v]..offsets[v + 1]` indexes `neighbors` for node `v`.
    offsets: Vec<usize>,
    /// Concatenated sorted adjacency lists.
    neighbors: Vec<NodeId>,
    /// Number of undirected edges.
    m: usize,
    /// Optional per-slot edge weights (see [`weighted`]). `None` for
    /// unweighted graphs — boxed so the unweighted representation stays
    /// one pointer wide and the hot path never touches weight state.
    pub(crate) weights: Option<Box<weighted::WeightsLane>>,
}

impl Graph {
    pub(crate) fn from_csr(offsets: Vec<usize>, neighbors: Vec<NodeId>) -> Self {
        debug_assert_eq!(*offsets.last().unwrap_or(&0), neighbors.len());
        debug_assert_eq!(neighbors.len() % 2, 0);
        let m = neighbors.len() / 2;
        Graph {
            offsets,
            neighbors,
            m,
            weights: None,
        }
    }

    /// Whether this graph carries a weights lane. Weighted accessors
    /// ([`Graph::strength`], [`Graph::total_weight`],
    /// [`Graph::weighted_neighbors`], …) work either way — without a
    /// lane every edge counts as weight 1.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Number of nodes (including isolated ones declared to the builder).
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Degree of `v` in the full graph.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Sorted neighbours of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Start of `v`'s slot range in the flat CSR neighbour array. Slot `i`
    /// of `v` is `csr_offset(v) + i` for `i < degree(v)`; edge-indexed
    /// overlays ([`truss::EdgeIndex`]) use this to map slots to edge ids.
    #[inline]
    pub fn csr_offset(&self, v: NodeId) -> usize {
        self.offsets[v as usize]
    }

    /// `O(log deg(u))` membership test on the sorted adjacency list.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u as usize >= self.n() || v as usize >= self.n() {
            return false;
        }
        // Probe the smaller list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterate every undirected edge exactly once as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.n() as NodeId).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Iterate all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.n() as NodeId
    }

    /// Sum of degrees of `nodes` in the **full** graph — the `d_C` term of
    /// both the classic and density modularity (Definitions 1 and 2).
    pub fn degree_sum(&self, nodes: &[NodeId]) -> u64 {
        nodes.iter().map(|&v| self.degree(v) as u64).sum()
    }

    /// Number of edges of the induced subgraph `G[nodes]` — the `l_C` term.
    ///
    /// `O(sum deg log deg)`; intended for validation and measure evaluation,
    /// not inner loops (the peeling algorithms maintain `l_S`
    /// incrementally).
    pub fn internal_edges(&self, nodes: &[NodeId]) -> u64 {
        let mut mask = vec![false; self.n()];
        for &v in nodes {
            mask[v as usize] = true;
        }
        let mut l = 0u64;
        for &v in nodes {
            for &w in self.neighbors(v) {
                if v < w && mask[w as usize] {
                    l += 1;
                }
            }
        }
        l
    }

    /// Heap + inline bytes of the CSR representation — the per-dataset
    /// resident footprint a serving deployment must budget for
    /// (`~ 8n + 8·2m` bytes: one `usize` offset per node, one `u32`
    /// neighbour entry per edge direction). A weights lane adds its own
    /// `8·2m` slot weights plus `8n` strengths, so capacity planning for
    /// weighted datasets stays honest.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.offsets.capacity() * std::mem::size_of::<usize>()
            + self.neighbors.capacity() * std::mem::size_of::<NodeId>()
            + self.weights.as_deref().map_or(0, |w| w.memory_bytes())
    }

    /// Extract the induced subgraph `G[nodes]`, relabelling nodes to
    /// `0..nodes.len()` in the order given. Returns the subgraph and the
    /// mapping `new -> old`. When this graph carries a weights lane the
    /// subgraph carries one too, each surviving edge keeping its weight —
    /// so weighted measures evaluated inside the subgraph stay faithful.
    pub fn induced(&self, nodes: &[NodeId]) -> (Graph, Vec<NodeId>) {
        let mut new_id = vec![NodeId::MAX; self.n()];
        for (i, &v) in nodes.iter().enumerate() {
            new_id[v as usize] = i as NodeId;
        }
        let mut b = GraphBuilder::new(nodes.len());
        for &v in nodes {
            for &w in self.neighbors(v) {
                if v < w && new_id[w as usize] != NodeId::MAX {
                    b.add_edge(new_id[v as usize], new_id[w as usize]);
                }
            }
        }
        let sub = b.build();
        let sub = if self.is_weighted() {
            // Fill the subgraph's slot-weight lane by looking each kept
            // edge up in the host lane (the subgraph relabelling need not
            // preserve adjacency order, so slots are resolved per edge).
            let mut slot_weight = vec![0.0f64; 2 * sub.m()];
            for (i, &v) in nodes.iter().enumerate() {
                let base = sub.csr_offset(i as NodeId);
                for (slot, &w_new) in sub.neighbors(i as NodeId).iter().enumerate() {
                    let w_old = nodes[w_new as usize];
                    slot_weight[base + slot] = self
                        .edge_weight(v, w_old)
                        .expect("kept edge exists in the host graph");
                }
            }
            sub.attach_weights(slot_weight)
        } else {
            sub
        };
        (sub, nodes.to_vec())
    }
}

/// Errors shared by the graph algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A query node id is `>= n`.
    NodeOutOfRange(NodeId),
    /// The query nodes are not all in one connected component.
    QueryDisconnected,
    /// An algorithm-specific structural requirement failed
    /// (e.g. no k-truss contains the query).
    NoFeasibleSolution(&'static str),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::NodeOutOfRange(v) => write!(f, "node {v} out of range"),
            GraphError::QueryDisconnected => {
                write!(f, "query nodes are not in the same connected component")
            }
            GraphError::NoFeasibleSolution(why) => write!(f, "no feasible solution: {why}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        b.build()
    }

    #[test]
    fn basic_accessors() {
        let g = path4();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(2), &[1, 3]);
    }

    #[test]
    fn has_edge_is_symmetric() {
        let g = path4();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(0, 99));
    }

    #[test]
    fn edges_iterates_each_edge_once() {
        let g = path4();
        let e: Vec<_> = g.edges().collect();
        assert_eq!(e, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn degree_sum_and_internal_edges() {
        let g = path4();
        assert_eq!(g.degree_sum(&[1, 2]), 4);
        assert_eq!(g.internal_edges(&[1, 2]), 1);
        assert_eq!(g.internal_edges(&[0, 1, 2, 3]), 3);
        assert_eq!(g.internal_edges(&[0, 3]), 0);
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = path4();
        let (sub, map) = g.induced(&[1, 2, 3]);
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.m(), 2);
        assert_eq!(map, vec![1, 2, 3]);
        assert!(sub.has_edge(0, 1)); // old (1,2)
        assert!(sub.has_edge(1, 2)); // old (2,3)
        assert!(!sub.has_edge(0, 2));
    }

    #[test]
    fn induced_subgraph_preserves_weights() {
        let mut b = weighted::WeightedGraphBuilder::new(4);
        b.add_edge(0, 1, 2.0);
        b.add_edge(1, 2, 3.0);
        b.add_edge(0, 2, 1.5);
        b.add_edge(2, 3, 0.5);
        let g = b.build().into_graph();
        // Keep nodes out of id order: the relabelling must still land
        // every weight on the right subgraph slot.
        let (sub, map) = g.induced(&[2, 0, 1]);
        assert_eq!(map, vec![2, 0, 1]);
        assert!(sub.is_weighted());
        assert_eq!(sub.m(), 3);
        assert_eq!(sub.edge_weight(1, 2), Some(2.0)); // old (0,1)
        assert_eq!(sub.edge_weight(0, 2), Some(3.0)); // old (2,1)
        assert_eq!(sub.edge_weight(0, 1), Some(1.5)); // old (2,0)
        assert!((sub.total_weight() - 6.5).abs() < 1e-12);
        // The unweighted host stays laneless through induced().
        let (plain, _) = path4().induced(&[1, 2, 3]);
        assert!(!plain.is_weighted());
    }

    #[test]
    fn memory_bytes_covers_csr_storage() {
        let g = path4();
        // At least the offsets (n+1 usizes) and both edge directions.
        let floor =
            (g.n() + 1) * std::mem::size_of::<usize>() + 2 * g.m() * std::mem::size_of::<NodeId>();
        assert!(g.memory_bytes() >= floor);
        // And no wild overestimate: within 4x of the floor for this tiny graph.
        assert!(g.memory_bytes() < 4 * floor + std::mem::size_of::<Graph>());
    }

    #[test]
    fn isolated_nodes_are_kept() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.n(), 5);
        assert_eq!(g.degree(4), 0);
        assert_eq!(g.neighbors(4), &[] as &[NodeId]);
    }
}
